//! Cross-TDN reordering walkthrough (Fig. 3 / Appendix A.1) plus a wire
//! dissector for the TDTCP packet formats (Fig. 5).
//!
//! ```sh
//! cargo run --release --example reordering_analysis
//! ```
//!
//! Part 1 replays the paper's Fig. 3(a) data-reordering scenario against
//! a TDTCP sender with the relaxed heuristic on and off, showing the
//! spurious retransmissions the heuristic prevents.
//!
//! Part 2 encodes TDTCP's three packet formats to real bytes and
//! dissects them back — the role the paper's Wireshark patches play.

use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{Direction, FlowId, SackBlocks, Segment, SeqNum, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use wire::{TcpHeader, TdnId, TdnNotification};
use wire::ip::protocol;

const MSS: u32 = 1000;

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

/// Establish a TDTCP pair by relaying the handshake by hand.
fn establish(relaxed: bool) -> TdtcpConnection {
    let mut cfg = TdtcpConfig::default();
    cfg.tcp.mss = MSS;
    cfg.tcp.pacing = false; // hand-driven scenario: send on demand
    cfg.relaxed_reordering = relaxed;
    let cubic = Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    });
    let mut a = TdtcpConnection::connect(FlowId(1), cfg.clone(), &cubic, t(0));
    let mut b = TdtcpConnection::listen(FlowId(1), cfg, &cubic);
    let syn = a.poll_send(t(0)).expect("SYN");
    b.on_segment(t(10), &syn);
    let synack = b.poll_send(t(10)).expect("SYN-ACK");
    a.on_segment(t(20), &synack);
    let ack = a.poll_send(t(20)).expect("ACK");
    b.on_segment(t(30), &ack);
    a
}

fn fig3a_scenario(relaxed: bool) -> (u64, u64, u64) {
    let mut sender = establish(relaxed);
    // Segments 1-3 go out on the high-latency TDN 0...
    for _ in 0..3 {
        sender.poll_send(t(40)).expect("window open");
    }
    // ...the network reconfigures...
    sender.on_notification(t(45), TdnId(1));
    // ...and segments 4-6 go out on the low-latency TDN 1.
    for _ in 0..3 {
        sender.poll_send(t(46)).expect("window open");
    }
    // TDN 1 delivers first: the receiver SACKs 4-6 while 1-3 are still in
    // flight on the slow path. Build that ACK by hand (Fig. 3a).
    let mut ack = Segment::new(FlowId(1), Direction::AckPath);
    ack.flags.ack = true;
    ack.ack = SeqNum(1);
    ack.wnd = 1 << 20;
    ack.ack_tdn = Some(TdnId(1));
    let mut sack = SackBlocks::EMPTY;
    sack.push(SeqNum(3 * MSS + 1), SeqNum(6 * MSS + 1));
    ack.sack = sack;
    sender.on_segment(t(60), &ack);
    // Drain the output: marked holes go out as (spurious) retransmissions
    // ahead of new data.
    while sender.poll_send(t(61)).is_some() {}
    let s = sender.stats();
    (s.retransmits, s.reorder_marked_pkts, s.relaxed_skips)
}

fn main() {
    println!("== Part 1: Fig. 3(a) data reordering at a TDN switch ==\n");
    for (name, relaxed) in [("classic TCP heuristics", false), ("TDTCP relaxed detection", true)] {
        let (retx, marked, skipped) = fig3a_scenario(relaxed);
        println!(
            "{name:>26}: {retx} spurious retransmissions queued \
             ({marked} marked lost, {skipped} holes spared)"
        );
    }
    println!(
        "\nThe relaxed heuristic inspects the TDN ID of every hole segment \
         (§3.4):\ncross-TDN holes are delayed, not lost, so nothing is resent."
    );

    println!("\n== Part 2: dissecting TDTCP's wire formats (Fig. 5) ==");
    // (a) The ICMP TDN-change notification.
    let mut buf = Vec::new();
    TdnNotification {
        active_tdn: TdnId(1),
    }
    .emit(&mut buf);
    println!("\nICMP TDN-change notification ({} bytes): {buf:02x?}", buf.len());
    let parsed = TdnNotification::parse(&buf).expect("valid");
    println!("  -> type=253 (experimental), active TDN = {}", parsed.active_tdn);

    // (b) A TD_CAPABLE SYN.
    let mut syn = Segment::new(FlowId(7), Direction::DataPath);
    syn.flags.syn = true;
    syn.td_capable = Some(2);
    syn.wnd = 1 << 20;
    let bytes = syn.to_wire(0x0A00_0001, 0x0A00_0002, 40000, 5001);
    println!("\nTD_CAPABLE SYN ({} bytes on the wire):", bytes.len());
    dissect(&bytes);

    // (c) A tagged data segment with SACK.
    let mut data = Segment::new(FlowId(7), Direction::DataPath);
    data.seq = SeqNum(9001);
    data.ack = SeqNum(555);
    data.len = 64;
    data.flags.ack = true;
    data.flags.psh = true;
    data.wnd = 1 << 20;
    data.data_tdn = Some(TdnId(1));
    data.ack_tdn = Some(TdnId(0));
    let mut sack = SackBlocks::EMPTY;
    sack.push(SeqNum(12_001), SeqNum(15_001));
    data.sack = sack;
    let bytes = data.to_wire(0x0A00_0001, 0x0A00_0002, 40000, 5001);
    println!("\nTD_DATA_ACK data segment ({} bytes on the wire):", bytes.len());
    dissect(&bytes);
}

/// A miniature Wireshark: parse IPv4+TCP bytes and print every field and
/// option.
fn dissect(bytes: &[u8]) {
    let (ip, total) = wire::Ipv4Header::parse(bytes).expect("valid IPv4");
    println!(
        "  IPv4  src={:08x} dst={:08x} proto={} ecn={:?} total={total}",
        ip.src, ip.dst, ip.protocol, ip.ecn
    );
    assert_eq!(ip.protocol, protocol::TCP);
    let (tcp, payload_off) = TcpHeader::parse(&bytes[20..total as usize], &ip).expect("valid TCP");
    println!(
        "  TCP   {} -> {} seq={} ack={} flags[syn={} ack={} psh={}] wnd={}",
        tcp.src_port,
        tcp.dst_port,
        tcp.seq,
        tcp.ack,
        tcp.flags.syn,
        tcp.flags.ack,
        tcp.flags.psh,
        tcp.window
    );
    for opt in &tcp.options {
        println!("  opt   {opt:?}");
    }
    println!("  data  {} payload bytes", bytes.len() - 20 - payload_off);
}
