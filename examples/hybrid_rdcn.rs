//! The paper's headline scenario as a runnable demo: 16 long-lived flows
//! on the hybrid RDCN, TDTCP against CUBIC and MPTCP, with a per-day
//! breakdown and an ASCII sequence graph.
//!
//! ```sh
//! cargo run --release --example hybrid_rdcn
//! ```

use bench::{Variant, Workload};
use rdcn::{analytic, NetConfig};
use simcore::{SimDuration, SimTime};

fn main() {
    let net = NetConfig::paper_baseline();
    let horizon = SimTime::from_millis(30);
    let variants = [Variant::Tdtcp, Variant::Cubic, Variant::Mptcp];

    println!("hybrid RDCN, 16 flows, {}ms:", 30);
    println!(
        "schedule: {} days of {} + nights of {}, TDN1 (optical) 1 day in {}",
        net.schedule.days.len(),
        net.schedule.day_len,
        net.schedule.night_len,
        net.schedule.days.len(),
    );

    let mut results = Vec::new();
    for v in variants {
        let res = Workload::bulk(v, horizon).run(&net);
        results.push((v, res));
    }

    // Steady-state rates per phase.
    println!(
        "\n{:>8} {:>12} {:>14} {:>14}",
        "variant", "total Gbps", "packet-day Gbps", "optical-day Gbps"
    );
    let warmup_day = 50u64;
    let last_day = horizon.as_nanos() / net.schedule.slot_len().as_nanos() - 1;
    for (v, res) in &results {
        let (mut pb, mut pd, mut ob, mut od) = (0.0, 0u64, 0.0, 0u64);
        for day in warmup_day..last_day {
            let d = res
                .seq_series
                .value_at(net.schedule.day_start(day + 1), 0.0)
                - res.seq_series.value_at(net.schedule.day_start(day), 0.0);
            if net.schedule.day_tdn(day) == net.circuit_tdn {
                ob += d;
                od += 1;
            } else {
                pb += d;
                pd += 1;
            }
        }
        let slot_ns = net.schedule.slot_len().as_nanos() as f64;
        let total = (pb + ob) * 8.0 / ((pd + od) as f64 * slot_ns);
        println!(
            "{:>8} {:>12.2} {:>14.2} {:>14.2}",
            v.label(),
            total,
            pb * 8.0 / (pd as f64 * slot_ns),
            ob * 8.0 / (od as f64 * slot_ns),
        );
    }
    println!(
        "{:>8} {:>12.2}   (analytic optimal)",
        "optimal",
        analytic::optimal_rate_bps(&net) / 1e9
    );

    // ASCII sequence graph over one optical week of steady state.
    println!("\nsequence progress over one week (# = bytes acked, . = optimal):");
    let start = net.schedule.day_start(70);
    let step = SimDuration::from_micros(50);
    let cols = (net.schedule.week_len().as_nanos() / step.as_nanos()) as usize;
    let opt_week =
        analytic::optimal_bytes(&net, start + net.schedule.week_len()) - analytic::optimal_bytes(&net, start);
    for (v, res) in &results {
        let base = res.seq_series.value_at(start, 0.0);
        print!("{:>8} |", v.label());
        for k in 0..cols {
            let t = start + step * k as u64;
            let frac = (res.seq_series.value_at(t, 0.0) - base) / opt_week;
            let optimal_frac =
                (analytic::optimal_bytes(&net, t) - analytic::optimal_bytes(&net, start)) / opt_week;
            let c = if frac >= optimal_frac * 0.98 {
                '#'
            } else if frac >= optimal_frac * 0.5 {
                '+'
            } else {
                '.'
            };
            print!("{c}");
        }
        println!("|");
    }
    println!(
        "{:>8}  (column = 50us; '#' tracks optimal, '+' above half, '.' below)",
        ""
    );
}
