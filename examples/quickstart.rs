//! Quickstart: one TDTCP flow over the paper's emulated hybrid RDCN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the two-rack testbed of §5.1 (10 Gbps packet network at 100 µs
//! RTT, 100 Gbps optical network at 40 µs RTT, 180 µs days / 20 µs
//! nights, 6:1 schedule), runs a single long-lived TDTCP flow for 20 ms,
//! and prints what it achieved against the analytic bounds.

use rdcn::{analytic, Emulator, NetConfig};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

fn main() {
    // 1. The network: the paper's baseline testbed.
    let net = NetConfig::paper_baseline();

    // 2. The endpoints: a TDTCP sender and receiver with CUBIC inside
    //    every TDN (§3.5), negotiated via TD_CAPABLE on the SYN (§4.2).
    let factory: rdcn::EndpointFactory = Box::new(|i| {
        let cfg = TdtcpConfig::default();
        let cubic = Cubic::new(CcConfig::default());
        let sender =
            TdtcpConnection::connect(FlowId(i as u32), cfg.clone(), &cubic, SimTime::ZERO);
        let receiver = TdtcpConnection::listen(FlowId(i as u32), cfg, &cubic);
        (
            Box::new(sender) as Box<dyn Transport>,
            Box::new(receiver) as Box<dyn Transport>,
        )
    });

    // 3. Run 20 ms of simulated time (100 optical weeks).
    let horizon = SimTime::from_millis(20);
    let emu = Emulator::new(net.clone(), 1, factory);
    let res = emu.run(horizon);

    // 4. Report.
    let acked = res.total_acked();
    let gbps = acked as f64 * 8.0 / horizon.as_nanos() as f64;
    let optimal = analytic::optimal_bytes(&net, horizon);
    let packet_only = analytic::packet_only_bytes(&net, horizon);
    println!("TDTCP quickstart: 1 flow, {} ms on the hybrid RDCN", 20);
    println!("  bytes acked      : {acked}");
    println!("  mean goodput     : {gbps:.2} Gbps");
    println!(
        "  vs optimal       : {:.0}% (optimal would move {optimal:.0} bytes)",
        acked as f64 / optimal * 100.0
    );
    println!(
        "  vs packet-only   : {:.0}% (packet network alone: {packet_only:.0} bytes)",
        acked as f64 / packet_only * 100.0
    );
    println!(
        "  TDN switches seen : {}",
        res.sender_stats[0].tdn_switches
    );
    println!(
        "  retransmissions  : {} ({} spurious at receiver)",
        res.sender_stats[0].retransmits, res.receiver_stats[0].spurious_retransmits
    );
    assert!(acked > 0, "the flow must make progress");
}
