//! The §3.5 generality scenario: satellite links with a periodic
//! strong/weak signal pattern, backed by ground-station fiber.
//!
//! ```sh
//! cargo run --release --example satellite
//! ```
//!
//! "Satellite signal coverage has a periodic strong-weak pattern as
//! satellites orbit the earth. Satellite links are used if a strong
//! signal can be detected. When the signal falls weak, fiber links
//! between ground stations are often used as a backup. At any time, only
//! one link is selected. TDTCP is particularly suitable for a network
//! with this pattern." — §3.5
//!
//! TDN 0 = ground fiber (1 Gbps, 30 ms RTT via distant ground stations),
//! TDN 1 = satellite pass (400 Mbps, 10 ms RTT overhead link). The
//! "schedule" is the orbit: 800 ms satellite passes alternating with
//! 1.6 s fiber fallback, with a 50 ms handover blackout.

use rdcn::{Emulator, NetConfig, NotifyConfig, Schedule, TdnParams, VoqConfig};
use simcore::{SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic};
use tcp::rtt::RttConfig;
use tcp::{Config, Connection, FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use wire::TdnId;

fn satellite_net() -> NetConfig {
    let schedule = Schedule {
        day_len: SimDuration::from_millis(800),
        night_len: SimDuration::from_millis(50),
        // Orbit: fiber, fiber, satellite pass.
        days: vec![TdnId(0), TdnId(0), TdnId(1)],
    };
    let guard_band = schedule.slot_len() / 2;
    NetConfig {
        tdns: vec![
            TdnParams {
                rate_bps: 1_000_000_000,
                one_way: SimDuration::from_millis(15),
                jitter: Some((0.1, SimDuration::from_micros(300))),
            },
            TdnParams {
                rate_bps: 400_000_000,
                one_way: SimDuration::from_millis(5),
                jitter: Some((0.1, SimDuration::from_micros(300))),
            },
        ],
        schedule,
        voq: VoqConfig {
            cap_pkts: 2048,
            ecn_threshold: None,
        },
        notifications: true,
        notify: NotifyConfig::optimized(),
        circuit_marking: false,
        circuit_tdn: TdnId(1),
        retcpdyn: None,
        host_rate_bps: 10_000_000_000,
        seed: 42,
        faults: rdcn::FaultPlan::default(),
        impair: rdcn::ImpairPlan::default(),
        clock: rdcn::ClockPlan::default(),
        guard_band,
    }
}

fn base_tcp_config() -> Config {
    Config {
        mss: 1448, // WAN MTU, not data center jumbo frames
        recv_buf: 16 << 20,
        rtt: RttConfig {
            min_rto: SimDuration::from_millis(200), // true Linux floor at WAN scale
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
        },
        ..Config::default()
    }
}

fn main() {
    let net = satellite_net();
    let horizon = SimTime::from_secs(20);
    let cc = CcConfig {
        mss: 1448,
        init_cwnd_pkts: 10,
        max_cwnd: 64 << 20,
    };

    // TDTCP with per-link state.
    let tdtcp_factory: rdcn::EndpointFactory = Box::new(move |i| {
        let cfg = TdtcpConfig {
            tcp: {
                let mut c = base_tcp_config();
                c.pacing = true;
                c
            },
            ..TdtcpConfig::default()
        };
        let template = Cubic::new(cc);
        (
            Box::new(TdtcpConnection::connect(
                FlowId(i as u32),
                cfg.clone(),
                &template,
                SimTime::ZERO,
            )) as Box<dyn Transport>,
            Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template))
                as Box<dyn Transport>,
        )
    });
    // Single-path CUBIC for contrast.
    let cubic_factory: rdcn::EndpointFactory = Box::new(move |i| {
        let cfg = base_tcp_config();
        (
            Box::new(Connection::connect(
                FlowId(i as u32),
                cfg.clone(),
                Box::new(Cubic::new(cc)),
                SimTime::ZERO,
            )) as Box<dyn Transport>,
            Box::new(Connection::listen(FlowId(i as u32), cfg, Box::new(Cubic::new(cc))))
                as Box<dyn Transport>,
        )
    });

    println!("satellite/fiber alternation, 1 flow, 20 s simulated:");
    println!("  TDN0 fiber    : 1 Gbps, 30 ms RTT (1.6 s per cycle)");
    println!("  TDN1 satellite: 400 Mbps, 10 ms RTT (800 ms passes)");
    for (name, factory) in [("tdtcp", tdtcp_factory), ("cubic", cubic_factory)] {
        let res = Emulator::new(net.clone(), 1, factory).run(horizon);
        let gbps = res.total_acked() as f64 * 8.0 / horizon.as_nanos() as f64;
        println!(
            "  {name:>6}: {:>12} bytes acked ({gbps:.3} Gbps), {} rtos, {} spurious retx",
            res.total_acked(),
            res.sender_stats[0].rtos,
            res.receiver_stats[0].spurious_retransmits,
        );

    }
    println!("(per-path state lets TDTCP resume each link at its own operating point)");
}
