//! Workspace-level integration tests: cross-crate behaviours that no
//! single crate can check alone — variant interop on one emulated
//! network, downgrade compatibility between TDTCP and plain TCP
//! endpoints, full-run determinism across the whole stack, and transfer
//! integrity for every variant.

use bench::{Variant, Workload, ALL_VARIANTS};
use rdcn::{Emulator, NetConfig};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

/// Every variant moves every byte of a finite transfer, exactly once.
#[test]
fn all_variants_complete_finite_transfers() {
    for v in ALL_VARIANTS {
        let mut net = NetConfig::paper_baseline();
        v.apply_net_config(&mut net);
        let total: u64 = 3_000_000;
        let emu = Emulator::new(net, 2, v.factory(total));
        let res = emu.run(SimTime::from_millis(200));
        for (i, s) in res.sender_stats.iter().enumerate() {
            assert_eq!(
                s.bytes_acked, total,
                "{} flow {i}: acked {} of {total}",
                v.label(),
                s.bytes_acked
            );
        }
        for (i, r) in res.receiver_stats.iter().enumerate() {
            assert_eq!(
                r.bytes_delivered, total,
                "{} flow {i}: delivered {} of {total}",
                v.label(),
                r.bytes_delivered
            );
        }
    }
}

/// Identical seeds reproduce every counter bit-for-bit across the whole
/// stack (DESIGN.md §5).
#[test]
fn whole_stack_determinism() {
    for v in [Variant::Tdtcp, Variant::Cubic, Variant::Mptcp] {
        let run = || {
            let res = Workload::bulk(v, SimTime::from_millis(8)).run(&NetConfig::paper_baseline());
            (
                res.total_acked(),
                res.drops_ab,
                res.events,
                res.sender_stats.iter().map(|s| s.retransmits).sum::<u64>(),
            )
        };
        assert_eq!(run(), run(), "{} must be deterministic", v.label());
    }
}

/// A TDTCP initiator talking to a plain TCP listener downgrades cleanly
/// (§4.2) and still completes its transfer.
#[test]
fn tdtcp_downgrades_against_plain_tcp() {
    let net = NetConfig::paper_baseline();
    let cc = CcConfig::default();
    let total: u64 = 1_000_000;
    let factory: rdcn::EndpointFactory = Box::new(move |i| {
        let mut tdtcp_cfg = TdtcpConfig::default();
        tdtcp_cfg.tcp.bytes_to_send = total;
        let template = Cubic::new(cc);
        let sender =
            TdtcpConnection::connect(FlowId(i as u32), tdtcp_cfg, &template, SimTime::ZERO);
        // The peer speaks plain TCP: no TD_CAPABLE echo.
        let listener = tcp::Connection::listen(
            FlowId(i as u32),
            tcp::Config::default(),
            Box::new(Cubic::new(cc)),
        );
        (
            Box::new(sender) as Box<dyn Transport>,
            Box::new(listener) as Box<dyn Transport>,
        )
    });
    let res = Emulator::new(net, 1, factory).run(SimTime::from_millis(200));
    assert_eq!(res.receiver_stats[0].bytes_delivered, total);
    assert_eq!(
        res.sender_stats[0].tdn_switches, 0,
        "downgraded connection ignores notifications"
    );
}

/// The headline ordering of §5.2 holds end to end: TDTCP > reTCP-class >
/// CUBIC > MPTCP, all between packet-only and optimal.
#[test]
fn headline_ordering() {
    let horizon = SimTime::from_millis(25);
    let net = NetConfig::paper_baseline();
    let acked = |v: Variant| Workload::bulk(v, horizon).run(&net).total_acked() as f64;
    let tdtcp = acked(Variant::Tdtcp);
    let cubic = acked(Variant::Cubic);
    let mptcp = acked(Variant::Mptcp);
    let optimal = rdcn::analytic::optimal_bytes(&net, horizon);
    assert!(
        tdtcp > cubic * 1.08,
        "tdtcp {tdtcp:.0} must clearly beat cubic {cubic:.0}"
    );
    assert!(
        cubic > mptcp * 1.05,
        "cubic {cubic:.0} must beat mptcp {mptcp:.0}"
    );
    assert!(tdtcp < optimal);
}

/// The Fig. 10 shape holds: TDTCP's circuit days are almost always free
/// of spurious retransmissions while CUBIC pays at most transitions.
#[test]
fn fig10_shape() {
    let fig = bench::experiments::fig10::run(SimTime::from_millis(25));
    let tdtcp = fig
        .spurious
        .iter()
        .find(|c| c.label == "tdtcp")
        .expect("tdtcp measured");
    let cubic = fig
        .spurious
        .iter()
        .find(|c| c.label == "cubic")
        .expect("cubic measured");
    assert!(
        tdtcp.frac_zero >= 0.8,
        "paper: ~80% of TDTCP optical days are clean; got {:.2}",
        tdtcp.frac_zero
    );
    assert!(
        cubic.frac_zero < tdtcp.frac_zero,
        "CUBIC pays spurious retransmissions more often than TDTCP"
    );
    assert!(cubic.p90 >= 1.0);
}

/// Fig. 11's direction holds: notification optimizations buy TDTCP
/// meaningful throughput.
#[test]
fn fig11_direction() {
    let fig = bench::experiments::fig11::run(SimTime::from_millis(25));
    assert!(
        fig.gain() > 0.05,
        "optimizations should be worth >5%, got {:.1}%",
        fig.gain() * 100.0
    );
}

/// A three-TDN schedule (one fast, one medium, one slow path) exercises
/// runtime multi-TDN state end to end: TDTCP allocates and uses a state
/// set per TDN and still beats CUBIC.
#[test]
fn three_tdn_schedule() {
    use rdcn::{Schedule, TdnParams};
    use simcore::SimDuration;
    use wire::TdnId;
    let mut net = NetConfig::paper_baseline();
    net.tdns = vec![
        TdnParams::packet_10g(),
        TdnParams::optical_100g(),
        TdnParams {
            rate_bps: 40_000_000_000,
            one_way: SimDuration::from_micros(30),
            jitter: None,
        },
    ];
    net.schedule = Schedule {
        day_len: SimDuration::from_micros(180),
        night_len: SimDuration::from_micros(20),
        days: vec![TdnId(0), TdnId(0), TdnId(2), TdnId(0), TdnId(0), TdnId(1)],
    };
    let cc = CcConfig::default();
    let mk_tdtcp: rdcn::EndpointFactory = Box::new(move |i| {
        let cfg = TdtcpConfig {
            num_tdns: 3,
            ..TdtcpConfig::default()
        };
        let template = Cubic::new(cc);
        (
            Box::new(TdtcpConnection::connect(
                FlowId(i as u32),
                cfg.clone(),
                &template,
                SimTime::ZERO,
            )) as Box<dyn Transport>,
            Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template))
                as Box<dyn Transport>,
        )
    });
    let horizon = SimTime::from_millis(15);
    let tdtcp = Emulator::new(net.clone(), 8, mk_tdtcp).run(horizon);
    let cubic = Workload {
        flows: 8,
        ..Workload::bulk(Variant::Cubic, horizon)
    }
    .run(&net);
    assert!(tdtcp.total_acked() > 0);
    assert!(
        tdtcp.total_acked() as f64 > cubic.total_acked() as f64 * 1.02,
        "3-TDN: tdtcp {} vs cubic {}",
        tdtcp.total_acked(),
        cubic.total_acked()
    );
    // All three TDN state sets saw use: switches counted per flow.
    assert!(tdtcp.sender_stats[0].tdn_switches > 10);
}

/// Reinjection ablation: with it on, MPTCP pays duplicate transmissions
/// to shorten data-level stalls; with it off, no duplicates ever occur
/// and progress waits for the stranded subflow's next day. (In this
/// model the two roughly trade off — the paper frames reinjection as the
/// stall-recovery mechanism, not a free win.)
#[test]
fn mptcp_reinjection_ablation() {
    use mptcp::{MptcpConfig, MptcpConnection};
    let horizon = SimTime::from_millis(20);
    let run = |reinject: bool| {
        let mut net = NetConfig::paper_baseline();
        Variant::Mptcp.apply_net_config(&mut net);
        let factory: rdcn::EndpointFactory = Box::new(move |i| {
            let cfg = MptcpConfig {
                reinject,
                ..MptcpConfig::default()
            };
            let template = Cubic::new(CcConfig::default());
            (
                Box::new(MptcpConnection::connect(
                    FlowId(i as u32),
                    cfg.clone(),
                    &template,
                    SimTime::ZERO,
                )) as Box<dyn Transport>,
                Box::new(MptcpConnection::listen(FlowId(i as u32), cfg, &template))
                    as Box<dyn Transport>,
            )
        });
        let res = Emulator::new(net, 8, factory).run(horizon);
        let reinj: u64 = res.sender_stats.iter().map(|s| s.reinjections).sum();
        let dups: u64 = res.receiver_stats.iter().map(|s| s.dup_segs_received).sum();
        (res.total_acked(), reinj, dups)
    };
    let (acked_with, reinj_with, dups_with) = run(true);
    let (acked_without, reinj_without, dups_without) = run(false);
    assert!(reinj_with > 0, "reinjection engages under stalls");
    assert!(dups_with > 0, "reinjected ranges arrive twice");
    assert_eq!(reinj_without, 0);
    let _ = dups_without; // data-level duplicates also arise from subflow
                          // retransmissions, so their count is not a
                          // reinjection-only signal.
    // Both configurations make progress within 2x of each other.
    let ratio = acked_with as f64 / acked_without as f64;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio:.2}");
}
