//! Time-plane acceptance: under per-host clock skew and drift, TDTCP
//! must bend, not break. The paper's operating assumption — hosts agree
//! with the ToR about where the slot boundaries are — is enforced here
//! as a budget: skew inside the guard band costs nothing, skew past it
//! costs launches (per the slot-edge policy), and a host whose clock is
//! unusable escalates itself to degraded mode instead of blasting a
//! stale TDN's window across slot edges.
//!
//! Headline criterion (mirrors `tests/impair.rs` for the data path):
//! at 50 ppm drift with periodic PTP-style resync, TDTCP holds at least
//! 80% of its clean steady-state goodput.

use bench::workload::steady_goodput_gbps;
use bench::{Variant, Workload};
use rdcn::{ClockPlan, NetConfig, RunResult, SlotEdgePolicy};
use simcore::{SimDuration, SimTime};

const HORIZON: SimTime = SimTime::from_millis(20);
const WARMUP: SimTime = SimTime::from_millis(4);

/// The headline time-plane adversity: every host drifts at up to
/// 50 ppm and resyncs every millisecond to a 2 µs residual — a
/// well-run PTP deployment with imperfect hardware.
fn drift_with_resync(ppm: f64) -> ClockPlan {
    ClockPlan {
        drift_ppm: ppm,
        resync_interval: SimDuration::from_millis(1),
        resync_error: SimDuration::from_micros(2),
        ..ClockPlan::default()
    }
}

fn run_tdtcp(clock: ClockPlan, guard_band: Option<SimDuration>) -> RunResult {
    let mut net = NetConfig::paper_baseline();
    net.clock = clock;
    if let Some(g) = guard_band {
        net.guard_band = g;
    }
    let wl = Workload {
        flows: 8,
        ..Workload::bulk(Variant::Tdtcp, HORIZON)
    };
    wl.run(&net)
}

/// The headline acceptance criterion: realistic drift under resync is
/// absorbed almost entirely by the guard band — goodput stays within
/// 20% of clean — and the clean run pays nothing for the machinery.
#[test]
fn fifty_ppm_drift_with_resync_keeps_headline_goodput() {
    let clean = run_tdtcp(ClockPlan::none(), None);
    let skewed = run_tdtcp(drift_with_resync(50.0), None);
    let gc = steady_goodput_gbps(&clean, WARMUP, HORIZON);
    let gs = steady_goodput_gbps(&skewed, WARMUP, HORIZON);
    assert!(gc > 0.0, "clean run must move bytes");
    assert!(
        gs >= 0.8 * gc,
        "goodput fell to {:.1}% of clean ({gs:.3} vs {gc:.3} Gbps)",
        100.0 * gs / gc
    );

    // The machinery demonstrably engaged: hosts resynced and nonzero
    // skew was observed.
    assert!(skewed.clock.resyncs > 0, "resync plan never resynced");
    assert!(skewed.clock.max_abs_skew_ns > 0, "drift produced no skew");

    // The clean run pays nothing for it.
    assert_eq!(clean.clock.total(), 0);
    assert_eq!(clean.clock.max_abs_skew_ns, 0);
    for s in clean.sender_stats.iter().chain(&clean.receiver_stats) {
        assert_eq!(s.skew_gate_pauses, 0, "clean run must not gate");
        assert_eq!(s.skew_escalations, 0, "clean run must not escalate");
    }
}

/// The guard band is the knob the paper says it is: with a fixed
/// static-offset population, shrinking the guard band strictly
/// increases slot-edge losses — each step exposes launches the wider
/// band absorbed.
#[test]
fn shrinking_guard_band_strictly_increases_slot_edge_drops() {
    let plan = ClockPlan::offset(SimDuration::from_micros(60));
    let mut drops = Vec::new();
    for guard_us in [50u64, 20, 5] {
        let res = run_tdtcp(plan.clone(), Some(SimDuration::from_micros(guard_us)));
        assert!(
            res.clock.skewed_sends > 0,
            "guard {guard_us} µs: no mis-timed launches at all"
        );
        drops.push(res.clock.guard_drops);
    }
    assert!(
        drops[0] < drops[1] && drops[1] < drops[2],
        "guard_drops must strictly increase as the band shrinks: {drops:?}"
    );
}

/// Desync hardening: a host drifting heavily enough that its slot-phase
/// estimate exceeds the guard band escalates itself to degraded mode
/// (counted in `skew_escalations`) rather than trusting per-TDN state
/// it can no longer place — and the skew send gate engages on the way
/// there.
#[test]
fn heavy_drift_escalates_to_degraded_mode() {
    let res = run_tdtcp(ClockPlan::drift(8_000.0), None);
    let escalations: u64 = res.sender_stats.iter().map(|s| s.skew_escalations).sum();
    let pauses: u64 = res.sender_stats.iter().map(|s| s.skew_gate_pauses).sum();
    assert!(
        escalations > 0,
        "no sender escalated under 8000 ppm drift (pauses {pauses})"
    );
    assert!(res.total_acked() > 0, "flows must survive heavy drift");
}

/// Every slot-edge policy engages under an over-guard offset population
/// and flows keep moving bytes: Drop kills launches, Defer parks them,
/// WrongTdn mislabels them — none of the three deadlocks the fabric.
#[test]
fn every_slot_edge_policy_engages_and_flows_survive() {
    for policy in [
        SlotEdgePolicy::Drop,
        SlotEdgePolicy::Defer,
        SlotEdgePolicy::WrongTdn,
    ] {
        let plan = ClockPlan {
            offset_bound: SimDuration::from_micros(150),
            resync_interval: SimDuration::from_millis(2),
            resync_error: SimDuration::from_micros(2),
            slot_edge_policy: policy,
            ..ClockPlan::default()
        };
        let res = run_tdtcp(plan, None);
        let hit = match policy {
            SlotEdgePolicy::Drop => res.clock.guard_drops,
            SlotEdgePolicy::Defer => res.clock.deferred_sends,
            SlotEdgePolicy::WrongTdn => res.clock.wrong_tdn_deliveries,
        };
        assert!(hit > 0, "{policy:?} never fired under 150 µs offsets");
        assert!(res.total_acked() > 0, "{policy:?}: flows moved no bytes");
    }
}
