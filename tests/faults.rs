//! Graceful-degradation acceptance: TDTCP under injected faults must
//! bend, not break. A 1% TDN-notification loss rate leaves the standard
//! two-rack workload stall-free and within 20% of clean goodput; a
//! mid-day circuit failure truncates the day and keeps traffic moving
//! over the packet fabric; EPS fault bursts and the flight-recorder
//! digest report round out the robustness surface.

use bench::workload::steady_goodput_gbps;
use bench::{Variant, Workload};
use rdcn::{EpsBurst, FaultPlan, LinkFailure, NetConfig, RunResult};
use simcore::{SimDuration, SimTime};

const HORIZON: SimTime = SimTime::from_millis(20);
const WARMUP: SimTime = SimTime::from_millis(4);

fn run_tdtcp(plan: FaultPlan, bytes_per_flow: u64) -> RunResult {
    let mut net = NetConfig::paper_baseline();
    net.faults = plan;
    let wl = Workload {
        flows: 8,
        bytes_per_flow,
        ..Workload::bulk(Variant::Tdtcp, HORIZON)
    };
    wl.run(&net)
}

/// The headline acceptance criterion: at 1% notification loss, every
/// fixed-size flow of the standard workload still completes (no stall),
/// steady-state goodput stays within 20% of the clean run, and the
/// degradation machinery demonstrably engaged — notifications were
/// dropped, the watchdog fired, endpoints spent time degraded and then
/// resynchronized.
#[test]
fn one_percent_notification_loss_degrades_gracefully() {
    // Goodput: long-lived bulk flows, measured past warmup.
    let clean = run_tdtcp(FaultPlan::default(), u64::MAX);
    let lossy = run_tdtcp(FaultPlan::notification_loss(0.01), u64::MAX);
    let gc = steady_goodput_gbps(&clean, WARMUP, HORIZON);
    let gl = steady_goodput_gbps(&lossy, WARMUP, HORIZON);
    assert!(gc > 0.0, "clean run must move bytes");
    assert!(
        gl >= 0.8 * gc,
        "goodput fell to {:.1}% of clean ({gl:.3} vs {gc:.3} Gbps)",
        100.0 * gl / gc
    );

    // No stall: a fixed-size transfer per flow all complete under loss.
    let finite = run_tdtcp(FaultPlan::notification_loss(0.01), 400_000);
    assert!(
        finite.completions.iter().all(Option::is_some),
        "a flow stalled under 1% notification loss: {:?}",
        finite.completions
    );

    assert!(lossy.notifications_lost() > 0, "plan should drop notifications");
    assert!(lossy.watchdog_fires() > 0, "watchdog should detect misses");
    assert!(
        lossy.degraded_time() > SimDuration::ZERO,
        "endpoints should log degraded time"
    );
    let resyncs: u64 = lossy
        .sender_stats
        .iter()
        .chain(&lossy.receiver_stats)
        .map(|s| s.notify_resyncs)
        .sum();
    assert!(resyncs > 0, "endpoints should resynchronize after misses");

    // The clean run must not pay for the machinery: no watchdog fires,
    // no degraded time, no faults.
    assert_eq!(clean.watchdog_fires(), 0);
    assert_eq!(clean.degraded_time(), SimDuration::ZERO);
    assert_eq!(clean.faults.total(), 0);
}

/// A circuit failure halfway through a circuit day truncates that day
/// and blacks the circuit out for the outage window; the run keeps
/// moving bytes over the packet fabric the whole time.
#[test]
fn mid_day_circuit_failure_truncates_then_recovers() {
    let base = NetConfig::paper_baseline();
    let sched = &base.schedule;
    // First circuit day after a little warmup.
    let mut fail_day = sched.day_number(SimTime::from_millis(1));
    while sched.day_tdn(fail_day) != base.circuit_tdn {
        fail_day += 1;
    }
    let outage_days = 2 * sched.days.len() as u64;
    let plan = FaultPlan {
        link_failure: Some(LinkFailure {
            day: fail_day,
            at_fraction: 0.5,
            outage_days,
        }),
        ..FaultPlan::default()
    };
    let res = run_tdtcp(plan, u64::MAX);

    assert_eq!(res.faults.days_truncated, 1, "exactly one day is cut short");
    assert!(res.faults.days_absent >= 1, "circuit days in the window vanish");
    assert!(
        res.total_acked() > 0,
        "traffic must keep flowing over the packet fabric"
    );
    // The outage is unannounced, so hosts discover it via the watchdog.
    assert!(res.watchdog_fires() > 0, "absent days should trip watchdogs");
    assert!(res.degraded_time() > SimDuration::ZERO);
}

/// An EPS fault burst drops and corrupts segments only inside its
/// window, and the run survives it.
#[test]
fn eps_burst_injects_and_run_survives() {
    let plan = FaultPlan {
        eps_burst: Some(EpsBurst {
            start: SimTime::from_millis(1),
            len: SimDuration::from_millis(2),
            drop_rate: 0.02,
            corrupt_rate: 0.01,
        }),
        ..FaultPlan::default()
    };
    let res = run_tdtcp(plan, u64::MAX);
    assert!(res.faults.eps_drops > 0, "burst should drop segments");
    assert!(res.faults.eps_corruptions > 0, "burst should corrupt segments");
    assert!(res.total_acked() > 0, "flows survive the burst");
}

/// `check_digest` is the debugging entry point: it accepts a matching
/// digest and, on divergence, returns a report that carries the flight
/// recorder's trailing fault events.
#[test]
fn check_digest_reports_flight_log_on_divergence() {
    let res = run_tdtcp(FaultPlan::notification_loss(0.05), u64::MAX);
    let d = res.stats_digest();
    assert!(res.check_digest(d).is_ok());

    let err = res.check_digest(d ^ 1).unwrap_err();
    assert!(err.contains("stats_digest mismatch"), "report: {err}");
    assert!(!res.flight_log.is_empty(), "faulted run should record events");
    let (_, first_event) = &res.flight_log[0];
    assert!(
        err.contains(first_event.as_str()),
        "report should dump recorded events; got: {err}"
    );
}
