//! Multi-rack fabric tests: the demand-oblivious rotor serves every rack
//! pair, the hybrid semantics hold (EPS always on, circuits accelerate),
//! TDTCP exploits the circuits across many pairs, and runs are
//! deterministic.

use rdcn::{MultiRackConfig, MultiRackEmulator, PairFlow};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{Config, Connection, FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

fn all_pairs(n: usize) -> Vec<PairFlow> {
    let mut v = Vec::new();
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                v.push(PairFlow { src, dst });
            }
        }
    }
    v
}

fn cubic_ep(i: usize, bytes: u64) -> (Box<dyn Transport>, Box<dyn Transport>) {
    let cfg = Config {
        bytes_to_send: bytes,
        ..Config::default()
    };
    let cc = CcConfig::default();
    (
        Box::new(Connection::connect(
            FlowId(i as u32),
            cfg.clone(),
            Box::new(Cubic::new(cc)),
            SimTime::ZERO,
        )),
        Box::new(Connection::listen(FlowId(i as u32), cfg, Box::new(Cubic::new(cc)))),
    )
}

fn tdtcp_ep(i: usize, bytes: u64) -> (Box<dyn Transport>, Box<dyn Transport>) {
    let mut cfg = TdtcpConfig::default();
    cfg.tcp.bytes_to_send = bytes;
    let template = Cubic::new(CcConfig::default());
    (
        Box::new(TdtcpConnection::connect(
            FlowId(i as u32),
            cfg.clone(),
            &template,
            SimTime::ZERO,
        )),
        Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template)),
    )
}

#[test]
fn every_pair_makes_progress() {
    // 4 racks, a flow on every ordered pair: the rotor must serve all of
    // them (demand-oblivious full mesh) and the EPS keeps everyone moving
    // between circuit days.
    let mut cfg = MultiRackConfig::paper_8rack();
    cfg.racks = 4;
    let flows = all_pairs(4);
    let n = flows.len();
    let emu = MultiRackEmulator::new(cfg, flows, |i, _| cubic_ep(i, u64::MAX));
    let res = emu.run(SimTime::from_millis(10));
    assert_eq!(res.sender_stats.len(), n);
    for (i, s) in res.sender_stats.iter().enumerate() {
        assert!(s.bytes_acked > 0, "pair flow {i} starved");
    }
}

#[test]
fn finite_transfers_complete_cross_rack() {
    let mut cfg = MultiRackConfig::paper_8rack();
    cfg.racks = 4;
    let flows = vec![
        PairFlow { src: 0, dst: 1 },
        PairFlow { src: 2, dst: 3 },
        PairFlow { src: 3, dst: 0 },
    ];
    let emu = MultiRackEmulator::new(cfg, flows, |i, _| tdtcp_ep(i, 2_000_000));
    let res = emu.run(SimTime::from_millis(100));
    for (i, r) in res.receiver_stats.iter().enumerate() {
        assert_eq!(r.bytes_delivered, 2_000_000, "flow {i}");
    }
}

#[test]
fn circuits_accelerate_tdtcp_beyond_eps_share() {
    // One flow per rack as sender (8 racks, ring pattern): each rack's
    // EPS uplink gives the flow at most 10 Gbps; circuit days add 100G
    // bursts 1/7 of the time. TDTCP's total must exceed what the EPS
    // alone could have carried.
    let cfg = MultiRackConfig::paper_8rack();
    let flows: Vec<PairFlow> = (0..8)
        .map(|r| PairFlow {
            src: r,
            dst: (r + 1) % 8,
        })
        .collect();
    let horizon = SimTime::from_millis(15);
    let run = |tdtcp: bool| {
        let emu = MultiRackEmulator::new(cfg.clone(), flows.clone(), |i, _| {
            if tdtcp {
                tdtcp_ep(i, u64::MAX)
            } else {
                cubic_ep(i, u64::MAX)
            }
        });
        emu.run(horizon).total_acked() as f64
    };
    let tdtcp = run(true);
    let cubic = run(false);
    // EPS-only ceiling: 8 racks x 10 Gbps x 15 ms = 150 MB.
    let eps_ceiling = 8.0 * 10e9 / 8.0 * 0.015;
    assert!(
        tdtcp > eps_ceiling,
        "TDTCP {tdtcp:.0} must exceed the EPS-only ceiling {eps_ceiling:.0}"
    );
    assert!(
        tdtcp > cubic,
        "TDTCP {tdtcp:.0} should beat CUBIC {cubic:.0} on the full fabric"
    );
}

#[test]
fn eps_shared_fairly_across_destinations() {
    // One rack fans out to three others over its shared 10G EPS uplink:
    // round-robin service must keep all three moving.
    let mut cfg = MultiRackConfig::paper_8rack();
    cfg.racks = 4;
    let flows = vec![
        PairFlow { src: 0, dst: 1 },
        PairFlow { src: 0, dst: 2 },
        PairFlow { src: 0, dst: 3 },
    ];
    let emu = MultiRackEmulator::new(cfg, flows, |i, _| cubic_ep(i, u64::MAX));
    let res = emu.run(SimTime::from_millis(10));
    let acked: Vec<u64> = res.sender_stats.iter().map(|s| s.bytes_acked).collect();
    let max = *acked.iter().max().unwrap() as f64;
    let min = *acked.iter().min().unwrap() as f64;
    assert!(min > 0.0);
    assert!(
        max / min < 4.0,
        "round-robin EPS service keeps fan-out flows comparable: {acked:?}"
    );
}

#[test]
fn deterministic() {
    let run = || {
        let mut cfg = MultiRackConfig::paper_8rack();
        cfg.racks = 4;
        let emu = MultiRackEmulator::new(cfg, all_pairs(4), |i, _| tdtcp_ep(i, u64::MAX));
        let res = emu.run(SimTime::from_millis(5));
        (res.total_acked(), res.drops, res.events)
    };
    assert_eq!(run(), run());
}
