//! Golden-trace determinism: running any seeded experiment twice with the
//! same seed must produce byte-identical output. The whole reproduction
//! rests on this — figures are only comparable across variants and
//! machines if a (config, seed) pair fully determines the trace.
//!
//! The check digests *every* observable output of a run (time series
//! points, per-flow stats, per-day records, drop/mark counters, final
//! cwnds, completions, event counts) into one 64-bit FNV value via
//! [`rdcn::RunResult::stats_digest`], then compares digests across
//! repeated runs. Floats are compared by bit pattern — exact, not
//! approximate.

use bench::{Variant, Workload};
use rdcn::NetConfig;
use simcore::{SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, Segment, SeqNum, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use wire::TdnId;

fn run_once(variant: Variant, seed: u64) -> u64 {
    let wl = Workload {
        flows: 4,
        seed,
        sample_every: SimDuration::from_micros(10),
        ..Workload::bulk(variant, SimTime::from_millis(3))
    };
    wl.run(&NetConfig::paper_baseline()).stats_digest()
}

/// Same seed, same variant → identical digest, across several seeds and
/// the two headline variants.
#[test]
fn emulator_run_is_deterministic() {
    for variant in [Variant::Cubic, Variant::Tdtcp] {
        for seed in [1u64, 7, 0xDEAD_BEEF] {
            let a = run_once(variant, seed);
            let b = run_once(variant, seed);
            assert_eq!(
                a, b,
                "digest diverged: variant={variant:?} seed={seed:#x}"
            );
        }
    }
}

/// Sharded experiment runs are bit-identical to serial ones: mapping the
/// same (variant, seed) grid through `simcore::par::par_map` under any
/// job count reproduces exactly the digests of a plain serial loop. This
/// is the contract the parallel figures harness rests on — run seeds
/// live in the sharded items and results collect in submission order, so
/// worker scheduling can never leak into outputs.
#[test]
fn parallel_sweep_matches_serial_digests() {
    let grid: Vec<(Variant, u64)> = [Variant::Tdtcp, Variant::Cubic, Variant::ReTcp]
        .into_iter()
        .flat_map(|v| (0u64..8).map(move |seed| (v, seed)))
        .collect();
    let serial: Vec<u64> = grid.iter().map(|&(v, s)| run_once(v, s)).collect();
    for jobs in [1, 2, 4] {
        let sharded =
            simcore::par::par_map_jobs(jobs, grid.clone(), |_, (v, s)| run_once(v, s));
        assert_eq!(
            sharded, serial,
            "sharded digests diverged from serial at jobs={jobs}"
        );
    }
}

/// One tail-workload run's observable output, digested: the underlying
/// emulator digest (which now folds per-flow starts and the RTO-stall
/// counters) combined with the schedule digest and the folded FCT view.
fn run_tails_once(degree: usize, seed: u64) -> u64 {
    use bench::tails::{run_tails, Population, TailSpec};
    let mut spec = TailSpec::incast(Population::MixedTdtcpCubic, degree);
    spec.shorts = 12;
    spec.short_bytes = 40_000;
    spec.mean_gap = SimDuration::from_micros(200);
    spec.hotspot_frac = 0.2;
    spec.replication = 1;
    let mut net = NetConfig::paper_baseline();
    net.seed = seed;
    let out = run_tails(&spec, &net, SimTime::from_millis(10));
    let mut d = testkit::Digest::new();
    d.write_u64(out.run_digest).write_u64(out.schedule_digest);
    d.write_usize(out.started).write_usize(out.completed);
    d.write_u64(out.replica_wins);
    d.write_u64(out.rto_stalls).write_u64(out.stall_ns);
    for f in &out.fcts_ns {
        d.write_u64(*f);
    }
    for f in &out.censored_fcts_ns {
        d.write_u64(*f);
    }
    d.finish()
}

/// The tail-latency workload joins the determinism contract: the same
/// (degree, seed) cell reproduces bit-identically, and a sharded sweep
/// over the (degree, seed) grid matches the serial one at every job
/// count — the contract `figures tails` and its checked-in
/// `BENCH_tails.json` baseline rest on.
#[test]
fn tails_runs_are_deterministic_and_shard_invariant() {
    let grid: Vec<(usize, u64)> = [2usize, 4, 8]
        .into_iter()
        .flat_map(|d| (1u64..=3).map(move |seed| (d, seed)))
        .collect();
    let serial: Vec<u64> = grid.iter().map(|&(d, s)| run_tails_once(d, s)).collect();
    let again: Vec<u64> = grid.iter().map(|&(d, s)| run_tails_once(d, s)).collect();
    assert_eq!(serial, again, "tails digests must replay bit-identically");
    for jobs in [1, 2, 4] {
        let sharded =
            simcore::par::par_map_jobs(jobs, grid.clone(), |_, (d, s)| run_tails_once(d, s));
        assert_eq!(
            sharded, serial,
            "sharded tails digests diverged from serial at jobs={jobs}"
        );
    }
}

/// The inert-spec guarantee for the tail stream: a [`bench::tails`] spec
/// that schedules nothing draws nothing, so running it over a config is
/// bit-identical to a plain empty run of the same config (the tail
/// stream is forked, never advanced).
#[test]
fn inert_tails_spec_leaves_clean_digest_unchanged() {
    use bench::tails::{run_tails, Population, TailSpec};
    let spec = TailSpec::inert(Population::Uniform(Variant::Cubic));
    let horizon = SimTime::from_millis(2);
    let a = run_tails(&spec, &NetConfig::paper_baseline(), horizon);
    let b = run_tails(&spec, &NetConfig::paper_baseline(), horizon);
    assert_eq!(a.run_digest, b.run_digest, "inert runs must replay");
    assert_eq!(a.started, 0);
    assert_eq!(a.rto_stalls, 0);
}

/// The digest actually has discriminating power: different seeds (which
/// perturb flow start jitter and the notification model) or different
/// variants must not collide on these workloads.
#[test]
fn digest_distinguishes_runs() {
    let base = run_once(Variant::Tdtcp, 1);
    assert_ne!(base, run_once(Variant::Tdtcp, 2), "seed must matter");
    assert_ne!(base, run_once(Variant::Cubic, 1), "variant must matter");
}

/// All remaining variants double-run clean too (one seed each — the
/// point is coverage of every code path, not seed breadth).
#[test]
fn all_variants_are_deterministic() {
    for variant in [
        Variant::Dctcp,
        Variant::Reno,
        Variant::ReTcp,
        Variant::ReTcpDyn,
        Variant::Mptcp,
    ] {
        assert_eq!(
            run_once(variant, 3),
            run_once(variant, 3),
            "digest diverged: variant={variant:?}"
        );
    }
}

fn run_faulted(variant: Variant, seed: u64, faults: rdcn::FaultPlan) -> u64 {
    let mut net = NetConfig::paper_baseline();
    net.faults = faults;
    let wl = Workload {
        flows: 4,
        seed,
        sample_every: SimDuration::from_micros(10),
        ..Workload::bulk(variant, SimTime::from_millis(3))
    };
    wl.run(&net).stats_digest()
}

/// Fault injection is part of the determinism contract: the same
/// (seed, plan) pair reproduces a bit-identical digest, and the faulted
/// digest differs from the clean run's (the plan actually did
/// something, and the digest covers the fault log).
#[test]
fn faulted_runs_are_deterministic() {
    let plan = rdcn::FaultPlan::notification_loss(0.05);
    let a = run_faulted(Variant::Tdtcp, 1, plan.clone());
    let b = run_faulted(Variant::Tdtcp, 1, plan);
    assert_eq!(a, b, "notification-loss run must replay bit-identically");
    assert_ne!(
        a,
        run_once(Variant::Tdtcp, 1),
        "a lossy plan must perturb the digest"
    );
}

/// Same contract for a structural fault: a mid-day circuit failure with
/// a multi-day outage replays bit-identically and diverges from clean.
#[test]
fn link_failure_runs_are_deterministic() {
    let plan = rdcn::FaultPlan {
        link_failure: Some(rdcn::LinkFailure {
            day: 4,
            at_fraction: 0.5,
            outage_days: 12,
        }),
        ..rdcn::FaultPlan::default()
    };
    let a = run_faulted(Variant::Tdtcp, 7, plan.clone());
    let b = run_faulted(Variant::Tdtcp, 7, plan);
    assert_eq!(a, b, "link-failure run must replay bit-identically");
    assert_ne!(
        a,
        run_once(Variant::Tdtcp, 7),
        "a circuit outage must perturb the digest"
    );
}

fn run_impaired(variant: Variant, seed: u64, impair: rdcn::ImpairPlan) -> u64 {
    let mut net = NetConfig::paper_baseline();
    net.impair = impair;
    let wl = Workload {
        flows: 4,
        seed,
        sample_every: SimDuration::from_micros(10),
        ..Workload::bulk(variant, SimTime::from_millis(3))
    };
    wl.run(&net).stats_digest()
}

fn busy_impair_plan() -> rdcn::ImpairPlan {
    rdcn::ImpairPlan {
        loss_rate: 0.01,
        reorder_rate: 0.05,
        reorder_delay: SimDuration::from_micros(150),
        duplicate_rate: 0.01,
        corrupt_rate: 0.002,
    }
}

/// Data-path impairment joins the determinism contract: the same
/// (seed, plan) pair reproduces a bit-identical digest across multiple
/// seeds and both headline variants, and every impaired digest diverges
/// from its clean twin (the digest covers the impairment log).
#[test]
fn impaired_runs_are_deterministic() {
    for variant in [Variant::Tdtcp, Variant::Cubic] {
        for seed in [1u64, 0xBADC_AB1E] {
            let a = run_impaired(variant, seed, busy_impair_plan());
            let b = run_impaired(variant, seed, busy_impair_plan());
            assert_eq!(
                a, b,
                "impaired digest diverged: variant={variant:?} seed={seed:#x}"
            );
            assert_ne!(
                a,
                run_once(variant, seed),
                "an armed plan must perturb the digest: variant={variant:?}"
            );
        }
    }
}

/// The inert-plan guarantee: constructing (but not arming) an
/// [`rdcn::ImpairPlan`] makes zero RNG draws, so the clean digest is
/// untouched — attaching `ImpairPlan::none()` explicitly is
/// bit-identical to the baseline default.
#[test]
fn inert_impair_plan_leaves_clean_digest_unchanged() {
    for variant in [Variant::Tdtcp, Variant::Cubic] {
        assert_eq!(
            run_impaired(variant, 1, rdcn::ImpairPlan::none()),
            run_once(variant, 1),
            "inert plan perturbed the clean digest: variant={variant:?}"
        );
    }
}

fn run_skewed(variant: Variant, seed: u64, clock: rdcn::ClockPlan) -> u64 {
    let mut net = NetConfig::paper_baseline();
    net.clock = clock;
    let wl = Workload {
        flows: 4,
        seed,
        sample_every: SimDuration::from_micros(10),
        ..Workload::bulk(variant, SimTime::from_millis(3))
    };
    wl.run(&net).stats_digest()
}

/// A plan that exercises every time-plane mechanism at once: per-host
/// offsets past the guard band, drift, read jitter, and periodic
/// resyncs.
fn busy_clock_plan() -> rdcn::ClockPlan {
    rdcn::ClockPlan {
        offset_bound: SimDuration::from_micros(120),
        drift_ppm: 200.0,
        jitter: SimDuration::from_nanos(500),
        resync_interval: SimDuration::from_millis(1),
        resync_error: SimDuration::from_micros(2),
        ..rdcn::ClockPlan::default()
    }
}

/// Time-plane chaos joins the determinism contract: the same
/// (seed, plan) pair reproduces a bit-identical digest across seeds and
/// both headline variants, and every skewed digest diverges from its
/// clean twin (the digest covers the clock log and counters).
#[test]
fn skewed_runs_are_deterministic() {
    for variant in [Variant::Tdtcp, Variant::Cubic] {
        for seed in [1u64, 0xC10C] {
            let a = run_skewed(variant, seed, busy_clock_plan());
            let b = run_skewed(variant, seed, busy_clock_plan());
            assert_eq!(
                a, b,
                "skewed digest diverged: variant={variant:?} seed={seed:#x}"
            );
            assert_ne!(
                a,
                run_once(variant, seed),
                "an armed clock plan must perturb the digest: variant={variant:?}"
            );
        }
    }
}

/// The inert-plan guarantee for the time plane: attaching
/// `ClockPlan::none()` explicitly makes zero draws from the clock
/// stream, so the digest is bit-identical to the baseline default.
#[test]
fn inert_clock_plan_leaves_clean_digest_unchanged() {
    for variant in [Variant::Tdtcp, Variant::Cubic] {
        assert_eq!(
            run_skewed(variant, 1, rdcn::ClockPlan::none()),
            run_once(variant, 1),
            "inert clock plan perturbed the clean digest: variant={variant:?}"
        );
    }
}

/// PR 9's intra-run parallelism contract: a chaotic multirack run —
/// notification faults, data-path impairments, and clock skew all armed
/// at once — produces **bit-identical** results under the sharded
/// engine at workers 1, 2 and 4. The digest folds every stats counter,
/// the FCT multiset, and the per-rack fault/impair/clock log digests in
/// fixed rack order, so any worker-count-dependent reordering anywhere
/// in the engine would surface here.
#[test]
fn sharded_chaos_run_is_worker_count_invariant() {
    fn chaotic_cfg() -> rdcn::ShardConfig {
        let net = rdcn::MultiRackConfig {
            racks: 8,
            ..rdcn::MultiRackConfig::paper_8rack()
        };
        rdcn::ShardConfig {
            faults: rdcn::FaultPlan::notification_loss(0.05),
            impair: busy_impair_plan(),
            clock: busy_clock_plan(),
            guard_band: SimDuration::from_micros(1),
            ..rdcn::ShardConfig::clean(net)
        }
    }
    let flows: Vec<rdcn::PairFlow> = (0..8)
        .map(|r| rdcn::PairFlow {
            src: r,
            dst: (r + 1) % 8,
        })
        .collect();
    let run = |workers: usize| {
        rdcn::ShardedEmulator::new(chaotic_cfg(), flows.clone(), |i, _| {
            let cfg = TdtcpConfig::default();
            let template = Cubic::new(CcConfig::default());
            (
                Box::new(TdtcpConnection::connect(
                    FlowId(i as u32),
                    cfg.clone(),
                    &template,
                    SimTime::ZERO,
                )) as Box<dyn Transport + Send>,
                Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template))
                    as Box<dyn Transport + Send>,
            )
        })
        .run(SimTime::from_millis(4), workers)
    };
    let base = run(1);
    assert!(base.faults_total > 0, "fault plane never fired");
    assert!(base.impairments_total > 0, "impair plane never fired");
    assert!(base.clock_total > 0, "clock plane never fired");
    for workers in [2usize, 4] {
        let other = run(workers);
        assert_eq!(
            base.stats_digest(),
            other.stats_digest(),
            "sharded chaos digest diverged between workers=1 and workers={workers}"
        );
        assert_eq!(base.events, other.events, "event count drifted at workers={workers}");
    }
}

/// Skewed runs shard like clean ones: mapping a (variant, seed) grid
/// through `par_map_jobs` under any job count reproduces the serial
/// digests exactly — per-host clock state lives inside each run, so
/// worker scheduling can never leak into the time plane.
#[test]
fn skewed_sweep_matches_serial_digests() {
    let grid: Vec<(Variant, u64)> = [Variant::Tdtcp, Variant::Cubic]
        .into_iter()
        .flat_map(|v| (0u64..4).map(move |seed| (v, seed)))
        .collect();
    let serial: Vec<u64> = grid
        .iter()
        .map(|&(v, s)| run_skewed(v, s, busy_clock_plan()))
        .collect();
    for jobs in [1, 2, 4] {
        let sharded = simcore::par::par_map_jobs(jobs, grid.clone(), |_, (v, s)| {
            run_skewed(v, s, busy_clock_plan())
        });
        assert_eq!(
            sharded, serial,
            "sharded skewed digests diverged from serial at jobs={jobs}"
        );
    }
}

/// Per-connection half of the guarantee: a scripted TDTCP connection
/// driven twice through the same notification/ACK/timer sequence lands
/// on identical stats digests at every step (not just at the end).
#[test]
fn tdtcp_connection_replay_is_deterministic() {
    let digests_a = drive_scripted_connection();
    let digests_b = drive_scripted_connection();
    assert_eq!(digests_a.len(), digests_b.len());
    for (i, (a, b)) in digests_a.iter().zip(&digests_b).enumerate() {
        assert_eq!(a, b, "stats digest diverged at step {i}");
    }
}

fn drive_scripted_connection() -> Vec<u64> {
    const MSS: u32 = 1000;
    let mut cfg = TdtcpConfig::default();
    cfg.tcp.mss = MSS;
    let cubic = Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    });
    let mut conn = TdtcpConnection::connect(FlowId(1), cfg, &cubic, SimTime::ZERO);
    let mut synack = Segment::new(FlowId(1), tcp::Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.seq = SeqNum(0);
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 22;
    synack.td_capable = Some(2);
    conn.handle_segment(SimTime::from_micros(100), &synack);
    assert!(conn.is_established());

    let mut digests = Vec::new();
    let mut now_us = 200u64;
    for step in 0..200u32 {
        now_us += 41;
        let now = SimTime::from_micros(now_us);
        match step % 5 {
            0 | 3 => {
                while conn.poll_transmit(now).is_some() {}
            }
            1 => conn.on_notification(now, TdnId((step / 5 % 2) as u8)),
            2 => {
                let mut ack = Segment::new(FlowId(1), tcp::Direction::AckPath);
                ack.flags.ack = true;
                ack.ack = SeqNum(1) + (step / 5) * MSS;
                ack.wnd = 1 << 22;
                ack.ack_tdn = Some(TdnId((step / 5 % 2) as u8));
                conn.handle_segment(now, &ack);
            }
            _ => {
                if let Some(t) = conn.next_timer_at() {
                    let fire = t.as_micros().max(now_us) + 1;
                    now_us = fire;
                    conn.handle_timer(SimTime::from_micros(fire));
                }
            }
        }
        digests.push(conn.stats().digest());
    }
    digests
}
