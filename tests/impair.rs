//! Data-path impairment acceptance: under 1% segment loss plus 0.1%
//! payload corruption plus delay-based reordering, TDTCP must bend, not
//! break — every flow completes or surfaces an explicit `ConnError`, the
//! end-to-end checksum catches every corrupted segment, and steady-state
//! goodput stays within 30% of the clean run. Also covers the EPS-burst
//! corruption path: damaged segments are *delivered* and discarded at
//! the receiver (`corrupt_rx`), not silently dropped in the fabric.

use bench::workload::steady_goodput_gbps;
use bench::{Variant, Workload};
use rdcn::{EpsBurst, FaultPlan, ImpairPlan, NetConfig, RunResult};
use simcore::{SimDuration, SimTime};

const HORIZON: SimTime = SimTime::from_millis(20);
const WARMUP: SimTime = SimTime::from_millis(4);

fn headline_plan() -> ImpairPlan {
    ImpairPlan {
        loss_rate: 0.01,
        reorder_rate: 0.05,
        reorder_delay: SimDuration::from_micros(150),
        corrupt_rate: 0.001,
        ..ImpairPlan::default()
    }
}

fn run_tdtcp(impair: ImpairPlan, bytes_per_flow: u64) -> RunResult {
    let mut net = NetConfig::paper_baseline();
    net.impair = impair;
    let wl = Workload {
        flows: 8,
        bytes_per_flow,
        ..Workload::bulk(Variant::Tdtcp, HORIZON)
    };
    wl.run(&net)
}

/// The headline acceptance criterion for the data-path chaos layer.
#[test]
fn one_percent_loss_with_corruption_degrades_gracefully() {
    // Goodput: long-lived bulk flows, measured past warmup.
    let clean = run_tdtcp(ImpairPlan::none(), u64::MAX);
    let rough = run_tdtcp(headline_plan(), u64::MAX);
    let gc = steady_goodput_gbps(&clean, WARMUP, HORIZON);
    let gr = steady_goodput_gbps(&rough, WARMUP, HORIZON);
    assert!(gc > 0.0, "clean run must move bytes");
    assert!(
        gr >= 0.7 * gc,
        "goodput fell to {:.1}% of clean ({gr:.3} vs {gc:.3} Gbps)",
        100.0 * gr / gc
    );

    // Survival: a fixed-size transfer per flow — every flow terminates,
    // and a terminated flow either delivered everything or says why not.
    let finite = run_tdtcp(headline_plan(), 400_000);
    for (i, c) in finite.completions.iter().enumerate() {
        assert!(
            c.is_some(),
            "flow {i} silently stalled under the headline impairments"
        );
        if finite.conn_errors[i].is_none() {
            assert_eq!(
                finite.receiver_stats[i].bytes_delivered, 400_000,
                "flow {i} completed short"
            );
        }
    }

    // The machinery demonstrably engaged, and damage was detected.
    assert!(rough.impairments.segs_dropped > 0, "plan should drop");
    assert!(rough.impairments.segs_reordered > 0, "plan should reorder");
    assert!(rough.impairments.segs_corrupted > 0, "plan should corrupt");
    let corrupt_rx: u64 = rough
        .sender_stats
        .iter()
        .chain(&rough.receiver_stats)
        .map(|s| s.corrupt_rx)
        .sum();
    assert!(corrupt_rx > 0, "receivers must detect corrupted payloads");
    assert!(
        corrupt_rx <= rough.impairments.segs_corrupted,
        "cannot discard more than was corrupted"
    );

    // The clean run pays nothing for the machinery.
    assert_eq!(clean.impairments.total(), 0);
    let clean_corrupt: u64 = clean
        .sender_stats
        .iter()
        .chain(&clean.receiver_stats)
        .map(|s| s.corrupt_rx)
        .sum();
    assert_eq!(clean_corrupt, 0);
}

/// Satellite 1 regression: an EPS fault burst's corrupted *data*
/// segments no longer vanish like drops — they are delivered and the
/// receiving endpoint detects and discards them, counted in
/// `corrupt_rx` separately from drops.
#[test]
fn eps_burst_corruption_is_detected_at_receivers() {
    let mut net = NetConfig::paper_baseline();
    net.faults = FaultPlan {
        eps_burst: Some(EpsBurst {
            start: SimTime::from_millis(1),
            len: SimDuration::from_millis(4),
            drop_rate: 0.0,
            corrupt_rate: 0.02,
        }),
        ..FaultPlan::default()
    };
    let wl = Workload {
        flows: 8,
        ..Workload::bulk(Variant::Tdtcp, HORIZON)
    };
    let res = wl.run(&net);
    assert!(res.faults.eps_corruptions > 0, "burst should corrupt");
    let corrupt_rx: u64 = res
        .sender_stats
        .iter()
        .chain(&res.receiver_stats)
        .map(|s| s.corrupt_rx)
        .sum();
    assert!(
        corrupt_rx > 0,
        "corrupted segments must reach endpoints and be discarded there \
         ({} corruptions injected, none detected)",
        res.faults.eps_corruptions
    );
    assert!(
        corrupt_rx <= res.faults.eps_corruptions,
        "detected {corrupt_rx} > injected {}",
        res.faults.eps_corruptions
    );
    assert!(res.total_acked() > 0, "flows survive the burst");
}

/// Impairments apply on both planes: with all traffic riding the
/// schedule across circuit days and EPS nights, an armed plan must
/// record wire impairments and the digest must cover them — two
/// identical runs agree, clean vs impaired disagree.
#[test]
fn impairments_fold_into_stats_digest() {
    let a = run_tdtcp(headline_plan(), u64::MAX);
    let b = run_tdtcp(headline_plan(), u64::MAX);
    assert_eq!(a.stats_digest(), b.stats_digest());
    assert_eq!(a.impair_log_digest, b.impair_log_digest);
    let clean = run_tdtcp(ImpairPlan::none(), u64::MAX);
    assert_ne!(
        a.stats_digest(),
        clean.stats_digest(),
        "an armed plan must perturb the digest"
    );
}
