//! Randomized chaos soak: seed → random `(FaultPlan, ImpairPlan,
//! workload, variant)` scenario → emulator run → transport invariant
//! oracle ([`bench::chaos::check_invariants`]).
//!
//! The generators emit flat scalar tuples (the shrink-friendly idiom:
//! mapped generators do not shrink, so the [`ChaosSpec`] is assembled
//! inside the property body). Failures shrink to a minimal spec and
//! persist a replayable case seed under `tests/tk-regressions/`.
//!
//! Case counts are `TK_CASES`-bounded: `scripts/ci.sh` runs the normal
//! gate at 200 and `scripts/ci.sh soak` at 5000; the in-file defaults
//! keep a bare `cargo test` fast.

use bench::chaos::{check_invariants, ChaosSpec};
use testkit::prop::{any_bool, range, tuple3, tuple4, Config};
use testkit::{tk_assert, tk_assert_eq};

/// Raw scenario scalars: `(seed, variant_idx, flows_idx, bytes_kb)`,
/// `(loss_pm, reorder_pm, reorder_delay_us, dup_pm)`,
/// `(corrupt_pm, notify_loss_pm, eps_burst)`,
/// `(clock_offset_us, clock_drift_ppm, slot_edge_idx, clock_resync)`.
type RawSpec = (
    (u64, u8, u8, u32),
    (u32, u32, u32, u32),
    (u32, u32, bool),
    (u32, u32, u8, bool),
);

/// Scenario generator. Rates are bounded so that every scenario can
/// honestly terminate inside [`bench::chaos::CHAOS_HORIZON`]: loss ≤
/// 2.5%, reordering ≤ 15% with sub-ms extra delay, duplication ≤ 2%,
/// corruption ≤ 1%, notification loss ≤ 5%. Clock skew is bounded by
/// [`ChaosSpec::clock_plan`]'s own caps (guard-band offsets without
/// resync, one-interval over-guard excursions with it); the generator
/// ranges deliberately overshoot the caps so the capping path is
/// exercised too.
fn raw_spec() -> testkit::prop::Gen<RawSpec> {
    tuple4(
        tuple4(
            range(0u64..1_000_000), // seed
            range(0u8..3),          // variant_idx
            range(0u8..3),          // flows_idx
            range(0u32..256),       // bytes_kb on top of 16 kB
        ),
        tuple4(
            range(0u32..26),   // loss_pm
            range(0u32..151),  // reorder_pm
            range(1u32..301),  // reorder_delay_us
            range(0u32..21),   // dup_pm
        ),
        tuple3(
            range(0u32..11), // corrupt_pm
            range(0u32..51), // notify_loss_pm
            any_bool(),      // eps_burst
        ),
        tuple4(
            range(0u32..161), // clock_offset_us (capped at 85/150)
            range(0u32..81),  // clock_drift_ppm (capped at 60)
            range(0u8..3),    // slot_edge_idx
            any_bool(),       // clock_resync
        ),
    )
}

fn spec_from(raw: &RawSpec) -> ChaosSpec {
    let (
        (seed, variant_idx, flows_idx, bytes_kb),
        (loss_pm, reorder_pm, reorder_delay_us, dup_pm),
        (corrupt_pm, notify_loss_pm, eps_burst),
        (clock_offset_us, clock_drift_ppm, slot_edge_idx, clock_resync),
    ) = *raw;
    ChaosSpec {
        seed,
        variant_idx,
        flows_idx,
        bytes_kb,
        loss_pm,
        reorder_pm,
        reorder_delay_us,
        dup_pm,
        corrupt_pm,
        notify_loss_pm,
        eps_burst,
        clock_offset_us,
        clock_drift_ppm,
        slot_edge_idx,
        clock_resync,
    }
}

/// The soak itself: every random scenario must satisfy the transport
/// invariant oracle — exactly-once in-order delivery with end-to-end
/// checksum, byte conservation, no silent stall, stats sanity.
///
/// Scenarios are independent (each is a pure function of its case seed),
/// so the soak shards them across worker threads via
/// [`testkit::prop::check_sharded`]. Case seeds, shrink behaviour, and
/// the regression-seed file are identical to the serial `props!` path;
/// `TK_JOBS=1` forces serial execution for debugging.
#[test]
fn chaos_soak() {
    let cfg = Config {
        cases: 48,
        ..Config::default()
    };
    testkit::prop::check_sharded(
        "chaos::chaos_soak",
        env!("CARGO_MANIFEST_DIR"),
        cfg,
        testkit::prop::default_jobs(),
        raw_spec,
        |raw| {
            let spec = spec_from(raw);
            let res = spec.run();
            if let Err(e) = check_invariants(&spec, &res) {
                return Err(format!("{e}\n  spec: {spec:?}"));
            }
            Ok(())
        },
    );
}

testkit::props! {
    // Clean subset: with every rate forced to zero the scenario is a
    // plain run — all flows complete without error and the injectors
    // never fire (the inert-plan guarantee end to end).
    #[cases(12)]
    fn chaos_clean_baseline(raw in raw_spec()) {
        let ((seed, variant_idx, flows_idx, bytes_kb), _, _, _) = raw;
        let spec = ChaosSpec {
            seed,
            variant_idx,
            flows_idx,
            bytes_kb,
            loss_pm: 0,
            reorder_pm: 0,
            reorder_delay_us: 50,
            dup_pm: 0,
            corrupt_pm: 0,
            notify_loss_pm: 0,
            eps_burst: false,
            clock_offset_us: 0,
            clock_drift_ppm: 0,
            slot_edge_idx: 0,
            clock_resync: false,
        };
        let res = spec.run();
        check_invariants(&spec, &res)?;
        tk_assert_eq!(res.impairments.total(), 0);
        tk_assert_eq!(res.faults.total(), 0);
        tk_assert_eq!(res.clock.total(), 0);
        for (i, c) in res.completions.iter().enumerate() {
            tk_assert!(c.is_some(), "clean flow {i} did not complete");
            tk_assert!(res.conn_errors[i].is_none(), "clean flow {i} errored");
        }
    }

    // A chaos run is a pure function of its spec: running the same
    // scenario twice produces bit-identical stats digests (the forked
    // fault/impair streams replay exactly).
    #[cases(8)]
    fn chaos_run_is_deterministic(raw in raw_spec()) {
        let spec = spec_from(&raw);
        let a = spec.run();
        let b = spec.run();
        tk_assert_eq!(a.stats_digest(), b.stats_digest());
        tk_assert_eq!(a.impair_log_digest, b.impair_log_digest);
        tk_assert_eq!(a.clock_log_digest, b.clock_log_digest);
        tk_assert_eq!(a.impairments, b.impairments);
        tk_assert_eq!(a.clock, b.clock);
        tk_assert_eq!(a.conn_errors, b.conn_errors);
    }
}

/// A property that fails whenever the scenario applies any impairment —
/// guaranteed to trip within a few dozen random chaos scenarios.
fn seeded_violation(raw: &RawSpec) -> Result<(), String> {
    let spec = spec_from(raw);
    let res = spec.run();
    check_invariants(&spec, &res)?;
    if res.impairments.total() > 0 {
        return Err(format!(
            "seeded violation: {} impairments applied",
            res.impairments.total()
        ));
    }
    Ok(())
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload should be a message")
}

fn case_seed_of(msg: &str) -> &str {
    let line = msg
        .lines()
        .find(|l| l.contains("case seed: 0x"))
        .expect("no repro seed printed");
    let hex = &line[line.find("0x").unwrap()..];
    hex.split_whitespace().next().unwrap()
}

/// The sharded checker's failure path is bit-compatible with the serial
/// one: under any job count it reports the same first failing case seed,
/// the same shrunk input, and persists the same regression seed, because
/// workers only race to *find* failing indices — the lowest one is then
/// re-run through the serial shrink path.
#[test]
fn chaos_sharded_failure_matches_serial() {
    let cfg = Config {
        cases: 50,
        max_shrink_iters: 150,
        ..Config::default()
    };
    let serial = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        testkit::prop::check(
            "chaos_sharded_violation_serial",
            env!("CARGO_TARGET_TMPDIR"),
            cfg.clone(),
            &raw_spec(),
            seeded_violation,
        );
    }))
    .expect_err("the seeded violation must be caught serially");
    let serial_msg = panic_message(serial);

    for jobs in [1, 4] {
        let sharded = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            testkit::prop::check_sharded(
                &format!("chaos_sharded_violation_j{jobs}"),
                env!("CARGO_TARGET_TMPDIR"),
                cfg.clone(),
                jobs,
                raw_spec,
                seeded_violation,
            );
        }))
        .expect_err("the seeded violation must be caught sharded");
        let msg = panic_message(sharded);
        assert_eq!(
            case_seed_of(&msg),
            case_seed_of(&serial_msg),
            "jobs={jobs} reported a different failing case than serial"
        );
        assert!(msg.contains("minimal input"), "no shrunk input: {msg}");
    }
}

/// The harness catches a deliberately seeded violation, shrinks it, and
/// prints a replayable case seed — the failure path the soak relies on.
/// The regression-seed file for this intentionally failing property goes
/// to the target tmpdir, not the repo.
#[test]
fn chaos_seeded_violation_is_caught_and_shrunk() {
    let gen = raw_spec();
    let cfg = Config {
        cases: 50,
        max_shrink_iters: 150,
        ..Config::default()
    };
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        testkit::prop::check(
            "chaos_seeded_violation",
            env!("CARGO_TARGET_TMPDIR"),
            cfg,
            &gen,
            |raw| {
                let spec = spec_from(raw);
                let res = spec.run();
                check_invariants(&spec, &res)?;
                // The seeded violation: pretend impairments are illegal.
                if res.impairments.total() > 0 {
                    return Err(format!(
                        "seeded violation: {} impairments applied",
                        res.impairments.total()
                    ));
                }
                Ok(())
            },
        );
    }));
    let payload = outcome.expect_err("the seeded violation must be caught");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload should be a message");
    assert!(msg.contains("case seed: 0x"), "no repro seed printed: {msg}");
    assert!(msg.contains("minimal input"), "no shrunk input printed: {msg}");
    assert!(msg.contains("seeded violation"), "wrong failure: {msg}");
}
