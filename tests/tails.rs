//! Acceptance + property suite for the tail-latency workload family
//! (`bench::tails`).
//!
//! Covers the four behavioural claims the suite exists to pin, plus the
//! determinism contract of the generator and the exactness of the
//! percentile oracle:
//!
//! * the FCT percentile oracle is *exact*: quickselect answers equal the
//!   naive full-sort reference at every permille rank (unit runs and
//!   random multisets under `props!`);
//! * the workload generator is a pure function of `(seed, spec)`, and an
//!   inert spec makes **zero** draws from the forked tail stream;
//! * CUBIC's censored p99 FCT is strictly monotone in incast fan-in
//!   (pooled across seeds — the T-RACKs collapse curve);
//! * TDTCP's tail stays within a pinned bound of its clean twin under 1%
//!   random loss;
//! * RepNet-style replication strictly improves p99 at fan-in 16, with
//!   observed first-finisher wins by non-primary replicas.
//!
//! All runs are deterministic, so the numeric bounds here are regression
//! pins, not statistical hopes.

use bench::tails::{
    generate, run_tails, FctOracle, Population, TailSpec, TAIL_STREAM_LABEL,
};
use bench::Variant;
use rdcn::NetConfig;
use simcore::{DetRng, SimDuration, SimTime};
use testkit::prop::{range, tuple2, tuple3, tuple4, vec_of};
use testkit::{tk_assert, tk_assert_eq};

// ---------------------------------------------------------------------------
// Oracle exactness
// ---------------------------------------------------------------------------

/// On a real (small) workload run, the quickselect oracle agrees with
/// the naive full-sort reference at every permille rank — p999 included.
#[test]
fn oracle_matches_naive_sort_on_a_real_run() {
    let spec = TailSpec::poisson(
        Population::Uniform(Variant::Cubic),
        32,
        50_000,
        SimDuration::from_micros(300),
        2,
    );
    let out = run_tails(&spec, &NetConfig::paper_baseline(), SimTime::from_millis(30));
    assert!(out.completed > 0, "probe workload must complete flows");
    let mut oracle = out.oracle();
    for permille in 0..=1000u32 {
        assert_eq!(
            oracle.percentile_permille(permille),
            FctOracle::naive_percentile_permille(&out.fcts_ns, permille),
            "oracle diverged from naive sort at permille {permille}"
        );
    }
}

testkit::props! {
    // The oracle is exact on arbitrary multisets (duplicates, zeros,
    // extremes) at an arbitrary rank.
    #[cases(128)]
    fn oracle_matches_naive_selection(
        (samples, permille) in tuple2(
            vec_of(range(0u64..1_000_000), 0..48),
            range(0u32..1001),
        )
    ) {
        let mut oracle = FctOracle::new(samples.clone());
        tk_assert_eq!(
            oracle.percentile_permille(permille),
            FctOracle::naive_percentile_permille(&samples, permille)
        );
    }

    // The generator is a pure function of (seed, spec): regenerating
    // under the same seed reproduces the schedule digest exactly, and a
    // different seed moves it whenever the spec actually draws (shorts
    // with a nonzero mean gap).
    #[cases(48)]
    fn generator_is_deterministic(
        ((seed, shorts, degree, gap_us), other_seed) in tuple2(
            tuple4(
                range(0u64..1_000_000),
                range(0usize..24),
                range(0usize..12),
                range(1u32..500),
            ),
            range(1_000_000u64..2_000_000),
        )
    ) {
        let mut spec = TailSpec::incast(Population::MixedTdtcpCubic, degree);
        spec.shorts = shorts;
        spec.short_bytes = 40_000;
        spec.mean_gap = SimDuration::from_micros(u64::from(gap_us));
        spec.hotspot_frac = 0.25;
        let d1 = generate(&spec, &mut DetRng::new(seed).fork(TAIL_STREAM_LABEL)).digest();
        let d2 = generate(&spec, &mut DetRng::new(seed).fork(TAIL_STREAM_LABEL)).digest();
        tk_assert_eq!(d1, d2, "same (seed, spec) must reproduce the schedule");
        if shorts > 0 {
            // Seed sensitivity needs pure Poisson arrivals: the hotspot
            // coin can legally collapse *every* short onto the shared
            // burst epoch under both seeds (found by this property's
            // shrinker — the persisted case replays it), making two
            // seeds' schedules identical.
            let mut poisson_only = spec.clone();
            poisson_only.hotspot_frac = 0.0;
            let d3 = generate(&poisson_only, &mut DetRng::new(seed).fork(TAIL_STREAM_LABEL))
                .digest();
            let d4 = generate(&poisson_only, &mut DetRng::new(other_seed).fork(TAIL_STREAM_LABEL))
                .digest();
            tk_assert!(d3 != d4, "a drawing spec must be seed-sensitive");
        }
    }

    // The zero-draw guarantee: any spec without Poisson shorts or
    // hotspot skew — incast included — never touches the tail stream,
    // so the stream is left indistinguishable from a fresh fork.
    #[cases(32)]
    fn incast_only_specs_draw_nothing(
        (seed, degree, rounds) in tuple3(
            range(0u64..1_000_000),
            range(0usize..33),
            range(0usize..5),
        )
    ) {
        let mut spec = TailSpec::incast(Population::Uniform(Variant::Tdtcp), degree);
        spec.incast_rounds = rounds;
        let mut rng = DetRng::new(seed).fork(TAIL_STREAM_LABEL);
        let schedule = generate(&spec, &mut rng);
        tk_assert_eq!(schedule.groups, degree * rounds);
        let mut fresh = DetRng::new(seed).fork(TAIL_STREAM_LABEL);
        for _ in 0..4 {
            tk_assert_eq!(
                rng.gen_range(0..u64::MAX),
                fresh.gen_range(0..u64::MAX),
                "incast-only generation consumed RNG draws"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Tail behaviour pins
// ---------------------------------------------------------------------------

/// Censored p99 FCT at `degree`, pooled across seeds 1..=4 (pooling
/// smooths the per-run RTO-backoff lottery; censoring keeps flows that
/// never finish inside the horizon in the tail instead of silently
/// dropping them — survivorship bias would otherwise *lower* p99 under
/// deep collapse).
fn pooled_censored_p99(variant: Variant, degree: usize, bytes: u64) -> u64 {
    let mut samples = Vec::new();
    for seed in 1u64..=4 {
        let mut spec = TailSpec::incast(Population::Uniform(variant), degree);
        spec.incast_bytes = bytes;
        let mut net = NetConfig::paper_baseline();
        net.seed = seed;
        let out = run_tails(&spec, &net, SimTime::from_millis(60));
        samples.extend_from_slice(&out.censored_fcts_ns);
    }
    FctOracle::new(samples)
        .p99()
        .expect("pooled incast runs produced no started flows")
}

/// The T-RACKs collapse curve: CUBIC's censored p99 FCT rises strictly
/// with incast fan-in. 20 kB senders keep degree 2 under the 16-packet
/// VOQ's overflow point, so the sweep spans "no collapse" to "deep
/// collapse" instead of starting saturated.
#[test]
fn cubic_p99_is_monotone_in_incast_degree() {
    let p99s: Vec<u64> = [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&d| pooled_censored_p99(Variant::Cubic, d, 20_000))
        .collect();
    for w in p99s.windows(2) {
        assert!(
            w[1] > w[0],
            "censored p99 must rise strictly with fan-in, got {p99s:?}"
        );
    }
}

/// TDTCP's tail under 1% random segment loss stays within a pinned 3x of
/// its clean twin (observed ~2.3x): loss costs retransmissions, not
/// unbounded RTO chains.
#[test]
fn tdtcp_p99_bounded_under_one_percent_loss() {
    let mut spec = TailSpec::incast(Population::Uniform(Variant::Tdtcp), 8);
    spec.incast_bytes = 20_000;
    let horizon = SimTime::from_millis(60);
    let clean = run_tails(&spec, &NetConfig::paper_baseline(), horizon);
    let mut net = NetConfig::paper_baseline();
    net.impair = rdcn::ImpairPlan::loss(0.01);
    let lossy = run_tails(&spec, &net, horizon);
    assert_eq!(clean.completed, clean.started, "clean incast must drain");
    assert_eq!(lossy.completed, lossy.started, "lossy incast must drain");
    let clean_p99 = clean.censored_oracle().p99().unwrap();
    let lossy_p99 = lossy.censored_oracle().p99().unwrap();
    assert!(
        lossy_p99 <= clean_p99 * 3,
        "1% loss blew the tail bound: clean p99 {clean_p99} ns, lossy p99 {lossy_p99} ns"
    );
}

/// RepNet's claim at fan-in 16: duplicating every incast flow strictly
/// improves p99 FCT over completed flows, and some completions are won
/// by a non-primary replica (the mechanism, not just the outcome).
#[test]
fn replication_improves_p99_at_fanin_16() {
    for variant in [Variant::Tdtcp, Variant::Cubic] {
        let base = TailSpec::incast(Population::Uniform(variant), 16);
        let mut replicated = base.clone();
        replicated.replication = 2;
        let horizon = SimTime::from_millis(30);
        let r0 = run_tails(&base, &NetConfig::paper_baseline(), horizon);
        let r2 = run_tails(&replicated, &NetConfig::paper_baseline(), horizon);
        let p99_r0 = r0.oracle().p99().unwrap();
        let p99_r2 = r2.oracle().p99().unwrap();
        assert!(
            p99_r2 < p99_r0,
            "{}: replication must strictly improve p99 ({p99_r0} -> {p99_r2} ns)",
            variant.label()
        );
        assert_eq!(r0.replica_wins, 0, "no replicas, no wins");
        assert!(
            r2.replica_wins > 0,
            "{}: first-finisher wins must be observed",
            variant.label()
        );
        assert_eq!(r2.replicas_spawned, 2 * r2.started, "2 extras per logical flow");
    }
}

/// RTO-stall accounting is live on the collapse path: deep incast over
/// tiny buffers produces stall episodes, and every episode carries dead
/// air (`stall_ns > 0`); a gentle workload produces strictly fewer.
#[test]
fn rto_stall_accounting_tracks_collapse_depth() {
    let gentle = run_tails(
        &TailSpec::incast(Population::Uniform(Variant::Cubic), 2),
        &NetConfig::paper_baseline(),
        SimTime::from_millis(30),
    );
    let deep = run_tails(
        &TailSpec::incast(Population::Uniform(Variant::Cubic), 32),
        &NetConfig::paper_baseline(),
        SimTime::from_millis(30),
    );
    assert!(
        deep.rto_stalls > gentle.rto_stalls,
        "deep collapse must stall more: {} vs {}",
        deep.rto_stalls,
        gentle.rto_stalls
    );
    assert!(deep.stall_ns > 0, "stall episodes must carry dead air");
    assert!(
        deep.stall_ns / deep.rto_stalls.max(1) > 0,
        "per-episode stall time must be positive"
    );
}
