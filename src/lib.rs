//! # tdtcp-repro — Time-division TCP for Reconfigurable Data Center Networks
//!
//! A from-scratch Rust reproduction of TDTCP (SIGCOMM 2022) and every
//! substrate its evaluation depends on. This umbrella crate re-exports
//! the workspace members; see each crate's documentation:
//!
//! * [`simcore`] — deterministic discrete-event simulation kernel,
//! * [`wire`] — byte-exact packet formats (TDTCP options, ICMP
//!   notifications, TCP/IPv4, SACK, MPTCP DSS),
//! * [`tcp`] — the userspace TCP engine with CUBIC/DCTCP/Reno/reTCP,
//! * [`tdtcp`] — the paper's contribution: per-TDN congestion state,
//! * [`mptcp`] — the multipath baseline with the `tdm_schd` scheduler,
//! * [`rdcn`] — the emulated reconfigurable data center network,
//! * `bench` — the harness regenerating every table and figure.
//!
//! Run `cargo run --release -p bench --bin figures` to reproduce the
//! evaluation, or start from `examples/quickstart.rs`.
#![forbid(unsafe_code)]

pub use mptcp;
pub use rdcn;
pub use simcore;
pub use tcp;
pub use tdtcp;
pub use wire;
