#!/usr/bin/env bash
# Local CI gate. Everything here runs fully offline: the workspace has
# zero registry dependencies by design (see DESIGN.md), so an empty
# cargo registry — or no network at all — must never break the build.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
