#!/usr/bin/env bash
# Local CI gate. Everything here runs fully offline: the workspace has
# zero registry dependencies by design (see DESIGN.md), so an empty
# cargo registry — or no network at all — must never break the build.
#
# Usage: scripts/ci.sh [soak|chaos|bench|bigrun|lint|tails|skew]
#   lint  — run only detlint, the in-repo determinism & layering
#           static-analysis pass (DESIGN.md §10): per-file token rules
#           (HashMap/HashSet iteration, wall-clock reads, ad-hoc RNG
#           seeding, layering DAG, forbid(unsafe_code)) plus the v2
#           workspace symbol-graph rules (stream-label discipline,
#           cross-file digest coverage, shard mailbox safety, stale
#           suppression audit). The run prints per-rule fired/suppressed
#           counts and total scan timing; findings go to
#           target/detlint.json (schema 2, includes the per-rule
#           breakdown). Any unsuppressed finding exits non-zero. Also
#           runs in the default gate before clippy.
#   soak  — deepen the property-test search: every testkit `props!`
#           block runs TK_CASES cases (default 10000) instead of its
#           built-in count, and the chaos soak runs 5000 scenarios.
#           Override with TK_CASES=N scripts/ci.sh soak.
#   chaos — run only the randomized chaos soak (build + tests/chaos.rs)
#           at TK_CASES scenarios (default 200). On a violation the
#           harness shrinks to a minimal failing plan and prints a
#           replayable case seed (persisted to tests/tk-regressions/).
#           TK_JOBS=N shards scenarios across N workers (default:
#           available_parallelism; results are job-count independent).
#   bench — run the microbench suites and gate them against the
#           checked-in baselines at the repo root (BENCH_simulator.json,
#           BENCH_simulator_e2e.json): any benchmark losing more than
#           25% events/sec vs its baseline median fails the gate. The
#           detlint scan bench (BENCH_detlint.json: lex / parse / full
#           pipeline over the in-memory workspace) is gated too, at a
#           50% budget — single-iteration wall timings see scheduler
#           noise, same rationale as bigrun. After a deliberate perf
#           change, refresh the baselines by copying the freshly
#           written files over the checked-in ones.
#   bigrun — run the large-multirack engine gate (bench/bin/bigrun):
#           16 racks x 48 TDTCP flows, serial engine vs the sharded
#           engine at workers 1/2/4. Fails if the sharded digests
#           diverge across worker counts or the sharded engine misses
#           its hardware-aware throughput floor (3x at workers=4 on
#           >=4-CPU hosts; algorithmic w1>=1.25x floor on narrower
#           ones), then benchgates the fresh BENCH_bigrun.json against
#           the checked-in baseline (>50% ns/event regression fails;
#           wider than the 25% microbench budget because engine-level
#           wall-clock timings see scheduler noise on shared hosts).
#   tails — run the tail-latency acceptance suite (tests/tails.rs +
#           the tailgate failure-path tests), regenerate the FCT rows
#           with `figures tails`, and gate p99/p999 against the
#           checked-in BENCH_tails.json baseline (tailgate: any row
#           rising more than 10% or completing fewer flows fails).
#           The workload is deterministic, so an unchanged tree
#           reproduces the baseline bit-for-bit; after a deliberate
#           behaviour change, refresh with:
#           cargo run --release -p bench --bin figures -- tails
#           and commit the rewritten BENCH_tails.json. Also runs in
#           the default gate.
#   skew  — run the time-plane acceptance suite (tests/skew.rs: drift
#           under resync holds ≥80% of clean goodput, guard-band knob,
#           desync escalation, slot-edge policies) plus the skewed /
#           inert-clock determinism tests. The same tests run inside
#           the default gate's workspace pass; this mode is the quick
#           focused loop. Regenerate the checked-in sweep tables with:
#           cargo run --release -p bench --bin figures -- skew
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
CHAOS_CASES=200

if [[ "$MODE" == "soak" ]]; then
    export TK_CASES="${TK_CASES:-10000}"
    CHAOS_CASES="${TK_CASES_CHAOS:-5000}"
    echo "==> soak mode: TK_CASES=${TK_CASES}, chaos at ${CHAOS_CASES}"
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

if [[ "$MODE" == "lint" ]]; then
    echo "==> detlint (determinism & layering static analysis)"
    cargo run -q --offline --release -p detlint -- --root . --json target/detlint.json
    echo "LINT OK"
    exit 0
fi

if [[ "$MODE" == "chaos" ]]; then
    CHAOS_CASES="${TK_CASES:-200}"
    echo "==> chaos soak: ${CHAOS_CASES} randomized scenarios"
    TK_CASES="$CHAOS_CASES" cargo test -q --offline --test chaos
    echo "CHAOS OK"
    exit 0
fi

if [[ "$MODE" == "bench" ]]; then
    NEW_DIR="$(mktemp -d)"
    echo "==> cargo bench -p bench --bench simulator (into ${NEW_DIR})"
    TK_BENCH_DIR="$NEW_DIR" cargo bench --offline -q -p bench --bench simulator
    echo "==> cargo bench -p detlint --bench scan (into ${NEW_DIR})"
    TK_BENCH_DIR="$NEW_DIR" cargo bench --offline -q -p detlint --bench scan
    echo "==> perf-regression gate (>25% events/sec loss vs checked-in baseline fails)"
    for f in BENCH_simulator.json BENCH_simulator_e2e.json; do
        if [[ -f "$f" ]]; then
            cargo run -q --offline --release -p bench --bin benchgate -- "$f" "$NEW_DIR/$f"
        else
            echo "no checked-in baseline $f — seed one with: cp $NEW_DIR/$f ."
        fi
    done
    # Lint-scan timings are single-iteration wall clock, so they get the
    # wider bigrun-style budget instead of the 25% microbench one.
    if [[ -f BENCH_detlint.json ]]; then
        cargo run -q --offline --release -p bench --bin benchgate -- \
            --max-loss-pct 50 BENCH_detlint.json "$NEW_DIR/BENCH_detlint.json"
    else
        echo "no checked-in baseline BENCH_detlint.json — seed one with: cp $NEW_DIR/BENCH_detlint.json ."
    fi
    echo "BENCH OK (refresh baselines after deliberate perf changes:"
    echo "          cp $NEW_DIR/BENCH_*.json .)"
    exit 0
fi

if [[ "$MODE" == "bigrun" ]]; then
    NEW="$(mktemp -d)/BENCH_bigrun.json"
    echo "==> bigrun (sharded-engine digest + throughput gate)"
    cargo run -q --offline --release -p bench --bin bigrun -- --json "$NEW"
    if [[ -f BENCH_bigrun.json ]]; then
        # Engine-level wall-clock timings swing far more than the pinned
        # microbenches on shared hosts (threaded runs contend with
        # whatever else the machine is doing), so this gate gets a 50%
        # budget instead of the microbench 25%: it still catches a real
        # 2x regression without flaking on scheduler noise.
        echo "==> perf-regression gate (>50% ns/event loss vs checked-in BENCH_bigrun.json fails)"
        cargo run -q --offline --release -p bench --bin benchgate -- \
            --max-loss-pct 50 BENCH_bigrun.json "$NEW"
    else
        echo "no checked-in baseline BENCH_bigrun.json — seed one with: cp $NEW ."
    fi
    echo "BIGRUN OK"
    exit 0
fi

# Regenerate the tail-latency FCT rows and gate them against the
# checked-in baseline. Factored so both `ci.sh tails` and the default
# gate run the same check.
tailgate_check() {
    local out
    out="$(mktemp -d)/BENCH_tails.json"
    echo "==> figures tails (tail-latency FCT rows into ${out})"
    cargo run -q --offline --release -p bench --bin figures -- tails \
        --tails-json "$out" --bench-json "$(mktemp)" > /dev/null
    if [[ -f BENCH_tails.json ]]; then
        echo "==> tailgate (>10% p99/p999 FCT rise vs checked-in baseline fails)"
        cargo run -q --offline --release -p bench --bin tailgate -- \
            BENCH_tails.json "$out"
    else
        echo "no checked-in BENCH_tails.json — seed one with: cp $out ."
    fi
}

if [[ "$MODE" == "skew" ]]; then
    echo "==> time-plane acceptance suite (clock skew / guard band / desync)"
    cargo test -q --offline --test skew
    cargo test -q --offline --test determinism skew
    cargo test -q --offline --test determinism inert_clock
    echo "SKEW OK"
    exit 0
fi

if [[ "$MODE" == "tails" ]]; then
    echo "==> tail-latency acceptance suite"
    cargo test -q --offline --test tails
    cargo test -q --offline -p bench --test tailgate
    tailgate_check
    echo "TAILS OK"
    exit 0
fi

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> chaos soak: ${CHAOS_CASES} randomized scenarios"
TK_CASES="$CHAOS_CASES" cargo test -q --offline --test chaos chaos_soak

echo "==> figures quick smoke (parallel harness end to end)"
cargo run -q --offline --release -p bench --bin figures -- quick \
    --bench-json "$(mktemp)" > /dev/null

tailgate_check

echo "==> detlint (determinism & layering static analysis)"
cargo run -q --offline --release -p detlint -- --root . --json target/detlint.json

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
