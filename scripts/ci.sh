#!/usr/bin/env bash
# Local CI gate. Everything here runs fully offline: the workspace has
# zero registry dependencies by design (see DESIGN.md), so an empty
# cargo registry — or no network at all — must never break the build.
#
# Usage: scripts/ci.sh [soak|chaos]
#   soak  — deepen the property-test search: every testkit `props!`
#           block runs TK_CASES cases (default 10000) instead of its
#           built-in count, and the chaos soak runs 5000 scenarios.
#           Override with TK_CASES=N scripts/ci.sh soak.
#   chaos — run only the randomized chaos soak (build + tests/chaos.rs)
#           at TK_CASES scenarios (default 200). On a violation the
#           harness shrinks to a minimal failing plan and prints a
#           replayable case seed (persisted to tests/tk-regressions/).
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-}"
CHAOS_CASES=200

if [[ "$MODE" == "soak" ]]; then
    export TK_CASES="${TK_CASES:-10000}"
    CHAOS_CASES="${TK_CASES_CHAOS:-5000}"
    echo "==> soak mode: TK_CASES=${TK_CASES}, chaos at ${CHAOS_CASES}"
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

if [[ "$MODE" == "chaos" ]]; then
    CHAOS_CASES="${TK_CASES:-200}"
    echo "==> chaos soak: ${CHAOS_CASES} randomized scenarios"
    TK_CASES="$CHAOS_CASES" cargo test -q --offline --test chaos
    echo "CHAOS OK"
    exit 0
fi

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> chaos soak: ${CHAOS_CASES} randomized scenarios"
TK_CASES="$CHAOS_CASES" cargo test -q --offline --test chaos chaos_soak

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
