#!/usr/bin/env bash
# Local CI gate. Everything here runs fully offline: the workspace has
# zero registry dependencies by design (see DESIGN.md), so an empty
# cargo registry — or no network at all — must never break the build.
#
# Usage: scripts/ci.sh [soak]
#   soak  — deepen the property-test search: every testkit `props!`
#           block runs TK_CASES cases (default 10000) instead of its
#           built-in count. Override with TK_CASES=N scripts/ci.sh soak.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "soak" ]]; then
    export TK_CASES="${TK_CASES:-10000}"
    echo "==> soak mode: TK_CASES=${TK_CASES}"
fi

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
