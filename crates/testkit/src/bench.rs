//! A lightweight microbench harness (criterion replacement).
//!
//! Each benchmark auto-calibrates an iteration count so one trial takes a
//! few milliseconds, runs a warmup, then measures `trials` trials and
//! reports min/mean/median/p95 nanoseconds per iteration. [`BenchSuite`]
//! collects results and writes them as `BENCH_<suite>.json` (into
//! `TK_BENCH_DIR` if set, else the current directory), seeding the repo's
//! perf trajectory: successive runs of the same suite can be diffed
//! mechanically.
//!
//! ```ignore
//! let mut suite = BenchSuite::new("codec");
//! suite.bench("tcp_header_emit", || { /* work */ });
//! suite.finish(); // prints a table and writes BENCH_codec.json
//! ```

use std::hint::black_box;
use std::time::Instant;

pub use std::hint::black_box as bb;

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id within the suite.
    pub name: String,
    /// Iterations per timed trial (auto-calibrated).
    pub iters_per_trial: u64,
    /// Number of timed trials.
    pub trials: u32,
    /// Fastest trial.
    pub min_ns: f64,
    /// Mean across trials.
    pub mean_ns: f64,
    /// Median across trials.
    pub median_ns: f64,
    /// 95th percentile across trials.
    pub p95_ns: f64,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Timed trials per benchmark.
    pub trials: u32,
    /// Target wall time per trial, in nanoseconds (drives calibration).
    pub target_trial_ns: u64,
    /// Warmup time before measuring, in nanoseconds.
    pub warmup_ns: u64,
    /// Hard cap on iterations per trial.
    pub max_iters_per_trial: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            trials: 15,
            target_trial_ns: 5_000_000,
            warmup_ns: 20_000_000,
            max_iters_per_trial: 1 << 22,
        }
    }
}

/// A named collection of benchmarks written out as one JSON file.
pub struct BenchSuite {
    name: String,
    cfg: BenchConfig,
    results: Vec<BenchResult>,
}

impl BenchSuite {
    /// New suite with default configuration.
    pub fn new(name: impl Into<String>) -> Self {
        BenchSuite {
            name: name.into(),
            cfg: BenchConfig::default(),
            results: Vec::new(),
        }
    }

    /// Override the configuration (e.g. fewer trials for slow end-to-end
    /// benches).
    pub fn with_config(mut self, cfg: BenchConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Set only the trial count.
    pub fn trials(mut self, trials: u32) -> Self {
        self.cfg.trials = trials;
        self
    }

    /// Run one benchmark: `f` is invoked repeatedly; its return value is
    /// passed through [`black_box`] so the work is not optimized away.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let r = run_bench(&self.cfg, name, &mut f);
        eprintln!(
            "bench {}/{:<40} median {:>12}  p95 {:>12}  (x{} iters, {} trials)",
            self.name,
            r.name,
            fmt_ns(r.median_ns),
            fmt_ns(r.p95_ns),
            r.iters_per_trial,
            r.trials
        );
        self.results.push(r);
    }

    /// Write `BENCH_<suite>.json` and return its path.
    pub fn finish(self) -> std::path::PathBuf {
        let dir = std::env::var("TK_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        let json = self.to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("bench {}: failed to write {}: {e}", self.name, path.display());
        } else {
            eprintln!("bench {}: wrote {}", self.name, path.display());
        }
        path
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"suite\": {},\n", json_str(&self.name)));
        s.push_str("  \"unit\": \"ns_per_iter\",\n");
        s.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": {}, \"iters_per_trial\": {}, \"trials\": {}, \
                 \"min\": {:.2}, \"mean\": {:.2}, \"median\": {:.2}, \"p95\": {:.2}}}{}\n",
                json_str(&r.name),
                r.iters_per_trial,
                r.trials,
                r.min_ns,
                r.mean_ns,
                r.median_ns,
                r.p95_ns,
                if i + 1 == self.results.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

fn time_iters<R>(f: &mut impl FnMut() -> R, iters: u64) -> u64 {
    // detlint: allow(wall_clock) — the microbench harness exists to measure real elapsed time
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_nanos() as u64
}

fn run_bench<R>(cfg: &BenchConfig, name: &str, f: &mut impl FnMut() -> R) -> BenchResult {
    // Calibrate: grow the iteration count until one batch takes long
    // enough to time reliably, then scale to the target trial time.
    let mut iters = 1u64;
    let mut elapsed = time_iters(f, iters);
    while elapsed < 100_000 && iters < cfg.max_iters_per_trial {
        iters = (iters * 4).min(cfg.max_iters_per_trial);
        elapsed = time_iters(f, iters);
    }
    let per_iter = (elapsed / iters).max(1);
    let iters_per_trial = (cfg.target_trial_ns / per_iter).clamp(1, cfg.max_iters_per_trial);

    // Warmup for a fixed time budget.
    // detlint: allow(wall_clock) — warmup budget is real time by design; never feeds results
    let warm_start = Instant::now();
    while (warm_start.elapsed().as_nanos() as u64) < cfg.warmup_ns {
        black_box(f());
    }

    // Timed trials.
    let mut samples: Vec<f64> = Vec::with_capacity(cfg.trials as usize);
    for _ in 0..cfg.trials {
        let ns = time_iters(f, iters_per_trial);
        samples.push(ns as f64 / iters_per_trial as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    let min_ns = samples[0];
    let mean_ns = samples.iter().sum::<f64>() / n as f64;
    let median_ns = if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    };
    let p95_ns = samples[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];

    BenchResult {
        name: name.to_string(),
        iters_per_trial,
        trials: cfg.trials,
        min_ns,
        mean_ns,
        median_ns,
        p95_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_produces_sane_stats() {
        let cfg = BenchConfig {
            trials: 5,
            target_trial_ns: 200_000,
            warmup_ns: 100_000,
            max_iters_per_trial: 1 << 16,
        };
        let r = run_bench(&cfg, "spin", &mut || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(r.trials, 5);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
    }

    #[test]
    fn json_output_shape() {
        let mut s = BenchSuite::new("self\"test").with_config(BenchConfig {
            trials: 3,
            target_trial_ns: 100_000,
            warmup_ns: 50_000,
            max_iters_per_trial: 1 << 12,
        });
        s.bench("noop", || 1u32);
        let json = s.to_json();
        assert!(json.contains("\"suite\": \"self\\\"test\""));
        assert!(json.contains("\"name\": \"noop\""));
        assert!(json.contains("\"median\""));
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
