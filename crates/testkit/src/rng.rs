//! Deterministic pseudo-random number generation.
//!
//! [`TkRng`] is xoshiro256++ (Blackman & Vigna, public domain) with its
//! 256-bit state expanded from a 64-bit seed by SplitMix64 — the standard
//! seeding recipe. It is not cryptographic; it is fast, has a 2^256 - 1
//! period, and passes BigCrush, which is everything a simulator needs.
//!
//! The golden-value tests at the bottom pin the output streams for several
//! seeds. If any implementation detail changes the stream, those tests
//! fail loudly — deterministic replay (regression seeds, golden traces)
//! depends on the stream never drifting silently.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix `(seed, label)` into a decorrelated child seed (SplitMix64-style).
#[inline]
pub fn mix_label(seed: u64, label: u64) -> u64 {
    let mut z = seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, explicitly seeded xoshiro256++ generator.
#[derive(Clone)]
pub struct TkRng {
    s: [u64; 4],
    seed: u64,
}

impl TkRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TkRng { s, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator; `label` decorrelates children
    /// created from the same parent seed (e.g. one stream per flow).
    pub fn fork(&self, label: u64) -> TkRng {
        TkRng::new(mix_label(self.seed, label))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit output (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Unbiased uniform sample in `[0, n)`; `n` must be nonzero.
    /// Uses rejection sampling so every value is exactly equally likely.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        // 2^64 mod n: values >= this threshold fill complete buckets.
        let threshold = n.wrapping_neg() % n;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return r % n;
            }
        }
    }

    /// Uniform sample from an integer or float range, e.g.
    /// `rng.gen_range(0..300u64)` or `rng.gen_range(0.5..=1.5)`.
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen_f64() < p
    }

    /// Exponentially distributed sample with the given mean (used for
    /// Poisson inter-arrival cross traffic).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // 1 - U is in (0, 1], so ln() is finite and the result nonnegative.
        let u = 1.0 - self.gen_f64();
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly chosen element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }

    /// `k` distinct indices sampled uniformly from `0..n` (partial
    /// Fisher–Yates); returns fewer if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.next_below((n - i) as u64) as usize;
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Fill a byte slice with random data.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl std::fmt::Debug for TkRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TkRng").field("seed", &self.seed).finish()
    }
}

/// Ranges a [`TkRng`] can sample uniformly: `Range` and `RangeInclusive`
/// over the primitive integers, plus `Range<f64>`.
pub trait UniformRange<T> {
    /// Draw one uniform sample from `rng` within this range.
    fn sample_in(self, rng: &mut TkRng) -> T;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut TkRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample_in(self, rng: &mut TkRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            fn sample_in(self, rng: &mut TkRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            fn sample_in(self, rng: &mut TkRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.next_below(span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64);

impl UniformRange<f64> for Range<f64> {
    fn sample_in(self, rng: &mut TkRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ------------------------------------------------------------------
    // Golden-value tests: these pin the exact output streams. They were
    // captured from this implementation and must NEVER be updated casually
    // — a change here means every seeded run in the repo replays
    // differently.
    // ------------------------------------------------------------------

    #[test]
    fn golden_stream_seed_0() {
        let mut r = TkRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0x53175d61490b23df,
                0x61da6f3dc380d507,
                0x5c0fdf91ec9a7bfc,
                0x02eebf8c3bbe5e1a,
            ]
        );
    }

    #[test]
    fn golden_stream_seed_1() {
        let mut r = TkRng::new(1);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xcfc5d07f6f03c29b,
                0xbf424132963fe08d,
                0x19a37d5757aaf520,
                0xbf08119f05cd56d6,
            ]
        );
    }

    #[test]
    fn golden_stream_seed_42() {
        let mut r = TkRng::new(42);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xd0764d4f4476689f,
                0x519e4174576f3791,
                0xfbe07cfb0c24ed8c,
                0xb37d9f600cd835b8,
            ]
        );
    }

    #[test]
    fn golden_derived_values() {
        let mut r = TkRng::new(7);
        assert_eq!(r.gen_range(0..1000u64), 661);
        assert_eq!(r.gen_range(0..=u64::MAX), 0x2c0fc8ddfa4e9e14);
        let f = r.gen_f64();
        assert_eq!(f.to_bits(), 0x3fe6f66236761a8b);
    }

    // ------------------------------------------------------------------
    // Behavioural tests.
    // ------------------------------------------------------------------

    #[test]
    fn same_seed_same_stream() {
        let mut a = TkRng::new(42);
        let mut b = TkRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = TkRng::new(1);
        let mut b = TkRng::new(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let parent = TkRng::new(7);
        let mut c1 = parent.fork(0);
        let mut c1b = parent.fork(0);
        let mut c2 = parent.fork(1);
        let a: Vec<u64> = (0..8).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| c1b.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| c2.next_u64()).collect();
        assert_eq!(a, b, "same label forks identically");
        assert_ne!(a, c, "different labels decorrelate");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = TkRng::new(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_supported() {
        let mut r = TkRng::new(11);
        // Must not overflow or hang.
        let _ = r.gen_range(0..u64::MAX);
        let _ = r.gen_range(0..=u64::MAX);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = TkRng::new(5);
        for _ in 0..10_000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut r = TkRng::new(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = TkRng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = TkRng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = TkRng::new(23);
        let picks = r.sample_indices(100, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn next_below_unbiased_small() {
        // Chi-square-ish sanity: each bucket of 0..8 within 5% of uniform.
        let mut r = TkRng::new(29);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.next_below(8) as usize] += 1;
        }
        for c in counts {
            let frac = f64::from(c) / f64::from(n);
            assert!((frac - 0.125).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = TkRng::new(1);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert!(r.choose(&[5u8]).is_some());
    }
}
