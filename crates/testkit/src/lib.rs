//! # testkit — zero-dependency deterministic test infrastructure
//!
//! Everything the workspace needs to build and test fully offline: a
//! deterministic PRNG ([`TkRng`], xoshiro256++ seeded via SplitMix64), a
//! minimal property-testing harness ([`prop`]) with iteration-bounded
//! shrinking and persisted regression seeds, a microbench harness
//! ([`bench`]) that replaces criterion and emits `BENCH_<suite>.json`,
//! and a stable stats digest ([`Digest`]) used by the golden-trace
//! determinism suite.
//!
//! The crate depends on `std` only. Randomness is never drawn from the
//! environment: every stream is derived from an explicit 64-bit seed, and
//! golden-value tests in [`rng`] pin the streams so they can never change
//! silently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod digest;
pub mod prop;
pub mod rng;

pub use bench::BenchSuite;
pub use digest::Digest;
pub use prop::{check, Config, Gen};
pub use rng::{TkRng, UniformRange};
