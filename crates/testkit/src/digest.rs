//! Stable digests of run statistics for the golden-trace determinism
//! suite.
//!
//! [`Digest`] is FNV-1a (64-bit) with typed, length-framed write methods:
//! two runs that feed the same sequence of typed values produce the same
//! digest, and any divergence — one extra counter, one float a ULP off —
//! changes it. Crates digest their stats structs (`ConnStats`,
//! `RunResult`, …) into a single `u64` that determinism tests compare
//! across runs with identical seeds.
//!
//! FNV is not cryptographic; it is stable, dependency-free, and plenty to
//! detect nondeterminism.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a digest over typed values.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// Fresh digest.
    pub fn new() -> Self {
        Digest { state: FNV_OFFSET }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feed a `u64` (little-endian framed).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feed a `u32`.
    pub fn write_u32(&mut self, v: u32) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feed an `i64`.
    pub fn write_i64(&mut self, v: i64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Feed a `usize` (widened to `u64` so 32/64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Feed an `f64` by exact bit pattern (NaN-sensitive on purpose: a
    /// NaN appearing in stats is itself a determinism bug worth catching).
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Feed a bool.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_bytes(&[u8::from(v)])
    }

    /// Feed a length-prefixed string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// Current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Digest as a fixed-width hex string (handy in assertions and logs).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// One-shot digest of a byte slice.
pub fn digest_bytes(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.write_bytes(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(digest_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest_bytes(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest_bytes(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn typed_writes_are_order_sensitive() {
        let mut a = Digest::new();
        a.write_u64(1).write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2).write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn identical_sequences_agree() {
        let build = || {
            let mut d = Digest::new();
            d.write_str("seq")
                .write_u64(42)
                .write_f64(0.25)
                .write_bool(true);
            d.finish()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn f64_bit_exact() {
        let mut a = Digest::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Digest::new();
        b.write_f64(0.3);
        // 0.1 + 0.2 != 0.3 in f64; the digest must see the difference.
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_16_chars() {
        assert_eq!(Digest::new().hex().len(), 16);
    }
}
