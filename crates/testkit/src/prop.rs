//! A minimal property-testing harness (proptest replacement).
//!
//! A property is a function from a generated input to `Result<(), String>`;
//! the harness runs it for a configurable number of cases, each drawn from
//! a deterministic per-case seed. On failure it performs iteration-bounded
//! shrinking (structural generators know how to propose smaller inputs)
//! and persists the failing case seed to a regression file under
//! `tests/tk-regressions/` in the crate under test, which is replayed
//! first on every subsequent run.
//!
//! Write tests with the [`props!`](crate::props) macro:
//!
//! ```ignore
//! testkit::props! {
//!     #[cases(256)]
//!     fn addition_commutes((a, b) in tuple2(range(0u32..100), range(0u32..100))) {
//!         tk_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Generators ([`Gen`]) are built from combinators: [`range`],
//! [`uniform`], [`vec_of`], [`option_of`], [`tuple2`]..[`tuple4`],
//! [`one_of`], [`weighted`], [`just`], [`from_fn`], and [`Gen::map`].
//! Structural combinators shrink; `map`/`one_of`/`from_fn` values do not
//! (their failures still replay exactly via the persisted seed).

use crate::rng::{mix_label, TkRng, UniformRange};
use std::fmt::Debug;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

type GenerateFn<T> = Rc<dyn Fn(&mut TkRng) -> T>;
type ShrinkFn<T> = Rc<dyn Fn(&T) -> Vec<T>>;

/// A generator: produces values from an RNG and proposes shrunk variants of
/// a failing value.
pub struct Gen<T> {
    generate: GenerateFn<T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            generate: Rc::clone(&self.generate),
            shrink: Rc::clone(&self.shrink),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Build a generator from explicit generate and shrink functions.
    pub fn new(
        generate: impl Fn(&mut TkRng) -> T + 'static,
        shrink: impl Fn(&T) -> Vec<T> + 'static,
    ) -> Self {
        Gen {
            generate: Rc::new(generate),
            shrink: Rc::new(shrink),
        }
    }

    /// Draw one value.
    pub fn generate(&self, rng: &mut TkRng) -> T {
        (self.generate)(rng)
    }

    /// Propose shrunk variants of a failing value (possibly empty).
    pub fn shrinks(&self, v: &T) -> Vec<T> {
        (self.shrink)(v)
    }

    /// Transform generated values. The mapped generator does not shrink
    /// (the mapping is not invertible); failures still replay by seed.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        let g = self.generate;
        Gen::new(move |rng| f(g(rng)), |_| Vec::new())
    }
}

/// Always produce a clone of `v`; no shrinking.
pub fn just<T: Clone + 'static>(v: T) -> Gen<T> {
    Gen::new(move |_| v.clone(), |_| Vec::new())
}

/// Build values with an arbitrary closure; no shrinking.
pub fn from_fn<T: 'static>(f: impl Fn(&mut TkRng) -> T + 'static) -> Gen<T> {
    Gen::new(f, |_| Vec::new())
}

/// Integers with shrink candidates stepping toward a target value.
fn int_shrinks<T>(v: T, target: T) -> Vec<T>
where
    T: Copy + PartialEq + PartialOrd + IntMid,
{
    let mut out = Vec::new();
    if v == target {
        return out;
    }
    out.push(target);
    let mid = T::mid(target, v);
    if mid != target && mid != v {
        out.push(mid);
    }
    let step = T::step_toward(v, target);
    if step != v && step != target && Some(&step) != out.last() {
        out.push(step);
    }
    out
}

/// Helper trait for integer shrinking arithmetic.
pub trait IntMid: Sized {
    /// Midpoint between `a` and `b` (rounded toward `a`).
    fn mid(a: Self, b: Self) -> Self;
    /// One step from `v` toward `target`.
    fn step_toward(v: Self, target: Self) -> Self;
}

macro_rules! impl_int_mid {
    ($($t:ty),*) => {$(
        impl IntMid for $t {
            fn mid(a: Self, b: Self) -> Self {
                // Overflow-safe midpoint.
                a + (b - a) / 2
            }
            fn step_toward(v: Self, target: Self) -> Self {
                if v > target { v - 1 } else if v < target { v + 1 } else { v }
            }
        }
    )*};
}
impl_int_mid!(u8, u16, u32, u64, usize);

macro_rules! impl_int_mid_signed {
    ($($t:ty),*) => {$(
        impl IntMid for $t {
            fn mid(a: Self, b: Self) -> Self {
                a + (b - a) / 2
            }
            fn step_toward(v: Self, target: Self) -> Self {
                if v > target { v - 1 } else if v < target { v + 1 } else { v }
            }
        }
    )*};
}
impl_int_mid_signed!(i8, i16, i32, i64);

/// Uniform sample from a half-open or inclusive integer range; shrinks
/// toward the low end of the range.
pub fn range<T, R>(r: R) -> Gen<T>
where
    T: Copy + PartialEq + PartialOrd + IntMid + Debug + 'static,
    R: UniformRange<T> + RangeLow<T> + Clone + 'static,
{
    let lo = r.low();
    Gen::new(
        move |rng| rng.gen_range(r.clone()),
        move |&v| int_shrinks(v, lo),
    )
}

/// Access to the low bound of a range (the shrink target).
pub trait RangeLow<T> {
    /// The inclusive low bound.
    fn low(&self) -> T;
}
impl<T: Copy> RangeLow<T> for std::ops::Range<T> {
    fn low(&self) -> T {
        self.start
    }
}
impl<T: Copy> RangeLow<T> for std::ops::RangeInclusive<T> {
    fn low(&self) -> T {
        *self.start()
    }
}

/// The full range of an integer type (like proptest's `any::<T>()`);
/// shrinks toward zero.
pub fn uniform<T>() -> Gen<T>
where
    T: Copy + PartialEq + PartialOrd + IntMid + FromU64 + Debug + 'static,
{
    Gen::new(
        |rng| T::from_u64(rng.next_u64()),
        |&v| int_shrinks(v, T::from_u64(0)),
    )
}

/// Truncating conversion from a raw 64-bit draw.
pub trait FromU64 {
    /// Truncate `v` into `Self`.
    fn from_u64(v: u64) -> Self;
}
macro_rules! impl_from_u64 {
    ($($t:ty),*) => {$(impl FromU64 for $t { fn from_u64(v: u64) -> Self { v as $t } })*};
}
impl_from_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

/// `bool` with equal probability; `true` shrinks to `false`.
pub fn any_bool() -> Gen<bool> {
    Gen::new(
        |rng| rng.next_u64() & 1 == 1,
        |&v| if v { vec![false] } else { Vec::new() },
    )
}

/// Uniform float in `[0, 1)`; shrinks toward 0.
pub fn unit_f64() -> Gen<f64> {
    Gen::new(
        |rng| rng.gen_f64(),
        |&v| {
            if v == 0.0 {
                Vec::new()
            } else {
                vec![0.0, v / 2.0]
            }
        },
    )
}

/// Vector of values from `elem`, length drawn from `len`; shrinks by
/// halving the length, dropping single elements, and shrinking elements.
pub fn vec_of<T>(elem: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>>
where
    T: Clone + 'static,
{
    let min_len = len.start;
    let elem2 = elem.clone();
    Gen::new(
        move |rng| {
            let n = rng.gen_range(len.clone());
            (0..n).map(|_| elem.generate(rng)).collect()
        },
        move |v: &Vec<T>| {
            let mut out: Vec<Vec<T>> = Vec::new();
            // Halve toward the minimum length.
            if v.len() > min_len {
                let half = min_len + (v.len() - min_len) / 2;
                out.push(v[..half].to_vec());
                // Drop one element at a few evenly spaced positions.
                let slots = v.len().min(4);
                for i in 0..slots {
                    let mut w = v.clone();
                    w.remove(i * v.len() / slots);
                    out.push(w);
                }
            }
            // Shrink the first few elements in place.
            for i in 0..v.len().min(4) {
                for cand in elem2.shrinks(&v[i]).into_iter().take(2) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        },
    )
}

/// `Option` that is `Some` about 3/4 of the time; shrinks `Some` to `None`
/// and through the inner generator.
pub fn option_of<T>(inner: Gen<T>) -> Gen<Option<T>>
where
    T: Clone + 'static,
{
    let inner2 = inner.clone();
    Gen::new(
        move |rng| {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(inner.generate(rng))
            }
        },
        move |v: &Option<T>| match v {
            None => Vec::new(),
            Some(x) => {
                let mut out = vec![None];
                out.extend(inner2.shrinks(x).into_iter().map(Some));
                out
            }
        },
    )
}

/// Uniformly pick one of several generators of the same type; chosen
/// values do not shrink (the source generator is unknown after the fact).
pub fn one_of<T: 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty());
    Gen::new(
        move |rng| {
            let i = rng.next_below(gens.len() as u64) as usize;
            gens[i].generate(rng)
        },
        |_| Vec::new(),
    )
}

/// Weighted version of [`one_of`].
pub fn weighted<T: 'static>(gens: Vec<(u32, Gen<T>)>) -> Gen<T> {
    assert!(!gens.is_empty());
    let total: u64 = gens.iter().map(|&(w, _)| u64::from(w)).sum();
    assert!(total > 0);
    Gen::new(
        move |rng| {
            let mut pick = rng.next_below(total);
            for (w, g) in &gens {
                let w = u64::from(*w);
                if pick < w {
                    return g.generate(rng);
                }
                pick -= w;
            }
            unreachable!()
        },
        |_| Vec::new(),
    )
}

macro_rules! impl_tuple_gen {
    ($fname:ident: $($g:ident $v:ident $i:tt),+) => {
        /// Tuple of independent generators; shrinks one component at a time.
        #[allow(clippy::too_many_arguments)]
        pub fn $fname<$($g: Clone + 'static),+>($($v: Gen<$g>),+) -> Gen<($($g,)+)> {
            $(let $v = $v.clone();)+
            let gens = ($($v.clone(),)+);
            let shr = ($($v,)+);
            Gen::new(
                move |rng| ($(gens.$i.generate(rng),)+),
                move |t| {
                    let mut out = Vec::new();
                    $(
                        for cand in shr.$i.shrinks(&t.$i).into_iter().take(3) {
                            let mut w = t.clone();
                            w.$i = cand;
                            out.push(w);
                        }
                    )+
                    out
                },
            )
        }
    };
}
impl_tuple_gen!(tuple2: A a 0, B b 1);
impl_tuple_gen!(tuple3: A a 0, B b 1, C c 2);
impl_tuple_gen!(tuple4: A a 0, B b 1, C c 2, D d 3);
impl_tuple_gen!(tuple5: A a 0, B b 1, C c 2, D d 3, E e 4);
impl_tuple_gen!(tuple6: A a 0, B b 1, C c 2, D d 3, E e 4, F f 5);
impl_tuple_gen!(tuple7: A a 0, B b 1, C c 2, D d 3, E e 4, F f 5, G g 6);
impl_tuple_gen!(tuple8: A a 0, B b 1, C c 2, D d 3, E e 4, F f 5, G g 6, H h 7);

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (overridable via `TK_CASES`).
    pub cases: u32,
    /// Base seed for the case stream (overridable via `TK_SEED`).
    pub seed: u64,
    /// Maximum shrink candidates evaluated after a failure.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            seed: 0x7d7c_0ffe_e000_0001,
            max_shrink_iters: 2_000,
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| {
        v.strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16).ok())
            .unwrap_or_else(|| v.parse().ok())
    })
}

fn regression_path(manifest_dir: &str, name: &str) -> PathBuf {
    let safe: String = name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    PathBuf::from(manifest_dir)
        .join("tests")
        .join("tk-regressions")
        .join(format!("{safe}.seeds"))
}

fn load_regression_seeds(path: &PathBuf) -> Vec<u64> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                return None;
            }
            l.strip_prefix("0x")
                .and_then(|h| u64::from_str_radix(h, 16).ok())
        })
        .collect()
}

fn persist_regression_seed(path: &PathBuf, seed: u64) {
    let existing = load_regression_seeds(path);
    if existing.contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let header_needed = !path.exists();
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
        if header_needed {
            let _ = writeln!(
                f,
                "# testkit regression seeds: replayed before random cases.\n\
                 # Each line is a failing case seed; keep this file in git."
            );
        }
        let _ = writeln!(f, "0x{seed:016x}");
    }
}

/// Run a property over `cfg.cases` generated inputs, shrinking and
/// persisting a regression seed on failure. Panics (like `assert!`) with a
/// replayable report when the property fails.
pub fn check<T: Debug + Clone + 'static>(
    name: &str,
    manifest_dir: &str,
    cfg: Config,
    gen: &Gen<T>,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let cases = env_u64("TK_CASES").map(|v| v as u32).unwrap_or(cfg.cases);
    let base_seed = env_u64("TK_SEED").unwrap_or(cfg.seed);
    let reg_path = regression_path(manifest_dir, name);

    // Replay persisted regressions first.
    for seed in load_regression_seeds(&reg_path) {
        run_case(name, &reg_path, &cfg, gen, &prop, seed, true);
    }

    for i in 0..cases {
        let case_seed = mix_label(base_seed, u64::from(i).wrapping_add(0x51ed_c0de));
        run_case(name, &reg_path, &cfg, gen, &prop, case_seed, false);
    }
}

/// Worker-thread count for [`check_sharded`]: `TK_JOBS` env override,
/// else `available_parallelism()`.
pub fn default_jobs() -> usize {
    env_u64("TK_JOBS")
        .map(|v| (v as usize).max(1))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Parallel [`check`]: shard the case indices across worker threads.
///
/// [`Gen`] holds `Rc` internals and cannot cross threads, so each worker
/// builds its own generator from `make_gen`. Case seeds are identical to
/// [`check`]'s (derived from the case index, not from which worker runs
/// it), so a property passes or fails identically under any job count.
/// Failure handling is deterministic too: workers race only to *find*
/// failing indices; the lowest one is then re-run serially through the
/// shrink-persist-panic path, which reports exactly what serial [`check`]
/// would have reported for that case.
///
/// Replayed regression seeds still run serially first — they are few,
/// and their panics must keep deterministic priority over fresh cases.
pub fn check_sharded<T: Debug + Clone + 'static>(
    name: &str,
    manifest_dir: &str,
    cfg: Config,
    jobs: usize,
    make_gen: impl Fn() -> Gen<T> + Sync,
    prop: impl Fn(&T) -> Result<(), String> + Sync,
) {
    let cases = env_u64("TK_CASES").map(|v| v as u32).unwrap_or(cfg.cases);
    let base_seed = env_u64("TK_SEED").unwrap_or(cfg.seed);
    let reg_path = regression_path(manifest_dir, name);

    let gen = make_gen();
    for seed in load_regression_seeds(&reg_path) {
        run_case(name, &reg_path, &cfg, &gen, &prop, seed, true);
    }

    let case_seed = |i: u32| mix_label(base_seed, u64::from(i).wrapping_add(0x51ed_c0de));
    let workers = jobs.max(1).min(cases.max(1) as usize);
    let min_fail = if workers <= 1 {
        let mut first = u64::MAX;
        for i in 0..cases {
            let mut rng = TkRng::new(case_seed(i));
            let value = gen.generate(&mut rng);
            if prop(&value).is_err() {
                first = u64::from(i);
                break;
            }
        }
        first
    } else {
        use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
        let cursor = AtomicU32::new(0);
        let min_fail = AtomicU64::new(u64::MAX);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let gen = make_gen();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        // The cursor is monotone: once an index at or past
                        // the best failure is claimed, every later claim is
                        // too, so this worker is finished.
                        if i >= cases || u64::from(i) >= min_fail.load(Ordering::Relaxed) {
                            break;
                        }
                        let mut rng = TkRng::new(case_seed(i));
                        let value = gen.generate(&mut rng);
                        if prop(&value).is_err() {
                            min_fail.fetch_min(u64::from(i), Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        min_fail.into_inner()
    };

    if min_fail != u64::MAX {
        // Deterministic failure path: shrink, persist, and panic exactly
        // like serial `check` at the first failing case index.
        run_case(
            name,
            &reg_path,
            &cfg,
            &gen,
            &prop,
            case_seed(min_fail as u32),
            false,
        );
        unreachable!("case {min_fail} failed in the sweep but passed on replay");
    }
}

fn run_case<T: Debug + Clone + 'static>(
    name: &str,
    reg_path: &PathBuf,
    cfg: &Config,
    gen: &Gen<T>,
    prop: &impl Fn(&T) -> Result<(), String>,
    case_seed: u64,
    replay: bool,
) {
    let mut rng = TkRng::new(case_seed);
    let value = gen.generate(&mut rng);
    let Err(err) = prop(&value) else { return };

    // Iteration-bounded greedy shrink: repeatedly move to the first
    // failing shrink candidate until none fails or the budget runs out.
    let mut best = value;
    let mut best_err = err;
    let mut budget = cfg.max_shrink_iters;
    'outer: while budget > 0 {
        for cand in gen.shrinks(&best) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(e) = prop(&cand) {
                best = cand;
                best_err = e;
                continue 'outer;
            }
        }
        break;
    }

    if !replay {
        persist_regression_seed(reg_path, case_seed);
    }
    panic!(
        "property `{name}` failed{}\n  case seed: 0x{case_seed:016x} (persisted to {})\n  \
         minimal input: {best:?}\n  error: {best_err}\n  \
         replay: the seed file is replayed automatically on the next run",
        if replay { " (replaying persisted regression seed)" } else { "" },
        reg_path.display(),
    );
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each entry expands to a `#[test]` that draws the
/// bound pattern from the generator expression and runs the body; use
/// [`tk_assert!`](crate::tk_assert) / [`tk_assert_eq!`](crate::tk_assert_eq)
/// inside the body.
#[macro_export]
macro_rules! props {
    ($( $(#[cases($cases:expr)])? $(#[doc = $doc:expr])* fn $name:ident($pat:pat in $gen:expr) $body:block )+) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let mut __cfg = $crate::prop::Config::default();
                $( __cfg.cases = $cases; )?
                let __gen = $gen;
                $crate::prop::check(
                    concat!(module_path!(), "::", stringify!($name)),
                    env!("CARGO_MANIFEST_DIR"),
                    __cfg,
                    &__gen,
                    |__input| {
                        let $pat = ::std::clone::Clone::clone(__input);
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Property-body assertion: returns an `Err` (triggering shrinking) rather
/// than panicking.
#[macro_export]
macro_rules! tk_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Property-body equality assertion.
#[macro_export]
macro_rules! tk_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {left:?}\n  right: {right:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return Err(format!(
                "assertion failed: {} == {} — {}\n  left: {left:?}\n  right: {right:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Property-body inequality assertion.
#[macro_export]
macro_rules! tk_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {left:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_deterministic_per_seed() {
        let g = vec_of(range(0u32..100), 0..10);
        let a = g.generate(&mut TkRng::new(5));
        let b = g.generate(&mut TkRng::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn range_gen_respects_bounds() {
        let g = range(10u32..20);
        let mut rng = TkRng::new(1);
        for _ in 0..1000 {
            let v = g.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn int_shrinks_move_toward_low() {
        let g = range(3u32..1000);
        for cand in g.shrinks(&500) {
            assert!((3..500).contains(&cand), "bad shrink candidate {cand}");
        }
        assert!(g.shrinks(&3).is_empty(), "low bound does not shrink");
    }

    #[test]
    fn vec_shrinks_are_smaller_or_equal_len() {
        let g = vec_of(range(0u32..100), 1..20);
        let v: Vec<u32> = vec![9; 10];
        for cand in g.shrinks(&v) {
            assert!(cand.len() <= v.len());
            assert!(!cand.is_empty(), "respects min length");
        }
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // Property: v < 50. Minimal counterexample is 50; greedy shrink
        // from any failing value should land there.
        let g = range(0u64..1000);
        let mut rng = TkRng::new(99);
        let mut failing = None;
        for _ in 0..200 {
            let v = g.generate(&mut rng);
            if v >= 50 {
                failing = Some(v);
                break;
            }
        }
        let mut best = failing.expect("found a failing value");
        let mut budget = 2000;
        'outer: while budget > 0 {
            for cand in g.shrinks(&best) {
                budget -= 1;
                if cand >= 50 {
                    best = cand;
                    continue 'outer;
                }
                if budget == 0 {
                    break 'outer;
                }
            }
            break;
        }
        assert_eq!(best, 50, "greedy shrink reaches the boundary");
    }

    #[test]
    fn check_passes_trivial_property() {
        let dir = std::env::temp_dir();
        check(
            "testkit::internal::trivial",
            dir.to_str().unwrap(),
            Config {
                cases: 50,
                ..Config::default()
            },
            &range(0u32..10),
            |&v| {
                if v < 10 {
                    Ok(())
                } else {
                    Err("impossible".into())
                }
            },
        );
    }

    #[test]
    fn regression_seed_round_trip() {
        let dir = std::env::temp_dir().join("tk-selftest");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = regression_path(dir.to_str().unwrap(), "x::y");
        persist_regression_seed(&path, 0xdead_beef);
        persist_regression_seed(&path, 0xdead_beef); // dedup
        persist_regression_seed(&path, 5);
        assert_eq!(load_regression_seeds(&path), vec![0xdead_beef, 5]);
    }
}
