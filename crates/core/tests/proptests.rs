//! Property tests on the TDTCP connection: arbitrary interleavings of
//! notifications, crafted ACKs, timer fires and polls never violate the
//! state invariants (no panic, per-TDN accounting partitions the total,
//! the current TDN always has a state set, sequence progress is
//! monotone).

use proptest::collection::vec;
use proptest::prelude::*;
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, SackBlocks, Segment, SeqNum, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use wire::TdnId;

const MSS: u32 = 1000;

#[derive(Debug, Clone)]
enum Op {
    Poll,
    Notify(u8),
    Ack { ack_kmss: u32, sack: Option<(u32, u32)>, ack_tdn: u8 },
    Timer,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Poll),
        1 => (0u8..4).prop_map(Op::Notify),
        3 => (0u32..64, proptest::option::of((0u32..64, 1u32..16)), 0u8..3).prop_map(
            |(ack_kmss, sack, ack_tdn)| Op::Ack {
                ack_kmss,
                sack: sack.map(|(s, l)| (s, s + l)),
                ack_tdn,
            }
        ),
        1 => Just(Op::Timer),
    ]
}

fn establish() -> TdtcpConnection {
    let mut cfg = TdtcpConfig::default();
    cfg.tcp.mss = MSS;
    cfg.tcp.pacing = false;
    let cubic = Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    });
    let mut a = TdtcpConnection::connect(FlowId(1), cfg, &cubic, SimTime::ZERO);
    let mut synack = Segment::new(FlowId(1), tcp::Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.seq = SeqNum(0);
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 22;
    synack.td_capable = Some(2);
    a.handle_segment(SimTime::from_micros(100), &synack);
    assert!(a.is_established());
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_op_sequences_keep_invariants(ops in vec(arb_op(), 1..120)) {
        let mut conn = establish();
        let mut now_us = 200u64;
        let mut last_acked = 0u64;
        for op in ops {
            now_us += 37;
            let now = SimTime::from_micros(now_us);
            match op {
                Op::Poll => {
                    // Drain at most a window's worth to bound the test.
                    for _ in 0..64 {
                        if conn.poll_transmit(now).is_none() {
                            break;
                        }
                    }
                }
                Op::Notify(tdn) => conn.on_notification(now, TdnId(tdn)),
                Op::Ack { ack_kmss, sack, ack_tdn } => {
                    let mut seg = Segment::new(FlowId(1), tcp::Direction::AckPath);
                    seg.flags.ack = true;
                    seg.ack = SeqNum(1) + ack_kmss * MSS;
                    seg.wnd = 1 << 22;
                    seg.ack_tdn = Some(TdnId(ack_tdn));
                    if let Some((l, r)) = sack {
                        let mut sb = SackBlocks::EMPTY;
                        sb.push(SeqNum(1) + l * MSS, SeqNum(1) + r * MSS);
                        seg.sack = sb;
                    }
                    conn.handle_segment(now, &seg);
                }
                Op::Timer => {
                    if let Some(t) = conn.next_timer_at() {
                        let fire = t.as_micros().max(now_us) + 1;
                        now_us = fire;
                        conn.handle_timer(SimTime::from_micros(fire));
                    }
                }
            }

            // --- invariants ---
            // Sequence progress is monotone.
            let acked = conn.stats().bytes_acked;
            prop_assert!(acked >= last_acked);
            last_acked = acked;
            // The current TDN is always indexable.
            let cur = conn.current_tdn();
            prop_assert!(cur.index() < conn.num_tdn_states().max(1) + 256);
            let _ = conn.tdn_state(cur); // must not panic
            // Per-TDN pipes never exceed the total outstanding.
            let total = conn.total_packets_out();
            let mut per = 0;
            for i in 0..conn.num_tdn_states() {
                per += conn.pipe_bytes(TdnId(i as u8)) / MSS;
            }
            // pipe excludes lost/sacked so the partition is <= total
            // (plus retransmissions in flight, bounded by total).
            prop_assert!(per <= total * 2 + 2);
        }
    }

    /// Stats counters are monotone under any op sequence.
    #[test]
    fn counters_monotone(ops in vec(arb_op(), 1..80)) {
        let mut conn = establish();
        let mut now_us = 200u64;
        let mut prev = *conn.stats();
        for op in ops {
            now_us += 53;
            let now = SimTime::from_micros(now_us);
            match op {
                Op::Poll => { let _ = conn.poll_transmit(now); }
                Op::Notify(t) => conn.on_notification(now, TdnId(t)),
                Op::Ack { ack_kmss, .. } => {
                    let mut seg = Segment::new(FlowId(1), tcp::Direction::AckPath);
                    seg.flags.ack = true;
                    seg.ack = SeqNum(1) + ack_kmss * MSS;
                    seg.wnd = 1 << 22;
                    conn.handle_segment(now, &seg);
                }
                Op::Timer => conn.handle_timer(now),
            }
            let s = *conn.stats();
            prop_assert!(s.bytes_sent >= prev.bytes_sent);
            prop_assert!(s.retransmits >= prev.retransmits);
            prop_assert!(s.tdn_switches >= prev.tdn_switches);
            prop_assert!(s.segs_received >= prev.segs_received);
            prev = s;
        }
    }
}
