//! Property tests on the TDTCP connection: arbitrary interleavings of
//! notifications, crafted ACKs, timer fires and polls never violate the
//! state invariants (no panic, per-TDN accounting partitions the total,
//! the current TDN always has a state set, sequence progress is
//! monotone), and connection evolution is deterministic under replay.
//! Runs on the in-repo `testkit` harness.

use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, SackBlocks, Segment, SeqNum, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use testkit::prop::{option_of, range, tuple3, vec_of, weighted, Gen};
use testkit::{tk_assert, tk_assert_eq};
use wire::TdnId;

const MSS: u32 = 1000;

#[derive(Debug, Clone)]
enum Op {
    Poll,
    Notify(u8),
    Ack {
        ack_kmss: u32,
        sack: Option<(u32, u32)>,
        ack_tdn: u8,
    },
    Timer,
}

fn arb_op() -> Gen<Op> {
    weighted(vec![
        (3, testkit::prop::just(Op::Poll)),
        (1, range(0u8..4).map(Op::Notify)),
        (
            3,
            tuple3(
                range(0u32..64),
                option_of(testkit::prop::tuple2(range(0u32..64), range(1u32..16))),
                range(0u8..3),
            )
            .map(|(ack_kmss, sack, ack_tdn)| Op::Ack {
                ack_kmss,
                sack: sack.map(|(s, l)| (s, s + l)),
                ack_tdn,
            }),
        ),
        (1, testkit::prop::just(Op::Timer)),
    ])
}

fn establish() -> TdtcpConnection {
    let mut cfg = TdtcpConfig::default();
    cfg.tcp.mss = MSS;
    cfg.tcp.pacing = false;
    let cubic = Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    });
    let mut a = TdtcpConnection::connect(FlowId(1), cfg, &cubic, SimTime::ZERO);
    let mut synack = Segment::new(FlowId(1), tcp::Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.seq = SeqNum(0);
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 22;
    synack.td_capable = Some(2);
    a.handle_segment(SimTime::from_micros(100), &synack);
    assert!(a.is_established());
    a
}

/// Apply one op to a connection; returns the updated simulated clock.
fn apply_op(conn: &mut TdtcpConnection, op: &Op, mut now_us: u64) -> u64 {
    let now = SimTime::from_micros(now_us);
    match *op {
        Op::Poll => {
            // Drain at most a window's worth to bound the test.
            for _ in 0..64 {
                if conn.poll_transmit(now).is_none() {
                    break;
                }
            }
        }
        Op::Notify(tdn) => conn.on_notification(now, TdnId(tdn)),
        Op::Ack {
            ack_kmss,
            sack,
            ack_tdn,
        } => {
            let mut seg = Segment::new(FlowId(1), tcp::Direction::AckPath);
            seg.flags.ack = true;
            seg.ack = SeqNum(1) + ack_kmss * MSS;
            seg.wnd = 1 << 22;
            seg.ack_tdn = Some(TdnId(ack_tdn));
            if let Some((l, r)) = sack {
                let mut sb = SackBlocks::EMPTY;
                sb.push(SeqNum(1) + l * MSS, SeqNum(1) + r * MSS);
                seg.sack = sb;
            }
            conn.handle_segment(now, &seg);
        }
        Op::Timer => {
            if let Some(t) = conn.next_timer_at() {
                let fire = t.as_micros().max(now_us) + 1;
                now_us = fire;
                conn.handle_timer(SimTime::from_micros(fire));
            }
        }
    }
    now_us
}

testkit::props! {
    #[cases(64)]
    fn random_op_sequences_keep_invariants(ops in vec_of(arb_op(), 1..120)) {
        let mut conn = establish();
        let mut now_us = 200u64;
        let mut last_acked = 0u64;
        for op in &ops {
            now_us += 37;
            now_us = apply_op(&mut conn, op, now_us);

            // --- invariants ---
            // Sequence progress is monotone.
            let acked = conn.stats().bytes_acked;
            tk_assert!(acked >= last_acked);
            last_acked = acked;
            // The current TDN is always indexable.
            let cur = conn.current_tdn();
            tk_assert!(cur.index() < conn.num_tdn_states().max(1) + 256);
            let _ = conn.tdn_state(cur); // must not panic
            // Per-TDN pipes never exceed the total outstanding.
            let total = conn.total_packets_out();
            let mut per = 0;
            for i in 0..conn.num_tdn_states() {
                per += conn.pipe_bytes(TdnId(i as u8)) / MSS;
            }
            // pipe excludes lost/sacked so the partition is <= total
            // (plus retransmissions in flight, bounded by total).
            tk_assert!(per <= total * 2 + 2);
        }
    }

    // Stats counters are monotone under any op sequence.
    #[cases(64)]
    fn counters_monotone(ops in vec_of(arb_op(), 1..80)) {
        let mut conn = establish();
        let mut now_us = 200u64;
        let mut prev = *conn.stats();
        for op in &ops {
            now_us += 53;
            let now = SimTime::from_micros(now_us);
            match *op {
                Op::Poll => { let _ = conn.poll_transmit(now); }
                Op::Notify(t) => conn.on_notification(now, TdnId(t)),
                Op::Ack { ack_kmss, .. } => {
                    let mut seg = Segment::new(FlowId(1), tcp::Direction::AckPath);
                    seg.flags.ack = true;
                    seg.ack = SeqNum(1) + ack_kmss * MSS;
                    seg.wnd = 1 << 22;
                    conn.handle_segment(now, &seg);
                }
                Op::Timer => conn.handle_timer(now),
            }
            let s = *conn.stats();
            tk_assert!(s.bytes_sent >= prev.bytes_sent);
            tk_assert!(s.retransmits >= prev.retransmits);
            tk_assert!(s.tdn_switches >= prev.tdn_switches);
            tk_assert!(s.segs_received >= prev.segs_received);
            prev = s;
        }
    }

    // Gen-tagged TDN updates are idempotent and commutative up to the
    // newest generation: delivering the same notification set in any
    // order, with any amount of duplication, leaves the connection on
    // the same TDN, and every non-record delivery is discarded as
    // stale. This is the endpoint half of the fault-tolerance story —
    // the network may duplicate or reorder notifications freely.
    #[cases(64)]
    fn tdn_updates_idempotent(
        input in testkit::prop::tuple2(
            vec_of(range(0u8..4), 1..16),
            vec_of(range(0usize..1_000), 0..48),
        )
    ) {
        let (tdns, picks) = input;
        // Delivery order: arbitrary picks (with repeats) into the base
        // set, then every index once so nothing is permanently lost.
        let mut order: Vec<usize> = picks.iter().map(|p| p % tdns.len()).collect();
        order.extend(0..tdns.len());

        let mut inorder = establish();
        let mut shuffled = establish();
        let mut now_us = 200u64;
        for (i, &t) in tdns.iter().enumerate() {
            now_us += 11;
            inorder.on_notification_gen(SimTime::from_micros(now_us), TdnId(t), i as u64);
        }
        let mut expected_stale = 0u64;
        let mut max_gen: Option<u64> = None;
        for &i in &order {
            now_us += 11;
            shuffled.on_notification_gen(
                SimTime::from_micros(now_us),
                TdnId(tdns[i]),
                i as u64,
            );
            if max_gen.is_some_and(|m| i as u64 <= m) {
                expected_stale += 1;
            } else {
                max_gen = Some(i as u64);
            }
        }
        // Both converge on the newest generation's TDN...
        tk_assert_eq!(inorder.current_tdn(), TdnId(*tdns.last().unwrap()));
        tk_assert_eq!(shuffled.current_tdn(), inorder.current_tdn());
        // ...and every duplicate / out-of-order delivery was discarded.
        tk_assert_eq!(shuffled.stats().stale_notifies, expected_stale);
        tk_assert_eq!(inorder.stats().stale_notifies, 0);

        // Redelivering the whole set changes nothing but the stale count.
        let before = shuffled.current_tdn();
        let switches = shuffled.stats().tdn_switches;
        for &i in &order {
            now_us += 11;
            shuffled.on_notification_gen(
                SimTime::from_micros(now_us),
                TdnId(tdns[i]),
                i as u64,
            );
        }
        tk_assert_eq!(shuffled.current_tdn(), before);
        tk_assert_eq!(shuffled.stats().tdn_switches, switches);
        tk_assert_eq!(
            shuffled.stats().stale_notifies,
            expected_stale + order.len() as u64
        );
    }

    // New with the testkit port: connection evolution is a pure function
    // of the op sequence — replaying identical ops on a fresh connection
    // reproduces byte-identical stats digests at every step. This is the
    // per-connection half of the golden-trace determinism guarantee.
    #[cases(64)]
    fn replay_is_deterministic(ops in vec_of(arb_op(), 1..100)) {
        let mut a = establish();
        let mut b = establish();
        let (mut now_a, mut now_b) = (200u64, 200u64);
        for op in &ops {
            now_a += 37;
            now_b += 37;
            now_a = apply_op(&mut a, op, now_a);
            now_b = apply_op(&mut b, op, now_b);
            tk_assert_eq!(now_a, now_b, "timer schedules must agree");
            tk_assert_eq!(
                a.stats().digest(),
                b.stats().digest(),
                "stats diverged after {op:?}"
            );
            tk_assert_eq!(a.current_tdn(), b.current_tdn());
            tk_assert_eq!(a.total_packets_out(), b.total_packets_out());
        }
    }
}
