//! TDTCP behaviour tests: TD_CAPABLE negotiation, notification-driven
//! state swaps, the §3.4 relaxed reordering heuristic, §4.4 RTT sample
//! filtering, and the runtime TDN-growth / downgrade features of §4.2.

use simcore::{SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, SackBlocks, Segment, SeqNum, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use wire::TdnId;

const MSS: u32 = 1000;

fn cfg(bytes: u64) -> TdtcpConfig {
    TdtcpConfig {
        tcp: tcp::Config {
            mss: MSS,
            bytes_to_send: bytes,
            ..tcp::Config::default()
        },
        ..TdtcpConfig::default()
    }
}

fn cubic() -> Cubic {
    Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    })
}

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

/// Drive the three-way handshake by hand; returns (sender, receiver).
fn establish(c: TdtcpConfig) -> (TdtcpConnection, TdtcpConnection) {
    let mut a = TdtcpConnection::connect(FlowId(1), c.clone(), &cubic(), t(0));
    let mut b = TdtcpConnection::listen(FlowId(1), c, &cubic());
    let syn = a.poll_transmit(t(0)).expect("SYN");
    assert!(syn.flags.syn);
    b.handle_segment(t(10), &syn);
    let synack = b.poll_transmit(t(10)).expect("SYN-ACK");
    a.handle_segment(t(20), &synack);
    let ack = a.poll_transmit(t(20)).expect("handshake ACK");
    b.handle_segment(t(30), &ack);
    assert!(a.is_established());
    assert!(b.is_established());
    (a, b)
}

#[test]
fn td_capable_negotiation_succeeds_on_match() {
    let (a, b) = establish(cfg(10_000));
    assert!(a.is_tdtcp());
    assert!(b.is_tdtcp());
}

#[test]
fn syn_carries_td_capable_option() {
    let mut a = TdtcpConnection::connect(FlowId(1), cfg(1000), &cubic(), t(0));
    let syn = a.poll_transmit(t(0)).unwrap();
    assert_eq!(syn.td_capable, Some(2));
}

#[test]
fn tdn_count_mismatch_downgrades() {
    let mut ca = cfg(10_000);
    ca.num_tdns = 2;
    let mut cb = cfg(0);
    cb.num_tdns = 3; // disagrees
    let mut a = TdtcpConnection::connect(FlowId(1), ca, &cubic(), t(0));
    let mut b = TdtcpConnection::listen(FlowId(1), cb, &cubic());
    let syn = a.poll_transmit(t(0)).unwrap();
    b.handle_segment(t(10), &syn);
    let synack = b.poll_transmit(t(10)).unwrap();
    assert_eq!(synack.td_capable, None, "mismatch: no echo");
    a.handle_segment(t(20), &synack);
    assert!(!a.is_tdtcp());
    assert!(!b.is_tdtcp());
    // Data still flows as plain TCP: segments carry no TDN tags.
    let seg = a.poll_transmit(t(21)).unwrap(); // handshake ack
    b.handle_segment(t(25), &seg);
    let data = a.poll_transmit(t(30)).expect("data");
    assert!(data.has_payload());
    assert_eq!(data.data_tdn, None);
}

#[test]
fn notification_switches_current_and_sets_change_pointer() {
    let (mut a, _) = establish(cfg(u64::MAX));
    assert_eq!(a.current_tdn(), TdnId(0));
    // Send a few segments on TDN 0.
    for _ in 0..3 {
        a.poll_transmit(t(40)).expect("window open");
    }
    a.on_notification(t(50), TdnId(1));
    assert_eq!(a.current_tdn(), TdnId(1));
    assert_eq!(a.stats().tdn_switches, 1);
    // New data is tagged with the new TDN.
    let seg = a.poll_transmit(t(51)).expect("window open");
    assert_eq!(seg.data_tdn, Some(TdnId(1)));
    // Duplicate notification of the same TDN is a no-op.
    a.on_notification(t(60), TdnId(1));
    assert_eq!(a.stats().tdn_switches, 1);
}

#[test]
fn new_tdn_id_allocates_state_at_runtime() {
    let (mut a, _) = establish(cfg(u64::MAX));
    assert_eq!(a.num_tdn_states(), 2);
    a.on_notification(t(50), TdnId(5));
    assert_eq!(a.num_tdn_states(), 6, "states 2..=5 allocated");
    assert_eq!(a.current_tdn(), TdnId(5));
    // The fresh state starts at the initial window.
    assert_eq!(a.tdn_state(TdnId(5)).cc.cwnd(), 10 * MSS);
}

#[test]
fn downgrade_ignores_notifications() {
    let (mut a, _) = establish(cfg(u64::MAX));
    a.downgrade();
    assert!(!a.is_tdtcp());
    a.on_notification(t(50), TdnId(1));
    assert_eq!(a.current_tdn(), TdnId(0));
    assert_eq!(a.stats().tdn_switches, 0);
    let seg = a.poll_transmit(t(51)).expect("still sends");
    assert_eq!(seg.data_tdn, None, "no TDTCP options after downgrade");
}

/// Build the §3.4 scenario: segments sent on TDN 0, then a switch, then
/// segments on TDN 1; the TDN-1 segments are SACKed first.
fn cross_tdn_scenario(relaxed: bool) -> (TdtcpConnection, Vec<Segment>) {
    let mut c = cfg(u64::MAX);
    c.relaxed_reordering = relaxed;
    let (mut a, _) = establish(c);
    let mut sent = Vec::new();
    // Three segments on TDN 0 (seqs 1, 1001, 2001).
    for _ in 0..3 {
        sent.push(a.poll_transmit(t(40)).expect("cwnd open"));
    }
    a.on_notification(t(45), TdnId(1));
    // Three segments on TDN 1 (seqs 3001, 4001, 5001).
    for _ in 0..3 {
        sent.push(a.poll_transmit(t(46)).expect("cwnd open"));
    }
    (a, sent)
}

fn sack_ack(ack: u32, blocks: &[(u32, u32)], ack_tdn: Option<u8>) -> Segment {
    let mut s = Segment::new(FlowId(1), tcp::Direction::AckPath);
    s.flags.ack = true;
    s.ack = SeqNum(ack);
    s.wnd = 1 << 20;
    s.ack_tdn = ack_tdn.map(TdnId);
    let mut sb = SackBlocks::EMPTY;
    for &(l, r) in blocks {
        sb.push(SeqNum(l), SeqNum(r));
    }
    s.sack = sb;
    s
}

#[test]
fn relaxed_detection_spares_cross_tdn_holes() {
    let (mut a, _) = cross_tdn_scenario(true);
    // ACKs for the TDN-1 segments arrive first (low-latency network),
    // SACKing 3001..6001 while 1..3001 (TDN 0) is still in flight.
    let ack = sack_ack(1, &[(3001, 6001)], Some(1));
    a.handle_segment(t(60), &ack);
    assert!(
        a.stats().relaxed_skips >= 3,
        "TDN-0 holes spared: {:?}",
        a.stats()
    );
    assert_eq!(
        a.stats().reorder_marked_pkts, 0,
        "nothing marked lost on pure cross-TDN reordering"
    );
    // No retransmission is queued.
    assert_eq!(a.stats().retransmits, 0);
    // TDN 0 stays Open (Fig. 4).
    assert!(!a.tdn_state(TdnId(0)).in_recovery());
    // The delayed TDN-0 ACK then arrives and everything resolves.
    let late = sack_ack(6001, &[], Some(0));
    a.handle_segment(t(90), &late);
    assert_eq!(a.stats().retransmits, 0);
}

#[test]
fn classic_detection_marks_cross_tdn_holes() {
    let (mut a, _) = cross_tdn_scenario(false);
    let ack = sack_ack(1, &[(3001, 6001)], Some(1));
    a.handle_segment(t(60), &ack);
    assert!(
        a.stats().reorder_marked_pkts >= 3,
        "without relaxation the TDN-0 segments are declared lost: {:?}",
        a.stats()
    );
    // And spurious retransmissions go out.
    let r = a.poll_transmit(t(61)).expect("retransmission queued");
    assert!(r.has_payload());
    assert!(a.stats().retransmits >= 1);
}

#[test]
fn same_tdn_hole_is_a_real_loss() {
    // Loss within one TDN must still be detected promptly even with
    // relaxation on: segments 1 and 2 sent on TDN 1 along with 3..6; the
    // hole has the same TDN as the trigger -> marked.
    let mut c = cfg(u64::MAX);
    c.relaxed_reordering = true;
    let (mut a, _) = establish(c);
    a.on_notification(t(35), TdnId(1));
    for _ in 0..6 {
        a.poll_transmit(t(40)).expect("cwnd open");
    }
    // First segment (seq 1..1001) lost; 1001..6001 SACKed on same TDN.
    let ack = sack_ack(1, &[(1001, 6001)], Some(1));
    a.handle_segment(t(60), &ack);
    assert!(a.stats().reorder_marked_pkts >= 1, "{:?}", a.stats());
    assert!(a.tdn_state(TdnId(1)).in_recovery());
    let r = a.poll_transmit(t(61)).expect("fast retransmit");
    assert_eq!(r.seq, SeqNum(1));
}

#[test]
fn stale_cross_tdn_hole_eventually_marked() {
    // A cross-TDN hole older than the slowest-RTT cutoff is a true tail
    // loss and must be marked even under relaxation (§3.4's RACK-TLP
    // fallback).
    let (mut a, _) = cross_tdn_scenario(true);
    // Same SACK pattern as the spare test, but arriving 1.5 ms after the
    // TDN-0 segments went out — far beyond any plausible delayed
    // delivery (the handshake seeded srtt, so the cutoff is known).
    let ack = sack_ack(1, &[(3001, 6001)], Some(1));
    a.handle_segment(t(1500), &ack);
    assert!(
        a.stats().reorder_marked_pkts >= 1,
        "stale hole must be declared lost: {:?}",
        a.stats()
    );
}

#[test]
fn rtt_samples_filtered_by_tdn() {
    let (mut a, _) = establish(cfg(u64::MAX));
    // Segment sent on TDN 0 at t=40.
    a.poll_transmit(t(40)).expect("data");
    // Its ACK returns tagged TDN 1: type-3 sample, discarded.
    let ack = sack_ack(1001, &[], Some(1));
    a.handle_segment(t(140), &ack);
    assert_eq!(a.stats().cross_tdn_rtt_discards, 1);
    assert_eq!(a.tdn_state(TdnId(0)).rtt.samples(), 1, "handshake sample only");
    // Next segment's ACK returns on TDN 0: accepted into TDN 0.
    a.poll_transmit(t(150)).expect("data");
    let ack2 = sack_ack(2001, &[], Some(0));
    a.handle_segment(t(250), &ack2);
    assert_eq!(a.tdn_state(TdnId(0)).rtt.samples(), 2);
    assert_eq!(
        a.tdn_state(TdnId(0)).rtt.latest(),
        Some(SimDuration::from_micros(100))
    );
}

#[test]
fn per_tdn_cwnd_checkpoints_survive_switches() {
    let (mut a, _) = establish(cfg(u64::MAX));
    // Grow TDN 0's window: send + ack a few rounds.
    let mut next_ack = 1u32;
    for round in 0..5 {
        let base = t(100 * (round + 1));
        while a.poll_transmit(base).is_some() {}
        // Ack everything outstanding.
        next_ack = {
            let outstanding = a.total_packets_out();
            next_ack + outstanding * MSS
        };
        let ack = sack_ack(next_ack, &[], Some(0));
        a.handle_segment(base + SimDuration::from_micros(50), &ack);
    }
    let grown = a.tdn_state(TdnId(0)).cc.cwnd();
    assert!(grown > 10 * MSS, "TDN 0 window grew: {grown}");
    // Switch away and back: the checkpoint is intact.
    a.on_notification(t(1000), TdnId(1));
    assert_eq!(a.tdn_state(TdnId(1)).cc.cwnd(), 10 * MSS, "fresh TDN 1");
    a.on_notification(t(1200), TdnId(0));
    assert_eq!(a.tdn_state(TdnId(0)).cc.cwnd(), grown, "checkpoint resumed");
}

#[test]
fn ack_with_nothing_outstanding_ignored() {
    let (mut a, _) = establish(cfg(u64::MAX));
    let before = *a.stats();
    let stale = sack_ack(1, &[], Some(0));
    a.handle_segment(t(100), &stale);
    let after = *a.stats();
    assert_eq!(before.bytes_acked, after.bytes_acked);
    assert_eq!(before.reorder_events, after.reorder_events);
}

#[test]
fn syn_tracked_under_tdn_zero() {
    // Appendix A.2: even if the very first notification says TDN 1, the
    // SYN is accounted to TDN 0 and its ACK credits TDN 0.
    let mut a = TdtcpConnection::connect(FlowId(1), cfg(u64::MAX), &cubic(), t(0));
    a.on_notification(t(0), TdnId(1));
    let _syn = a.poll_transmit(t(0)).unwrap();
    let mut synack = Segment::new(FlowId(1), tcp::Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.seq = SeqNum(0);
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 20;
    synack.td_capable = Some(2);
    a.handle_segment(t(100), &synack);
    assert!(a.is_established());
    assert_eq!(a.total_packets_out(), 0, "SYN credited despite TDN 1 active");
}

#[test]
fn fin_transfer_completes() {
    let (mut a, mut b) = establish(cfg(2500));
    let mut now = 40u64;
    // Simple synchronous relay until both ends are done.
    for _ in 0..200 {
        now += 10;
        let mut moved = false;
        while let Some(s) = a.poll_transmit(t(now)) {
            b.handle_segment(t(now + 5), &s);
            moved = true;
        }
        while let Some(s) = b.poll_transmit(t(now + 5)) {
            a.handle_segment(t(now + 10), &s);
            moved = true;
        }
        if a.is_done() && b.is_done() {
            break;
        }
        if !moved {
            // Let timers fire if stalled.
            if let Some(tt) = a.next_timer_at() {
                now = now.max(tt.as_micros() + 1);
                a.handle_timer(t(now));
            }
        }
    }
    assert!(a.is_done(), "{a:?}");
    assert_eq!(b.stats().bytes_delivered, 2500);
}

#[test]
fn heterogeneous_ccas_per_tdn() {
    // §3.5 extension: a different CCA in each TDN. Give TDN 0 Reno and
    // TDN 1 CUBIC and confirm each TDN's state reports its own algorithm
    // and evolves independently.
    use tcp::cc::{CongestionControl, Reno};
    let ccs: Vec<Box<dyn CongestionControl>> = vec![
        Box::new(Reno::new(tcp::cc::CcConfig {
            mss: MSS,
            init_cwnd_pkts: 4,
            max_cwnd: 1 << 20,
        })),
        Box::new(cubic()),
    ];
    let mut a = TdtcpConnection::connect_with_ccas(FlowId(1), cfg(u64::MAX), ccs, t(0));
    // Complete the handshake by hand.
    let _syn = a.poll_transmit(t(0)).unwrap();
    let mut synack = Segment::new(FlowId(1), tcp::Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 20;
    synack.td_capable = Some(2);
    a.handle_segment(t(100), &synack);
    assert!(a.is_established());
    assert_eq!(a.tdn_state(TdnId(0)).cc.name(), "reno");
    assert_eq!(a.tdn_state(TdnId(1)).cc.name(), "cubic");
    assert_eq!(a.tdn_state(TdnId(0)).cc.cwnd(), 4 * MSS, "Reno's init cwnd");
    assert_eq!(a.tdn_state(TdnId(1)).cc.cwnd(), 10 * MSS, "CUBIC's init cwnd");
    // A loss on TDN 1 leaves TDN 0's Reno untouched.
    a.on_notification(t(110), TdnId(1));
    for _ in 0..6 {
        a.poll_transmit(t(120));
    }
    let ack = sack_ack(1, &[(1001, 6001)], Some(1));
    a.handle_segment(t(200), &ack);
    assert!(a.tdn_state(TdnId(1)).in_recovery());
    assert!(!a.tdn_state(TdnId(0)).in_recovery());
    assert_eq!(a.tdn_state(TdnId(0)).cc.cwnd(), 4 * MSS);
}

#[test]
fn runtime_tdn_growth_clones_template_cca() {
    use tcp::cc::{CongestionControl, Reno};
    let ccs: Vec<Box<dyn CongestionControl>> = vec![
        Box::new(Reno::new(tcp::cc::CcConfig {
            mss: MSS,
            init_cwnd_pkts: 4,
            max_cwnd: 1 << 20,
        })),
        Box::new(cubic()),
    ];
    let mut a = TdtcpConnection::connect_with_ccas(FlowId(1), cfg(u64::MAX), ccs, t(0));
    a.on_notification(t(5), TdnId(3));
    assert_eq!(a.num_tdn_states(), 4);
    // Newly allocated TDNs clone from state 0's algorithm family.
    assert_eq!(a.tdn_state(TdnId(3)).cc.name(), "reno");
}
