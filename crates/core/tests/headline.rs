//! The headline result (§1, §5.2): TDTCP substantially out-performs
//! single-path CUBIC on the hybrid RDCN, because per-TDN state lets it
//! resume each network's window from a checkpoint instead of re-probing.

use rdcn::{analytic, Emulator, NetConfig};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{Config, Connection, FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

const FLOWS: usize = 16;

fn run_variant(variant: &str, horizon: SimTime) -> f64 {
    let cfg = NetConfig::paper_baseline();
    let cc = CcConfig::default();
    let factory: rdcn::EndpointFactory = match variant {
        "cubic" => Box::new(move |i| {
            let c = Config::default();
            (
                Box::new(Connection::connect(
                    FlowId(i as u32),
                    c.clone(),
                    Box::new(Cubic::new(cc)),
                    SimTime::ZERO,
                )) as Box<dyn Transport>,
                Box::new(Connection::listen(FlowId(i as u32), c, Box::new(Cubic::new(cc))))
                    as Box<dyn Transport>,
            )
        }),
        "tdtcp" => Box::new(move |i| {
            let c = TdtcpConfig::default();
            let template = Cubic::new(cc);
            (
                Box::new(TdtcpConnection::connect(
                    FlowId(i as u32),
                    c.clone(),
                    &template,
                    SimTime::ZERO,
                )) as Box<dyn Transport>,
                Box::new(TdtcpConnection::listen(FlowId(i as u32), c, &template))
                    as Box<dyn Transport>,
            )
        }),
        _ => unreachable!(),
    };
    let emu = Emulator::new(cfg, FLOWS, factory);
    let res = emu.run(horizon);
    res.total_acked() as f64
}

#[test]
fn tdtcp_beats_cubic_headline() {
    let horizon = SimTime::from_millis(25);
    let cubic = run_variant("cubic", horizon);
    let tdtcp = run_variant("tdtcp", horizon);
    let cfg = NetConfig::paper_baseline();
    let optimal = analytic::optimal_bytes(&cfg, horizon);
    let packet_only = analytic::packet_only_bytes(&cfg, horizon);
    let gain = tdtcp / cubic - 1.0;
    println!(
        "cubic={cubic:.0} tdtcp={tdtcp:.0} optimal={optimal:.0} packet_only={packet_only:.0} gain={:.1}%",
        gain * 100.0
    );
    // The paper reports 24% over CUBIC in this setting; demand the right
    // shape: a double-digit improvement, bounded by optimal.
    assert!(
        gain > 0.10,
        "TDTCP gain over CUBIC only {:.1}%",
        gain * 100.0
    );
    assert!(tdtcp < optimal);
    // And TDTCP must exploit the optical capacity: clearly above any
    // packet-only strategy.
    assert!(tdtcp > packet_only);
}
