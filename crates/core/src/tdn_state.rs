//! Per-TDN duplicated path state (§3.1).
//!
//! TDTCP's central mechanism: every variable TCP uses to model a path is
//! duplicated per TDN, grouped exactly as the paper groups them —
//!
//! * **pipe** variables (`packets_out`, `lost_out`, `retrans_out`, ...)
//!   are *derived* from the shared retransmission queue by filtering on
//!   each segment's TDN tag, which automatically yields the paper's §4.3
//!   semantics: *current TDN* (tag new data with the active TDN),
//!   *all TDNs* (sum over tags), *any TDN* (logical OR over tags), and
//!   *specific TDN* (credit the tag found in the queue);
//! * **congestion control** variables (`cwnd`, `ssthresh`, `ca_state`)
//!   live here as one CCA instance + CA state machine per TDN;
//! * **delay/RTT** variables (`srtt`, `rttvar`, `mdev`) live here as one
//!   estimator per TDN.
//!
//! When the network reconfigures, TDTCP swaps the active set; inactive
//! sets are frozen except for the §3.1 exceptions (e.g. crediting in-
//! flight counts when an ACK for an old TDN's data arrives — which the
//! derived pipe counters handle by construction).

use tcp::cc::CongestionControl;
use tcp::rtt::RttEstimator;
use tcp::{CaState, SeqNum};

/// All duplicated state for one TDN.
pub struct TdnState {
    /// Congestion control instance (the paper uses CUBIC in every TDN but
    /// the type is pluggable per §3.5).
    pub cc: Box<dyn CongestionControl>,
    /// RTT estimator fed only by same-TDN samples (§4.4).
    pub rtt: RttEstimator,
    /// This TDN's congestion-avoidance state (Fig. 4: one machine per TDN).
    pub ca: CaState,
    /// Fast-recovery exit point for this TDN, if it is recovering.
    pub recovery_point: Option<SeqNum>,
    /// Duplicate-ACK count attributed to this TDN.
    pub dupacks: u32,
}

impl TdnState {
    /// Fresh state cloned from a template CCA (initial cwnd, no samples).
    pub fn new(template: &dyn CongestionControl, rtt: RttEstimator) -> Self {
        TdnState {
            cc: template.clone_box(),
            rtt,
            ca: CaState::Open,
            recovery_point: None,
            dupacks: 0,
        }
    }

    /// Whether this TDN is in a recovery mode.
    pub fn in_recovery(&self) -> bool {
        self.ca.in_recovery()
    }
}

impl std::fmt::Debug for TdnState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdnState")
            .field("cwnd", &self.cc.cwnd())
            .field("ca", &self.ca)
            .field("srtt", &self.rtt.srtt())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;
    use tcp::cc::{CcConfig, Cubic};
    use tcp::rtt::RttConfig;

    #[test]
    fn fresh_state_per_tdn_is_independent() {
        let template = Cubic::new(CcConfig::default());
        let rtt = RttEstimator::new(RttConfig::default());
        let mut a = TdnState::new(&template, rtt);
        let b = TdnState::new(&template, rtt);
        // Mutating one TDN's state leaves the other untouched.
        a.cc.on_rto(simcore::SimTime::ZERO);
        a.rtt.on_sample(SimDuration::from_micros(40));
        a.ca = CaState::Recovery;
        assert_ne!(a.cc.cwnd(), b.cc.cwnd());
        assert_eq!(b.rtt.samples(), 0);
        assert_eq!(b.ca, CaState::Open);
        assert!(a.in_recovery());
        assert!(!b.in_recovery());
    }

    #[test]
    fn independent_rtt_models_stay_clean() {
        // The §3.1 motivation, inverted: with per-TDN estimators each
        // tracks its own path exactly (contrast with the blended-EWMA test
        // in tcp::rtt).
        let template = Cubic::new(CcConfig::default());
        let rtt = RttEstimator::new(RttConfig::default());
        let mut pkt = TdnState::new(&template, rtt);
        let mut opt = TdnState::new(&template, rtt);
        for _ in 0..50 {
            pkt.rtt.on_sample(SimDuration::from_micros(100));
            opt.rtt.on_sample(SimDuration::from_micros(40));
        }
        let p = pkt.rtt.srtt().unwrap().as_micros();
        let o = opt.rtt.srtt().unwrap().as_micros();
        assert!((95..=105).contains(&p), "packet srtt {p}us");
        assert!((38..=42).contains(&o), "optical srtt {o}us");
    }
}
