//! # tdtcp — Time-division TCP (SIGCOMM 2022)
//!
//! The paper's primary contribution: a TCP variant for reconfigurable
//! data center networks that multiplexes a connection across independent
//! per-path congestion states over *time*, the way MPTCP multiplexes
//! subflows over space — except only one "subflow" is ever active, and
//! all of them share a single sequence number space.
//!
//! * [`TdnState`] — the duplicated per-TDN state sets of §3.1;
//! * [`TdtcpConnection`] — the connection: TD_CAPABLE negotiation (§4.2),
//!   out-of-band TDN-change notifications (§3.2), relaxed cross-TDN
//!   reordering detection (§3.4), per-TDN RTT estimation with pessimistic
//!   RTO synthesis (§4.4), and the §4.3 current/all/any/specific-TDN
//!   accounting semantics;
//! * [`TdtcpConfig`] — configuration, including ablation switches for
//!   every design decision (per-TDN state, relaxed detection, pessimistic
//!   RTO) so the benches can quantify each.
//!
//! The engine implements [`tcp::Transport`], so the `rdcn` emulator
//! drives it exactly like any other variant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connection;
pub mod tdn_state;

pub use connection::{State, TdtcpConfig, TdtcpConnection, WatchdogConfig};
pub use tdn_state::TdnState;
