//! The TDTCP connection.
//!
//! Structurally parallel to `tcp::Connection` (the paper's implementation
//! is likewise a pervasive fork of the Linux stack, §4) but with the four
//! mechanisms that define TDTCP:
//!
//! 1. **Per-TDN state** (§3.1/§4.3): one [`TdnState`] per TDN — CCA, RTT
//!    estimator, CA machine — swapped on notification; pipe counters are
//!    derived from the shared retransmission queue by TDN tag.
//! 2. **TDN change notifications** (§3.2): an out-of-band signal moves the
//!    connection onto another TDN's state set and records the TDN change
//!    pointer (`snd_nxt` at the switch).
//! 3. **A single sequence space** (§3.3): one retransmission queue and one
//!    reassembler regardless of TDN, so ACKs returning on any TDN drive
//!    progress and no subflow coordination exists.
//! 4. **Relaxed reordering detection** (§3.4): hole segments whose TDN
//!    differs from the triggering ACK's TDN are not declared lost; only
//!    same-TDN holes are retransmitted, and cross-TDN tail losses fall
//!    back to RACK-TLP-style time-based marking.
//!
//! RTT estimation follows §4.4: samples whose data and ACK TDNs differ
//! (type-3) are discarded; the retransmission timer pessimistically
//! assumes ACKs return on the slowest TDN (`½·RTT_n + ½·RTT_slowest`).

use crate::tdn_state::TdnState;
use simcore::{SimDuration, SimTime};
use std::collections::VecDeque;
use tcp::cc::{AckEvent, CongestionControl};
use tcp::recv::Reassembler;
use tcp::rtt::RttEstimator;
use tcp::rtx::{RtxQueue, TxSeg};
use tcp::{CaState, ConnError, ConnStats, Direction, FlowId, Segment, SeqNum, Transport};
use wire::{Ecn, TdnId};

/// Notification watchdog parameters.
///
/// The host knows the schedule is periodic (§3.2's pull model polls "the
/// global variable" at this cadence); if no notification arrives within
/// one period plus a guard band covering delivery-latency spread, the
/// host must assume it missed a TDN change and can no longer trust its
/// per-TDN state selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Expected notification period (the schedule's day+night slot).
    pub period: SimDuration,
    /// Guard band absorbing notification delivery-latency variation.
    pub guard: SimDuration,
    /// Congestion-window cap, in packets, while desynchronized.
    pub degraded_cwnd_pkts: u32,
}

impl WatchdogConfig {
    /// A watchdog for a schedule whose day+night slot is `slot`: period =
    /// slot, guard = slot/2. The guard comfortably exceeds the per-host
    /// notification latency spread (tens of µs even unoptimized) while a
    /// single missed notification — a 2·slot gap — still overshoots the
    /// deadline by slot/2 and is reliably detected.
    pub fn for_slot(slot: SimDuration) -> WatchdogConfig {
        Self::for_slot_with_guard(slot, slot / 2)
    }

    /// A watchdog for a schedule whose slot is `slot` with an explicit
    /// guard band — the network-wide `NetConfig::guard_band`, so the
    /// endpoint's timer slack, skew-gate window, and escalation threshold
    /// agree with the slack the switch actually enforces at slot edges.
    pub fn for_slot_with_guard(slot: SimDuration, guard: SimDuration) -> WatchdogConfig {
        WatchdogConfig {
            period: slot,
            guard,
            degraded_cwnd_pkts: 4,
        }
    }
}

/// TDTCP configuration: the base TCP knobs plus the TDTCP-specific ones.
#[derive(Debug, Clone)]
pub struct TdtcpConfig {
    /// Base engine configuration (MSS, buffers, RTO bounds, ...).
    pub tcp: tcp::Config,
    /// Number of TDNs this host observes; both ends must agree (§4.2).
    pub num_tdns: u8,
    /// Relaxed cross-TDN reordering detection (§3.4). Disabling it is the
    /// ablation that degrades TDTCP to Reno-style hole marking.
    pub relaxed_reordering: bool,
    /// Pessimistic RTO synthesis `½·RTT_n + ½·RTT_slowest` (§4.4).
    /// Disabling it uses each TDN's own RTO (the premature-timeout
    /// ablation).
    pub pessimistic_rto: bool,
    /// Duplicate state per TDN (§3.1). Disabling collapses every TDN onto
    /// set 0 — the ablation that makes TDTCP behave like single-path TCP.
    pub per_tdn_state: bool,
    /// Missed-notification watchdog; `None` (the default) trusts every
    /// notification to arrive, the pre-hardening behavior.
    pub watchdog: Option<WatchdogConfig>,
}

impl Default for TdtcpConfig {
    fn default() -> Self {
        // Sender pacing prevents the cwnd-sized burst at every TDN switch
        // from overflowing the shallow ToR VOQ (§5.2's "initial burst").
        let tcp_cfg = tcp::Config {
            pacing: true,
            ..tcp::Config::default()
        };
        TdtcpConfig {
            tcp: tcp_cfg,
            num_tdns: 2,
            relaxed_reordering: true,
            pessimistic_rto: true,
            per_tdn_state: true,
            watchdog: None,
        }
    }
}

/// Connection state (same simplified close path as `tcp::Connection`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// No connection.
    Closed,
    /// SYN sent with `TD_CAPABLE`.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data flows.
    Established,
    /// FIN sent, awaiting its ACK.
    FinWait,
    /// Transfer complete.
    Done,
}

/// A TDTCP endpoint.
pub struct TdtcpConnection {
    cfg: TdtcpConfig,
    flow: FlowId,
    data_dir: Direction,
    state: State,

    /// Per-TDN duplicated state, indexed by TDN id.
    tdns: Vec<TdnState>,
    /// The TDN the host currently believes is active (§3.2's "pull model"
    /// global variable).
    current: TdnId,
    /// First sequence number sent on the current TDN (§3.4's TDN change
    /// pointer).
    tdn_change_ptr: SeqNum,
    /// Whether TD_CAPABLE negotiation succeeded.
    negotiated: bool,
    /// Locally downgraded to regular TCP (§4.2): per-TDN logic off, no
    /// TDTCP options emitted, notifications ignored.
    downgraded: bool,

    // --- send half (shared across TDNs: single sequence space, §3.3) ---
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    rtx: RtxQueue,
    peer_wnd: u32,
    bytes_unsent: u64,
    fin_acked: bool,
    dupacks: u32,

    rto_deadline: Option<SimTime>,
    tlp_deadline: Option<SimTime>,
    rto_backoff: u32,
    /// When the RTO timer was last (re)armed — the last send/ACK activity
    /// on the retransmission path. The gap to a subsequent RTO firing is
    /// the dead air accounted to `ConnStats::stall_ns`.
    rto_armed_at: SimTime,
    /// Zero-window persist timer: armed when the peer's window is closed,
    /// nothing is outstanding (so no RTO is armed), and data waits.
    persist_deadline: Option<SimTime>,
    persist_backoff: u32,
    /// Terminal error, if the connection aborted.
    error: Option<ConnError>,
    /// Pacing release time for the next data segment (§5.2 mentions
    /// sender pacing as the mitigation for the initial burst at TDN
    /// switches; TDTCP enables it by default).
    next_paced_at: SimTime,

    // --- receive half ---
    rx: Option<Reassembler>,
    peer_fin: Option<SeqNum>,
    dctcp_rx: tcp::cc::dctcp::DctcpReceiver,
    echo_circuit: bool,

    pending: VecDeque<Segment>,
    stats: ConnStats,
    established_at: Option<SimTime>,

    // --- notification hardening ---
    /// Highest notification generation applied; duplicates and reordered
    /// deliveries carry a gen at or below this and are discarded.
    last_gen: Option<u64>,
    /// Arrival time of the last applied notification (watchdog baseline).
    last_notify_at: Option<SimTime>,
    /// Desynchronized: the watchdog inferred a missed TDN change. Per-TDN
    /// state selection collapses to set 0 and the effective cwnd is
    /// capped until a fresh notification resynchronizes the host.
    degraded: bool,
    degraded_since: Option<SimTime>,

    // --- skew hardening (local-clock drift vs. the ToR's cadence) ---
    /// Phase reference for the skew estimator: generation and local
    /// arrival time of the first applied notification since the last
    /// (re)baseline. Notification `g` is expected at
    /// `ref_time + (g - ref_gen)·period` on a well-disciplined clock;
    /// the signed residual against that is pure local-clock skew plus
    /// bounded delivery-latency noise.
    skew_ref: Option<(u64, SimTime)>,
    /// EWMA (gain 1/8) of those residuals in nanoseconds — the host's
    /// estimate of how far its clock has slid against the schedule.
    skew_ewma_ns: f64,
    /// End of the current skew-gate pause, if the pacer is held across a
    /// predicted slot edge. Folded into `next_timer_at` so the driver
    /// wakes the host when the edge passes.
    skew_gate_until: Option<SimTime>,
}

impl TdtcpConnection {
    /// Create the initiating endpoint; queues a SYN carrying `TD_CAPABLE`.
    pub fn connect(
        flow: FlowId,
        cfg: TdtcpConfig,
        cc_template: &dyn CongestionControl,
        now: SimTime,
    ) -> Self {
        let mut c = Self::new_endpoint(flow, Direction::DataPath, cfg, cc_template);
        c.send_syn(now);
        c.state = State::SynSent;
        c
    }

    /// Create the passive endpoint (bulk sink).
    pub fn listen(flow: FlowId, cfg: TdtcpConfig, cc_template: &dyn CongestionControl) -> Self {
        let mut cfg = cfg;
        cfg.tcp.bytes_to_send = 0;
        Self::new_endpoint(flow, Direction::AckPath, cfg, cc_template)
    }

    /// Create an initiating endpoint with a *different* congestion control
    /// algorithm in each TDN — the §3.5 extension ("in principle, TDTCP
    /// could use multiple, different CCAs within a single flow").
    ///
    /// `ccas[i]` serves TDN `i`; TDNs beyond the list (allocated at
    /// runtime) clone the last entry.
    ///
    /// # Panics
    /// Panics if `ccas` is empty.
    pub fn connect_with_ccas(
        flow: FlowId,
        cfg: TdtcpConfig,
        ccas: Vec<Box<dyn CongestionControl>>,
        now: SimTime,
    ) -> Self {
        assert!(!ccas.is_empty(), "at least one CCA required");
        let mut c = Self::connect(flow, cfg, ccas[0].as_ref(), now);
        c.install_ccas(ccas);
        c
    }

    /// Listener counterpart of [`TdtcpConnection::connect_with_ccas`].
    pub fn listen_with_ccas(
        flow: FlowId,
        cfg: TdtcpConfig,
        ccas: Vec<Box<dyn CongestionControl>>,
    ) -> Self {
        assert!(!ccas.is_empty(), "at least one CCA required");
        let mut c = Self::listen(flow, cfg, ccas[0].as_ref());
        c.install_ccas(ccas);
        c
    }

    fn install_ccas(&mut self, ccas: Vec<Box<dyn CongestionControl>>) {
        for (i, cc) in ccas.into_iter().enumerate() {
            if i < self.tdns.len() {
                self.tdns[i].cc = cc;
            }
        }
    }

    fn new_endpoint(
        flow: FlowId,
        data_dir: Direction,
        cfg: TdtcpConfig,
        cc_template: &dyn CongestionControl,
    ) -> Self {
        assert!(cfg.num_tdns >= 1);
        let rtt = RttEstimator::new(cfg.tcp.rtt);
        let n = if cfg.per_tdn_state { cfg.num_tdns } else { 1 };
        let tdns = (0..n).map(|_| TdnState::new(cc_template, rtt)).collect();
        let isn = SeqNum(cfg.tcp.isn);
        TdtcpConnection {
            bytes_unsent: cfg.tcp.bytes_to_send,
            tdns,
            cfg,
            flow,
            data_dir,
            state: State::Closed,
            current: TdnId::ZERO,
            tdn_change_ptr: isn,
            negotiated: false,
            downgraded: false,
            snd_una: isn,
            snd_nxt: isn,
            rtx: RtxQueue::new(),
            peer_wnd: u32::MAX,
            fin_acked: false,
            dupacks: 0,
            rto_deadline: None,
            tlp_deadline: None,
            rto_backoff: 0,
            rto_armed_at: SimTime::ZERO,
            persist_deadline: None,
            persist_backoff: 0,
            error: None,
            next_paced_at: SimTime::ZERO,
            rx: None,
            peer_fin: None,
            dctcp_rx: tcp::cc::dctcp::DctcpReceiver::new(),
            echo_circuit: false,
            pending: VecDeque::new(),
            stats: ConnStats::new(),
            established_at: None,
            last_gen: None,
            last_notify_at: None,
            degraded: false,
            degraded_since: None,
            skew_ref: None,
            skew_ewma_ns: 0.0,
            skew_gate_until: None,
        }
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// The TDN this endpoint currently believes is active.
    pub fn current_tdn(&self) -> TdnId {
        self.current
    }

    /// Whether TD_CAPABLE negotiation succeeded and the connection speaks
    /// TDTCP (not downgraded).
    pub fn is_tdtcp(&self) -> bool {
        self.negotiated && !self.downgraded
    }

    /// Read a TDN's duplicated state (panics on out-of-range id).
    pub fn tdn_state(&self, tdn: TdnId) -> &TdnState {
        &self.tdns[self.state_index(tdn)]
    }

    /// Congestion window of the currently active TDN, after the degraded-
    /// mode cap (the window actually gating transmission).
    pub fn cwnd(&self) -> u32 {
        self.effective_cwnd()
    }

    /// Whether the connection is currently desynchronized (watchdog fired,
    /// no fresh notification yet).
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The terminal error this connection aborted with, if any.
    pub fn conn_error(&self) -> Option<ConnError> {
        self.error
    }

    /// The active TDN's congestion window, capped while degraded: a
    /// desynchronized host cannot know which TDN it is on, so it sends
    /// conservatively on state set 0 until resynchronized.
    fn effective_cwnd(&self) -> u32 {
        let raw = self.cur().cc.cwnd();
        match (self.degraded, self.cfg.watchdog) {
            (true, Some(wd)) => raw.min(wd.degraded_cwnd_pkts.saturating_mul(self.cfg.tcp.mss)),
            _ => raw,
        }
    }

    /// Number of TDN state sets allocated.
    pub fn num_tdn_states(&self) -> usize {
        self.tdns.len()
    }

    /// Locally downgrade to regular TCP (§4.2): stop emitting TDTCP
    /// options and ignore further notifications.
    pub fn downgrade(&mut self) {
        self.downgraded = true;
        self.current = TdnId::ZERO;
    }

    fn state_index(&self, tdn: TdnId) -> usize {
        if self.cfg.per_tdn_state && !self.downgraded && !self.degraded {
            tdn.index().min(self.tdns.len() - 1)
        } else {
            0
        }
    }

    fn cur(&self) -> &TdnState {
        &self.tdns[self.state_index(self.current)]
    }

    fn cur_mut(&mut self) -> &mut TdnState {
        let i = self.state_index(self.current);
        &mut self.tdns[i]
    }

    /// Pipe (bytes in flight) attributed to one TDN, derived from the
    /// shared retransmission queue ("specific TDN" accounting, §4.3).
    pub fn pipe_bytes(&self, tdn: TdnId) -> u32 {
        self.rtx
            .counts_tdn(|t| self.state_index(t) == self.state_index(tdn))
            .pipe()
            .saturating_mul(self.cfg.tcp.mss)
    }

    /// Total outstanding packets over all TDNs ("all TDNs" accounting).
    pub fn total_packets_out(&self) -> u32 {
        self.rtx.counts().packets_out
    }

    /// Smoothed RTT of the slowest TDN (the §4.4 pessimistic assumption).
    fn slowest_srtt(&self) -> Option<SimDuration> {
        self.tdns.iter().filter_map(|t| t.rtt.srtt()).max()
    }

    /// The §4.4 retransmission timeout for a segment sent on `tdn`:
    /// `½·RTT_n + ½·RTT_slowest` plus the usual variance term.
    fn rto_for(&self, tdn: TdnId) -> SimDuration {
        let st = &self.tdns[self.state_index(tdn)];
        if !self.cfg.pessimistic_rto {
            return st.rtt.rto();
        }
        match (st.rtt.srtt(), self.slowest_srtt()) {
            (Some(own), Some(slow)) => {
                let synth = own / 2 + slow / 2;
                let var = self
                    .tdns
                    .iter()
                    .map(|t| t.rtt.rttvar())
                    .max()
                    .unwrap_or(SimDuration::ZERO);
                (synth + var.saturating_mul(4).max(SimDuration::from_nanos(1))).clamp(
                    self.cfg.tcp.rtt.min_rto,
                    self.cfg.tcp.rtt.max_rto,
                )
            }
            _ => st.rtt.rto(),
        }
    }

    // ------------------------------------------------------------------
    // TDN change notification (§3.2)
    // ------------------------------------------------------------------

    /// Process an out-of-band TDN-change notification from the ToR,
    /// assigning it the next fresh generation (for drivers that deliver
    /// notifications reliably and in order).
    pub fn on_notification(&mut self, now: SimTime, tdn: TdnId) {
        let gen = self.last_gen.map_or(0, |g| g + 1);
        self.on_notification_gen(now, tdn, gen);
    }

    /// Process a TDN-change notification carrying the ToR's monotone
    /// generation `gen`. A gen at or below the last applied one marks a
    /// duplicated or reordered delivery and is discarded (idempotence);
    /// a fresh gen resynchronizes a degraded connection.
    pub fn on_notification_gen(&mut self, now: SimTime, tdn: TdnId, gen: u64) {
        if self.downgraded || !self.cfg.per_tdn_state {
            return;
        }
        if let Some(last) = self.last_gen {
            if gen <= last {
                self.stats.stale_notifies += 1;
                return;
            }
        }
        self.last_gen = Some(gen);
        self.last_notify_at = Some(now);
        if self.degraded {
            // Fresh authoritative word from the ToR: leave the
            // conservative posture and resume per-TDN operation.
            if let Some(since) = self.degraded_since.take() {
                self.stats.degraded_ns += now.saturating_since(since).as_nanos();
            }
            self.degraded = false;
            self.stats.notify_resyncs += 1;
        }
        self.update_skew_estimate(now, gen);
        // Runtime schedule change: first sight of a new TDN allocates a
        // fresh state set (§4.2).
        while self.cfg.per_tdn_state && tdn.index() >= self.tdns.len() {
            if self.tdns.len() >= wire::TdnId::MAX_TDNS {
                break;
            }
            let fresh = TdnState::new(
                self.tdns[0].cc.as_ref(),
                RttEstimator::new(self.cfg.tcp.rtt),
            );
            self.tdns.push(fresh);
        }
        if tdn != self.current {
            self.stats.tdn_switches += 1;
            self.current = tdn;
            // The TDN change pointer: everything at or above this was (or
            // will be) sent on the new TDN (§3.4).
            self.tdn_change_ptr = self.snd_nxt;
        }
    }

    /// The host's current estimate of its clock skew against the ToR's
    /// notification cadence, in signed nanoseconds (positive = local
    /// clock running fast). Exposed for the skew acceptance tests.
    pub fn estimated_skew_ns(&self) -> i64 {
        self.skew_ewma_ns as i64
    }

    /// Update the skew estimate from this (applied, fresh) notification's
    /// arrival residual against the phase reference, and escalate into
    /// the degraded posture when the estimate exceeds the guard band:
    /// a clock that far off can no longer place sends inside a slot, so
    /// trusting per-TDN state selection is worse than the conservative
    /// fallback — and the host need not wait for the watchdog's full
    /// period to conclude that.
    fn update_skew_estimate(&mut self, now: SimTime, gen: u64) {
        let Some(wd) = self.cfg.watchdog else { return };
        let period_ns = wd.period.as_nanos();
        if period_ns == 0 {
            return;
        }
        let Some((ref_gen, ref_at)) = self.skew_ref else {
            self.skew_ref = Some((gen, now));
            return;
        };
        let expect =
            ref_at + SimDuration::from_nanos(gen.saturating_sub(ref_gen).saturating_mul(period_ns));
        let resid = now.as_nanos() as i64 - expect.as_nanos() as i64;
        self.skew_ewma_ns = self.skew_ewma_ns * 0.875 + resid as f64 * 0.125;
        if !self.degraded && self.skew_ewma_ns.abs() > wd.guard.as_nanos() as f64 {
            self.stats.skew_escalations += 1;
            self.degraded = true;
            self.degraded_since = Some(now);
            // Re-baseline: when a fresh notification later resynchronizes
            // the host, the estimator starts over instead of instantly
            // re-escalating against the stale reference.
            self.skew_ref = None;
            self.skew_ewma_ns = 0.0;
        }
    }

    /// Whether the skew-aware send gate currently holds the pacer: with
    /// low confidence in the local clock (estimate past half the guard
    /// band), new transmissions pause across the predicted slot edge —
    /// segments launched into the edge would be killed or deferred by the
    /// switch's slot-edge enforcement anyway, so holding them costs less
    /// than losing them.
    fn skew_gated(&mut self, now: SimTime) -> bool {
        if let Some(until) = self.skew_gate_until {
            if now < until {
                return true;
            }
            self.skew_gate_until = None;
        }
        let Some(wd) = self.cfg.watchdog else { return false };
        if self.degraded || !self.is_tdtcp() {
            return false;
        }
        if self.skew_ewma_ns.abs() <= wd.guard.as_nanos() as f64 / 2.0 {
            return false;
        }
        let Some(last) = self.last_notify_at else { return false };
        let edge = last + wd.period;
        if now >= edge {
            // Past the predicted edge with no fresh notification yet: the
            // watchdog owns truly missed slots; gating here would stall.
            return false;
        }
        if now + wd.guard >= edge {
            self.skew_gate_until = Some(edge);
            self.stats.skew_gate_pauses += 1;
            return true;
        }
        false
    }

    /// The watchdog deadline: one period plus a guard band after the last
    /// applied notification. Armed only while the connection is live,
    /// speaking TDTCP, and not already degraded (a degraded host has
    /// nothing further to infer — it waits for the ToR).
    fn watchdog_deadline(&self) -> Option<SimTime> {
        let wd = self.cfg.watchdog?;
        if self.degraded || !self.is_tdtcp() {
            return None;
        }
        if !matches!(self.state, State::Established | State::FinWait) {
            return None;
        }
        // Before the first notification, baseline from establishment: a
        // run whose very first notification is lost is still covered.
        let base = self.last_notify_at.or(self.established_at)?;
        Some(base + wd.period + wd.guard)
    }

    /// The watchdog inferred a missed TDN change: enter the conservative
    /// fallback posture (single state set, capped cwnd) until the next
    /// fresh notification.
    fn fire_watchdog(&mut self, now: SimTime) {
        self.stats.notify_watchdog_fires += 1;
        self.degraded = true;
        self.degraded_since = Some(now);
    }

    // ------------------------------------------------------------------
    // handshake
    // ------------------------------------------------------------------

    fn send_syn(&mut self, now: SimTime) {
        let mut syn = Segment::new(self.flow, self.data_dir);
        syn.seq = self.snd_nxt;
        syn.flags.syn = true;
        syn.wnd = self.cfg.tcp.recv_buf;
        syn.td_capable = Some(self.cfg.num_tdns);
        if self.cfg.tcp.ecn {
            syn.flags.ece = true;
            syn.flags.cwr = true;
        }
        // Appendix A.2: the SYN is always accounted to TDN 0.
        self.rtx.push(TxSeg {
            seq: self.snd_nxt,
            len: 1,
            is_syn: true,
            is_fin: false,
            tdn: TdnId::ZERO,
            tx_time: now,
            first_tx: now,
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        });
        self.snd_nxt += 1;
        self.pending.push_back(syn);
        self.arm_rto(now);
    }

    /// Feed an arriving segment.
    pub fn handle_segment(&mut self, now: SimTime, seg: &Segment) {
        self.stats.segs_received += 1;
        // End-to-end payload checksum: discard damaged segments whole,
        // counted apart from network drops (see `tcp::Connection`).
        if seg.payload_is_corrupt() {
            self.stats.corrupt_rx += 1;
            return;
        }
        if seg.flags.rst {
            self.state = State::Done;
            self.pending.clear();
            return;
        }
        match self.state {
            State::Closed => {
                if seg.flags.syn && !seg.flags.ack {
                    self.on_syn(now, seg);
                }
            }
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack {
                    self.on_syn_ack(now, seg);
                }
            }
            State::SynRcvd => {
                if seg.flags.ack {
                    self.process_ack(now, seg);
                    if self.snd_una.after(SeqNum(self.cfg.tcp.isn)) {
                        self.state = State::Established;
                        self.established_at = Some(now);
                    }
                }
                if seg.has_payload() {
                    self.on_data(now, seg);
                }
            }
            State::Established | State::FinWait => {
                if seg.flags.ack {
                    self.process_ack(now, seg);
                }
                if seg.has_payload() || seg.flags.fin {
                    self.on_data(now, seg);
                }
                self.maybe_finish();
            }
            State::Done => {
                // TIME-WAIT duty: a retransmitted FIN means the peer
                // never got our final ACK (lost or corrupted on the
                // wire). Re-ACK it, or the peer retries its FIN until
                // its retransmission limit — a silent stall from the
                // application's point of view.
                if seg.flags.fin && self.rx.is_some() {
                    self.queue_ack(now, false);
                }
            }
        }
    }

    fn on_syn(&mut self, now: SimTime, seg: &Segment) {
        // Negotiate: the TDN counts must match exactly (§4.2); a failed
        // negotiation downgrades this side to regular TCP.
        self.negotiated = seg.td_capable == Some(self.cfg.num_tdns);
        if !self.negotiated {
            self.downgrade();
        }
        self.rx = Some(Reassembler::new(seg.seq + 1, self.cfg.tcp.recv_buf));
        self.peer_wnd = seg.wnd;
        let mut sa = Segment::new(self.flow, self.data_dir);
        sa.seq = self.snd_nxt;
        sa.ack = seg.seq + 1;
        sa.flags.syn = true;
        sa.flags.ack = true;
        sa.wnd = self.cfg.tcp.recv_buf;
        if self.negotiated {
            sa.td_capable = Some(self.cfg.num_tdns);
        }
        if self.cfg.tcp.ecn && seg.flags.ece && seg.flags.cwr {
            sa.flags.ece = true;
        }
        self.rtx.push(TxSeg {
            seq: self.snd_nxt,
            len: 1,
            is_syn: true,
            is_fin: false,
            tdn: TdnId::ZERO,
            tx_time: now,
            first_tx: now,
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        });
        self.snd_nxt += 1;
        self.pending.push_back(sa);
        self.state = State::SynRcvd;
        self.arm_rto(now);
    }

    fn on_syn_ack(&mut self, now: SimTime, seg: &Segment) {
        self.negotiated = seg.td_capable == Some(self.cfg.num_tdns);
        if !self.negotiated {
            self.downgrade();
        }
        self.rx = Some(Reassembler::new(seg.seq + 1, self.cfg.tcp.recv_buf));
        self.peer_wnd = seg.wnd;
        self.process_ack(now, seg);
        self.state = State::Established;
        self.established_at = Some(now);
        let mut ack = Segment::new(self.flow, self.data_dir);
        ack.seq = self.snd_nxt;
        ack.ack = self.rx.as_ref().expect("created").rcv_nxt();
        ack.flags.ack = true;
        ack.wnd = self.cfg.tcp.recv_buf;
        if self.is_tdtcp() {
            ack.ack_tdn = Some(self.current);
        }
        self.pending.push_back(ack);
        self.stats.acks_sent += 1;
    }

    // ------------------------------------------------------------------
    // receive path
    // ------------------------------------------------------------------

    fn on_data(&mut self, now: SimTime, seg: &Segment) {
        let Some(rx) = self.rx.as_mut() else { return };
        if seg.has_payload() {
            let outcome = rx.on_data(seg.seq, seg.len);
            self.stats.bytes_delivered += u64::from(outcome.delivered);
            if outcome.duplicate {
                self.stats.dup_segs_received += 1;
                self.stats.spurious_retransmits += 1;
            }
            if seg.ecn == Ecn::Ce {
                self.stats.ce_received += 1;
            }
        }
        if seg.flags.fin {
            self.peer_fin = Some(seg.seq + (seg.seq_space() - 1));
        }
        if let Some(fin) = self.peer_fin {
            let rx = self.rx.as_mut().expect("checked");
            if rx.rcv_nxt() == fin {
                rx.advance(1);
                self.peer_fin = None;
                if self.state == State::Established && self.cfg.tcp.bytes_to_send == 0 {
                    self.state = State::Done;
                }
            }
        }
        let ece = self.cfg.tcp.ecn && self.dctcp_rx.on_data(seg.seq, seg.ecn == Ecn::Ce);
        self.echo_circuit = seg.circuit_mark;
        self.queue_ack(now, ece);
    }

    fn queue_ack(&mut self, _now: SimTime, ece: bool) {
        let rx = self.rx.as_ref().expect("established");
        let mut ack = Segment::new(self.flow, self.data_dir);
        ack.seq = self.snd_nxt;
        ack.ack = rx.rcv_nxt();
        ack.flags.ack = true;
        ack.flags.ece = ece;
        ack.wnd = rx.window();
        ack.sack = rx.sack_blocks();
        ack.circuit_mark = self.echo_circuit;
        if self.is_tdtcp() {
            // TD_DATA_ACK with the A flag: the TDN this ACK rides on.
            ack.ack_tdn = Some(self.current);
        }
        self.pending.push_back(ack);
        self.stats.acks_sent += 1;
    }

    // ------------------------------------------------------------------
    // ACK processing (§4.3 semantics throughout)
    // ------------------------------------------------------------------

    fn process_ack(&mut self, now: SimTime, seg: &Segment) {
        // "All TDNs": validate against the sum of per-TDN packets_out.
        if self.total_packets_out() == 0 && seg.ack == self.snd_una && seg.sack.is_empty() {
            // Still a window update: a zero-window receiver reopening its
            // window sends exactly this "stale" ACK shape, and it must
            // cancel (or re-pace) the persist timer.
            self.peer_wnd = seg.wnd;
            self.maybe_arm_persist(now);
            return;
        }
        if seg.ack.after(self.snd_nxt) {
            return;
        }

        let old_una = self.snd_una;
        let res = self.rtx.cum_ack(seg.ack);
        if seg.ack.after(self.snd_una) {
            self.snd_una = seg.ack;
        }

        // §4.4 RTT sampling: Karn + same-TDN filter. The newest acked
        // never-retransmitted segment per TDN yields one sample, but only
        // when the ACK returned on that same TDN (type-1/2); a missing
        // ack_tdn means the peer is not tagging (downgraded) — accept.
        let ack_tdn = seg.ack_tdn;
        let mut sampled: [bool; 8] = [false; 8];
        for s in res.acked.iter().rev() {
            if s.ever_retransmitted() {
                continue;
            }
            let idx = self.state_index(s.tdn);
            if sampled.get(idx).copied().unwrap_or(true) {
                continue;
            }
            match ack_tdn {
                Some(at) if self.state_index(at) != idx => {
                    // Type-3 sample: data and ACK crossed TDNs — discard.
                    self.stats.cross_tdn_rtt_discards += 1;
                }
                _ => {
                    let tx = s.tx_time;
                    self.tdns[idx].rtt.on_sample_between(tx, now);
                    if idx < sampled.len() {
                        sampled[idx] = true;
                    }
                }
            }
        }

        // "Specific TDN": credit cumulatively acked bytes to the TDN each
        // segment was sent on.
        let mut per_tdn_bytes = vec![0u32; self.tdns.len()];
        let mut per_tdn_pkts = vec![0u32; self.tdns.len()];
        let mut acked_payload = 0u32;
        for s in &res.acked {
            let payload = s.len - u32::from(s.is_syn) - u32::from(s.is_fin);
            acked_payload += payload;
            let idx = self.state_index(s.tdn);
            per_tdn_bytes[idx] += payload;
            per_tdn_pkts[idx] += 1;
            if s.is_fin {
                self.fin_acked = true;
            }
        }
        if res.acked.is_empty() && res.acked_space > 0 && seg.ack.after(old_una) {
            acked_payload = res.acked_space;
            per_tdn_bytes[self.state_index(self.current)] += res.acked_space;
        }
        self.stats.bytes_acked += u64::from(acked_payload);

        let newly_sacked = self.rtx.mark_sacked(seg.sack.iter());

        let progress = seg.ack.after(old_una);
        if !progress
            && !self.rtx.is_empty()
            && (seg.has_payload() || !newly_sacked.is_empty() || seg.sack.is_empty())
        {
            self.dupacks += 1;
        } else if progress {
            self.dupacks = 0;
        }

        self.detect_losses(now, seg, &newly_sacked);

        // Per-TDN recovery exit: a TDN leaves Recovery/Loss once snd_una
        // passes its recovery point (Fig. 4's independent machines).
        for st in self.tdns.iter_mut() {
            if let Some(rp) = st.recovery_point {
                if self.snd_una.after_eq(rp) {
                    st.recovery_point = None;
                    st.ca = CaState::Open;
                    st.cc.on_exit_recovery(now);
                }
            }
        }
        if progress {
            self.rto_backoff = 0;
        }

        if seg.flags.ece {
            self.stats.ece_received += 1;
        }

        // Per-TDN congestion control: each TDN's CCA sees only the bytes
        // acked for data it carried.
        for idx in 0..self.tdns.len() {
            if per_tdn_bytes[idx] == 0 && per_tdn_pkts[idx] == 0 {
                continue;
            }
            let flight = self
                .rtx
                .counts_tdn(|t| self.state_index(t) == idx)
                .pipe()
                .saturating_mul(self.cfg.tcp.mss);
            let in_recovery = self.tdns[idx].in_recovery();
            let ev = AckEvent {
                now,
                bytes_acked: per_tdn_bytes[idx],
                packets_acked: per_tdn_pkts[idx],
                rtt_sample: self.tdns[idx].rtt.latest(),
                srtt: self.tdns[idx].rtt.srtt(),
                flight_size: flight,
                in_recovery,
                ecn_bytes: if seg.flags.ece { per_tdn_bytes[idx] } else { 0 },
            };
            self.tdns[idx].cc.on_ack(&ev);
        }

        self.peer_wnd = seg.wnd;

        if self.rtx.is_empty() {
            self.rto_deadline = None;
            self.tlp_deadline = None;
            self.rto_backoff = 0;
        } else if progress || !newly_sacked.is_empty() {
            self.arm_rto(now);
            self.arm_tlp(now);
        }
        self.maybe_arm_persist(now);
    }

    /// §3.4 relaxed reordering detection.
    fn detect_losses(&mut self, now: SimTime, seg: &Segment, newly_sacked: &[TxSeg]) {
        let Some(high_sacked) = self.rtx.highest_sacked() else {
            return;
        };
        // Fast path: an unsacked head below a SACKed segment is a hole.
        let hole_exists = match self.rtx.front() {
            Some(f) if !f.sacked => true,
            _ => self
                .rtx
                .iter()
                .any(|s| !s.sacked && s.seq.before(high_sacked)),
        };
        if !hole_exists {
            return;
        }
        // Fresh detections only: first hole evidence while the current
        // TDN's machine was Open.
        if !newly_sacked.is_empty() && self.cur().ca == CaState::Open {
            self.stats.reorder_events += 1;
        }

        let thresh = self.cfg.tcp.dupack_thresh;
        let thresh_hit =
            self.dupacks >= thresh || self.rtx.sacked_above(self.snd_una) >= thresh;
        if !thresh_hit {
            let st = self.cur_mut();
            if st.ca == CaState::Open {
                st.ca = CaState::Disorder;
            }
            return;
        }

        // The TDN that triggered the heuristic: the ACK's TDN, or the
        // newest sacked segment's data TDN when the option is absent.
        let trigger = seg
            .ack_tdn
            .or_else(|| newly_sacked.last().map(|s| s.tdn))
            .unwrap_or(self.current);
        let trigger_idx = self.state_index(trigger);

        // Cross-TDN holes are only declared lost when old enough that
        // delayed delivery is no longer plausible — the RACK-TLP fallback
        // for true tail losses of a prior TDN (§3.4).
        let tail_cutoff = self
            .slowest_srtt()
            .map(|s| now - s.mul_f64(1.25))
            .unwrap_or(SimTime::ZERO);

        let relaxed = self.cfg.relaxed_reordering && self.is_tdtcp();
        let state_index_of = |s: &TxSeg| {
            if self.cfg.per_tdn_state && !self.downgraded && !self.degraded {
                s.tdn.index().min(self.tdns.len() - 1)
            } else {
                0
            }
        };
        // RACK window for same-TDN holes: intra-TDN reordering (jitter)
        // must not be declared loss either; a hole only counts as lost
        // once it is older than the newest SACKed transmission by the
        // TDN's reordering window (min_rtt / 4).
        let same_tdn_cutoff = self.rtx.newest_sacked_tx_time().map(|t| {
            let reo = self.tdns[trigger_idx]
                .rtt
                .min_rtt()
                .map(|m| m / 4)
                .unwrap_or(SimDuration::ZERO);
            t - reo
        });
        let mut skipped = 0u64;
        let marked = self.rtx.mark_lost_below(high_sacked, |s| {
            let same_tdn_lost = match same_tdn_cutoff {
                Some(cutoff) => s.tx_time <= cutoff,
                None => true,
            };
            if !relaxed {
                return same_tdn_lost;
            }
            if state_index_of(s) == trigger_idx {
                same_tdn_lost
            } else if s.tx_time <= tail_cutoff {
                true // stale enough to be a true tail loss
            } else {
                skipped += 1;
                false
            }
        });
        self.stats.relaxed_skips += skipped;
        self.stats.reorder_marked_pkts += marked.len() as u64;

        // Stale retransmissions (already re-tagged with the TDN that last
        // carried them) follow the same rules: same-TDN ones refresh at
        // the reordering window; cross-TDN ones at the tail cutoff.
        let reo_cutoff = self
            .rtx
            .newest_sacked_tx_time()
            .map(|t| {
                let reo = self.tdns[trigger_idx]
                    .rtt
                    .min_rtt()
                    .map(|m| m / 4)
                    .unwrap_or(SimDuration::ZERO);
                t - reo
            })
            .unwrap_or(SimTime::ZERO);
        self.rtx.refresh_stale_retx(reo_cutoff, |s| {
            !relaxed || state_index_of(s) == trigger_idx || s.tx_time <= tail_cutoff
        });

        // TDNs with marked (to-be-retransmitted) segments enter Recovery
        // (Fig. 4); others stay Open and keep sending at full speed.
        let mut affected = vec![false; self.tdns.len()];
        for s in &marked {
            affected[self.state_index(s.tdn)] = true;
        }
        for (idx, hit) in affected.iter().enumerate() {
            if *hit && !self.tdns[idx].in_recovery() {
                let flight = self
                    .rtx
                    .counts_tdn(|t| {
                        if self.cfg.per_tdn_state && !self.downgraded && !self.degraded {
                            t.index().min(self.tdns.len() - 1) == idx
                        } else {
                            true
                        }
                    })
                    .pipe()
                    .saturating_mul(self.cfg.tcp.mss);
                self.tdns[idx].ca = CaState::Recovery;
                self.tdns[idx].recovery_point = Some(self.snd_nxt);
                self.tdns[idx].cc.on_enter_recovery(now, flight);
                self.stats.fast_recoveries += 1;
            }
        }
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, now: SimTime) {
        // The timer covers the oldest outstanding segment, with the §4.4
        // pessimistic timeout for its TDN. The shift cap bounds the
        // arithmetic; `max_retries` (checked in `fire_rto`) bounds the
        // *retrying* — a blackholed flow aborts with `ConnError` before
        // the cap ever plateaus the backoff.
        let tdn = self.rtx.front().map(|s| s.tdn).unwrap_or(self.current);
        let backoff = 1u64 << self.rto_backoff.min(12);
        self.rto_deadline = Some(now + self.rto_for(tdn).saturating_mul(backoff));
        self.rto_armed_at = now;
    }

    /// Whether the connection is stuck behind a closed peer window: data
    /// waits, nothing is outstanding (so no RTO is armed), and the peer
    /// advertises zero. Without a persist probe this is a silent deadlock.
    fn needs_persist(&self) -> bool {
        self.state == State::Established
            && self.peer_wnd == 0
            && self.rtx.is_empty()
            && self.bytes_unsent > 0
    }

    /// Arm, re-arm or disarm the persist timer to match current state.
    fn maybe_arm_persist(&mut self, now: SimTime) {
        if self.needs_persist() {
            if self.persist_deadline.is_none() {
                let backoff = 1u64 << self.persist_backoff.min(12);
                let delay = self
                    .rto_for(self.current)
                    .saturating_mul(backoff)
                    .min(self.cfg.tcp.rtt.max_rto);
                self.persist_deadline = Some(now + delay);
            }
        } else {
            self.persist_deadline = None;
            if self.peer_wnd > 0 {
                self.persist_backoff = 0;
            }
        }
    }

    /// The persist timer fired: transmit a one-byte window probe from the
    /// unsent stream (RFC 9293 §3.8.6.1). The byte is real data — it goes
    /// on the rtx queue and is cumulatively acknowledged like any other —
    /// so a reopening window resumes exactly in sequence. Probes travel
    /// the active TDN.
    fn fire_persist(&mut self, now: SimTime) {
        if !self.needs_persist() {
            return;
        }
        if self.persist_backoff >= self.cfg.tcp.max_retries {
            self.abort(ConnError::PersistTimeout {
                probes: self.persist_backoff,
            });
            return;
        }
        self.stats.persist_probes += 1;
        self.persist_backoff += 1;
        let mut seg = Segment::new(self.flow, self.data_dir);
        seg.seq = self.snd_nxt;
        seg.len = 1;
        seg.flags.psh = true;
        seg.flags.ack = self.rx.is_some();
        seg.ack = self
            .rx
            .as_ref()
            .map(|r| r.rcv_nxt())
            .unwrap_or(SeqNum::ZERO);
        if self.is_tdtcp() {
            seg.data_tdn = Some(self.current);
            seg.ack_tdn = self.rx.as_ref().map(|_| self.current);
        }
        self.finalize_data_segment(&mut seg);
        self.rtx.push(TxSeg {
            seq: self.snd_nxt,
            len: 1,
            is_syn: false,
            is_fin: false,
            tdn: self.current,
            tx_time: now,
            first_tx: now,
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        });
        self.snd_nxt += 1;
        self.bytes_unsent -= 1;
        self.stats.bytes_sent += 1;
        self.stats.segs_sent += 1;
        self.pending.push_back(seg);
        self.arm_rto(now);
        // Re-arm with backoff in case the probe's ACK still says zero.
        self.persist_deadline = None;
    }

    /// Abort with a terminal error: surface it, stop all timers, and
    /// report done so the driver terminates the flow.
    fn abort(&mut self, err: ConnError) {
        self.error = Some(err);
        self.state = State::Done;
        self.stats.conn_aborts += 1;
        self.pending.clear();
        self.rto_deadline = None;
        self.tlp_deadline = None;
        self.persist_deadline = None;
    }

    fn arm_tlp(&mut self, now: SimTime) {
        if !self.cfg.tcp.tlp {
            return;
        }
        let pto = match self.cur().rtt.srtt() {
            Some(srtt) => {
                let slow = self.slowest_srtt().unwrap_or(srtt);
                srtt + slow // 2·srtt, pessimistically stretched
            }
            None => self.rto_for(self.current) / 2,
        };
        let deadline = now + pto;
        if self.rto_deadline.is_none_or(|rto| deadline < rto) {
            self.tlp_deadline = Some(deadline);
        }
    }

    /// Earliest pending timer.
    pub fn next_timer_at(&self) -> Option<SimTime> {
        let mut t = None;
        for cand in [self.rto_deadline, self.tlp_deadline, self.persist_deadline] {
            t = match (t, cand) {
                (None, c) => c,
                (Some(a), Some(b)) if b < a => Some(b),
                (a, _) => a,
            };
        }
        if let Some(wd) = self.watchdog_deadline() {
            t = Some(t.map_or(wd, |a| a.min(wd)));
        }
        // Skew-gate release: wake exactly when the predicted slot edge
        // passes so a gated sender resumes without an external event.
        if let Some(g) = self.skew_gate_until {
            t = Some(t.map_or(g, |a| a.min(g)));
        }
        // Pacing wake-up: only relevant while there is something to send.
        if self.cfg.tcp.pacing
            && self.next_paced_at > SimTime::ZERO
            && (self.bytes_unsent > 0 || self.rtx.has_retransmit())
        {
            t = match t {
                None => Some(self.next_paced_at),
                Some(a) => Some(a.min(self.next_paced_at)),
            };
        }
        t
    }

    /// Fire expired timers.
    pub fn handle_timer(&mut self, now: SimTime) {
        if let Some(wd) = self.watchdog_deadline() {
            if wd <= now {
                self.fire_watchdog(now);
            }
        }
        if let Some(tlp) = self.tlp_deadline {
            if tlp <= now {
                self.tlp_deadline = None;
                self.fire_tlp(now);
            }
        }
        if let Some(rto) = self.rto_deadline {
            if rto <= now {
                self.fire_rto(now);
            }
        }
        if let Some(p) = self.persist_deadline {
            if p <= now {
                self.persist_deadline = None;
                self.fire_persist(now);
            }
        }
    }

    fn fire_tlp(&mut self, now: SimTime) {
        if self.rtx.is_empty() {
            return;
        }
        self.stats.tlps += 1;
        let flow = self.flow;
        let dir = self.data_dir;
        let cur = self.current;
        let rcv = self.rx.as_ref().map(|r| r.rcv_nxt());
        let tagging = self.is_tdtcp();
        if let Some(mut out) = self.rtx.with_last_unsacked(|s| {
            let out = Self::segment_from_txseg(flow, dir, s);
            s.tx_time = now;
            s.tdn = cur; // probes travel the active TDN
            s.retx_count += 1;
            s.retx_in_flight = true;
            out
        }) {
            out.ack = rcv.unwrap_or(SeqNum::ZERO);
            out.flags.ack = rcv.is_some();
            if tagging {
                out.data_tdn = Some(cur);
                out.ack_tdn = rcv.map(|_| cur);
            }
            self.finalize_data_segment(&mut out);
            self.stats.retransmits += 1;
            self.stats.segs_sent += 1;
            self.pending.push_back(out);
        }
        self.arm_rto(now);
    }

    fn fire_rto(&mut self, now: SimTime) {
        if self.rtx.is_empty() {
            self.rto_deadline = None;
            return;
        }
        if self.rto_backoff >= self.cfg.tcp.max_retries {
            self.abort(ConnError::RetransmitLimit {
                retries: self.rto_backoff,
            });
            return;
        }
        // SACK reneging (the `tcp_check_sack_reneging` analogue): an RTO
        // with the *head* of the queue SACKed means the receiver reneged;
        // forget every SACK mark so `mark_all_lost` re-marks the ranges.
        if self.rtx.front().is_some_and(|s| s.sacked) {
            let n = self.rtx.clear_sack_marks();
            self.stats.sack_reneges += u64::from(n);
        }
        self.stats.rtos += 1;
        // RTO-stall accounting: a firing with zero backoff opens a new
        // timer-recovery episode; backoff refires extend it. Either way
        // the wait between arming and firing was dead air for the flow.
        if self.rto_backoff == 0 {
            self.stats.rto_stalls += 1;
        }
        self.stats.stall_ns += now.saturating_since(self.rto_armed_at).as_nanos();
        // Only the TDN owning the timed-out (oldest) segment collapses;
        // the other TDNs' models are not to blame and stay intact (§3.1's
        // isolation of per-TDN state).
        let victim = self
            .rtx
            .front()
            .map(|s| self.state_index(s.tdn))
            .unwrap_or(0);
        self.tdns[victim].ca = CaState::Loss;
        self.tdns[victim].recovery_point = Some(self.snd_nxt);
        self.tdns[victim].cc.on_rto(now);
        self.dupacks = 0;
        self.rtx.mark_all_lost();
        self.rto_backoff += 1;
        self.arm_rto(now);
        self.tlp_deadline = None;
    }

    // ------------------------------------------------------------------
    // output path
    // ------------------------------------------------------------------

    fn segment_from_txseg(flow: FlowId, dir: Direction, s: &TxSeg) -> Segment {
        let mut seg = Segment::new(flow, dir);
        seg.seq = s.seq;
        seg.len = s.len - u32::from(s.is_syn) - u32::from(s.is_fin);
        seg.flags.syn = s.is_syn;
        seg.flags.fin = s.is_fin;
        seg.flags.psh = seg.len > 0;
        seg
    }

    fn finalize_data_segment(&self, seg: &mut Segment) {
        if self.cfg.tcp.ecn && seg.len > 0 {
            seg.ecn = Ecn::Ect0;
        }
        seg.wnd = self
            .rx
            .as_ref()
            .map(|r| r.window())
            .unwrap_or(self.cfg.tcp.recv_buf);
        seg.stamp_payload();
    }

    fn fin_is_queued(&self) -> bool {
        self.fin_acked || self.rtx.has_fin()
    }

    /// Record the pacing release point after transmitting `seg`: the next
    /// data segment may leave one serialization interval of the paced rate
    /// `cwnd / srtt` later.
    fn stamp_pacing(&mut self, now: SimTime, seg: &Segment) {
        if !self.cfg.tcp.pacing {
            return;
        }
        let st = self.cur();
        // Pace against the TDN's *minimum* RTT, not srtt: ACKs generated
        // at the tail of a day are stranded through the night and arrive
        // during other TDNs' days still tagged with their own TDN, so a
        // TDN's srtt is inflated by schedule artifacts that say nothing
        // about the path's real capacity. min_rtt is immune.
        let rtt = st
            .rtt
            .min_rtt()
            .or_else(|| st.rtt.srtt())
            .unwrap_or(SimDuration::from_micros(50));
        let cwnd = self.effective_cwnd().max(self.cfg.tcp.mss);
        let gap = rtt.mul_f64(f64::from(seg.wire_size()) / f64::from(cwnd));
        self.next_paced_at = now + gap;
    }

    /// Produce the next transmittable segment.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Segment> {
        if let Some(seg) = self.pending.pop_front() {
            return Some(seg);
        }
        // Skew gate before pacing: control segments already queued above
        // still flow; new data and retransmissions hold until the
        // predicted slot edge passes. The gate, not the pacer, is now the
        // binding constraint — disarm the pacing wake-up (stamped fresh on
        // the next real send) so `next_timer_at` cannot advertise a stale
        // past release and spin the driver at one instant forever.
        if self.skew_gated(now) {
            self.next_paced_at = SimTime::ZERO;
            return None;
        }
        if self.cfg.tcp.pacing && now < self.next_paced_at {
            return None;
        }

        // Gate on the *current TDN's* window against the *current TDN's*
        // pipe — the swap that gives TDTCP a wide-open window with
        // near-zero inflight right after a switch (§5.2's initial burst).
        // While degraded the window is capped: a desynchronized host must
        // not blast a stale TDN's window onto an unknown path.
        let cwnd = self.effective_cwnd();
        let pipe = self.pipe_bytes(self.current);
        let any_loss = self.tdns.iter().any(|t| t.ca == CaState::Loss);

        // Retransmissions first — "any TDN" rule (§4.3): lost segments go
        // out at the earliest opportunity regardless of original TDN, and
        // are re-tagged with the TDN that now carries them.
        if pipe < cwnd || any_loss {
            let flow = self.flow;
            let dir = self.data_dir;
            let cur = self.current;
            let rcv = self.rx.as_ref().map(|r| r.rcv_nxt());
            let tagging = self.is_tdtcp();
            if let Some(mut out) = self.rtx.with_next_retransmit(|s| {
                let out = Self::segment_from_txseg(flow, dir, s);
                s.tx_time = now;
                s.tdn = cur;
                s.retx_count += 1;
                s.retx_in_flight = true;
                out
            }) {
                out.ack = rcv.unwrap_or(SeqNum::ZERO);
                out.flags.ack = rcv.is_some();
                if tagging {
                    out.data_tdn = Some(cur);
                    out.ack_tdn = rcv.map(|_| cur);
                }
                self.finalize_data_segment(&mut out);
                self.stats.retransmits += 1;
                self.stats.segs_sent += 1;
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                self.arm_tlp(now);
                self.stamp_pacing(now, &out);
                return Some(out);
            }
        }

        if self.state == State::Established && pipe < cwnd {
            let inflight_seq = self.snd_nxt - self.snd_una;
            if self.bytes_unsent > 0 && inflight_seq < self.peer_wnd {
                let len = (self.cfg.tcp.mss as u64)
                    .min(self.bytes_unsent)
                    .min(u64::from(self.peer_wnd - inflight_seq)) as u32;
                if len > 0 {
                    let mut seg = Segment::new(self.flow, self.data_dir);
                    seg.seq = self.snd_nxt;
                    seg.len = len;
                    seg.flags.psh = true;
                    seg.flags.ack = self.rx.is_some();
                    seg.ack = self
                        .rx
                        .as_ref()
                        .map(|r| r.rcv_nxt())
                        .unwrap_or(SeqNum::ZERO);
                    if self.is_tdtcp() {
                        seg.data_tdn = Some(self.current);
                        seg.ack_tdn = self.rx.as_ref().map(|_| self.current);
                    }
                    self.finalize_data_segment(&mut seg);
                    self.rtx.push(TxSeg {
                        seq: self.snd_nxt,
                        len,
                        is_syn: false,
                        is_fin: false,
                        tdn: self.current, // "current TDN" tagging (§4.3)
                        tx_time: now,
                        first_tx: now,
                        sacked: false,
                        lost: false,
                        retx_in_flight: false,
                        retx_count: 0,
                    });
                    self.snd_nxt += len;
                    self.bytes_unsent -= u64::from(len);
                    self.stats.bytes_sent += u64::from(len);
                    self.stats.segs_sent += 1;
                    if self.rto_deadline.is_none() {
                        self.arm_rto(now);
                    }
                    self.arm_tlp(now);
                    self.stamp_pacing(now, &seg);
                    return Some(seg);
                }
            }
            if self.bytes_unsent == 0 && self.cfg.tcp.bytes_to_send > 0 && !self.fin_is_queued() {
                let mut fin = Segment::new(self.flow, self.data_dir);
                fin.seq = self.snd_nxt;
                fin.flags.fin = true;
                fin.flags.ack = self.rx.is_some();
                fin.ack = self
                    .rx
                    .as_ref()
                    .map(|r| r.rcv_nxt())
                    .unwrap_or(SeqNum::ZERO);
                if self.is_tdtcp() {
                    fin.data_tdn = Some(self.current);
                }
                self.finalize_data_segment(&mut fin);
                self.rtx.push(TxSeg {
                    seq: self.snd_nxt,
                    len: 1,
                    is_syn: false,
                    is_fin: true,
                    tdn: self.current,
                    tx_time: now,
                    first_tx: now,
                    sacked: false,
                    lost: false,
                    retx_in_flight: false,
                    retx_count: 0,
                });
                self.snd_nxt += 1;
                self.state = State::FinWait;
                self.arm_rto(now);
                return Some(fin);
            }
        }
        // Nothing sendable for a non-pacing reason (cwnd/rwnd-blocked or
        // no data): disarm the pacing wake-up so the timer does not spin;
        // an arriving ACK re-opens the window and restarts pacing. A
        // zero-window block instead arms the persist timer — the driver
        // flushes poll_transmit after every event, so a stall is noticed.
        self.next_paced_at = SimTime::ZERO;
        self.maybe_arm_persist(now);
        None
    }

    fn maybe_finish(&mut self) {
        if self.state == State::FinWait && self.fin_acked && self.rtx.is_empty() {
            self.state = State::Done;
        }
    }
}

impl std::fmt::Debug for TdtcpConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdtcpConnection")
            .field("flow", &self.flow)
            .field("state", &self.state)
            .field("current", &self.current)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("tdns", &self.tdns)
            .finish()
    }
}

impl Transport for TdtcpConnection {
    fn on_segment(&mut self, now: SimTime, seg: &Segment) {
        self.handle_segment(now, seg);
    }

    fn poll_send(&mut self, now: SimTime) -> Option<Segment> {
        self.poll_transmit(now)
    }

    fn next_timer(&self) -> Option<SimTime> {
        self.next_timer_at()
    }

    fn on_timer(&mut self, now: SimTime) {
        self.handle_timer(now);
    }

    fn on_tdn_notification(&mut self, now: SimTime, tdn: TdnId, gen: u64) {
        self.on_notification_gen(now, tdn, gen);
    }

    fn stats(&self) -> &ConnStats {
        &self.stats
    }

    fn is_established(&self) -> bool {
        matches!(self.state, State::Established | State::FinWait)
    }

    fn is_done(&self) -> bool {
        self.state == State::Done
    }

    fn conn_error(&self) -> Option<ConnError> {
        self.error
    }

    fn variant(&self) -> &'static str {
        "tdtcp"
    }

    fn cwnd_report(&self) -> Vec<u32> {
        self.tdns.iter().map(|t| t.cc.cwnd()).collect()
    }
}
