//! The MPTCP baseline with the paper's `tdm_schd` scheduler (§2.2).
//!
//! One full TCP subflow per TDN, each *pinned* to its network (segments
//! only traverse the RDCN while that TDN is active). A connection-level
//! 64-bit data sequence space maps over the subflows via simplified DSS
//! options; `tdm_schd` steers new data to the subflow of the currently
//! active TDN. When ACKs for data sent on the previous TDN are stranded
//! (the receiver cannot transmit on an inactive subflow), the
//! connection-level send buffer fills and the sender stalls until
//! *reinjection* re-sends the unacknowledged data ranges on the active
//! subflow — the exact pathology §2.2 measures.

use crate::dsn::DsnTracker;
use simcore::SimTime;
use tcp::cc::CongestionControl;
use tcp::{ConnStats, DssMap, FlowId, Segment, SeqNum, Transport};
use wire::TdnId;

/// MPTCP configuration.
#[derive(Debug, Clone)]
pub struct MptcpConfig {
    /// Per-subflow TCP knobs (MSS, buffers, RTO bounds...).
    pub tcp: tcp::Config,
    /// Total application bytes to transfer (`u64::MAX` = unbounded bulk).
    pub bytes_to_send: u64,
    /// Connection-level send buffer: unacknowledged data-level bytes may
    /// not exceed this. This is what converts stranded ACKs into stalls.
    pub send_buf: u64,
    /// Enable connection-level reinjection (the Linux MPTCP work-around;
    /// disabling it is the ablation that shows permanent stalls).
    pub reinject: bool,
    /// Connection-level receive buffer: data held above a data-level hole
    /// (stranded on an inactive subflow) consumes it, closing the
    /// advertised window — the §2.2 "flow control stall".
    pub recv_buf_conn: u64,
    /// Number of subflows (= TDNs).
    pub num_subflows: usize,
}

impl Default for MptcpConfig {
    fn default() -> Self {
        let tcp_cfg = tcp::Config {
            bytes_to_send: 0, // subflows are fed by the scheduler
            ..tcp::Config::default()
        };
        MptcpConfig {
            tcp: tcp_cfg,
            bytes_to_send: u64::MAX,
            send_buf: 1 << 20,
            reinject: true,
            recv_buf_conn: 512 << 10,
            num_subflows: 2,
        }
    }
}

/// One byte-range mapping from a subflow's sequence space into the data
/// sequence space.
#[derive(Debug, Clone, Copy)]
struct Mapping {
    ssn: SeqNum,
    dsn: u64,
    len: u32,
}

struct Subflow {
    conn: Option<tcp::Connection>,
    tdn: TdnId,
    /// Active data mappings, oldest first.
    mappings: Vec<Mapping>,
    /// Subflow sequence where the next enqueued byte will land.
    app_end: SeqNum,
}

impl Subflow {
    fn established(&self) -> bool {
        self.conn.as_ref().is_some_and(|c| c.is_established())
    }
}

/// Endpoint role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Sender,
    Receiver,
}

/// An MPTCP endpoint (both subflows plus connection-level state).
pub struct MptcpConnection {
    cfg: MptcpConfig,
    flow: FlowId,
    role: Role,
    cc_template: Box<dyn CongestionControl>,
    subflows: Vec<Subflow>,
    /// tdm_schd: the TDN whose subflow receives new data.
    current: TdnId,
    /// Next data sequence to assign.
    dsn_next: u64,
    /// Cumulative data-level acknowledgment received.
    dsn_una: u64,
    /// Application bytes not yet assigned to any subflow.
    bytes_unassigned: u64,
    /// Lowest data sequence not yet reinjected in the current stall.
    reinject_cursor: u64,
    /// Receiver-side data-level reassembly.
    rx: DsnTracker,
    stats: ConnStats,
    done: bool,
}

impl MptcpConnection {
    /// Create the sending endpoint. Subflow 0 (packet network) connects
    /// immediately; other subflows connect lazily when their TDN first
    /// activates (queueing a TDN-pinned SYN at `t = 0` would park it in
    /// the ToR VOQ for a full week).
    pub fn connect(
        flow: FlowId,
        cfg: MptcpConfig,
        cc_template: &dyn CongestionControl,
        now: SimTime,
    ) -> Self {
        let mut c = Self::new_endpoint(flow, Role::Sender, cfg, cc_template);
        c.bytes_unassigned = c.cfg.bytes_to_send;
        c.activate_subflow(0, now);
        c
    }

    /// Create the receiving endpoint: one listener per subflow.
    pub fn listen(flow: FlowId, cfg: MptcpConfig, cc_template: &dyn CongestionControl) -> Self {
        let mut c = Self::new_endpoint(flow, Role::Receiver, cfg, cc_template);
        for i in 0..c.subflows.len() {
            let conn = tcp::Connection::listen(flow, c.cfg.tcp.clone(), c.cc_template.clone_box());
            c.subflows[i].conn = Some(conn);
        }
        c
    }

    fn new_endpoint(
        flow: FlowId,
        role: Role,
        cfg: MptcpConfig,
        cc_template: &dyn CongestionControl,
    ) -> Self {
        assert!(cfg.num_subflows >= 1);
        let subflows = (0..cfg.num_subflows)
            .map(|i| Subflow {
                conn: None,
                tdn: TdnId(i as u8),
                mappings: Vec::new(),
                app_end: SeqNum(cfg.tcp.isn) + 1, // data starts after the SYN
            })
            .collect();
        MptcpConnection {
            cfg,
            flow,
            role,
            cc_template: cc_template.clone_box(),
            subflows,
            current: TdnId::ZERO,
            dsn_next: 0,
            dsn_una: 0,
            bytes_unassigned: 0,
            reinject_cursor: 0,
            rx: DsnTracker::new(),
            stats: ConnStats::new(),
            done: false,
        }
    }

    fn activate_subflow(&mut self, idx: usize, now: SimTime) {
        if self.subflows[idx].conn.is_none() && self.role == Role::Sender {
            let conn = tcp::Connection::connect(
                self.flow,
                self.cfg.tcp.clone(),
                self.cc_template.clone_box(),
                now,
            );
            self.subflows[idx].conn = Some(conn);
        }
    }

    /// Cumulative data-level acknowledgment (sender side).
    pub fn dsn_una(&self) -> u64 {
        self.dsn_una
    }

    /// Data-level bytes delivered in order (receiver side).
    pub fn data_delivered(&self) -> u64 {
        self.rx.rcv_nxt()
    }

    /// The subflow currently scheduled by `tdm_schd`.
    pub fn current_subflow(&self) -> TdnId {
        self.current
    }

    fn subflow_index(&self, pin: Option<TdnId>) -> usize {
        pin.map(|t| t.index().min(self.subflows.len() - 1))
            .unwrap_or(0)
    }

    /// Which subflow owns data sequence `dsn` (latest mapping wins, since
    /// reinjection creates a second mapping for the same range).
    fn mapping_owner(&self, dsn: u64) -> Option<usize> {
        for (i, sf) in self.subflows.iter().enumerate() {
            if sf
                .mappings
                .iter()
                .any(|m| m.dsn <= dsn && dsn < m.dsn + u64::from(m.len))
            {
                return Some(i);
            }
        }
        None
    }

    /// tdm_schd assignment: feed the active subflow one chunk at a time.
    fn assign_chunks(&mut self, _now: SimTime) {
        if self.role != Role::Sender {
            return;
        }
        let idx = self.subflow_index(Some(self.current));
        if !self.subflows[idx].established() {
            return;
        }
        let inflight = self.dsn_next - self.dsn_una;
        // New data is limited by both the send buffer and the shared
        // connection-level receive window (data parked above a hole that
        // is stranded on an inactive subflow consumes the peer's buffer —
        // the §2.2 flow-control stall). Hole-filling reinjection is not
        // window-limited and proceeds via maybe_reinject.
        if inflight >= self.cfg.send_buf.min(self.cfg.recv_buf_conn)
            || self.bytes_unassigned == 0
        {
            return;
        }
        let sf = &mut self.subflows[idx];
        let conn = sf.conn.as_mut().expect("established");
        if conn.unsent_bytes() > 0 {
            return; // keep segments aligned with whole mappings
        }
        let len = u64::from(self.cfg.tcp.mss)
            .min(self.bytes_unassigned)
            .min(self.cfg.send_buf - inflight) as u32;
        if len == 0 {
            return;
        }
        sf.mappings.push(Mapping {
            ssn: sf.app_end,
            dsn: self.dsn_next,
            len,
        });
        conn.enqueue_app_bytes(u64::from(len));
        sf.app_end += len;
        self.dsn_next += u64::from(len);
        self.bytes_unassigned -= u64::from(len);
    }

    /// Connection-level reinjection: when progress is blocked by
    /// unacknowledged data owned by an *inactive* subflow, re-send that
    /// data range on the active subflow.
    fn maybe_reinject(&mut self, _now: SimTime) {
        if self.role != Role::Sender || !self.cfg.reinject {
            return;
        }
        let idx = self.subflow_index(Some(self.current));
        if !self.subflows[idx].established() {
            return;
        }
        // Reinject when data-level progress is head-of-line blocked by a
        // range owned by an inactive subflow *and* the send buffer is
        // under real pressure — the Linux implementation only reinjects
        // when the scheduler can no longer push new data, which is what
        // produces the measured stall-then-recover pattern (§2.2).
        if self.dsn_una >= self.dsn_next {
            return;
        }
        // Trigger before the shared receive window fully closes, so the
        // reinjected copy can still be delivered and reopen the window.
        if self.dsn_next - self.dsn_una < self.cfg.recv_buf_conn / 2 {
            return;
        }
        self.reinject_cursor = self.reinject_cursor.max(self.dsn_una);
        if self.reinject_cursor >= self.dsn_next {
            return;
        }
        let Some(owner) = self.mapping_owner(self.reinject_cursor) else {
            return;
        };
        if owner == idx {
            return; // blocking data already rides the active subflow
        }
        // Don't flood: one reinjected chunk at a time through the subflow.
        if self.subflows[idx]
            .conn
            .as_ref()
            .expect("established")
            .unsent_bytes()
            > 0
        {
            return;
        }
        // Reinject one MSS-sized chunk of the blocking range.
        let owner_map = self.subflows[owner]
            .mappings
            .iter()
            .find(|m| m.dsn <= self.reinject_cursor && self.reinject_cursor < m.dsn + u64::from(m.len))
            .copied()
            .expect("owner found above");
        let offset = self.reinject_cursor - owner_map.dsn;
        let len = owner_map.len - offset as u32;
        let sf = &mut self.subflows[idx];
        sf.mappings.push(Mapping {
            ssn: sf.app_end,
            dsn: self.reinject_cursor,
            len,
        });
        sf.conn
            .as_mut()
            .expect("established")
            .enqueue_app_bytes(u64::from(len));
        sf.app_end += len;
        self.reinject_cursor += u64::from(len);
        self.stats.reinjections += 1;
    }

    /// Drop mappings fully acknowledged at the subflow level.
    fn gc_mappings(&mut self) {
        for sf in &mut self.subflows {
            let Some(conn) = sf.conn.as_ref() else { continue };
            let una = conn.snd_una();
            sf.mappings
                .retain(|m| (m.ssn + m.len).after(una));
        }
    }

    fn refresh_stats(&mut self) {
        let mut s = ConnStats::new();
        for sf in &self.subflows {
            if let Some(c) = sf.conn.as_ref() {
                let sub = c.stats();
                s.segs_sent += sub.segs_sent;
                s.acks_sent += sub.acks_sent;
                s.segs_received += sub.segs_received;
                s.retransmits += sub.retransmits;
                s.fast_recoveries += sub.fast_recoveries;
                s.reorder_events += sub.reorder_events;
                s.reorder_marked_pkts += sub.reorder_marked_pkts;
                s.rtos += sub.rtos;
                s.tlps += sub.tlps;
                s.bytes_sent += sub.bytes_sent;
                s.spurious_retransmits += sub.spurious_retransmits;
                s.dup_segs_received += sub.dup_segs_received;
                s.persist_probes += sub.persist_probes;
                s.sack_reneges += sub.sack_reneges;
                s.corrupt_rx += sub.corrupt_rx;
                s.conn_aborts += sub.conn_aborts;
                s.rto_stalls += sub.rto_stalls;
                s.stall_ns += sub.stall_ns;
                s.skew_gate_pauses += sub.skew_gate_pauses;
                s.skew_escalations += sub.skew_escalations;
            }
        }
        // Connection-level semantics for the sequence-progress metrics.
        s.bytes_acked = self.dsn_una;
        s.bytes_delivered = self.rx.rcv_nxt();
        s.reinjections = self.stats.reinjections;
        s.tdn_switches = self.stats.tdn_switches;
        self.stats = s;
    }
}

impl Transport for MptcpConnection {
    fn on_segment(&mut self, now: SimTime, seg: &Segment) {
        let idx = self.subflow_index(seg.pin);
        // A damaged segment must not reach the MPTCP data level either:
        // hand it to the subflow engine (which discards and counts it)
        // and skip the DSS/data-ACK bookkeeping entirely.
        if seg.payload_is_corrupt() {
            if let Some(conn) = self.subflows[idx].conn.as_mut() {
                conn.on_segment(now, seg);
            }
            self.refresh_stats();
            return;
        }
        // Data-level bookkeeping happens at the MPTCP layer.
        if seg.has_payload() {
            if let Some(dss) = seg.dss {
                let out = self.rx.on_data(dss.dsn, u64::from(dss.len.min(seg.len)));
                if out.duplicate {
                    self.stats.dup_segs_received += 1;
                }
            }
        }
        if let Some(dack) = seg.data_ack {
            if dack > self.dsn_una {
                self.dsn_una = dack;
            }
        }
        if let Some(conn) = self.subflows[idx].conn.as_mut() {
            conn.on_segment(now, seg);
        }
        self.gc_mappings();
        if self.role == Role::Sender
            && self.cfg.bytes_to_send != u64::MAX
            && self.dsn_una >= self.cfg.bytes_to_send
        {
            self.done = true;
        }
        self.refresh_stats();
    }

    fn poll_send(&mut self, now: SimTime) -> Option<Segment> {
        self.assign_chunks(now);
        self.maybe_reinject(now);
        // Poll the active subflow first, then the others (retransmissions
        // and stranded ACKs may still be queued there).
        let active = self.subflow_index(Some(self.current));
        let order: Vec<usize> = std::iter::once(active)
            .chain((0..self.subflows.len()).filter(|&i| i != active))
            .collect();
        for i in order {
            let data_ack = self.rx.rcv_nxt();
            let sf = &mut self.subflows[i];
            let Some(conn) = sf.conn.as_mut() else { continue };
            if let Some(mut seg) = conn.poll_send(now) {
                seg.pin = Some(sf.tdn);
                if seg.has_payload() {
                    // Attach the DSS mapping covering this segment.
                    let m = sf
                        .mappings
                        .iter()
                        .find(|m| {
                            seg.seq.after_eq(m.ssn) && seg.seq.before(m.ssn + m.len)
                        })
                        .copied();
                    if let Some(m) = m {
                        let offset = seg.seq - m.ssn;
                        debug_assert!(
                            seg.len <= m.len - offset,
                            "segment must not span mappings"
                        );
                        seg.dss = Some(DssMap {
                            dsn: m.dsn + u64::from(offset),
                            ssn: seg.seq,
                            len: seg.len,
                        });
                    }
                }
                if seg.flags.ack && self.role == Role::Receiver {
                    seg.data_ack = Some(data_ack);
                }
                self.refresh_stats();
                return Some(seg);
            }
        }
        None
    }

    fn next_timer(&self) -> Option<SimTime> {
        self.subflows
            .iter()
            .filter_map(|sf| sf.conn.as_ref().and_then(|c| c.next_timer()))
            .min()
    }

    fn on_timer(&mut self, now: SimTime) {
        for sf in &mut self.subflows {
            if let Some(conn) = sf.conn.as_mut() {
                conn.on_timer(now);
            }
        }
        self.refresh_stats();
    }

    fn on_tdn_notification(&mut self, now: SimTime, tdn: TdnId, _gen: u64) {
        if tdn != self.current {
            self.stats.tdn_switches += 1;
        }
        self.current = tdn;
        let idx = self.subflow_index(Some(tdn));
        self.activate_subflow(idx, now);
        // A new stall episode may begin; allow the fresh ranges to be
        // reinjected once progress is judged blocked again.
        self.reinject_cursor = self.reinject_cursor.max(self.dsn_una);
    }

    fn stats(&self) -> &ConnStats {
        &self.stats
    }

    fn is_established(&self) -> bool {
        self.subflows
            .first()
            .is_some_and(Subflow::established)
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn conn_error(&self) -> Option<tcp::ConnError> {
        // The connection as a whole fails only when the transfer never
        // completed and every subflow gave up; a single aborted subflow
        // with a surviving sibling can still finish via reinjection.
        if self.done {
            return None;
        }
        let errors: Vec<_> = self
            .subflows
            .iter()
            .filter_map(|sf| sf.conn.as_ref())
            .map(tcp::Connection::conn_error)
            .collect();
        if !errors.is_empty() && errors.iter().all(Option::is_some) {
            errors[0]
        } else {
            None
        }
    }

    fn variant(&self) -> &'static str {
        "mptcp"
    }

    fn cwnd_report(&self) -> Vec<u32> {
        self.subflows
            .iter()
            .filter_map(|sf| sf.conn.as_ref().map(tcp::Connection::cwnd))
            .collect()
    }
}

impl std::fmt::Debug for MptcpConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MptcpConnection")
            .field("flow", &self.flow)
            .field("role", &self.role)
            .field("current", &self.current)
            .field("dsn_next", &self.dsn_next)
            .field("dsn_una", &self.dsn_una)
            .field("done", &self.done)
            .finish()
    }
}
