//! Data-sequence-number (connection-level) reassembly for MPTCP.
//!
//! MPTCP's two-level design (§3.3) maps every subflow byte into a 64-bit
//! data sequence space. The receiver reassembles at the data level across
//! subflows; duplicates (from connection-level reinjection) are detected
//! here.

/// Tracks which data-sequence ranges have arrived and the cumulative
/// in-order point (`rcv_nxt` at the data level).
#[derive(Debug, Default)]
pub struct DsnTracker {
    rcv_nxt: u64,
    /// Disjoint, sorted out-of-order intervals `[start, end)` above
    /// `rcv_nxt`.
    ooo: Vec<(u64, u64)>,
}

/// Outcome of receiving one mapped range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DsnOutcome {
    /// Bytes newly delivered in data-sequence order.
    pub delivered: u64,
    /// Every byte of the range had already arrived (reinjection duplicate
    /// or retransmission overlap).
    pub duplicate: bool,
}

impl DsnTracker {
    /// New tracker expecting data sequence 0 first.
    pub fn new() -> Self {
        DsnTracker::default()
    }

    /// Cumulative in-order data-level sequence (the DATA_ACK value).
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Bytes buffered out of order.
    pub fn ooo_bytes(&self) -> u64 {
        self.ooo.iter().map(|&(s, e)| e - s).sum()
    }

    /// Record arrival of data-sequence range `[dsn, dsn + len)`.
    pub fn on_data(&mut self, dsn: u64, len: u64) -> DsnOutcome {
        debug_assert!(len > 0);
        let mut out = DsnOutcome::default();
        let mut start = dsn;
        let end = dsn + len;
        if end <= self.rcv_nxt {
            out.duplicate = true;
            return out;
        }
        if start < self.rcv_nxt {
            start = self.rcv_nxt;
        }
        // Check whether the whole remaining range is already buffered.
        let already = self
            .ooo
            .iter()
            .any(|&(s, e)| s <= start && end <= e);
        if already {
            out.duplicate = true;
            return out;
        }
        self.insert(start, end);
        // Drain contiguous intervals.
        let before = self.rcv_nxt;
        while let Some(pos) = self.ooo.iter().position(|&(s, _)| s <= self.rcv_nxt) {
            let (_, e) = self.ooo.remove(pos);
            if e > self.rcv_nxt {
                self.rcv_nxt = e;
            }
        }
        out.delivered = self.rcv_nxt - before;
        out
    }

    fn insert(&mut self, start: u64, end: u64) {
        let mut new = (start, end);
        self.ooo.retain(|&(s, e)| {
            let disjoint = e < new.0 || s > new.1;
            if !disjoint {
                new.0 = new.0.min(s);
                new.1 = new.1.max(e);
            }
            disjoint
        });
        let pos = self
            .ooo
            .iter()
            .position(|&(s, _)| s > new.0)
            .unwrap_or(self.ooo.len());
        self.ooo.insert(pos, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery() {
        let mut t = DsnTracker::new();
        let o = t.on_data(0, 1000);
        assert_eq!(o.delivered, 1000);
        assert!(!o.duplicate);
        assert_eq!(t.rcv_nxt(), 1000);
    }

    #[test]
    fn out_of_order_then_fill() {
        let mut t = DsnTracker::new();
        assert_eq!(t.on_data(2000, 1000).delivered, 0);
        assert_eq!(t.ooo_bytes(), 1000);
        let o = t.on_data(0, 2000);
        assert_eq!(o.delivered, 3000);
        assert_eq!(t.rcv_nxt(), 3000);
        assert_eq!(t.ooo_bytes(), 0);
    }

    #[test]
    fn reinjection_duplicate_detected() {
        let mut t = DsnTracker::new();
        t.on_data(0, 1000);
        // The same range arrives again via the other subflow.
        let o = t.on_data(0, 1000);
        assert!(o.duplicate);
        assert_eq!(o.delivered, 0);
        // Duplicate of a buffered out-of-order range.
        t.on_data(5000, 500);
        assert!(t.on_data(5000, 500).duplicate);
    }

    #[test]
    fn partial_overlap_delivers_new_part() {
        let mut t = DsnTracker::new();
        t.on_data(0, 1000);
        let o = t.on_data(500, 1000);
        assert_eq!(o.delivered, 500);
        assert!(!o.duplicate);
        assert_eq!(t.rcv_nxt(), 1500);
    }

    #[test]
    fn interleaved_subflow_arrival() {
        // Chunks alternate between subflows and arrive interleaved.
        let mut t = DsnTracker::new();
        t.on_data(1000, 1000); // subflow B
        t.on_data(3000, 1000); // subflow B
        t.on_data(0, 1000); // subflow A -> drains through 2000
        assert_eq!(t.rcv_nxt(), 2000);
        t.on_data(2000, 1000); // subflow A -> drains through 4000
        assert_eq!(t.rcv_nxt(), 4000);
        assert_eq!(t.ooo_bytes(), 0);
    }

    #[test]
    fn merge_adjacent_intervals() {
        let mut t = DsnTracker::new();
        t.on_data(1000, 500);
        t.on_data(1500, 500);
        t.on_data(2000, 500);
        assert_eq!(t.ooo_bytes(), 1500);
        t.on_data(0, 1000);
        assert_eq!(t.rcv_nxt(), 2500);
    }
}
