//! # mptcp — the multipath TCP baseline (§2.2)
//!
//! The paper extends the Linux MPTCP implementation with a `tdm_schd`
//! scheduler that pins one subflow to each TDN and steers packets to the
//! subflow of the active TDN. This crate reproduces that baseline: full
//! per-subflow TCP state (reusing the `tcp` engine), a 64-bit data
//! sequence space with simplified DSS mappings ([`dsn::DsnTracker`]),
//! TDN-pinned segments (serviced only while their TDN is up), and
//! connection-level reinjection — all the machinery whose overheads and
//! flow-control stalls §2.2 measures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connection;
pub mod dsn;

pub use connection::{MptcpConfig, MptcpConnection};
pub use dsn::{DsnOutcome, DsnTracker};
