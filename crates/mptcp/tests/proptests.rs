//! Property tests: the data-sequence tracker against a reference bitmap
//! model under arbitrary (overlapping, duplicated, reordered) arrivals.
//! Runs on the in-repo `testkit` harness.

use mptcp::DsnTracker;
use testkit::prop::{range, tuple2, vec_of};
use testkit::rng::TkRng;
use testkit::{tk_assert, tk_assert_eq};

testkit::props! {
    fn dsn_tracker_matches_reference(
        segs in vec_of(tuple2(range(0u64..60), range(1u64..8)), 1..60)
    ) {
        let mut t = DsnTracker::new();
        let mut bitmap = [false; 1024];
        let mut delivered = 0u64;
        for (start, len) in segs {
            let (s, l) = (start * 10, len * 10);
            let out = t.on_data(s, l);
            delivered += out.delivered;
            // Duplicate flag only when the range added no new bytes.
            let new_bytes = (s..s + l).filter(|&b| !bitmap[b as usize]).count();
            if out.duplicate {
                tk_assert_eq!(new_bytes, 0, "duplicate ranges add nothing");
            }
            for b in s..s + l {
                bitmap[b as usize] = true;
            }
            let ref_nxt = bitmap.iter().position(|&x| !x).unwrap_or(bitmap.len()) as u64;
            tk_assert_eq!(t.rcv_nxt(), ref_nxt);
            let ref_ooo: u64 = bitmap[ref_nxt as usize..]
                .iter()
                .map(|&x| u64::from(x))
                .sum();
            tk_assert_eq!(t.ooo_bytes(), ref_ooo);
        }
        tk_assert_eq!(delivered, t.rcv_nxt());
    }

    // rcv_nxt is monotone no matter what arrives.
    fn dsn_rcv_nxt_monotone(
        segs in vec_of(tuple2(range(0u64..500), range(1u64..64)), 1..80)
    ) {
        let mut t = DsnTracker::new();
        let mut last = 0;
        for (s, l) in segs {
            t.on_data(s, l);
            tk_assert!(t.rcv_nxt() >= last);
            last = t.rcv_nxt();
        }
    }

    // New with the testkit port: arrival order is irrelevant — feeding
    // the same segment set in any shuffled order (reinjection across
    // subflows reorders freely) converges to the same final tracker
    // state.
    fn dsn_tracker_order_independent(
        input in tuple2(
            vec_of(tuple2(range(0u64..60), range(1u64..8)), 1..40),
            range(0u64..1_000_000),
        )
    ) {
        let (segs, shuffle_seed) = input;
        let mut in_order = DsnTracker::new();
        for &(s, l) in &segs {
            in_order.on_data(s * 10, l * 10);
        }
        let mut shuffled = segs.clone();
        TkRng::new(shuffle_seed).shuffle(&mut shuffled);
        let mut reordered = DsnTracker::new();
        for &(s, l) in &shuffled {
            reordered.on_data(s * 10, l * 10);
        }
        tk_assert_eq!(reordered.rcv_nxt(), in_order.rcv_nxt());
        tk_assert_eq!(reordered.ooo_bytes(), in_order.ooo_bytes());
    }
}
