//! Property tests: the data-sequence tracker against a reference bitmap
//! model under arbitrary (overlapping, duplicated, reordered) arrivals.

use mptcp::DsnTracker;
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn dsn_tracker_matches_reference(segs in vec((0u64..60, 1u64..8), 1..60)) {
        let mut t = DsnTracker::new();
        let mut bitmap = [false; 1024];
        let mut delivered = 0u64;
        for (start, len) in segs {
            let (s, l) = (start * 10, len * 10);
            let out = t.on_data(s, l);
            delivered += out.delivered;
            // Duplicate flag only when the range added no new bytes.
            let new_bytes = (s..s + l).filter(|&b| !bitmap[b as usize]).count();
            if out.duplicate {
                prop_assert_eq!(new_bytes, 0, "duplicate ranges add nothing");
            }
            for b in s..s + l {
                bitmap[b as usize] = true;
            }
            let ref_nxt = bitmap.iter().position(|&x| !x).unwrap_or(bitmap.len()) as u64;
            prop_assert_eq!(t.rcv_nxt(), ref_nxt);
            let ref_ooo: u64 = bitmap[ref_nxt as usize..]
                .iter()
                .map(|&x| u64::from(x))
                .sum();
            prop_assert_eq!(t.ooo_bytes(), ref_ooo);
        }
        prop_assert_eq!(delivered, t.rcv_nxt());
    }

    /// rcv_nxt is monotone no matter what arrives.
    #[test]
    fn dsn_rcv_nxt_monotone(segs in vec((0u64..500, 1u64..64), 1..80)) {
        let mut t = DsnTracker::new();
        let mut last = 0;
        for (s, l) in segs {
            t.on_data(s, l);
            prop_assert!(t.rcv_nxt() >= last);
            last = t.rcv_nxt();
        }
    }
}
