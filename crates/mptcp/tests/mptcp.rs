//! MPTCP behaviour over the emulated RDCN: transfers complete, subflow
//! pinning holds, reinjection unblocks stalls, and — the paper's central
//! claim about MPTCP — it underperforms single-path CUBIC in this
//! environment.

use mptcp::{MptcpConfig, MptcpConnection};
use rdcn::{Emulator, NetConfig};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{Config, Connection, FlowId, Transport};

fn mptcp_factory(
    bytes: u64,
    reinject: bool,
) -> impl FnMut(usize) -> (Box<dyn Transport>, Box<dyn Transport>) {
    move |i| {
        let cfg = MptcpConfig {
            bytes_to_send: bytes,
            reinject,
            ..MptcpConfig::default()
        };
        let template = Cubic::new(CcConfig::default());
        let s = MptcpConnection::connect(FlowId(i as u32), cfg.clone(), &template, SimTime::ZERO);
        let r = MptcpConnection::listen(FlowId(i as u32), cfg, &template);
        (
            Box::new(s) as Box<dyn Transport>,
            Box::new(r) as Box<dyn Transport>,
        )
    }
}

#[test]
fn bulk_transfer_completes() {
    let cfg = NetConfig::paper_baseline();
    let emu = Emulator::new(cfg, 1, Box::new(mptcp_factory(1_000_000, true)));
    let res = emu.run(SimTime::from_millis(100));
    assert_eq!(
        res.sender_stats[0].bytes_acked, 1_000_000,
        "all data acked at the connection level: {:?}",
        res.sender_stats[0]
    );
    assert_eq!(res.receiver_stats[0].bytes_delivered, 1_000_000);
}

#[test]
fn both_subflows_carry_data() {
    let cfg = NetConfig::paper_baseline();
    let emu = Emulator::new(cfg, 1, Box::new(mptcp_factory(u64::MAX, true)));
    let res = emu.run(SimTime::from_millis(10));
    // Two subflow windows reported once both subflows are connected.
    assert_eq!(res.final_cwnds[0].len(), 2, "{:?}", res.final_cwnds);
    assert!(res.sender_stats[0].bytes_acked > 0);
    // Switch notifications reached the scheduler.
    assert!(res.sender_stats[0].tdn_switches > 0);
}

#[test]
fn reinjection_fires_on_stalls() {
    let cfg = NetConfig::paper_baseline();
    let emu = Emulator::new(cfg, 4, Box::new(mptcp_factory(u64::MAX, true)));
    let res = emu.run(SimTime::from_millis(20));
    let reinj: u64 = res.sender_stats.iter().map(|s| s.reinjections).sum();
    assert!(
        reinj > 0,
        "stranded subflow ACKs must trigger connection-level reinjection"
    );
    // Reinjection implies data-level duplicates at the receiver.
    let dups: u64 = res.receiver_stats.iter().map(|s| s.dup_segs_received).sum();
    assert!(dups > 0, "reinjected ranges arrive twice");
}

#[test]
fn mptcp_below_cubic_headline() {
    // §2.2 / Fig. 2: MPTCP's strict subflow isolation makes it the worst
    // performer, below even single-path CUBIC.
    let horizon = SimTime::from_millis(25);
    let net = NetConfig::paper_baseline();
    let mp = Emulator::new(net.clone(), 16, Box::new(mptcp_factory(u64::MAX, true)))
        .run(horizon)
        .total_acked();
    let cubic = {
        let factory: rdcn::EndpointFactory = Box::new(|i| {
            let c = Config::default();
            let cc = CcConfig::default();
            (
                Box::new(Connection::connect(
                    FlowId(i as u32),
                    c.clone(),
                    Box::new(Cubic::new(cc)),
                    SimTime::ZERO,
                )) as Box<dyn Transport>,
                Box::new(Connection::listen(FlowId(i as u32), c, Box::new(Cubic::new(cc))))
                    as Box<dyn Transport>,
            )
        });
        Emulator::new(net, 16, factory).run(horizon).total_acked()
    };
    assert!(
        (mp as f64) < cubic as f64 * 0.95,
        "MPTCP ({mp}) should clearly underperform CUBIC ({cubic})"
    );
    assert!(mp > 0);
}

#[test]
fn deterministic() {
    let run = || {
        let cfg = NetConfig::paper_baseline();
        let emu = Emulator::new(cfg, 2, Box::new(mptcp_factory(u64::MAX, true)));
        let res = emu.run(SimTime::from_millis(10));
        (res.total_acked(), res.drops_ab)
    };
    assert_eq!(run(), run());
}
