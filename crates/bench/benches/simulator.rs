//! Simulation-kernel benchmarks: event-queue throughput, retransmission
//! queue scoreboard operations, reassembly, and full end-to-end emulator
//! event rate (the number that bounds how long the figures take). Runs on
//! the testkit microbench harness and writes `BENCH_simulator.json`.

use bench::{Variant, Workload};
use rdcn::NetConfig;
use simcore::{EventQueue, SimTime};
use tcp::recv::Reassembler;
use tcp::rtx::{RtxQueue, TxSeg};
use tcp::SeqNum;
use testkit::bench::BenchConfig;
use testkit::BenchSuite;
use wire::TdnId;

fn bench_event_queue(suite: &mut BenchSuite) {
    suite.bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 100_000 + 100_000), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

fn bench_rtx_queue(suite: &mut BenchSuite) {
    suite.bench("rtx_sack_and_cumack_100seg", || {
        let mut q = RtxQueue::new();
        for i in 0..100u32 {
            q.push(TxSeg {
                seq: SeqNum(i * 1000),
                len: 1000,
                is_syn: false,
                is_fin: false,
                tdn: TdnId((i % 2) as u8),
                tx_time: SimTime::from_micros(u64::from(i)),
                first_tx: SimTime::from_micros(u64::from(i)),
                sacked: false,
                lost: false,
                retx_in_flight: false,
                retx_count: 0,
            });
        }
        q.mark_sacked([(SeqNum(50_000), SeqNum(80_000))].into_iter());
        q.mark_lost_below(SeqNum(50_000), |_| true);
        let r = q.cum_ack(SeqNum(30_000));
        (r.acked.len(), q.counts())
    });
}

fn bench_reassembler(suite: &mut BenchSuite) {
    suite.bench("reassembler_reordered_100seg", || {
        let mut rx = Reassembler::new(SeqNum(0), 1 << 20);
        // Even segments first (gaps), then odd (fills).
        for i in (0..100u32).step_by(2) {
            rx.on_data(SeqNum(i * 1000), 1000);
        }
        for i in (1..100u32).step_by(2) {
            rx.on_data(SeqNum(i * 1000), 1000);
        }
        rx.rcv_nxt()
    });
}

fn bench_emulator(suite: &mut BenchSuite) {
    for v in [Variant::Cubic, Variant::Tdtcp] {
        suite.bench(&format!("emulator_end_to_end_3ms_{}", v.label()), || {
            let wl = Workload {
                flows: 4,
                ..Workload::bulk(v, SimTime::from_millis(3))
            };
            wl.run(&NetConfig::paper_baseline()).events
        });
    }
}

fn main() {
    let mut suite = BenchSuite::new("simulator");
    bench_event_queue(&mut suite);
    bench_rtx_queue(&mut suite);
    bench_reassembler(&mut suite);
    suite.finish();

    // End-to-end emulator runs are orders of magnitude slower than the
    // micro-ops above; use fewer, longer trials (criterion's old
    // sample_size(10) equivalent).
    let mut e2e = BenchSuite::new("simulator_e2e").with_config(BenchConfig {
        trials: 10,
        target_trial_ns: 50_000_000,
        warmup_ns: 50_000_000,
        max_iters_per_trial: 1 << 10,
    });
    bench_emulator(&mut e2e);
    e2e.finish();
}
