//! Simulation-kernel benchmarks: event-queue throughput, retransmission
//! queue scoreboard operations, reassembly, and full end-to-end emulator
//! event rate (the number that bounds how long the figures take).

use bench::{Variant, Workload};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rdcn::NetConfig;
use simcore::{EventQueue, SimTime};
use tcp::recv::Reassembler;
use tcp::rtx::{RtxQueue, TxSeg};
use tcp::SeqNum;
use wire::TdnId;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000 + 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_rtx_queue(c: &mut Criterion) {
    c.bench_function("rtx_sack_and_cumack_100seg", |b| {
        b.iter(|| {
            let mut q = RtxQueue::new();
            for i in 0..100u32 {
                q.push(TxSeg {
                    seq: SeqNum(i * 1000),
                    len: 1000,
                    is_syn: false,
                    is_fin: false,
                    tdn: TdnId((i % 2) as u8),
                    tx_time: SimTime::from_micros(u64::from(i)),
                    first_tx: SimTime::from_micros(u64::from(i)),
                    sacked: false,
                    lost: false,
                    retx_in_flight: false,
                    retx_count: 0,
                });
            }
            q.mark_sacked([(SeqNum(50_000), SeqNum(80_000))].into_iter());
            q.mark_lost_below(SeqNum(50_000), |_| true);
            let r = q.cum_ack(SeqNum(30_000));
            black_box((r.acked.len(), q.counts()))
        })
    });
}

fn bench_reassembler(c: &mut Criterion) {
    c.bench_function("reassembler_reordered_100seg", |b| {
        b.iter(|| {
            let mut rx = Reassembler::new(SeqNum(0), 1 << 20);
            // Even segments first (gaps), then odd (fills).
            for i in (0..100u32).step_by(2) {
                rx.on_data(SeqNum(i * 1000), 1000);
            }
            for i in (1..100u32).step_by(2) {
                rx.on_data(SeqNum(i * 1000), 1000);
            }
            black_box(rx.rcv_nxt())
        })
    });
}

fn bench_emulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("emulator");
    g.sample_size(10);
    for v in [Variant::Cubic, Variant::Tdtcp] {
        g.bench_function(format!("end_to_end_3ms_{}", v.label()), |b| {
            b.iter(|| {
                let wl = Workload {
                    flows: 4,
                    ..Workload::bulk(v, SimTime::from_millis(3))
                };
                black_box(wl.run(&NetConfig::paper_baseline()).events)
            })
        });
    }
    g.finish();
}

criterion_group!(
    simulator,
    bench_event_queue,
    bench_rtx_queue,
    bench_reassembler,
    bench_emulator
);
criterion_main!(simulator);
