//! Simulation-kernel benchmarks: event-queue throughput, retransmission
//! queue scoreboard operations, reassembly, and full end-to-end emulator
//! event rate (the number that bounds how long the figures take). Runs on
//! the testkit microbench harness and writes `BENCH_simulator.json`.

use bench::{Variant, Workload};
use rdcn::voq::{Voq, VoqConfig};
use rdcn::NetConfig;
use simcore::{EventQueue, SimDuration, SimTime, TimerWheel};
use tcp::recv::Reassembler;
use tcp::rtx::{RtxQueue, TxSeg};
use tcp::{Direction, FlowId, Segment, SeqNum};
use testkit::bench::BenchConfig;
use testkit::BenchSuite;
use wire::TdnId;

/// Head-to-head queue microbenches: the same three workloads run
/// against [`EventQueue`] (slab-backed binary heap) and [`TimerWheel`]
/// (hierarchical wheel over the same slab). The winner of this race is
/// what `simcore::DefaultQueue` aliases; see DESIGN.md §13.
macro_rules! bench_queue_family {
    ($suite:expr, $prefix:literal, $new:expr) => {
        $suite.bench(concat!($prefix, "_push_pop_1k"), || {
            let mut q = $new;
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000 + 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
        // Timer churn: every flush cancels and re-arms a host timer, so
        // the cancel path is as hot as schedule/pop in real runs.
        $suite.bench(concat!($prefix, "_cancel_rearm_1k"), || {
            let mut q = $new;
            let mut ids = Vec::with_capacity(1000);
            for i in 0..1000u64 {
                ids.push(q.schedule(SimTime::from_nanos((i * 7919) % 100_000 + 100_000), i));
            }
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            for i in 0..500u64 {
                q.schedule(SimTime::from_nanos(300_000 + i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
        // Drain-heavy mix: the sharded engine's inner loop — pop
        // everything below a window edge with `pop_before`, refill with
        // a couple of near-future events per pop (deliver + rearm), and
        // advance the window. Dominated by pops, like real windows.
        $suite.bench(concat!($prefix, "_drain_windows_4k"), || {
            let mut q = $new;
            let mut seed = 0x9e37u64;
            for i in 0..512u64 {
                q.schedule(SimTime::from_nanos((i * 6151) % 20_000), i);
            }
            let mut acc = 0u64;
            let mut popped = 0u32;
            let mut w_end = SimTime::from_nanos(5_000);
            while popped < 4096 {
                while let Some((now, v)) = q.pop_before(w_end) {
                    acc = acc.wrapping_add(v);
                    popped += 1;
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    // One rearm per pop until the tail, so the queue
                    // drains to empty exactly at 4096 pops.
                    if popped <= 3584 {
                        q.schedule(now + SimDuration::from_nanos(seed % 9_000 + 1), v + 1);
                    }
                }
                w_end += SimDuration::from_nanos(5_000);
            }
            acc
        });
    };
}

fn bench_queues(suite: &mut BenchSuite) {
    bench_queue_family!(suite, "event_queue", EventQueue::new());
    bench_queue_family!(suite, "timer_wheel", TimerWheel::new());
}

fn bench_voq(suite: &mut BenchSuite) {
    // Mixed pinned/unpinned traffic through one VOQ: exercises the
    // per-class occupancy counts on enqueue and the eligibility scan on
    // dequeue, alternating the active TDN like a day/night schedule.
    suite.bench("voq_pinned_mix_512", || {
        let mut v = Voq::new(
            "bench",
            VoqConfig {
                cap_pkts: 64,
                ecn_threshold: Some(32),
            },
        );
        let mut served = 0u64;
        for round in 0..8u64 {
            for i in 0..64u32 {
                let mut s = Segment::new(FlowId(i % 4), Direction::DataPath);
                s.len = 1000;
                s.seq = SeqNum(i * 1000);
                s.pin = match i % 3 {
                    0 => None,
                    r => Some(TdnId((r - 1) as u8)),
                };
                v.enqueue(SimTime::from_nanos(round * 1000 + u64::from(i)), s);
            }
            let active = Some(TdnId((round % 2) as u8));
            while v
                .dequeue_eligible(SimTime::from_nanos(round * 1000 + 500), active)
                .is_some()
            {
                served += 1;
            }
        }
        // Drain the pinned leftovers from the other TDN.
        for t in [TdnId(0), TdnId(1)] {
            while v.dequeue_eligible(SimTime::from_nanos(9000), Some(t)).is_some() {
                served += 1;
            }
        }
        (served, v.drops, v.ce_marks)
    });
}

fn bench_rtx_queue(suite: &mut BenchSuite) {
    suite.bench("rtx_sack_and_cumack_100seg", || {
        let mut q = RtxQueue::new();
        for i in 0..100u32 {
            q.push(TxSeg {
                seq: SeqNum(i * 1000),
                len: 1000,
                is_syn: false,
                is_fin: false,
                tdn: TdnId((i % 2) as u8),
                tx_time: SimTime::from_micros(u64::from(i)),
                first_tx: SimTime::from_micros(u64::from(i)),
                sacked: false,
                lost: false,
                retx_in_flight: false,
                retx_count: 0,
            });
        }
        q.mark_sacked([(SeqNum(50_000), SeqNum(80_000))].into_iter());
        q.mark_lost_below(SeqNum(50_000), |_| true);
        let r = q.cum_ack(SeqNum(30_000));
        (r.acked.len(), q.counts())
    });
}

fn bench_reassembler(suite: &mut BenchSuite) {
    suite.bench("reassembler_reordered_100seg", || {
        let mut rx = Reassembler::new(SeqNum(0), 1 << 20);
        // Even segments first (gaps), then odd (fills).
        for i in (0..100u32).step_by(2) {
            rx.on_data(SeqNum(i * 1000), 1000);
        }
        for i in (1..100u32).step_by(2) {
            rx.on_data(SeqNum(i * 1000), 1000);
        }
        rx.rcv_nxt()
    });
}

fn bench_emulator(suite: &mut BenchSuite) {
    for v in [Variant::Cubic, Variant::Tdtcp] {
        suite.bench(&format!("emulator_end_to_end_3ms_{}", v.label()), || {
            let wl = Workload {
                flows: 4,
                ..Workload::bulk(v, SimTime::from_millis(3))
            };
            wl.run(&NetConfig::paper_baseline()).events
        });
    }
}

fn main() {
    let mut suite = BenchSuite::new("simulator");
    bench_queues(&mut suite);
    bench_voq(&mut suite);
    bench_rtx_queue(&mut suite);
    bench_reassembler(&mut suite);
    suite.finish();

    // End-to-end emulator runs are orders of magnitude slower than the
    // micro-ops above; use fewer, longer trials (criterion's old
    // sample_size(10) equivalent).
    let mut e2e = BenchSuite::new("simulator_e2e").with_config(BenchConfig {
        trials: 10,
        target_trial_ns: 50_000_000,
        warmup_ns: 50_000_000,
        max_iters_per_trial: 1 << 10,
    });
    bench_emulator(&mut e2e);
    e2e.finish();
}
