//! Notification-path benchmarks (§5.4): the sampling model itself, plus
//! the byte-level cost difference between constructing a fresh ICMP
//! notification and stamping a cached one — the paper's optimization 1.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rdcn::{NotifyConfig, NotifyModel};
use simcore::DetRng;
use wire::{TdnId, TdnNotification};

fn bench_model(c: &mut Criterion) {
    for (name, cfg) in [
        ("notify_sample_optimized", NotifyConfig::optimized()),
        ("notify_sample_unoptimized", NotifyConfig::unoptimized()),
    ] {
        let model = NotifyModel::new(cfg);
        c.bench_function(name, |b| {
            let mut rng = DetRng::new(1);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % 16;
                black_box(model.sample(&mut rng, i).total())
            })
        });
    }
}

fn bench_construction(c: &mut Criterion) {
    // Fresh construction: allocate + checksum each time.
    c.bench_function("icmp_construct_fresh", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(8);
            TdnNotification {
                active_tdn: TdnId(1),
            }
            .emit(&mut buf);
            black_box(buf)
        })
    });
    // Cached: pre-built packet, stamp the TDN ID and fix the checksum
    // incrementally (what the ToR-side caching optimization does).
    let mut cached = Vec::new();
    TdnNotification {
        active_tdn: TdnId(0),
    }
    .emit(&mut cached);
    c.bench_function("icmp_construct_cached_stamp", |b| {
        let mut pkt = cached.clone();
        let mut tdn = 0u8;
        b.iter(|| {
            tdn = tdn.wrapping_add(1);
            pkt[4] = tdn;
            // Recompute checksum over the 8-byte packet.
            pkt[2] = 0;
            pkt[3] = 0;
            let ck = wire::checksum::internet_checksum(&pkt);
            pkt[2..4].copy_from_slice(&ck.to_be_bytes());
            black_box(pkt[2])
        })
    });
}

criterion_group!(notification, bench_model, bench_construction);
criterion_main!(notification);
