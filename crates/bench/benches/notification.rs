//! Notification-path benchmarks (§5.4): the sampling model itself, plus
//! the byte-level cost difference between constructing a fresh ICMP
//! notification and stamping a cached one — the paper's optimization 1.
//! Runs on the testkit microbench harness and writes
//! `BENCH_notification.json`.

use rdcn::{NotifyConfig, NotifyModel};
use simcore::DetRng;
use testkit::BenchSuite;
use wire::{TdnId, TdnNotification};

fn bench_model(suite: &mut BenchSuite) {
    for (name, cfg) in [
        ("notify_sample_optimized", NotifyConfig::optimized()),
        ("notify_sample_unoptimized", NotifyConfig::unoptimized()),
    ] {
        let model = NotifyModel::new(cfg);
        let mut rng = DetRng::new(1);
        let mut i = 0usize;
        suite.bench(name, move || {
            i = (i + 1) % 16;
            model.sample(&mut rng, i).total()
        });
    }
}

fn bench_construction(suite: &mut BenchSuite) {
    // Fresh construction: allocate + checksum each time.
    suite.bench("icmp_construct_fresh", || {
        let mut buf = Vec::with_capacity(8);
        TdnNotification {
            active_tdn: TdnId(1),
        }
        .emit(&mut buf);
        buf
    });
    // Cached: pre-built packet, stamp the TDN ID and fix the checksum
    // incrementally (what the ToR-side caching optimization does).
    let mut cached = Vec::new();
    TdnNotification {
        active_tdn: TdnId(0),
    }
    .emit(&mut cached);
    let mut pkt = cached.clone();
    let mut tdn = 0u8;
    suite.bench("icmp_construct_cached_stamp", move || {
        tdn = tdn.wrapping_add(1);
        pkt[4] = tdn;
        // Recompute checksum over the 8-byte packet.
        pkt[2] = 0;
        pkt[3] = 0;
        let ck = wire::checksum::internet_checksum(&pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        pkt[2]
    });
}

fn main() {
    let mut suite = BenchSuite::new("notification");
    bench_model(&mut suite);
    bench_construction(&mut suite);
    suite.finish();
}
