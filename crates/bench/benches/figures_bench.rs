//! One bench per table/figure: miniature versions of every experiment in
//! the harness, so regressions in any reproduction path show up in CI
//! timing and the experiments stay runnable end to end.

use bench::experiments::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simcore::SimTime;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let h = SimTime::from_millis(10);
    let warm = SimTime::from_millis(2);

    g.bench_function("table1", |b| {
        b.iter(|| black_box(table1::run(h, warm).rows.len()))
    });
    g.bench_function("fig2", |b| b.iter(|| black_box(seqgraph::fig2(h).series.len())));
    g.bench_function("fig7a", |b| b.iter(|| black_box(seqgraph::fig7a(h).series.len())));
    g.bench_function("fig7b", |b| b.iter(|| black_box(voqfig::fig7b(h).variants.len())));
    g.bench_function("fig8a", |b| b.iter(|| black_box(seqgraph::fig8a(h).series.len())));
    g.bench_function("fig8b", |b| b.iter(|| black_box(voqfig::fig8b(h).variants.len())));
    g.bench_function("fig9", |b| b.iter(|| black_box(seqgraph::fig9(h).series.len())));
    g.bench_function("fig10", |b| b.iter(|| black_box(fig10::run(h).marked.len())));
    g.bench_function("fig11", |b| b.iter(|| black_box(fig11::run(h).gain())));
    g.bench_function("fig13", |b| b.iter(|| black_box(voqfig::fig13(h).variants.len())));
    g.bench_function("fig14a", |b| b.iter(|| black_box(voqfig::fig14a(h).variants.len())));
    g.bench_function("fig14b", |b| b.iter(|| black_box(voqfig::fig14b(h).variants.len())));
    g.bench_function("notify_table", |b| b.iter(|| black_box(notify::run(2_000, 16).rows.len())));
    g.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
