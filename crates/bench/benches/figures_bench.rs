//! One bench per table/figure: miniature versions of every experiment in
//! the harness, so regressions in any reproduction path show up in CI
//! timing and the experiments stay runnable end to end. Runs on the
//! testkit microbench harness and writes `BENCH_figures.json`.

use bench::experiments::*;
use simcore::SimTime;
use testkit::bench::BenchConfig;
use testkit::BenchSuite;

fn main() {
    // Each iteration is a full (miniature) experiment taking tens of
    // milliseconds; keep trial counts small like criterion's
    // sample_size(10) did.
    let mut g = BenchSuite::new("figures").with_config(BenchConfig {
        trials: 10,
        target_trial_ns: 50_000_000,
        warmup_ns: 30_000_000,
        max_iters_per_trial: 1 << 10,
    });
    let h = SimTime::from_millis(10);
    let warm = SimTime::from_millis(2);

    g.bench("table1", || table1::run(h, warm).rows.len());
    g.bench("fig2", || seqgraph::fig2(h).series.len());
    g.bench("fig7a", || seqgraph::fig7a(h).series.len());
    g.bench("fig7b", || voqfig::fig7b(h).variants.len());
    g.bench("fig8a", || seqgraph::fig8a(h).series.len());
    g.bench("fig8b", || voqfig::fig8b(h).variants.len());
    g.bench("fig9", || seqgraph::fig9(h).series.len());
    g.bench("fig10", || fig10::run(h).marked.len());
    g.bench("fig11", || fig11::run(h).gain());
    g.bench("fig13", || voqfig::fig13(h).variants.len());
    g.bench("fig14a", || voqfig::fig14a(h).variants.len());
    g.bench("fig14b", || voqfig::fig14b(h).variants.len());
    g.bench("notify_table", || notify::run(2_000, 16).rows.len());
    g.finish();
}
