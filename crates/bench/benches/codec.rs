//! Wire codec benchmarks: the per-packet encode/parse costs that bound
//! any real deployment's fast path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tcp::{Direction, FlowId, Segment, SeqNum};
use wire::ip::protocol;
use wire::{Ipv4Header, TcpFlags, TcpHeader, TcpOption, TdnId, TdnNotification};

fn bench_tcp_header(c: &mut Criterion) {
    let ip = Ipv4Header::new(0x0A000001, 0x0A000002, protocol::TCP);
    let header = TcpHeader {
        src_port: 40000,
        dst_port: 5001,
        seq: 12345,
        ack: 999,
        flags: TcpFlags::ack(),
        window: 0xFFFF,
        options: vec![
            TcpOption::TdDataAck {
                data_tdn: Some(TdnId(1)),
                ack_tdn: Some(TdnId(0)),
            },
            TcpOption::Sack(vec![(1000, 2000), (3000, 4000)]),
        ],
    };
    let payload = vec![0u8; 1448];
    c.bench_function("tcp_header_emit_1448B", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(1600);
            header.emit(&mut buf, &ip, black_box(&payload));
            black_box(buf)
        })
    });
    let mut encoded = Vec::new();
    header.emit(&mut encoded, &ip, &payload);
    c.bench_function("tcp_header_parse_1448B", |b| {
        b.iter(|| TcpHeader::parse(black_box(&encoded), &ip).unwrap())
    });
}

fn bench_icmp(c: &mut Criterion) {
    let n = TdnNotification {
        active_tdn: TdnId(1),
    };
    c.bench_function("icmp_notification_emit", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(8);
            n.emit(&mut buf);
            black_box(buf)
        })
    });
    let mut buf = Vec::new();
    n.emit(&mut buf);
    c.bench_function("icmp_notification_parse", |b| {
        b.iter(|| TdnNotification::parse(black_box(&buf)).unwrap())
    });
}

fn bench_segment_wire(c: &mut Criterion) {
    let mut seg = Segment::new(FlowId(1), Direction::DataPath);
    seg.seq = SeqNum(5000);
    seg.len = 8948;
    seg.flags.ack = true;
    seg.data_tdn = Some(TdnId(1));
    c.bench_function("segment_to_wire_jumbo", |b| {
        b.iter(|| black_box(seg.to_wire(1, 2, 3, 4)))
    });
    let bytes = seg.to_wire(1, 2, 3, 4);
    c.bench_function("segment_from_wire_jumbo", |b| {
        b.iter(|| Segment::from_wire(black_box(&bytes), FlowId(1), Direction::DataPath).unwrap())
    });
}

criterion_group!(codec, bench_tcp_header, bench_icmp, bench_segment_wire);
criterion_main!(codec);
