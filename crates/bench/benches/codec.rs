//! Wire codec benchmarks: the per-packet encode/parse costs that bound
//! any real deployment's fast path. Runs on the testkit microbench
//! harness and writes `BENCH_codec.json`.

use tcp::{Direction, FlowId, Segment, SeqNum};
use testkit::bench::bb;
use testkit::BenchSuite;
use wire::ip::protocol;
use wire::{Ipv4Header, TcpFlags, TcpHeader, TcpOption, TdnId, TdnNotification};

fn bench_tcp_header(suite: &mut BenchSuite) {
    let ip = Ipv4Header::new(0x0A000001, 0x0A000002, protocol::TCP);
    let header = TcpHeader {
        src_port: 40000,
        dst_port: 5001,
        seq: 12345,
        ack: 999,
        flags: TcpFlags::ack(),
        window: 0xFFFF,
        options: vec![
            TcpOption::TdDataAck {
                data_tdn: Some(TdnId(1)),
                ack_tdn: Some(TdnId(0)),
            },
            TcpOption::Sack(vec![(1000, 2000), (3000, 4000)]),
        ],
    };
    let payload = vec![0u8; 1448];
    suite.bench("tcp_header_emit_1448B", || {
        let mut buf = Vec::with_capacity(1600);
        header.emit(&mut buf, &ip, bb(&payload));
        buf
    });
    let mut encoded = Vec::new();
    header.emit(&mut encoded, &ip, &payload);
    suite.bench("tcp_header_parse_1448B", || {
        TcpHeader::parse(bb(&encoded), &ip).unwrap()
    });
}

fn bench_icmp(suite: &mut BenchSuite) {
    let n = TdnNotification {
        active_tdn: TdnId(1),
    };
    suite.bench("icmp_notification_emit", || {
        let mut buf = Vec::with_capacity(8);
        n.emit(&mut buf);
        buf
    });
    let mut buf = Vec::new();
    n.emit(&mut buf);
    suite.bench("icmp_notification_parse", || {
        TdnNotification::parse(bb(&buf)).unwrap()
    });
}

fn bench_segment_wire(suite: &mut BenchSuite) {
    let mut seg = Segment::new(FlowId(1), Direction::DataPath);
    seg.seq = SeqNum(5000);
    seg.len = 8948;
    seg.flags.ack = true;
    seg.data_tdn = Some(TdnId(1));
    suite.bench("segment_to_wire_jumbo", || seg.to_wire(1, 2, 3, 4));
    let bytes = seg.to_wire(1, 2, 3, 4);
    suite.bench("segment_from_wire_jumbo", || {
        Segment::from_wire(bb(&bytes), FlowId(1), Direction::DataPath).unwrap()
    });
}

fn main() {
    let mut suite = BenchSuite::new("codec");
    bench_tcp_header(&mut suite);
    bench_icmp(&mut suite);
    bench_segment_wire(&mut suite);
    suite.finish();
}
