//! The `tailgate` binary's gate semantics, exercised end to end: a
//! candidate matching the baseline passes; a seeded p99 regression, a
//! vanished row, or a completion drop each force a non-zero exit. The
//! failure path itself is under test — a gate that cannot fail is not a
//! gate.

use std::path::PathBuf;
use std::process::Command;

/// One `BENCH_tails.json`-shaped suite with the given rows.
fn suite(rows: &[(&str, f64, f64, u64)]) -> String {
    let mut out = String::from("{\n  \"suite\": \"tails\",\n  \"unit\": \"us\",\n  \"results\": [\n");
    for (i, (name, p99, p999, completed)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"p50_us\": 100.0, \"p99_us\": {p99:.1}, \
             \"p999_us\": {p999:.1}, \"started\": 64, \"completed\": {completed}, \
             \"rto_stalls\": 3, \"replica_wins\": 0, \"jain\": 0.9900}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `content` under the cargo-managed integration-test tmpdir and
/// return the path.
fn write_tmp(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write suite file");
    path
}

/// Run the built `tailgate` against the two files; return success flag.
fn gate(baseline: &PathBuf, candidate: &PathBuf, extra: &[&str]) -> bool {
    Command::new(env!("CARGO_BIN_EXE_tailgate"))
        .arg(baseline)
        .arg(candidate)
        .args(extra)
        .status()
        .expect("run tailgate")
        .success()
}

const BASE: &[(&str, f64, f64, u64)] = &[
    ("incast/cubic/d16", 25000.0, 26000.0, 47),
    ("incast/tdtcp/d16", 27000.0, 27500.0, 51),
];

#[test]
fn identical_candidate_passes() {
    let b = write_tmp("tg_base_ok.json", &suite(BASE));
    let c = write_tmp("tg_cand_ok.json", &suite(BASE));
    assert!(gate(&b, &c, &[]), "identical candidate must pass");
}

#[test]
fn seeded_p99_regression_fails() {
    let b = write_tmp("tg_base_reg.json", &suite(BASE));
    // 20% p99 rise on one row — past the default +10% budget.
    let c = write_tmp(
        "tg_cand_reg.json",
        &suite(&[
            ("incast/cubic/d16", 30000.0, 26000.0, 47),
            ("incast/tdtcp/d16", 27000.0, 27500.0, 51),
        ]),
    );
    assert!(!gate(&b, &c, &[]), "a 20% p99 rise must fail the gate");
    // ...but a loosened budget admits it (the knob is live).
    assert!(gate(&b, &c, &["--max-rise-pct", "25"]));
}

#[test]
fn p999_regression_fails_independently() {
    let b = write_tmp("tg_base_999.json", &suite(BASE));
    let c = write_tmp(
        "tg_cand_999.json",
        &suite(&[
            ("incast/cubic/d16", 25000.0, 32000.0, 47),
            ("incast/tdtcp/d16", 27000.0, 27500.0, 51),
        ]),
    );
    assert!(!gate(&b, &c, &[]), "a p999-only rise must fail the gate");
}

#[test]
fn missing_row_fails_and_new_row_passes() {
    let b = write_tmp("tg_base_rows.json", &suite(BASE));
    let missing = write_tmp(
        "tg_cand_missing.json",
        &suite(&[("incast/cubic/d16", 25000.0, 26000.0, 47)]),
    );
    assert!(
        !gate(&b, &missing, &[]),
        "a vanished sweep point must fail the gate"
    );
    let extra = write_tmp(
        "tg_cand_extra.json",
        &suite(&[
            ("incast/cubic/d16", 25000.0, 26000.0, 47),
            ("incast/tdtcp/d16", 27000.0, 27500.0, 51),
            ("cap/mixed/c4", 21000.0, 22000.0, 21),
        ]),
    );
    assert!(gate(&b, &extra, &[]), "a new row must not fail the gate");
}

#[test]
fn completion_drop_fails() {
    let b = write_tmp("tg_base_done.json", &suite(BASE));
    let c = write_tmp(
        "tg_cand_done.json",
        &suite(&[
            ("incast/cubic/d16", 25000.0, 26000.0, 40),
            ("incast/tdtcp/d16", 27000.0, 27500.0, 51),
        ]),
    );
    assert!(!gate(&b, &c, &[]), "completing fewer flows must fail the gate");
}

#[test]
fn unreadable_baseline_fails() {
    let b = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("tg_nonexistent.json");
    let c = write_tmp("tg_cand_unread.json", &suite(BASE));
    assert!(!gate(&b, &c, &[]), "a missing baseline must fail, not pass");
}
