//! The `benchgate` binary's gate semantics, exercised end to end: a
//! candidate matching the baseline passes, small noise passes, and a
//! seeded >25% events/sec regression, a vanished benchmark, or an
//! unreadable baseline each force a non-zero exit. The failure path
//! itself is under test — a gate that cannot fail is not a gate.

use std::path::PathBuf;
use std::process::Command;

/// One testkit `BENCH_*.json`-shaped suite with the given
/// (name, median ns/iter) rows.
fn suite(rows: &[(&str, f64)]) -> String {
    let mut out =
        String::from("{\n  \"suite\": \"simulator\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, (name, median)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"iters_per_trial\": 64, \"trials\": 20, \
             \"min\": {median:.2}, \"mean\": {median:.2}, \"median\": {median:.2}, \
             \"p95\": {median:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `content` under the cargo-managed integration-test tmpdir and
/// return the path.
fn write_tmp(name: &str, content: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write suite file");
    path
}

/// Run the built `benchgate` against the two files; return success flag.
fn gate(baseline: &PathBuf, candidate: &PathBuf, extra: &[&str]) -> bool {
    Command::new(env!("CARGO_BIN_EXE_benchgate"))
        .arg(baseline)
        .arg(candidate)
        .args(extra)
        .status()
        .expect("run benchgate")
        .success()
}

const BASE: &[(&str, f64)] = &[
    ("event_queue_push_pop_1k", 21000.0),
    ("bigrun_sharded_w4", 260.0),
];

#[test]
fn identical_candidate_passes() {
    let b = write_tmp("bg_base_ok.json", &suite(BASE));
    let c = write_tmp("bg_cand_ok.json", &suite(BASE));
    assert!(gate(&b, &c, &[]), "identical candidate must pass");
}

#[test]
fn small_noise_passes() {
    // +20% ns/iter is a 16.7% events/sec loss — inside the 25% budget.
    let b = write_tmp("bg_base_noise.json", &suite(BASE));
    let c = write_tmp(
        "bg_cand_noise.json",
        &suite(&[("event_queue_push_pop_1k", 25200.0), ("bigrun_sharded_w4", 290.0)]),
    );
    assert!(gate(&b, &c, &[]), "sub-threshold noise must pass");
}

#[test]
fn seeded_regression_fails() {
    // 21000 → 29000 ns/iter is a 27.6% events/sec loss — over budget.
    let b = write_tmp("bg_base_reg.json", &suite(BASE));
    let c = write_tmp(
        "bg_cand_reg.json",
        &suite(&[("event_queue_push_pop_1k", 29000.0), ("bigrun_sharded_w4", 260.0)]),
    );
    assert!(!gate(&b, &c, &[]), "a >25% events/sec loss must fail the gate");
}

#[test]
fn threshold_is_configurable() {
    // The same regression passes when the budget is raised to 50%.
    let b = write_tmp("bg_base_thresh.json", &suite(BASE));
    let c = write_tmp(
        "bg_cand_thresh.json",
        &suite(&[("event_queue_push_pop_1k", 29000.0), ("bigrun_sharded_w4", 260.0)]),
    );
    assert!(gate(&b, &c, &["--max-loss-pct", "50"]));
    assert!(!gate(&b, &c, &["--max-loss-pct", "10"]));
}

#[test]
fn missing_row_fails_and_new_row_passes() {
    let b = write_tmp("bg_base_rows.json", &suite(BASE));
    let gone = write_tmp(
        "bg_cand_gone.json",
        &suite(&[("event_queue_push_pop_1k", 21000.0)]),
    );
    assert!(
        !gate(&b, &gone, &[]),
        "deleting a bench must not silently retire its baseline"
    );
    let mut extended: Vec<(&str, f64)> = BASE.to_vec();
    extended.push(("timer_wheel_push_pop_1k", 23000.0));
    let more = write_tmp("bg_cand_more.json", &suite(&extended));
    assert!(gate(&b, &more, &[]), "a brand-new bench needs no baseline yet");
}

#[test]
fn unreadable_baseline_fails() {
    let missing = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("bg_nope.json");
    let c = write_tmp("bg_cand_unread.json", &suite(BASE));
    assert!(!gate(&missing, &c, &[]), "an unreadable baseline must fail, not pass");
}
