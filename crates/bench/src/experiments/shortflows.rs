//! Extension experiments beyond the paper's evaluation:
//!
//! * **Short-flow completion times** — §5.1 argues short flows "are
//!   unlikely to benefit from TDTCP" and are left out of scope; this
//!   experiment checks the flip side, that TDTCP does not *hurt* them:
//!   Poisson arrivals of RPC-sized transfers complete in comparable time
//!   under TDTCP and CUBIC, with long-lived background flows running.
//! * **Fairness** — §3.5 expects per-TDN CCAs to keep their single-path
//!   fairness; measured as Jain's index across 16 flows, half of which
//!   start late (convergence test).

use crate::variants::Variant;
use rdcn::{Emulator, FlowSpec, NetConfig};
use simcore::{Cdf, DetRng, SimDuration, SimTime};
use tcp::Transport;

/// Result of the short-flow experiment for one variant.
#[derive(Debug)]
pub struct ShortFlowResult {
    /// Variant label.
    pub label: String,
    /// Completed short flows (of those started).
    pub completed: usize,
    /// Started short flows.
    pub started: usize,
    /// FCT percentiles in microseconds (p50, p90, p99).
    pub fct_us: (f64, f64, f64),
}

/// Run `n_short` short flows of `short_bytes` each, Poisson arrivals with
/// `mean_gap`, over `background` long-lived flows of the same variant.
pub fn short_flows(
    variant: Variant,
    n_short: usize,
    short_bytes: u64,
    mean_gap: SimDuration,
    background: usize,
    horizon: SimTime,
) -> ShortFlowResult {
    let mut net = NetConfig::paper_baseline();
    variant.apply_net_config(&mut net);
    // Poisson arrivals.
    // detlint: allow(ambient_rng) — pre-detlint xor-derived arrival stream; rewriting it as
    // fork(LABEL) would change every published short-flow figure for no behavioural gain
    let mut rng = DetRng::new(net.seed ^ 0x5f5f);
    let mut specs = Vec::new();
    for _ in 0..background {
        specs.push(FlowSpec {
            start: SimTime::ZERO,
        });
    }
    let mut t = SimTime::from_millis(2); // let background flows settle
    for _ in 0..n_short {
        t += SimDuration::from_nanos(rng.exponential(mean_gap.as_nanos() as f64) as u64);
        specs.push(FlowSpec { start: t });
    }
    let specs_clone = specs.clone();
    let factory: rdcn::emulator::TimedEndpointFactory = Box::new(move |i, now| {
        let bytes = if i < background { u64::MAX } else { short_bytes };
        make_endpoints(variant, i, bytes, now)
    });
    let emu = Emulator::new_staggered(net, specs, factory);
    let res = emu.run(horizon);

    let mut fct = Cdf::new();
    let mut completed = 0;
    let mut started = 0;
    for (spec, completion) in specs_clone
        .iter()
        .zip(&res.completions)
        .skip(background)
        .take(n_short)
    {
        if spec.start >= horizon {
            continue;
        }
        started += 1;
        if let Some(done) = completion {
            completed += 1;
            fct.add(done.saturating_since(spec.start).as_micros() as f64);
        }
    }
    ShortFlowResult {
        label: variant.label().to_string(),
        completed,
        started,
        fct_us: (
            fct.percentile(50.0).unwrap_or(f64::NAN),
            fct.percentile(90.0).unwrap_or(f64::NAN),
            fct.percentile(99.0).unwrap_or(f64::NAN),
        ),
    }
}

/// Build one flow's endpoints at time `now` — like `Variant::factory` but
/// start-time aware (connections initiate their SYN at `now`).
fn make_endpoints(
    variant: Variant,
    i: usize,
    bytes: u64,
    now: SimTime,
) -> (Box<dyn Transport>, Box<dyn Transport>) {
    use tcp::cc::{CcConfig, Cubic};
    use tcp::FlowId;
    let cc = CcConfig::default();
    match variant {
        Variant::Tdtcp => {
            let mut cfg = tdtcp::TdtcpConfig::default();
            cfg.tcp.bytes_to_send = bytes;
            let template = Cubic::new(cc);
            (
                Box::new(tdtcp::TdtcpConnection::connect(
                    FlowId(i as u32),
                    cfg.clone(),
                    &template,
                    now,
                )),
                Box::new(tdtcp::TdtcpConnection::listen(FlowId(i as u32), cfg, &template)),
            )
        }
        _ => {
            let cfg = tcp::Config {
                bytes_to_send: bytes,
                ..tcp::Config::default()
            };
            (
                Box::new(tcp::Connection::connect(
                    FlowId(i as u32),
                    cfg.clone(),
                    Box::new(Cubic::new(cc)),
                    now,
                )),
                Box::new(tcp::Connection::listen(
                    FlowId(i as u32),
                    cfg,
                    Box::new(Cubic::new(cc)),
                )),
            )
        }
    }
}

/// Print the short-flow comparison.
pub fn print_short_flows(rows: &[ShortFlowResult]) {
    println!("\n== extension: short-flow completion times (100 kB RPCs, Poisson arrivals) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "started", "completed", "fct_p50us", "fct_p90us", "fct_p99us"
    );
    for r in rows {
        println!(
            "{:>8} {:>10} {:>10} {:>10.0} {:>10.0} {:>10.0}",
            r.label, r.started, r.completed, r.fct_us.0, r.fct_us.1, r.fct_us.2
        );
    }
    println!("paper §5.1: TDTCP is not expected to change short-flow completion times");
}

/// Jain's fairness index over per-flow delivered bytes.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sumsq)
}

/// Fairness result for one variant.
#[derive(Debug)]
pub struct FairnessResult {
    /// Variant label.
    pub label: String,
    /// Jain index over all 16 flows' steady-state throughput.
    pub jain: f64,
    /// Mean early-starter vs late-starter throughput ratio.
    pub early_late_ratio: f64,
}

/// 16 flows, half starting at t=0 and half at `late_start`; fairness over
/// the window after `measure_from`.
pub fn fairness(variant: Variant, horizon: SimTime) -> FairnessResult {
    let mut net = NetConfig::paper_baseline();
    variant.apply_net_config(&mut net);
    let late_start = SimTime::from_millis(8);
    let specs: Vec<FlowSpec> = (0..16)
        .map(|i| FlowSpec {
            start: if i < 8 { SimTime::ZERO } else { late_start },
        })
        .collect();
    let factory: rdcn::emulator::TimedEndpointFactory =
        Box::new(move |i, now| make_endpoints(variant, i, u64::MAX, now));
    let emu = Emulator::new_staggered(net, specs, factory);
    let res = emu.run(horizon);
    // Throughput judged over the whole run minus the late start offset
    // for late flows (delivered bytes / active time).
    let rates: Vec<f64> = res
        .receiver_stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let active = if i < 8 {
                horizon.as_secs_f64()
            } else {
                horizon.saturating_since(late_start).as_secs_f64()
            };
            s.bytes_delivered as f64 / active
        })
        .collect();
    let early: f64 = rates[..8].iter().sum::<f64>() / 8.0;
    let late: f64 = rates[8..].iter().sum::<f64>() / 8.0;
    FairnessResult {
        label: variant.label().to_string(),
        jain: jain_index(&rates),
        early_late_ratio: early / late,
    }
}

/// Print the fairness comparison.
pub fn print_fairness(rows: &[FairnessResult]) {
    println!("\n== extension: fairness (16 flows, 8 starting 8 ms late) ==");
    println!("{:>8} {:>8} {:>14}", "variant", "jain", "early/late");
    for r in rows {
        println!("{:>8} {:>8.3} {:>13.2}x", r.label, r.jain, r.early_late_ratio);
    }
    println!("§3.5: per-TDN CCAs should keep their single-path fairness properties");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_properties() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogging everything: index -> 1/n.
        let skew = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0, "degenerate all-zero");
        let mid = jain_index(&[2.0, 1.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }
}
