//! Extension experiments beyond the paper's evaluation:
//!
//! * **Short-flow completion times** — §5.1 argues short flows "are
//!   unlikely to benefit from TDTCP" and are left out of scope; this
//!   experiment checks the flip side, that TDTCP does not *hurt* them:
//!   Poisson arrivals of RPC-sized transfers complete in comparable time
//!   under TDTCP and CUBIC, with long-lived background flows running.
//!   The workload itself comes from [`crate::tails`] — one generator,
//!   two figures — so arrivals now draw from the forked tail stream
//!   rather than this module's old ad-hoc xor-derived RNG.
//! * **Fairness** — §3.5 expects per-TDN CCAs to keep their single-path
//!   fairness; measured as Jain's index across 16 flows, half of which
//!   start late (convergence test).

use crate::tails::{run_tails, make_endpoints, Population, TailSpec};
use crate::variants::Variant;
use rdcn::{Emulator, FlowSpec, NetConfig};
use simcore::SimTime;

pub use crate::tails::jain_index;

/// Result of the short-flow experiment for one variant.
#[derive(Debug)]
pub struct ShortFlowResult {
    /// Variant label.
    pub label: String,
    /// Completed short flows (of those started).
    pub completed: usize,
    /// Started short flows.
    pub started: usize,
    /// FCT percentiles in microseconds (p50, p90, p99).
    pub fct_us: (f64, f64, f64),
}

/// Run `n_short` short flows of `short_bytes` each, Poisson arrivals with
/// `mean_gap`, over `background` long-lived flows of the same variant.
pub fn short_flows(
    variant: Variant,
    n_short: usize,
    short_bytes: u64,
    mean_gap: simcore::SimDuration,
    background: usize,
    horizon: SimTime,
) -> ShortFlowResult {
    let spec = TailSpec::poisson(
        Population::Uniform(variant),
        n_short,
        short_bytes,
        mean_gap,
        background,
    );
    let outcome = run_tails(&spec, &NetConfig::paper_baseline(), horizon);
    let mut oracle = outcome.oracle();
    let pct = |o: &mut crate::tails::FctOracle, permille| {
        o.percentile_permille(permille)
            .map_or(f64::NAN, |ns| ns as f64 / 1_000.0)
    };
    ShortFlowResult {
        label: outcome.label.clone(),
        completed: outcome.completed,
        started: outcome.started,
        fct_us: (
            pct(&mut oracle, 500),
            pct(&mut oracle, 900),
            pct(&mut oracle, 990),
        ),
    }
}

/// Print the short-flow comparison.
pub fn print_short_flows(rows: &[ShortFlowResult]) {
    println!("\n== extension: short-flow completion times (100 kB RPCs, Poisson arrivals) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "started", "completed", "fct_p50us", "fct_p90us", "fct_p99us"
    );
    for r in rows {
        println!(
            "{:>8} {:>10} {:>10} {:>10.0} {:>10.0} {:>10.0}",
            r.label, r.started, r.completed, r.fct_us.0, r.fct_us.1, r.fct_us.2
        );
    }
    println!("paper §5.1: TDTCP is not expected to change short-flow completion times");
}

/// Fairness result for one variant.
#[derive(Debug)]
pub struct FairnessResult {
    /// Variant label.
    pub label: String,
    /// Jain index over all 16 flows' steady-state throughput.
    pub jain: f64,
    /// Mean early-starter vs late-starter throughput ratio.
    pub early_late_ratio: f64,
}

/// 16 flows, half starting at t=0 and half at `late_start`; fairness over
/// the window after `measure_from`.
pub fn fairness(variant: Variant, horizon: SimTime) -> FairnessResult {
    let mut net = NetConfig::paper_baseline();
    variant.apply_net_config(&mut net);
    let late_start = SimTime::from_millis(8);
    let specs: Vec<FlowSpec> = (0..16)
        .map(|i| FlowSpec {
            start: if i < 8 { SimTime::ZERO } else { late_start },
        })
        .collect();
    let net_for_factory = net.clone();
    let factory: rdcn::emulator::TimedEndpointFactory =
        Box::new(move |i, now| make_endpoints(variant, &net_for_factory, i, u64::MAX, now));
    let emu = Emulator::new_staggered(net, specs, factory);
    let res = emu.run(horizon);
    // Throughput judged over the whole run minus the late start offset
    // for late flows (delivered bytes / active time).
    let rates: Vec<f64> = res
        .receiver_stats
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let active = if i < 8 {
                horizon.as_secs_f64()
            } else {
                horizon.saturating_since(late_start).as_secs_f64()
            };
            s.bytes_delivered as f64 / active
        })
        .collect();
    let early: f64 = rates[..8].iter().sum::<f64>() / 8.0;
    let late: f64 = rates[8..].iter().sum::<f64>() / 8.0;
    FairnessResult {
        label: variant.label().to_string(),
        jain: jain_index(&rates),
        early_late_ratio: early / late,
    }
}

/// Print the fairness comparison.
pub fn print_fairness(rows: &[FairnessResult]) {
    println!("\n== extension: fairness (16 flows, 8 starting 8 ms late) ==");
    println!("{:>8} {:>8} {:>14}", "variant", "jain", "early/late");
    for r in rows {
        println!("{:>8} {:>8.3} {:>13.2}x", r.label, r.jain, r.early_late_ratio);
    }
    println!("§3.5: per-TDN CCAs should keep their single-path fairness properties");
}
