//! §5.4 component microbenchmarks: the three notification-path
//! optimizations measured individually.
//!
//! Paper claims: caching cuts construction 8× at p50 and 2.7× at p99; the
//! pull model cuts fan-out update time by ~3 orders of magnitude; the
//! dedicated control network cuts one-way delay ~5× at both p50 and p99.

use rdcn::{NotifyConfig, NotifyModel};
use simcore::{Cdf, DetRng};

/// One optimization's before/after percentiles (nanoseconds).
#[derive(Debug)]
pub struct OptRow {
    /// Component name.
    pub component: &'static str,
    /// p50 without the optimization.
    pub p50_off: f64,
    /// p50 with it.
    pub p50_on: f64,
    /// p99 without.
    pub p99_off: f64,
    /// p99 with.
    pub p99_on: f64,
}

impl OptRow {
    /// p50 improvement factor.
    pub fn speedup_p50(&self) -> f64 {
        self.p50_off / self.p50_on
    }

    /// p99 improvement factor.
    pub fn speedup_p99(&self) -> f64 {
        self.p99_off / self.p99_on
    }
}

/// The full component table.
#[derive(Debug)]
pub struct NotifyBench {
    /// One row per optimization.
    pub rows: Vec<OptRow>,
}

/// Sample `n` draws of each component with each optimization toggled.
pub fn run(n: usize, flows: usize) -> NotifyBench {
    // detlint: allow(ambient_rng) — standalone notification-model study with its own pinned
    // seed (no NetConfig to fork from); changing the stream would move the published table
    let mut rng = DetRng::new(7);
    let mut sample =
        |cfg: NotifyConfig, pick: &dyn Fn(&rdcn::NotifySample) -> u64, idx: usize| -> (f64, f64) {
            let model = NotifyModel::new(cfg);
            let mut c = Cdf::new();
            for _ in 0..n {
                c.add(pick(&model.sample(&mut rng, idx)) as f64);
            }
            (c.percentile(50.0).unwrap(), c.percentile(99.0).unwrap())
        };

    let on = NotifyConfig::optimized();
    let off = NotifyConfig::unoptimized();

    // Construction: caching on/off.
    let (c_on50, c_on99) = sample(on, &|s| s.construction.as_nanos(), 0);
    let (c_off50, c_off99) = sample(off, &|s| s.construction.as_nanos(), 0);
    // Fan-out: pull vs push, measured for the *last* flow (worst case).
    let (f_on50, f_on99) = sample(on, &|s| s.fanout.as_nanos().max(1), flows - 1);
    let (f_off50, f_off99) = sample(off, &|s| s.fanout.as_nanos().max(1), flows - 1);
    // Transit: dedicated vs shared network.
    let (t_on50, t_on99) = sample(on, &|s| s.transit.as_nanos(), 0);
    let shared = NotifyConfig {
        dedicated_network: false,
        ..on
    };
    let (t_off50, t_off99) = sample(shared, &|s| s.transit.as_nanos(), 0);

    NotifyBench {
        rows: vec![
            OptRow {
                component: "construction (cached vs fresh)",
                p50_off: c_off50,
                p50_on: c_on50,
                p99_off: c_off99,
                p99_on: c_on99,
            },
            OptRow {
                component: "fan-out (pull vs push, last flow)",
                p50_off: f_off50,
                p50_on: f_on50,
                p99_off: f_off99,
                p99_on: f_on99,
            },
            OptRow {
                component: "transit (dedicated vs shared)",
                p50_off: t_off50,
                p50_on: t_on50,
                p99_off: t_off99,
                p99_on: t_on99,
            },
        ],
    }
}

impl NotifyBench {
    /// Print the component table.
    pub fn print(&self) {
        println!("\n== §5.4 notification component breakdown (ns) ==");
        println!(
            "{:<36} {:>9} {:>9} {:>7} {:>9} {:>9} {:>7}",
            "component", "p50_off", "p50_on", "x50", "p99_off", "p99_on", "x99"
        );
        for r in &self.rows {
            println!(
                "{:<36} {:>9.0} {:>9.0} {:>6.1}x {:>9.0} {:>9.0} {:>6.1}x",
                r.component,
                r.p50_off,
                r.p50_on,
                r.speedup_p50(),
                r.p99_off,
                r.p99_on,
                r.speedup_p99()
            );
        }
        println!("paper: caching 8.0x p50 / 2.7x p99; pull ~1000x; dedicated ~5x p50 & p99");
    }
}
