//! Fig. 10: CDFs of (a) reordering events per optical day and (b) packets
//! marked for retransmission per optical day, for CUBIC, MPTCP and TDTCP.
//!
//! The paper counts, per optical day, how many times loss detection found
//! a sequence hole (a reordering event) and how many segments those
//! events queued for (possibly spurious) retransmission. MPTCP's line is
//! the intra-TDN baseline — its subflows never cross TDNs.

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::NetConfig;
use simcore::{Cdf, SimTime};

/// Percentile summary of one per-day distribution.
#[derive(Debug)]
pub struct DayCdf {
    /// Variant label.
    pub label: String,
    /// Fraction of optical days with a zero count.
    pub frac_zero: f64,
    /// 50th percentile.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
    /// The full CDF steps `(value, fraction)`.
    pub steps: Vec<(f64, f64)>,
}

/// The figure: one distribution set per variant.
#[derive(Debug)]
pub struct Fig10 {
    /// Reordering events per optical day.
    pub events: Vec<DayCdf>,
    /// Marked (to-be-retransmitted) packets per optical day.
    pub marked: Vec<DayCdf>,
    /// Retransmissions proven spurious (the original had arrived) per
    /// optical day — the cost Fig. 10 isolates.
    pub spurious: Vec<DayCdf>,
}

fn summarize(label: &str, mut cdf: Cdf) -> DayCdf {
    DayCdf {
        label: label.to_string(),
        frac_zero: cdf.fraction_le(0.0),
        p50: cdf.percentile(50.0).unwrap_or(0.0),
        p90: cdf.percentile(90.0).unwrap_or(0.0),
        p99: cdf.percentile(99.0).unwrap_or(0.0),
        max: cdf.max().unwrap_or(0.0),
        steps: cdf.steps(),
    }
}

/// Run the Fig. 10 experiment.
pub fn run(horizon: SimTime) -> Fig10 {
    let net = NetConfig::paper_baseline();
    let per_variant = simcore::par::par_map(
        vec![Variant::Cubic, Variant::Mptcp, Variant::Tdtcp],
        |_, v| {
            let res = Workload::bulk(v, horizon).run(&net);
            let mut ev = Cdf::new();
            let mut mk = Cdf::new();
            let mut sp = Cdf::new();
            // Skip the first two weeks of convergence transients.
            for rec in res
                .day_records
                .iter()
                .filter(|r| r.day >= 14 && r.tdn == net.circuit_tdn)
            {
                ev.add(rec.reorder_events as f64);
                mk.add(rec.reorder_marked_pkts as f64);
                sp.add(rec.spurious_retransmits as f64);
            }
            (
                summarize(v.label(), ev),
                summarize(v.label(), mk),
                summarize(v.label(), sp),
            )
        },
    );
    let mut events = Vec::new();
    let mut marked = Vec::new();
    let mut spurious = Vec::new();
    for (ev, mk, sp) in per_variant {
        events.push(ev);
        marked.push(mk);
        spurious.push(sp);
    }
    Fig10 {
        events,
        marked,
        spurious,
    }
}

impl Fig10 {
    /// Find a variant's marked-packet summary.
    pub fn marked_for(&self, label: &str) -> Option<&DayCdf> {
        self.marked.iter().find(|c| c.label == label)
    }

    /// Print both CDFs as percentile rows.
    pub fn print(&self) {
        for (title, set) in [
            ("fig10a: reordering events per optical day", &self.events),
            ("fig10b: marked packets per optical day", &self.marked),
            ("fig10c: spurious retransmissions per optical day", &self.spurious),
        ] {
            println!("\n== {title} ==");
            println!(
                "{:>10} {:>10} {:>8} {:>8} {:>8} {:>8}",
                "variant", "frac_zero", "p50", "p90", "p99", "max"
            );
            for c in set {
                println!(
                    "{:>10} {:>10.2} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
                    c.label, c.frac_zero, c.p50, c.p90, c.p99, c.max
                );
            }
        }
    }
}
