//! Fault sensitivity: goodput vs. notification loss rate, and a mid-day
//! link-failure recovery timeline.
//!
//! Neither appears in the paper — its evaluation is clean-path only —
//! but the related robustness literature (T-RACKs, RepNet) argues that
//! recovery behaviour, not steady state, dominates tail performance, so
//! this sweep quantifies how gracefully each variant degrades:
//!
//! 1. **Loss sweep**: TDTCP's goodput as 0–10% of TDN-change
//!    notifications are dropped. The watchdog detects each miss, parks
//!    the host in the conservative single-state posture, and the next
//!    notification resynchronizes it — goodput should bend, not cliff.
//! 2. **Recovery timeline**: an OCS circuit fails mid-day and stays down
//!    for a window of days; goodput is measured before, during, and
//!    after the outage for TDTCP vs. CUBIC and reTCP.

use crate::experiments::default_warmup;
use crate::variants::Variant;
use crate::workload::{steady_goodput_gbps, Workload};
use rdcn::{FaultPlan, LinkFailure, NetConfig};
use simcore::{SimDuration, SimTime};

/// One point of the notification-loss sweep.
#[derive(Debug)]
pub struct LossPoint {
    /// Configured notification drop probability.
    pub loss_rate: f64,
    /// Steady-state goodput in Gbps.
    pub goodput_gbps: f64,
    /// Goodput relative to the clean (0% loss) run.
    pub clean_ratio: f64,
    /// Notifications actually dropped by the injector.
    pub notifications_lost: u64,
    /// Watchdog fires summed over all endpoints.
    pub watchdog_fires: u64,
    /// Total time endpoints spent degraded.
    pub degraded: SimDuration,
}

/// One variant's goodput around the link-failure window.
#[derive(Debug)]
pub struct RecoveryRow {
    /// Variant under test.
    pub variant: Variant,
    /// Goodput in Gbps over `[warmup, failure)`.
    pub before_gbps: f64,
    /// Goodput in Gbps over the outage window.
    pub during_gbps: f64,
    /// Goodput in Gbps from outage end to the horizon.
    pub after_gbps: f64,
}

/// The full fault-sensitivity result.
#[derive(Debug)]
pub struct FaultSweep {
    /// Notification-loss sweep (TDTCP).
    pub loss: Vec<LossPoint>,
    /// Link-failure recovery timeline per variant.
    pub recovery: Vec<RecoveryRow>,
    /// When the injected circuit failure begins.
    pub fail_at: SimTime,
    /// When circuit days resume.
    pub recover_at: SimTime,
}

impl FaultSweep {
    /// Print both tables.
    pub fn print(&self) {
        println!("\n== faults: goodput vs notification loss (tdtcp) ==");
        println!("  loss    goodput   vs-clean   dropped  watchdog   degraded");
        for p in &self.loss {
            println!(
                "  {:>4.1}%  {:>7.3} Gbps  {:>6.1}%  {:>7}  {:>8}  {:>9}",
                p.loss_rate * 100.0,
                p.goodput_gbps,
                p.clean_ratio * 100.0,
                p.notifications_lost,
                p.watchdog_fires,
                p.degraded,
            );
        }
        println!(
            "\n== faults: mid-day circuit failure at {} (circuit back {}) ==",
            self.fail_at, self.recover_at
        );
        println!("  variant     before     during      after");
        for r in &self.recovery {
            println!(
                "  {:>8}  {:>7.3}    {:>7.3}    {:>7.3}   Gbps",
                r.variant.label(),
                r.before_gbps,
                r.during_gbps,
                r.after_gbps
            );
        }
    }
}

/// Notification drop rates swept (0–10%).
pub const LOSS_RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

/// Run the fault sensitivity sweep.
pub fn run(horizon: SimTime) -> FaultSweep {
    let warmup = default_warmup();
    let base = NetConfig::paper_baseline();

    // --- notification-loss sweep ---
    // Runs shard across workers; the clean ratio needs the 0% run's
    // goodput, so normalize after collection (results arrive in sweep
    // order regardless of which worker ran them).
    let runs = simcore::par::par_map(LOSS_RATES.to_vec(), |_, rate| {
        let mut net = base.clone();
        net.faults = FaultPlan::notification_loss(rate);
        let res = Workload::bulk(Variant::Tdtcp, horizon).run(&net);
        (rate, steady_goodput_gbps(&res, warmup, horizon), res)
    });
    let mut loss = Vec::new();
    let mut clean_gbps = 0.0;
    for (rate, g, res) in runs {
        if rate == 0.0 {
            clean_gbps = g;
        }
        loss.push(LossPoint {
            loss_rate: rate,
            goodput_gbps: g,
            clean_ratio: if clean_gbps > 0.0 { g / clean_gbps } else { 0.0 },
            notifications_lost: res.notifications_lost(),
            watchdog_fires: res.watchdog_fires(),
            degraded: res.degraded_time(),
        });
    }

    // --- link-failure recovery timeline ---
    // Fail the first circuit day past mid-horizon, half-way through the
    // day, and keep the circuit dark for three schedule weeks.
    let sched = &base.schedule;
    let mut fail_day = sched.day_number(SimTime::ZERO + (horizon.saturating_since(SimTime::ZERO) / 2));
    while sched.day_tdn(fail_day) != base.circuit_tdn {
        fail_day += 1;
    }
    let outage_days = 3 * sched.days.len() as u64;
    let lf = LinkFailure {
        day: fail_day,
        at_fraction: 0.5,
        outage_days,
    };
    let fail_at = sched.day_start(fail_day) + sched.day_len.mul_f64(0.5);
    let recover_at = sched.day_start(fail_day + outage_days);

    let recovery = simcore::par::par_map(
        vec![Variant::Tdtcp, Variant::Cubic, Variant::ReTcp],
        |_, variant| {
            let mut net = base.clone();
            net.faults = FaultPlan {
                link_failure: Some(lf),
                ..FaultPlan::default()
            };
            let res = Workload::bulk(variant, horizon).run(&net);
            RecoveryRow {
                variant,
                before_gbps: steady_goodput_gbps(&res, warmup, fail_at),
                during_gbps: steady_goodput_gbps(&res, fail_at, recover_at),
                after_gbps: steady_goodput_gbps(&res, recover_at, horizon),
            }
        },
    );

    FaultSweep {
        loss,
        recovery,
        fail_at,
        recover_at,
    }
}
