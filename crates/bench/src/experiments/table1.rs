//! The headline throughput table (§1, §5.2): steady-state goodput of
//! every variant on the baseline RDCN, relative to CUBIC. The paper
//! reports TDTCP +24% over CUBIC/DCTCP, +41% over MPTCP, parity with
//! retcpdyn.

use crate::variants::{Variant, ALL_VARIANTS};
use crate::workload::{steady_goodput_gbps, Workload};
use rdcn::{analytic, NetConfig};
use simcore::SimTime;

/// One table row.
#[derive(Debug)]
pub struct Row {
    /// Variant label.
    pub label: String,
    /// Steady-state goodput, Gbps.
    pub gbps: f64,
    /// Ratio to CUBIC's goodput.
    pub vs_cubic: f64,
    /// Fraction of the analytic optimal achieved.
    pub of_optimal: f64,
}

/// The headline table.
#[derive(Debug)]
pub struct Table1 {
    /// Rows in descending goodput order.
    pub rows: Vec<Row>,
    /// Analytic optimal rate, Gbps.
    pub optimal_gbps: f64,
    /// Packet-only rate, Gbps.
    pub packet_only_gbps: f64,
}

impl Table1 {
    /// Look up one variant's row.
    pub fn get(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Print the table.
    pub fn print(&self) {
        println!("\n== table 1: steady-state goodput (hybrid RDCN, 16 flows) ==");
        println!(
            "{:>10} {:>10} {:>10} {:>11}",
            "variant", "Gbps", "vs cubic", "of optimal"
        );
        for r in &self.rows {
            println!(
                "{:>10} {:>10.2} {:>9.0}% {:>10.0}%",
                r.label,
                r.gbps,
                r.vs_cubic * 100.0,
                r.of_optimal * 100.0
            );
        }
        println!(
            "{:>10} {:>10.2}\n{:>10} {:>10.2}",
            "optimal", self.optimal_gbps, "pkt-only", self.packet_only_gbps
        );
        println!("paper: tdtcp +24% vs cubic/dctcp, +41% vs mptcp, ~= retcpdyn");
    }
}

/// Run every variant and build the table.
pub fn run(horizon: SimTime, warmup: SimTime) -> Table1 {
    let net = NetConfig::paper_baseline();
    let mut measured: Vec<(String, f64)> =
        simcore::par::par_map(ALL_VARIANTS.to_vec(), |_, v| {
            let res = Workload::bulk(v, horizon).run(&net);
            (
                v.label().to_string(),
                steady_goodput_gbps(&res, warmup, horizon) / 1.0,
            )
        });
    measured.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    let cubic = measured
        .iter()
        .find(|(l, _)| l == Variant::Cubic.label())
        .map(|(_, g)| *g)
        .expect("cubic measured");
    let optimal = analytic::optimal_rate_bps(&net) / 1e9;
    let rows = measured
        .into_iter()
        .map(|(label, g)| Row {
            vs_cubic: g / cubic,
            of_optimal: g / optimal,
            label,
            gbps: g,
        })
        .collect();
    Table1 {
        rows,
        optimal_gbps: optimal,
        packet_only_gbps: 10.0,
    }
}
