//! Extension: the full 8-rack rotor fabric (§2.1/Fig. 1), beyond the
//! paper's pinned two-rack evaluation. One flow per ring neighbour pair;
//! the demand-oblivious schedule gives every pair one direct circuit day
//! per week while the EPS carries the rest.

use rdcn::{MultiRackConfig, MultiRackEmulator, PairFlow};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{Config, Connection, FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

/// Per-variant aggregate results on the 8-rack fabric.
#[derive(Debug)]
pub struct MultiRack {
    /// `(label, total acked bytes, drops)` per variant.
    pub rows: Vec<(String, u64, u64)>,
    /// EPS-only ceiling for the same horizon, bytes.
    pub eps_ceiling: f64,
}

/// Run TDTCP and CUBIC over the 8-rack rotor with one flow per ring pair.
pub fn run(horizon: SimTime) -> MultiRack {
    let cfg = MultiRackConfig::paper_8rack();
    let flows: Vec<PairFlow> = (0..8)
        .map(|r| PairFlow {
            src: r,
            dst: (r + 1) % 8,
        })
        .collect();
    let cc = CcConfig::default();
    let rows = simcore::par::par_map(vec!["tdtcp", "cubic"], |_, label| {
        let emu = MultiRackEmulator::new(cfg.clone(), flows.clone(), |i, _| {
            if label == "tdtcp" {
                let c = TdtcpConfig::default();
                let template = Cubic::new(cc);
                (
                    Box::new(TdtcpConnection::connect(
                        FlowId(i as u32),
                        c.clone(),
                        &template,
                        SimTime::ZERO,
                    )) as Box<dyn Transport>,
                    Box::new(TdtcpConnection::listen(FlowId(i as u32), c, &template))
                        as Box<dyn Transport>,
                )
            } else {
                let c = Config::default();
                (
                    Box::new(Connection::connect(
                        FlowId(i as u32),
                        c.clone(),
                        Box::new(Cubic::new(cc)),
                        SimTime::ZERO,
                    )) as Box<dyn Transport>,
                    Box::new(Connection::listen(FlowId(i as u32), c, Box::new(Cubic::new(cc))))
                        as Box<dyn Transport>,
                )
            }
        });
        let res = emu.run(horizon);
        (label.to_string(), res.total_acked(), res.drops)
    });
    MultiRack {
        rows,
        eps_ceiling: 8.0 * 10e9 / 8.0 * horizon.as_secs_f64(),
    }
}

impl MultiRack {
    /// Print the comparison.
    pub fn print(&self) {
        println!("\n== extension: 8-rack rotor fabric (1 flow per ring pair) ==");
        println!("{:>8} {:>16} {:>10}", "variant", "acked bytes", "drops");
        for (l, a, d) in &self.rows {
            println!("{l:>8} {a:>16} {d:>10}");
        }
        println!(
            "EPS-only ceiling: {:.0} bytes — circuits must lift totals above it",
            self.eps_ceiling
        );
    }
}
