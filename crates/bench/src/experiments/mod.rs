//! One module per table/figure of the paper's evaluation. Each returns a
//! structured result (so integration tests can assert on shapes) and
//! knows how to print itself in the row/series form the paper reports.

pub mod ablation;
pub mod faultsweep;
pub mod fig10;
pub mod impairsweep;
pub mod fig11;
pub mod multirack;
pub mod notify;
pub mod seqgraph;
pub mod shortflows;
pub mod skew;
pub mod table1;
pub mod tails;
pub mod voqfig;

use simcore::SimTime;

/// Standard full-quality horizon for figure-grade runs.
pub fn default_horizon() -> SimTime {
    SimTime::from_millis(60)
}

/// Warmup excluded from steady-state measurements.
pub fn default_warmup() -> SimTime {
    SimTime::from_millis(10)
}
