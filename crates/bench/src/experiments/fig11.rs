//! Fig. 11: TDTCP throughput with and without the §5.4 notification
//! optimizations (the paper measures the combined optimizations are worth
//! 12.7% of throughput).

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::{NetConfig, NotifyConfig};
use simcore::SimTime;

/// The comparison result.
#[derive(Debug)]
pub struct Fig11 {
    /// Acknowledged bytes with all optimizations on.
    pub optimized: u64,
    /// Acknowledged bytes with all optimizations off.
    pub unoptimized: u64,
}

impl Fig11 {
    /// Relative throughput gain from the optimizations.
    pub fn gain(&self) -> f64 {
        self.optimized as f64 / self.unoptimized as f64 - 1.0
    }

    /// Print the comparison.
    pub fn print(&self) {
        println!("\n== fig11: TDTCP with/without notification optimizations ==");
        println!("optimized   : {:>14} bytes", self.optimized);
        println!("unoptimized : {:>14} bytes", self.unoptimized);
        println!(
            "gain        : {:>13.1}%  (paper: +12.7%)",
            self.gain() * 100.0
        );
    }
}

/// Run both notification configurations, averaging three seeds (the
/// notification latencies are the stochastic element under test).
pub fn run(horizon: SimTime) -> Fig11 {
    let run_with = |notify: NotifyConfig| {
        let mut total = 0u64;
        for seed in [1, 2, 3] {
            let mut net = NetConfig::paper_baseline();
            net.notify = notify;
            net.seed = seed;
            let mut wl = Workload::bulk(Variant::Tdtcp, horizon);
            wl.seed = seed;
            total += wl.run(&net).total_acked();
        }
        total / 3
    };
    Fig11 {
        optimized: run_with(NotifyConfig::optimized()),
        unoptimized: run_with(NotifyConfig::unoptimized()),
    }
}
