//! Fig. 11: TDTCP throughput with and without the §5.4 notification
//! optimizations (the paper measures the combined optimizations are worth
//! 12.7% of throughput).

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::{NetConfig, NotifyConfig};
use simcore::SimTime;

/// The comparison result.
#[derive(Debug)]
pub struct Fig11 {
    /// Acknowledged bytes with all optimizations on.
    pub optimized: u64,
    /// Acknowledged bytes with all optimizations off.
    pub unoptimized: u64,
}

impl Fig11 {
    /// Relative throughput gain from the optimizations.
    pub fn gain(&self) -> f64 {
        self.optimized as f64 / self.unoptimized as f64 - 1.0
    }

    /// Print the comparison.
    pub fn print(&self) {
        println!("\n== fig11: TDTCP with/without notification optimizations ==");
        println!("optimized   : {:>14} bytes", self.optimized);
        println!("unoptimized : {:>14} bytes", self.unoptimized);
        println!(
            "gain        : {:>13.1}%  (paper: +12.7%)",
            self.gain() * 100.0
        );
    }
}

/// Run both notification configurations, averaging three seeds (the
/// notification latencies are the stochastic element under test). All
/// six (config, seed) runs shard across workers.
pub fn run(horizon: SimTime) -> Fig11 {
    let items: Vec<(NotifyConfig, u64)> = [NotifyConfig::optimized(), NotifyConfig::unoptimized()]
        .into_iter()
        .flat_map(|n| [1, 2, 3].map(|seed| (n, seed)))
        .collect();
    let acked = simcore::par::par_map(items, |_, (notify, seed)| {
        let mut net = NetConfig::paper_baseline();
        net.notify = notify;
        net.seed = seed;
        let mut wl = Workload::bulk(Variant::Tdtcp, horizon);
        wl.seed = seed;
        wl.run(&net).total_acked()
    });
    Fig11 {
        optimized: acked[..3].iter().sum::<u64>() / 3,
        unoptimized: acked[3..].iter().sum::<u64>() / 3,
    }
}
