//! The tail-latency figure: FCT p50/p99/p999 for the [`crate::tails`]
//! workload family — incast fan-in vs degree, tiny-buffer VOQ caps, and
//! RepNet-style replication — per transport population (TDTCP, CUBIC,
//! and the two mixed on one rack pair).
//!
//! Unlike the paper figures, this one runs at a **fixed internal
//! horizon**: the emitted `BENCH_tails.json` rows are compared against a
//! checked-in baseline by the `tailgate` binary, so they must not depend
//! on the `figures` CLI horizon flag.

use crate::tails::{run_tails, FctOracle, Population, TailSpec};
use crate::variants::Variant;
use rdcn::NetConfig;
use simcore::SimTime;

/// The horizon every tail row runs at (baseline-pinned; see module doc).
pub fn tails_horizon() -> SimTime {
    SimTime::from_millis(30)
}

/// The populations every sweep covers.
const POPULATIONS: [Population; 3] = [
    Population::Uniform(Variant::Tdtcp),
    Population::Uniform(Variant::Cubic),
    Population::MixedTdtcpCubic,
];

/// One row of the tail-latency figure.
#[derive(Debug)]
pub struct TailRow {
    /// Row name, e.g. `incast/cubic/d16` or `cap/mixed/c4`.
    pub name: String,
    /// FCT percentiles in microseconds over completed logical flows
    /// (0.0 when nothing completed).
    pub p50_us: f64,
    /// 99th percentile FCT (µs).
    pub p99_us: f64,
    /// 99.9th percentile FCT (µs).
    pub p999_us: f64,
    /// Logical flows started within the horizon.
    pub started: usize,
    /// Logical flows with at least one completed replica.
    pub completed: usize,
    /// RTO-stall episodes summed over all senders.
    pub rto_stalls: u64,
    /// Completions won by a non-primary replica.
    pub replica_wins: u64,
    /// Jain index over background flows' delivered bytes.
    pub jain: f64,
}

/// The full tail-latency figure.
#[derive(Debug)]
pub struct TailFigure {
    /// Rows in sweep order.
    pub rows: Vec<TailRow>,
}

fn row_of(name: String, spec: &TailSpec, net: &NetConfig) -> TailRow {
    let outcome = run_tails(spec, net, tails_horizon());
    let mut oracle = outcome.oracle();
    let us = |v: Option<u64>| v.map_or(0.0, |ns| ns as f64 / 1_000.0);
    TailRow {
        name,
        p50_us: us(oracle.p50()),
        p99_us: us(oracle.p99()),
        p999_us: us(oracle.p999()),
        started: outcome.started,
        completed: outcome.completed,
        rto_stalls: outcome.rto_stalls,
        replica_wins: outcome.replica_wins,
        jain: outcome.jain,
    }
}

/// The sweep grid: (name, spec, net) triples, in figure order.
fn grid() -> Vec<(String, TailSpec, NetConfig)> {
    let base = NetConfig::paper_baseline();
    let mut runs = Vec::new();
    // FCT vs incast degree at the default 16-packet VOQ.
    for pop in POPULATIONS {
        for degree in [4usize, 8, 16, 32] {
            runs.push((
                format!("incast/{}/d{}", pop.label(), degree),
                TailSpec::incast(pop, degree),
                base.clone(),
            ));
        }
    }
    // FCT vs VOQ capacity at fan-in 16 (the tiny-buffer knob).
    for pop in POPULATIONS {
        for cap in [4usize, 8, 16, 50] {
            runs.push((
                format!("cap/{}/c{}", pop.label(), cap),
                TailSpec::incast(pop, 16),
                base.clone().with_voq_cap(cap),
            ));
        }
    }
    // RepNet-style replication on/off at fan-in 16.
    for variant in [Variant::Tdtcp, Variant::Cubic] {
        for replication in [0u32, 2] {
            let mut spec = TailSpec::incast(Population::Uniform(variant), 16);
            spec.replication = replication;
            runs.push((
                format!("rep/{}/r{}", variant.label(), replication),
                spec,
                base.clone(),
            ));
        }
    }
    runs
}

/// Run the whole figure, sharded across `simcore::par` workers.
pub fn run() -> TailFigure {
    let rows = simcore::par::par_map(grid(), |_, (name, spec, net)| {
        row_of(name, &spec, &net)
    });
    TailFigure { rows }
}

impl TailFigure {
    /// Print the figure as a table.
    pub fn print(&self) {
        println!("\n== extension: tail-latency suite (incast / tiny buffers / replication) ==");
        println!(
            "{:<20} {:>8} {:>10} {:>10} {:>10} {:>7} {:>7} {:>6} {:>6}",
            "row", "started", "p50_us", "p99_us", "p999_us", "done", "stalls", "rwins", "jain"
        );
        for r in &self.rows {
            println!(
                "{:<20} {:>8} {:>10.0} {:>10.0} {:>10.0} {:>7} {:>7} {:>6} {:>6.3}",
                r.name,
                r.started,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.completed,
                r.rto_stalls,
                r.replica_wins,
                r.jain
            );
        }
        println!(
            "T-RACKs: incast fan-in over tiny VOQs drives short flows into RTO; \
             RepNet: replication cuts the tail"
        );
    }

    /// Write the figure as `BENCH_tails.json` (one row object per line —
    /// the line-local format `tailgate` parses).
    pub fn write_json(&self, path: &str) {
        let mut out = String::from("{\n  \"suite\": \"tails\",\n  \"unit\": \"us\",\n");
        out.push_str(&format!(
            "  \"horizon_ms\": {},\n  \"results\": [\n",
            tails_horizon().as_nanos() / 1_000_000
        ));
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"p999_us\": {:.1}, \"started\": {}, \"completed\": {}, \
                 \"rto_stalls\": {}, \"replica_wins\": {}, \"jain\": {:.4}}}{}\n",
                r.name,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                r.started,
                r.completed,
                r.rto_stalls,
                r.replica_wins,
                r.jain,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(path, out) {
            Ok(()) => eprintln!("figures: wrote {path}"),
            Err(e) => eprintln!("figures: could not write {path}: {e}"),
        }
    }

    /// Fetch a row by name (test hook).
    pub fn row(&self, name: &str) -> Option<&TailRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// `FctOracle` re-export so figure consumers need not reach into
/// `crate::tails` for percentile math.
pub type Oracle = FctOracle;
