//! Data-path impairment sensitivity: goodput and flow-survival rate vs
//! segment loss, delay-based reordering, and payload corruption for
//! TDTCP, CUBIC, and reTCP.
//!
//! The paper's evaluation runs on a clean fabric; this sweep asks how
//! each variant holds up when the fabric itself misbehaves. Two
//! measurements per point:
//!
//! 1. **Goodput**: bulk flows past warmup, as everywhere else.
//! 2. **Survival**: a fixed-size transfer per flow; a flow *survives*
//!    when it completes in full without a `ConnError`. The transport's
//!    no-silent-stall contract means every non-survivor is an explicit
//!    abort, not a hang.

use crate::experiments::default_warmup;
use crate::variants::Variant;
use crate::workload::{steady_goodput_gbps, Workload};
use rdcn::{ImpairPlan, NetConfig};
use simcore::{SimDuration, SimTime};

/// Variants compared in the sweep.
pub const VARIANTS: [Variant; 3] = [Variant::Tdtcp, Variant::Cubic, Variant::ReTcp];

/// Segment loss rates swept.
pub const LOSS_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.03];
/// Reordering rates swept (extra delay uniform in (0, 150 µs]).
pub const REORDER_RATES: [f64; 3] = [0.05, 0.15, 0.30];
/// Payload corruption rates swept.
pub const CORRUPT_RATES: [f64; 3] = [0.001, 0.005, 0.02];

/// Fixed transfer size per flow in the survival runs.
const SURVIVAL_BYTES: u64 = 400_000;

/// One (variant, rate) point of a sweep dimension.
#[derive(Debug)]
pub struct ImpairRow {
    /// Variant under test.
    pub variant: Variant,
    /// The swept rate (loss, reorder, or corruption probability).
    pub rate: f64,
    /// Steady-state goodput in Gbps (bulk flows).
    pub goodput_gbps: f64,
    /// Goodput relative to the same variant's clean run.
    pub clean_ratio: f64,
    /// Fraction of fixed-size flows that completed in full without a
    /// `ConnError`.
    pub survival: f64,
    /// Fraction of fixed-size flows that terminated (completed or
    /// explicitly errored) — anything below 1.0 is a silent stall.
    pub terminated: f64,
    /// Wire impairments applied during the bulk run.
    pub impaired: u64,
    /// Corrupted segments detected and discarded by endpoints (bulk
    /// run).
    pub corrupt_rx: u64,
}

/// The full impairment-sensitivity result.
#[derive(Debug)]
pub struct ImpairSweep {
    /// Goodput/survival vs segment loss rate.
    pub loss: Vec<ImpairRow>,
    /// Goodput/survival vs reordering rate.
    pub reorder: Vec<ImpairRow>,
    /// Goodput/survival vs corruption rate.
    pub corrupt: Vec<ImpairRow>,
}

impl ImpairSweep {
    /// Print all three tables.
    pub fn print(&self) {
        for (title, rows) in [
            ("segment loss", &self.loss),
            ("reordering (delay ≤150us)", &self.reorder),
            ("payload corruption", &self.corrupt),
        ] {
            println!("\n== impair: goodput & survival vs {title} ==");
            println!("  variant    rate    goodput   vs-clean  survival  terminated  impaired  corrupt_rx");
            for r in rows {
                println!(
                    "  {:>8}  {:>5.2}%  {:>7.3} Gbps  {:>6.1}%  {:>6.1}%  {:>7.1}%  {:>8}  {:>8}",
                    r.variant.label(),
                    r.rate * 100.0,
                    r.goodput_gbps,
                    r.clean_ratio * 100.0,
                    r.survival * 100.0,
                    r.terminated * 100.0,
                    r.impaired,
                    r.corrupt_rx,
                );
            }
        }
    }
}

fn measure(variant: Variant, rate: f64, plan: ImpairPlan, clean_gbps: f64, horizon: SimTime) -> ImpairRow {
    let warmup = default_warmup();
    let mut net = NetConfig::paper_baseline();
    net.impair = plan;

    // Bulk run: goodput and wire counters.
    let bulk = Workload::bulk(variant, horizon).run(&net);
    let g = steady_goodput_gbps(&bulk, warmup, horizon);
    let corrupt_rx = bulk
        .sender_stats
        .iter()
        .chain(&bulk.receiver_stats)
        .map(|s| s.corrupt_rx)
        .sum();

    // Survival run: fixed-size flows.
    let fin = Workload {
        bytes_per_flow: SURVIVAL_BYTES,
        ..Workload::bulk(variant, horizon)
    }
    .run(&net);
    let flows = fin.completions.len();
    let terminated = fin.completions.iter().filter(|c| c.is_some()).count();
    let survived = (0..flows)
        .filter(|&i| {
            fin.completions[i].is_some()
                && fin.conn_errors[i].is_none()
                && fin.receiver_stats[i].bytes_delivered == SURVIVAL_BYTES
        })
        .count();

    ImpairRow {
        variant,
        rate,
        goodput_gbps: g,
        clean_ratio: if clean_gbps > 0.0 { g / clean_gbps } else { 0.0 },
        survival: survived as f64 / flows as f64,
        terminated: terminated as f64 / flows as f64,
        impaired: bulk.impairments.total(),
        corrupt_rx,
    }
}

/// Run the impairment sensitivity sweep.
pub fn run(horizon: SimTime) -> ImpairSweep {
    let warmup = default_warmup();

    // Per-variant clean baselines (also the loss sweep's 0% points).
    // These gate every other point's clean_ratio, so they are the one
    // barrier in the sweep; everything after shards fully.
    let clean = simcore::par::par_map(VARIANTS.to_vec(), |_, variant| {
        let res = Workload::bulk(variant, horizon).run(&NetConfig::paper_baseline());
        steady_goodput_gbps(&res, warmup, horizon)
    });

    // Flatten all three dimensions into one (rate, variant, plan) list so
    // every point shards across workers in a single pass, then split the
    // ordered results back into their tables.
    let mut points: Vec<(f64, usize, ImpairPlan)> = Vec::new();
    for &rate in &LOSS_RATES {
        for vi in 0..VARIANTS.len() {
            points.push((rate, vi, ImpairPlan::loss(rate)));
        }
    }
    let n_loss = points.len();
    for &rate in &REORDER_RATES {
        for vi in 0..VARIANTS.len() {
            let plan = ImpairPlan {
                reorder_rate: rate,
                reorder_delay: SimDuration::from_micros(150),
                ..ImpairPlan::default()
            };
            points.push((rate, vi, plan));
        }
    }
    let n_reorder = points.len() - n_loss;
    for &rate in &CORRUPT_RATES {
        for vi in 0..VARIANTS.len() {
            let plan = ImpairPlan {
                corrupt_rate: rate,
                ..ImpairPlan::default()
            };
            points.push((rate, vi, plan));
        }
    }

    let mut rows = simcore::par::par_map(points, |_, (rate, vi, plan)| {
        measure(VARIANTS[vi], rate, plan, clean[vi], horizon)
    });
    let corrupt = rows.split_off(n_loss + n_reorder);
    let reorder = rows.split_off(n_loss);

    ImpairSweep {
        loss: rows,
        reorder,
        corrupt,
    }
}
