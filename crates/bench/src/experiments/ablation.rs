//! Ablations of TDTCP's design decisions (DESIGN.md §4):
//!
//! * per-TDN state off → behaves like single-path CUBIC (§3.1),
//! * relaxed reordering detection off → spurious retransmissions at every
//!   transition (§3.4),
//! * pessimistic RTO off → premature timeouts (§4.4),
//! * pacing off → initial-burst drops at TDN switches (§5.2),
//! * day-length sweep → the §3.5 operating-regime claim (TDTCP helps when
//!   days last 1–100× RTT, not at the extremes),
//! * notification-latency sweep → generalizes Fig. 11.

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::{Emulator, NetConfig, Schedule};
use simcore::{SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};
use wire::TdnId;

/// Result of one ablation run.
#[derive(Debug)]
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Acknowledged bytes.
    pub acked: u64,
    /// Ratio to the full TDTCP configuration.
    pub vs_full: f64,
    /// Spurious retransmissions observed at receivers.
    pub spurious: u64,
    /// RTO events.
    pub rtos: u64,
}

/// Run a TDTCP configuration over the baseline network.
fn run_tdtcp_cfg(label: &str, mutate: impl Fn(&mut TdtcpConfig), horizon: SimTime) -> (String, u64, u64, u64) {
    let mut net = NetConfig::paper_baseline();
    Variant::Tdtcp.apply_net_config(&mut net);
    let cc = CcConfig::default();
    let factory: rdcn::EndpointFactory = Box::new(move |i| {
        let mut cfg = TdtcpConfig::default();
        mutate(&mut cfg);
        let template = Cubic::new(cc);
        (
            Box::new(TdtcpConnection::connect(
                FlowId(i as u32),
                cfg.clone(),
                &template,
                SimTime::ZERO,
            )) as Box<dyn Transport>,
            Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template))
                as Box<dyn Transport>,
        )
    });
    let res = Emulator::new(net, 16, factory).run(horizon);
    let spurious: u64 = res
        .receiver_stats
        .iter()
        .map(|s| s.spurious_retransmits)
        .sum();
    let rtos: u64 = res.sender_stats.iter().map(|s| s.rtos).sum();
    (label.to_string(), res.total_acked(), spurious, rtos)
}

/// Named tweak applied to the baseline TDTCP configuration. A plain fn
/// pointer (not a boxed closure) so the config table is `Sync` and the
/// runs can shard across worker threads.
type ConfigTweak = (&'static str, fn(&mut TdtcpConfig));

/// The design-decision ablation table.
pub fn design_ablation(horizon: SimTime) -> Vec<AblationRow> {
    let configs: Vec<ConfigTweak> = vec![
        ("full tdtcp", |_c| {}),
        ("no per-TDN state", |c| c.per_tdn_state = false),
        ("no relaxed reordering", |c| c.relaxed_reordering = false),
        ("no pessimistic RTO", |c| c.pessimistic_rto = false),
        ("no pacing", |c| c.tcp.pacing = false),
    ];
    let runs = simcore::par::par_map(configs, |_, (label, mutate)| {
        run_tdtcp_cfg(label, mutate, horizon)
    });
    let mut rows = Vec::new();
    let mut full_acked = 0u64;
    for (label, acked, spurious, rtos) in runs {
        if label == "full tdtcp" {
            full_acked = acked;
        }
        rows.push(AblationRow {
            vs_full: acked as f64 / full_acked.max(1) as f64,
            label,
            acked,
            spurious,
            rtos,
        });
    }
    rows
}

/// Print an ablation table.
pub fn print_ablation(rows: &[AblationRow]) {
    println!("\n== TDTCP design ablations ==");
    println!(
        "{:<24} {:>14} {:>9} {:>9} {:>6}",
        "config", "acked bytes", "vs full", "spurious", "rtos"
    );
    for r in rows {
        println!(
            "{:<24} {:>14} {:>8.0}% {:>9} {:>6}",
            r.label,
            r.acked,
            r.vs_full * 100.0,
            r.spurious,
            r.rtos
        );
    }
}

/// One point of the §3.5 operating-regime sweep.
#[derive(Debug)]
pub struct RegimePoint {
    /// Day length in microseconds.
    pub day_us: u64,
    /// Day length expressed in packet-network RTTs.
    pub day_rtts: f64,
    /// TDTCP goodput / CUBIC goodput.
    pub tdtcp_gain: f64,
}

/// Sweep the day length at a fixed 9:1 duty cycle, comparing TDTCP and
/// CUBIC. The §3.5 claim: the TDTCP advantage lives roughly where days
/// are 1–100× the RTT and fades at the extremes.
pub fn regime_sweep(day_lens_us: &[u64], weeks: u64) -> Vec<RegimePoint> {
    // Shard at (day length, variant) granularity: each of the 2·N runs is
    // independent, and the longest day lengths dominate the sweep's wall
    // time, so finer shards keep all workers busy.
    let items: Vec<(u64, Variant)> = day_lens_us
        .iter()
        .flat_map(|&day_us| [(day_us, Variant::Tdtcp), (day_us, Variant::Cubic)])
        .collect();
    let acked = simcore::par::par_map(items, |_, (day_us, v)| {
        let night_us = (day_us / 9).max(1);
        let mut net = NetConfig::paper_baseline();
        net.schedule = Schedule {
            day_len: SimDuration::from_micros(day_us),
            night_len: SimDuration::from_micros(night_us),
            days: vec![
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(1),
            ],
        };
        let horizon = SimTime::ZERO + net.schedule.week_len() * weeks;
        Workload::bulk(v, horizon).run(&net).total_acked() as f64
    });
    day_lens_us
        .iter()
        .zip(acked.chunks_exact(2))
        .map(|(&day_us, pair)| RegimePoint {
            day_us,
            day_rtts: day_us as f64 / 100.0,
            tdtcp_gain: pair[0] / pair[1],
        })
        .collect()
}

/// Print the regime sweep.
pub fn print_regime(points: &[RegimePoint]) {
    println!("\n== §3.5 operating-regime sweep (day length vs TDTCP gain) ==");
    println!("{:>10} {:>10} {:>12}", "day_us", "day/RTT", "tdtcp/cubic");
    for p in points {
        println!(
            "{:>10} {:>10.1} {:>11.2}x",
            p.day_us, p.day_rtts, p.tdtcp_gain
        );
    }
}

/// Notification-latency sensitivity: TDTCP goodput as extra delivery
/// delay grows toward a whole day length.
pub fn notify_sweep(extra_us: &[u64], horizon: SimTime) -> Vec<(u64, u64)> {
    simcore::par::par_map(extra_us.to_vec(), |_, us| {
        let mut net = NetConfig::paper_baseline();
        net.notify.extra_delay = SimDuration::from_micros(us);
        let acked = Workload::bulk(Variant::Tdtcp, horizon)
            .run(&net)
            .total_acked();
        (us, acked)
    })
}

/// Print the notification sweep.
pub fn print_notify_sweep(points: &[(u64, u64)]) {
    println!("\n== notification latency sweep (TDTCP) ==");
    println!("{:>12} {:>14}", "extra_us", "acked bytes");
    for (us, acked) in points {
        println!("{us:>12} {acked:>14}");
    }
}
