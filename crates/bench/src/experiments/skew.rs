//! Time-plane sensitivity: goodput vs per-host clock drift, guard-band
//! width, and resync cadence for TDTCP, CUBIC, and reTCP.
//!
//! The paper assumes hosts and the ToR agree on where slot boundaries
//! fall; this sweep quantifies what each variant pays when they don't.
//! Three dimensions; per point a bulk run (steady goodput), a
//! fixed-transfer run (horizon-censored p99 FCT — slot-edge losses are
//! exactly the tail-loss regime T-RACKs targets), and the time-plane
//! counters that explain both:
//!
//! 1. **Drift** under a well-run PTP deployment (1 ms resync to a 2 µs
//!    residual): the headline is TDTCP holding ≥80% of clean goodput
//!    at 50 ppm.
//! 2. **Guard-band width** against a fixed 60 µs static-offset
//!    population: shrinking the band exposes launches it absorbed.
//! 3. **Resync cadence** against 150 µs offsets (past the default
//!    guard band): without resync the mis-set hosts drop launches
//!    forever; each tightening of the cadence buys goodput back.

use crate::experiments::default_warmup;
use crate::variants::Variant;
use crate::workload::{steady_goodput_gbps, Workload};
use rdcn::{ClockPlan, NetConfig};
use simcore::{SimDuration, SimTime};

/// Variants compared in the sweep.
pub const VARIANTS: [Variant; 3] = [Variant::Tdtcp, Variant::Cubic, Variant::ReTcp];

/// Drift magnitudes swept (ppm), each under 1 ms / 2 µs resync.
pub const DRIFT_PPM: [f64; 4] = [0.0, 50.0, 200.0, 1000.0];
/// Guard-band widths swept (µs) against the fixed offset population.
pub const GUARD_US: [u64; 3] = [50, 20, 5];
/// Resync intervals swept (ms; 0 = never) against over-guard offsets.
pub const RESYNC_MS: [u64; 3] = [0, 4, 1];

/// Static offset bound (µs) for the guard-band dimension — inside the
/// default 100 µs guard, so only narrowed bands expose it.
const GUARD_OFFSET_US: u64 = 60;
/// Static offset bound (µs) for the resync dimension — past the
/// default guard band, so only resync can rescue the worst hosts.
const RESYNC_OFFSET_US: u64 = 150;

/// Fixed transfer size per flow in the censored-FCT runs (matches the
/// impair sweep's survival transfers).
const FCT_BYTES: u64 = 400_000;

/// One (variant, swept value) point.
#[derive(Debug)]
pub struct SkewRow {
    /// Variant under test.
    pub variant: Variant,
    /// The swept value (ppm, guard µs, or resync ms per table).
    pub x: f64,
    /// Steady-state goodput in Gbps (bulk flows).
    pub goodput_gbps: f64,
    /// Goodput relative to the same variant's clean run.
    pub clean_ratio: f64,
    /// Horizon-censored p99 flow-completion time (µs) over fixed-size
    /// transfers: flows still running at the horizon count at the
    /// horizon, so stalls cannot silently leave the tail.
    pub censored_p99_us: f64,
    /// Fixed-size flows that completed in full within the horizon.
    pub done: usize,
    /// Fixed-size flows started.
    pub started: usize,
    /// Launches attempted while the host's perceived slot disagreed
    /// with the fabric's.
    pub skewed_sends: u64,
    /// Launches dropped at the slot edge by the guard band.
    pub guard_drops: u64,
    /// Clock resyncs applied across all hosts.
    pub resyncs: u64,
    /// TDTCP senders+receivers that escalated to degraded mode on an
    /// unusable clock.
    pub escalations: u64,
    /// Largest absolute perceived-vs-true skew observed (µs).
    pub max_skew_us: f64,
}

/// The full time-plane sensitivity result.
#[derive(Debug)]
pub struct SkewSweep {
    /// Goodput vs drift ppm (with resync).
    pub drift: Vec<SkewRow>,
    /// Goodput vs guard-band width (fixed 60 µs offsets).
    pub guard: Vec<SkewRow>,
    /// Goodput vs resync interval (fixed 150 µs offsets).
    pub resync: Vec<SkewRow>,
}

impl SkewSweep {
    /// Print all three tables.
    pub fn print(&self) {
        for (title, xlabel, rows) in [
            ("clock drift, resync 1ms/2us", "ppm", &self.drift),
            ("guard-band width, offsets 60us", "guard_us", &self.guard),
            ("resync interval, offsets 150us (0 = never)", "resync_ms", &self.resync),
        ] {
            println!("\n== skew: goodput vs {title} ==");
            println!(
                "  variant  {xlabel:>9}    goodput   vs-clean  p99_fct_us   done    skewed     drops   resyncs  escal  max_skew"
            );
            for r in rows {
                println!(
                    "  {:>8}  {:>8.0}  {:>7.3} Gbps  {:>6.1}%  {:>9.0}  {:>2}/{:>2}  {:>8}  {:>8}  {:>8}  {:>5}  {:>6.1}us",
                    r.variant.label(),
                    r.x,
                    r.goodput_gbps,
                    r.clean_ratio * 100.0,
                    r.censored_p99_us,
                    r.done,
                    r.started,
                    r.skewed_sends,
                    r.guard_drops,
                    r.resyncs,
                    r.escalations,
                    r.max_skew_us,
                );
            }
        }
    }
}

fn measure(
    variant: Variant,
    x: f64,
    clock: ClockPlan,
    guard_band: Option<SimDuration>,
    clean_gbps: f64,
    horizon: SimTime,
) -> SkewRow {
    let warmup = default_warmup();
    let mut net = NetConfig::paper_baseline();
    net.clock = clock;
    if let Some(g) = guard_band {
        net.guard_band = g;
    }
    // Bulk run: goodput and the time-plane counters.
    let res = Workload::bulk(variant, horizon).run(&net);
    let g = steady_goodput_gbps(&res, warmup, horizon);
    let escalations = res
        .sender_stats
        .iter()
        .chain(&res.receiver_stats)
        .map(|s| s.skew_escalations)
        .sum();

    // Fixed-transfer run: horizon-censored FCT tail. Flows that miss
    // the horizon count at the horizon (nearest-rank over the censored
    // multiset, same oracle as the tails suite).
    let fin = Workload {
        bytes_per_flow: FCT_BYTES,
        ..Workload::bulk(variant, horizon)
    }
    .run(&net);
    let started = fin.completions.len();
    let done = fin.completions.iter().filter(|c| c.is_some()).count();
    let mut oracle = crate::tails::FctOracle::new(
        (0..started)
            .map(|i| {
                fin.completions[i]
                    .unwrap_or(horizon)
                    .saturating_since(fin.starts[i])
                    .as_nanos()
            })
            .collect(),
    );
    let censored_p99_us = oracle.p99().unwrap_or(0) as f64 / 1_000.0;

    SkewRow {
        variant,
        x,
        goodput_gbps: g,
        clean_ratio: if clean_gbps > 0.0 { g / clean_gbps } else { 0.0 },
        censored_p99_us,
        done,
        started,
        skewed_sends: res.clock.skewed_sends,
        guard_drops: res.clock.guard_drops,
        resyncs: res.clock.resyncs,
        escalations,
        max_skew_us: res.clock.max_abs_skew_ns as f64 / 1_000.0,
    }
}

/// Drifting hosts under periodic PTP-style resync.
fn drift_plan(ppm: f64) -> ClockPlan {
    ClockPlan {
        drift_ppm: ppm,
        resync_interval: SimDuration::from_millis(1),
        resync_error: SimDuration::from_micros(2),
        ..ClockPlan::default()
    }
}

/// Statically mis-set hosts, optionally rescued by resync.
fn offset_plan(offset_us: u64, resync_ms: u64) -> ClockPlan {
    ClockPlan {
        offset_bound: SimDuration::from_micros(offset_us),
        resync_interval: SimDuration::from_millis(resync_ms),
        resync_error: if resync_ms > 0 {
            SimDuration::from_micros(2)
        } else {
            SimDuration::ZERO
        },
        ..ClockPlan::default()
    }
}

/// Run the time-plane sensitivity sweep.
pub fn run(horizon: SimTime) -> SkewSweep {
    let warmup = default_warmup();

    // Per-variant clean baselines gate every point's clean_ratio, so
    // they are the one barrier; everything after shards fully.
    let clean = simcore::par::par_map(VARIANTS.to_vec(), |_, variant| {
        let res = Workload::bulk(variant, horizon).run(&NetConfig::paper_baseline());
        steady_goodput_gbps(&res, warmup, horizon)
    });

    // Flatten all three dimensions into one point list so every run
    // shards across workers in a single pass, then split the ordered
    // results back into their tables.
    let mut points: Vec<(f64, usize, ClockPlan, Option<SimDuration>)> = Vec::new();
    for &ppm in &DRIFT_PPM {
        for vi in 0..VARIANTS.len() {
            points.push((ppm, vi, drift_plan(ppm), None));
        }
    }
    let n_drift = points.len();
    for &guard_us in &GUARD_US {
        for vi in 0..VARIANTS.len() {
            points.push((
                guard_us as f64,
                vi,
                ClockPlan::offset(SimDuration::from_micros(GUARD_OFFSET_US)),
                Some(SimDuration::from_micros(guard_us)),
            ));
        }
    }
    let n_guard = points.len() - n_drift;
    for &resync_ms in &RESYNC_MS {
        for vi in 0..VARIANTS.len() {
            points.push((
                resync_ms as f64,
                vi,
                offset_plan(RESYNC_OFFSET_US, resync_ms),
                None,
            ));
        }
    }

    let mut rows = simcore::par::par_map(points, |_, (x, vi, clock, guard)| {
        measure(VARIANTS[vi], x, clock, guard, clean[vi], horizon)
    });
    let resync = rows.split_off(n_drift + n_guard);
    let guard = rows.split_off(n_drift);

    SkewSweep {
        drift: rows,
        guard,
        resync,
    }
}
