//! ToR VOQ occupancy figures: Fig. 7b (bandwidth + latency difference),
//! Fig. 8b (bandwidth only), Fig. 13 (CUBIC/MPTCP in the motivation
//! study), Fig. 14a/b (latency only at 10 and 100 Gbps).

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::NetConfig;
use simcore::{SimDuration, SimTime};

/// Occupancy summary for one variant.
#[derive(Debug)]
pub struct VoqSummary {
    /// Variant label.
    pub label: String,
    /// Mean occupancy over the steady-state window (packets).
    pub mean: f64,
    /// Peak occupancy (packets).
    pub max: f64,
    /// Mean occupancy during packet days only.
    pub mean_packet_days: f64,
    /// Mean occupancy during optical days only.
    pub mean_optical_days: f64,
    /// Sampled trace over one plotted window (packets at each grid step).
    pub trace: Vec<f64>,
}

/// One VOQ figure.
#[derive(Debug)]
pub struct VoqFigure {
    /// Experiment identifier.
    pub name: &'static str,
    /// Grid offsets (µs) for the traces.
    pub grid_us: Vec<u64>,
    /// Per-variant summaries.
    pub variants: Vec<VoqSummary>,
}

impl VoqFigure {
    /// Find a variant's summary.
    pub fn get(&self, label: &str) -> Option<&VoqSummary> {
        self.variants.iter().find(|v| v.label == label)
    }

    /// Print the traces and summary rows.
    pub fn print(&self) {
        println!("\n== {} : ToR VOQ occupancy (packets) ==", self.name);
        print!("{:>8}", "t_us");
        for v in &self.variants {
            print!("{:>10}", v.label);
        }
        println!();
        for (k, t) in self.grid_us.iter().enumerate() {
            print!("{t:>8}");
            for v in &self.variants {
                print!("{:>10.1}", v.trace[k]);
            }
            println!();
        }
        println!(
            "{:>10} {:>8} {:>8} {:>10} {:>10}",
            "variant", "mean", "max", "mean_pkt", "mean_opt"
        );
        for v in &self.variants {
            println!(
                "{:>10} {:>8.2} {:>8.1} {:>10.2} {:>10.2}",
                v.label, v.mean, v.max, v.mean_packet_days, v.mean_optical_days
            );
        }
    }
}

/// Generate a VOQ occupancy figure.
pub fn run(
    name: &'static str,
    net: &NetConfig,
    variants: &[Variant],
    horizon: SimTime,
    window_start: SimTime,
    window_len: SimDuration,
    step: SimDuration,
) -> VoqFigure {
    let mut grid_us = Vec::new();
    let mut t = SimTime::ZERO;
    while t.as_nanos() < window_len.as_nanos() {
        grid_us.push(t.as_micros());
        t += step;
    }
    let out = simcore::par::par_map(variants.to_vec(), |_, v| {
        let wl = Workload::bulk(v, horizon);
        let res = wl.run(net);
        let (mut sum, mut n, mut max) = (0.0f64, 0u64, 0.0f64);
        let (mut psum, mut pn, mut osum, mut on) = (0.0, 0u64, 0.0, 0u64);
        let mut tt = window_start;
        while tt < horizon {
            let occ = res.voq_ab.value_at(tt, 0.0);
            sum += occ;
            n += 1;
            max = max.max(occ);
            match net.schedule.phase_at(tt).active() {
                Some(tdn) if tdn == net.circuit_tdn => {
                    osum += occ;
                    on += 1;
                }
                Some(_) => {
                    psum += occ;
                    pn += 1;
                }
                None => {}
            }
            tt += SimDuration::from_micros(2);
        }
        let trace: Vec<f64> = grid_us
            .iter()
            .map(|&us| {
                res.voq_ab
                    .value_at(window_start + SimDuration::from_micros(us), 0.0)
            })
            .collect();
        VoqSummary {
            label: v.label().to_string(),
            mean: sum / n.max(1) as f64,
            max,
            mean_packet_days: psum / pn.max(1) as f64,
            mean_optical_days: osum / on.max(1) as f64,
            trace,
        }
    });
    VoqFigure {
        name,
        grid_us,
        variants: out,
    }
}

fn all_six() -> Vec<Variant> {
    vec![
        Variant::ReTcpDyn,
        Variant::Tdtcp,
        Variant::ReTcp,
        Variant::Dctcp,
        Variant::Cubic,
        Variant::Mptcp,
    ]
}

/// Fig. 7b: VOQ occupancy, bandwidth + latency difference.
pub fn fig7b(horizon: SimTime) -> VoqFigure {
    run(
        "fig7b",
        &NetConfig::paper_baseline(),
        &all_six(),
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(100),
    )
}

/// Fig. 8b: VOQ occupancy, bandwidth difference only.
pub fn fig8b(horizon: SimTime) -> VoqFigure {
    run(
        "fig8b",
        &NetConfig::bandwidth_only(),
        &all_six(),
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(100),
    )
}

/// Fig. 13 (appendix A.3): CUBIC and MPTCP occupancy in the motivation
/// configuration.
pub fn fig13(horizon: SimTime) -> VoqFigure {
    run(
        "fig13",
        &NetConfig::paper_baseline(),
        &[Variant::Cubic, Variant::Mptcp],
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(100),
    )
}

/// Fig. 14a (appendix A.4): latency-only difference at 10 Gbps.
pub fn fig14a(horizon: SimTime) -> VoqFigure {
    run(
        "fig14a",
        &NetConfig::latency_only(10_000_000_000),
        &all_six(),
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(100),
    )
}

/// Fig. 14b (appendix A.4): latency-only difference at 100 Gbps.
pub fn fig14b(horizon: SimTime) -> VoqFigure {
    run(
        "fig14b",
        &NetConfig::latency_only(100_000_000_000),
        &all_six(),
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(100),
    )
}
