//! Sequence-number graphs: Fig. 2 (CUBIC & MPTCP vs analytic bounds),
//! Fig. 7a (all variants, bandwidth + latency difference), Fig. 8a
//! (bandwidth only), Fig. 9 (latency only at 100 Gbps).
//!
//! Each graph plots cumulative acknowledged bytes over a ~4 ms window of
//! steady state, re-zeroed at the window start, next to the analytic
//! "optimal" and "packet only" reference curves.

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::{analytic, NetConfig};
use simcore::{SimDuration, SimTime};

/// One generated sequence graph.
#[derive(Debug)]
pub struct SeqGraph {
    /// Experiment identifier (`"fig2"`, ...).
    pub name: &'static str,
    /// Sample offsets within the window, in microseconds.
    pub grid_us: Vec<u64>,
    /// `(label, cumulative bytes at each grid point)`, optimal first,
    /// packet-only last.
    pub series: Vec<(String, Vec<f64>)>,
}

impl SeqGraph {
    /// Final (end-of-window) value of a labelled series.
    pub fn final_value(&self, label: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, v)| v.last().copied())
    }

    /// Print in the row form of the paper's figures.
    pub fn print(&self) {
        println!("\n== {} : sequence graph (bytes since window start) ==", self.name);
        print!("{:>8}", "t_us");
        for (label, _) in &self.series {
            print!("{label:>14}");
        }
        println!();
        for (k, t) in self.grid_us.iter().enumerate() {
            print!("{t:>8}");
            for (_, vals) in &self.series {
                print!("{:>14.0}", vals[k]);
            }
            println!();
        }
        println!("-- final bytes over {} us window:", self.grid_us.last().unwrap_or(&0));
        for (label, vals) in &self.series {
            println!("   {:>10}: {:>12.0}", label, vals.last().unwrap_or(&0.0));
        }
    }
}

/// Generate a sequence graph for `variants` over `net`.
///
/// `horizon` is the full simulated duration; the plotted window is
/// `[window_start, window_start + window_len)`, chosen inside steady
/// state like the paper's "≈4-ms period during the experiment, not the
/// absolute start".
pub fn run(
    name: &'static str,
    net: &NetConfig,
    variants: &[Variant],
    horizon: SimTime,
    window_start: SimTime,
    window_len: SimDuration,
    step: SimDuration,
) -> SeqGraph {
    assert!(window_start + window_len <= horizon);
    let window_end = window_start + window_len;
    let mut grid_us = Vec::new();
    let mut t = SimTime::ZERO;
    while t.as_nanos() < window_len.as_nanos() {
        grid_us.push(t.as_micros());
        t += step;
    }
    let npts = grid_us.len();

    let mut series = Vec::new();
    // Analytic reference curves.
    let optimal: Vec<f64> = analytic::sample_curve(
        |tt| analytic::optimal_bytes(net, tt),
        window_start,
        window_end,
        step,
    );
    series.push(("optimal".to_string(), optimal));

    series.extend(simcore::par::par_map(variants.to_vec(), |_, v| {
        let wl = Workload::bulk(v, horizon);
        let res = wl.run(net);
        let base = res.seq_series.value_at(window_start, 0.0);
        let vals: Vec<f64> = (0..npts)
            .map(|k| {
                let tt = window_start + step * k as u64;
                res.seq_series.value_at(tt, 0.0) - base
            })
            .collect();
        (v.label().to_string(), vals)
    }));

    let packet_only: Vec<f64> = analytic::sample_curve(
        |tt| analytic::packet_only_bytes(net, tt),
        window_start,
        window_end,
        step,
    );
    series.push(("packet_only".to_string(), packet_only));

    SeqGraph {
        name,
        grid_us,
        series,
    }
}

/// Fig. 2: CUBIC and MPTCP against the analytic bounds, three optical
/// weeks (§2.2's motivation measurement).
pub fn fig2(horizon: SimTime) -> SeqGraph {
    run(
        "fig2",
        &NetConfig::paper_baseline(),
        &[Variant::Cubic, Variant::Mptcp],
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200), // 3 weeks
        SimDuration::from_micros(200),
    )
}

/// Fig. 7a: every variant under bandwidth + latency difference.
pub fn fig7a(horizon: SimTime) -> SeqGraph {
    run(
        "fig7a",
        &NetConfig::paper_baseline(),
        &[
            Variant::ReTcpDyn,
            Variant::Tdtcp,
            Variant::ReTcp,
            Variant::Dctcp,
            Variant::Cubic,
            Variant::Mptcp,
        ],
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(200),
    )
}

/// Fig. 8a: bandwidth difference only.
pub fn fig8a(horizon: SimTime) -> SeqGraph {
    run(
        "fig8a",
        &NetConfig::bandwidth_only(),
        &[
            Variant::ReTcpDyn,
            Variant::Tdtcp,
            Variant::ReTcp,
            Variant::Dctcp,
            Variant::Cubic,
            Variant::Mptcp,
        ],
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(200),
    )
}

/// Fig. 9: latency difference only at 100 Gbps.
pub fn fig9(horizon: SimTime) -> SeqGraph {
    run(
        "fig9",
        &NetConfig::latency_only(100_000_000_000),
        &[
            Variant::ReTcpDyn,
            Variant::Tdtcp,
            Variant::ReTcp,
            Variant::Dctcp,
            Variant::Cubic,
            Variant::Mptcp,
        ],
        horizon,
        SimTime::from_nanos(horizon.as_nanos() / 2),
        SimDuration::from_micros(4200),
        SimDuration::from_micros(200),
    )
}
