//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [experiment...] [--horizon-ms N]
//!
//! experiments: fig2 fig7a fig7b fig8a fig8b fig9 fig10 fig11 fig13
//!              fig14a fig14b table1 notify ablation regime notify-sweep
//!              faults impair
//!              all   (everything above)
//!              quick (table1 + fig10 + fig11 at a reduced horizon)
//! ```

use bench::experiments::*;
use simcore::SimTime;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut horizon = default_horizon();
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--horizon-ms" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--horizon-ms needs a number");
                horizon = SimTime::from_millis(v);
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    if wanted.iter().any(|w| w == "quick") {
        horizon = SimTime::from_millis(25);
        wanted = vec!["table1".into(), "fig10".into(), "fig11".into()];
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1", "fig2", "fig7a", "fig7b", "fig8a", "fig8b", "fig9", "fig10", "fig11",
            "fig13", "fig14a", "fig14b", "notify", "ablation", "regime", "notify-sweep",
            "shortflows", "fairness", "multirack", "faults", "impair",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let warmup = default_warmup();
    println!(
        "# TDTCP reproduction figures (horizon {} ms, warmup {} ms, 16 flows)",
        horizon.as_nanos() / 1_000_000,
        warmup.as_nanos() / 1_000_000
    );

    for w in &wanted {
        let t0 = std::time::Instant::now();
        match w.as_str() {
            "table1" => table1::run(horizon, warmup).print(),
            "fig2" => seqgraph::fig2(horizon).print(),
            "fig7a" => seqgraph::fig7a(horizon).print(),
            "fig8a" => seqgraph::fig8a(horizon).print(),
            "fig9" => seqgraph::fig9(horizon).print(),
            "fig7b" => voqfig::fig7b(horizon).print(),
            "fig8b" => voqfig::fig8b(horizon).print(),
            "fig13" => voqfig::fig13(horizon).print(),
            "fig14a" => voqfig::fig14a(horizon).print(),
            "fig14b" => voqfig::fig14b(horizon).print(),
            "fig10" => fig10::run(horizon).print(),
            "fig11" => fig11::run(horizon).print(),
            "notify" => notify::run(50_000, 16).print(),
            "ablation" => ablation::print_ablation(&ablation::design_ablation(horizon)),
            "regime" => {
                // Day lengths from ~0.3x RTT to ~100x RTT (packet RTT 100us).
                let pts = ablation::regime_sweep(&[30, 60, 180, 600, 2_000, 10_000], 20);
                ablation::print_regime(&pts);
            }
            "notify-sweep" => {
                let pts = ablation::notify_sweep(&[0, 5, 20, 60, 120], horizon);
                ablation::print_notify_sweep(&pts);
            }
            "shortflows" => {
                use bench::Variant;
                let rows: Vec<_> = [Variant::Tdtcp, Variant::Cubic]
                    .into_iter()
                    .map(|v| {
                        shortflows::short_flows(
                            v,
                            64,
                            100_000,
                            simcore::SimDuration::from_micros(300),
                            4,
                            horizon,
                        )
                    })
                    .collect();
                shortflows::print_short_flows(&rows);
            }
            "multirack" => multirack::run(SimTime::from_millis(15)).print(),
            "faults" => faultsweep::run(horizon).print(),
            "impair" => impairsweep::run(horizon).print(),
            "fairness" => {
                use bench::Variant;
                let rows: Vec<_> = [Variant::Tdtcp, Variant::Cubic]
                    .into_iter()
                    .map(|v| shortflows::fairness(v, horizon))
                    .collect();
                shortflows::print_fairness(&rows);
            }
            other => eprintln!("unknown experiment: {other}"),
        }
        eprintln!("[{w} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
