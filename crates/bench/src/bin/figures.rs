//! Regenerate the paper's tables and figures.
//!
//! ```text
//! figures [experiment...] [--horizon-ms N] [--jobs N] [--bench-json PATH]
//!
//! experiments: fig2 fig7a fig7b fig8a fig8b fig9 fig10 fig11 fig13
//!              fig14a fig14b table1 notify ablation regime notify-sweep
//!              faults impair skew tails
//!              all   (everything above)
//!              quick (adds table1 + fig10 + fig11 at a reduced horizon;
//!                     other requested experiments still run)
//!
//! --jobs N      worker threads for sharded runs (default: the
//!               FIGURES_JOBS env var, else available_parallelism();
//!               --jobs 1 forces the serial path for debugging)
//! --bench-json PATH   write per-experiment wall time + events/sec to
//!                     PATH (default BENCH_figures.json in the cwd)
//! --tails-json PATH   where the `tails` experiment writes its FCT rows
//!                     (default BENCH_tails.json in the cwd); the tails
//!                     experiment always runs at its own fixed horizon so
//!                     these rows are comparable to the checked-in
//!                     baseline regardless of --horizon-ms
//! ```
//!
//! Every experiment's sweep-style runs shard across worker threads via
//! `simcore::par`; outputs are bit-identical to `--jobs 1` because run
//! seeds live in the sharded items and results collect in index order.
#![forbid(unsafe_code)]

use bench::experiments::*;
use simcore::SimTime;
use std::sync::atomic::Ordering;

/// One experiment's timing record for `BENCH_figures.json`.
struct ExpTiming {
    name: String,
    wall_s: f64,
    events: u64,
    events_per_sec: f64,
}

fn write_bench_json(path: &str, jobs: usize, timings: &[ExpTiming]) {
    let mut out = String::from("{\n  \"suite\": \"figures\",\n  \"unit\": \"seconds\",\n");
    out.push_str(&format!("  \"jobs\": {jobs},\n  \"results\": [\n"));
    for (i, t) in timings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}}}{}\n",
            t.name,
            t.wall_s,
            t.events,
            t.events_per_sec,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("figures: wrote {path}"),
        Err(e) => eprintln!("figures: could not write {path}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut horizon = default_horizon();
    let mut wanted: Vec<String> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut bench_json = "BENCH_figures.json".to_string();
    let mut tails_json = "BENCH_tails.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--horizon-ms" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--horizon-ms needs a number");
                horizon = SimTime::from_millis(v);
            }
            "--jobs" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--jobs needs a number >= 1");
                jobs = Some(v);
            }
            "--bench-json" => {
                bench_json = it.next().expect("--bench-json needs a path").clone();
            }
            "--tails-json" => {
                tails_json = it.next().expect("--tails-json needs a path").clone();
            }
            other => wanted.push(other.to_string()),
        }
    }
    // Worker count: --jobs beats FIGURES_JOBS beats available_parallelism.
    let jobs = jobs
        .or_else(|| {
            std::env::var("FIGURES_JOBS")
                .ok()
                .and_then(|s| s.parse().ok())
        })
        .unwrap_or_else(simcore::par::available)
        .max(1);
    simcore::par::set_default_jobs(jobs);

    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    // `quick` expands in place: the reduced horizon applies, and its
    // experiment set merges with whatever else was requested instead of
    // clobbering it (`figures quick faults` runs faults too).
    if let Some(pos) = wanted.iter().position(|w| w == "quick") {
        horizon = SimTime::from_millis(25);
        wanted.splice(pos..=pos, ["table1", "fig10", "fig11"].map(String::from));
        let mut seen = std::collections::BTreeSet::new();
        wanted.retain(|w| seen.insert(w.clone()));
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1", "fig2", "fig7a", "fig7b", "fig8a", "fig8b", "fig9", "fig10", "fig11",
            "fig13", "fig14a", "fig14b", "notify", "ablation", "regime", "notify-sweep",
            "shortflows", "fairness", "multirack", "faults", "impair", "skew", "tails",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let warmup = default_warmup();
    println!(
        "# TDTCP reproduction figures (horizon {} ms, warmup {} ms, 16 flows, {} jobs)",
        horizon.as_nanos() / 1_000_000,
        warmup.as_nanos() / 1_000_000,
        jobs
    );

    let mut timings = Vec::new();
    for w in &wanted {
        let ev0 = rdcn::EVENTS_TOTAL.load(Ordering::Relaxed);
        // detlint: allow(wall_clock) — per-experiment wall timing for BENCH_figures.json only
        let t0 = std::time::Instant::now();
        match w.as_str() {
            "table1" => table1::run(horizon, warmup).print(),
            "fig2" => seqgraph::fig2(horizon).print(),
            "fig7a" => seqgraph::fig7a(horizon).print(),
            "fig8a" => seqgraph::fig8a(horizon).print(),
            "fig9" => seqgraph::fig9(horizon).print(),
            "fig7b" => voqfig::fig7b(horizon).print(),
            "fig8b" => voqfig::fig8b(horizon).print(),
            "fig13" => voqfig::fig13(horizon).print(),
            "fig14a" => voqfig::fig14a(horizon).print(),
            "fig14b" => voqfig::fig14b(horizon).print(),
            "fig10" => fig10::run(horizon).print(),
            "fig11" => fig11::run(horizon).print(),
            "notify" => notify::run(50_000, 16).print(),
            "ablation" => ablation::print_ablation(&ablation::design_ablation(horizon)),
            "regime" => {
                // Day lengths from ~0.3x RTT to ~100x RTT (packet RTT 100us).
                let pts = ablation::regime_sweep(&[30, 60, 180, 600, 2_000, 10_000], 20);
                ablation::print_regime(&pts);
            }
            "notify-sweep" => {
                let pts = ablation::notify_sweep(&[0, 5, 20, 60, 120], horizon);
                ablation::print_notify_sweep(&pts);
            }
            "shortflows" => {
                use bench::Variant;
                let rows = simcore::par::par_map(
                    vec![Variant::Tdtcp, Variant::Cubic],
                    |_, v| {
                        shortflows::short_flows(
                            v,
                            64,
                            100_000,
                            simcore::SimDuration::from_micros(300),
                            4,
                            horizon,
                        )
                    },
                );
                shortflows::print_short_flows(&rows);
            }
            "multirack" => multirack::run(SimTime::from_millis(15)).print(),
            "tails" => {
                let fig = tails::run();
                fig.print();
                fig.write_json(&tails_json);
            }
            "faults" => faultsweep::run(horizon).print(),
            "impair" => impairsweep::run(horizon).print(),
            "skew" => skew::run(horizon).print(),
            "fairness" => {
                use bench::Variant;
                let rows = simcore::par::par_map(
                    vec![Variant::Tdtcp, Variant::Cubic],
                    |_, v| shortflows::fairness(v, horizon),
                );
                shortflows::print_fairness(&rows);
            }
            other => eprintln!("unknown experiment: {other}"),
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let events = rdcn::EVENTS_TOTAL.load(Ordering::Relaxed) - ev0;
        let events_per_sec = if wall_s > 0.0 { events as f64 / wall_s } else { 0.0 };
        eprintln!("[{w} took {wall_s:.1}s, {events} events, {events_per_sec:.0} events/s]");
        timings.push(ExpTiming {
            name: w.clone(),
            wall_s,
            events,
            events_per_sec,
        });
    }
    write_bench_json(&bench_json, jobs, &timings);
}
