//! Diagnostic probe: per-day goodput and drop behaviour for one variant.
//! Not part of the evaluation harness; used to calibrate dynamics.
#![forbid(unsafe_code)]

use bench::Variant;
use rdcn::{Emulator, NetConfig};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{Config, Connection, FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

fn main() {
    let variant = std::env::args().nth(1).unwrap_or_else(|| "tdtcp".into());
    let flows: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let mut cfg = NetConfig::paper_baseline();
    if let Some(var) = Variant::parse(&variant) {
        var.apply_net_config(&mut cfg);
    }
    let cc = CcConfig::default();
    let v = variant.clone();
    let factory: rdcn::EndpointFactory = if let Some(var) =
        Variant::parse(&variant).filter(|_| variant != "tdtcp" && variant != "cubic")
    {
        var.factory(u64::MAX)
    } else {
        Box::new(move |i| {
        if v == "tdtcp" {
            let c = TdtcpConfig::default();
            let template = Cubic::new(cc);
            (
                Box::new(TdtcpConnection::connect(
                    FlowId(i as u32),
                    c.clone(),
                    &template,
                    SimTime::ZERO,
                )) as Box<dyn Transport>,
                Box::new(TdtcpConnection::listen(FlowId(i as u32), c, &template))
                    as Box<dyn Transport>,
            )
        } else {
            let c = Config::default();
            (
                Box::new(Connection::connect(
                    FlowId(i as u32),
                    c.clone(),
                    Box::new(Cubic::new(cc)),
                    SimTime::ZERO,
                )) as Box<dyn Transport>,
                Box::new(Connection::listen(FlowId(i as u32), c, Box::new(Cubic::new(cc))))
                    as Box<dyn Transport>,
            )
        }
    })
    };
    let emu = Emulator::new(cfg.clone(), flows, factory);
    let horizon = SimTime::from_millis(
        std::env::args().nth(3).and_then(|s| s.parse().ok()).unwrap_or(25),
    );
    let res = emu.run(horizon);

    println!("variant={variant} flows={flows}");
    println!(
        "total_acked={} drops_ab={} drops_ba={} events={}",
        res.total_acked(),
        res.drops_ab,
        res.drops_ba,
        res.events
    );
    let s: tcp::ConnStats = res.sender_stats[0];
    println!("flow0 sender: {s:?}");
    // Per-day delivered bytes from the sequence series.
    let slot = cfg.schedule.slot_len();
    println!("day tdn acked_delta");
    for day in 100..107 {
        let t0 = cfg.schedule.day_start(day);
        let t1 = cfg.schedule.day_start(day + 1);
        let a0 = res.seq_series.value_at(t0, 0.0);
        let a1 = res.seq_series.value_at(t1, 0.0);
        println!(
            "{day} {:?} {:.0}  (rate {:.2} Gbps)",
            cfg.schedule.day_tdn(day),
            a1 - a0,
            (a1 - a0) * 8.0 / slot.as_nanos() as f64
        );
    }
    // Fine-grained profile across one optical slot (day 104: 20800-21000us).
    println!("optical day profile (10us bins, Gbps):");
    let base_us = 104 * 200;
    for k in 0..20 {
        let t0 = SimTime::from_micros(base_us + k * 10);
        let t1 = SimTime::from_micros(base_us + (k + 1) * 10);
        let d = res.seq_series.value_at(t1, 0.0) - res.seq_series.value_at(t0, 0.0);
        let v = res.voq_ab.value_at(t0, 0.0);
        println!("  +{:3}us: {:6.1} Gbps  voq={v:.0}", k * 10, d * 8.0 / 10_000.0);
    }

    // Phase-resolved aggregate rates over the steady-state window.
    let mut opt_bytes = 0.0;
    let mut pkt_bytes = 0.0;
    let (mut opt_days, mut pkt_days) = (0u64, 0u64);
    let last_day = horizon.as_nanos() / cfg.schedule.slot_len().as_nanos();
    for day in 50..last_day - 1 {
        let a0 = res.seq_series.value_at(cfg.schedule.day_start(day), 0.0);
        let a1 = res.seq_series.value_at(cfg.schedule.day_start(day + 1), 0.0);
        if cfg.schedule.day_tdn(day) == wire::TdnId(1) {
            opt_bytes += a1 - a0;
            opt_days += 1;
        } else {
            pkt_bytes += a1 - a0;
            pkt_days += 1;
        }
    }
    println!(
        "steady-state: packet-day avg {:.2} Gbps, optical-day avg {:.2} Gbps",
        pkt_bytes * 8.0 / (pkt_days as f64 * slot.as_nanos() as f64),
        opt_bytes * 8.0 / (opt_days as f64 * slot.as_nanos() as f64)
    );
    // Mean VOQ occupancy (steady state).
    let pts = res.voq_ab.points();
    let from = SimTime::from_millis(10);
    let (sum, n) = pts
        .iter()
        .filter(|(tt, _)| *tt >= from)
        .fold((0.0, 0u32), |(s2, n2), (_, v)| (s2 + v, n2 + 1));
    println!("mean VOQ occupancy: {:.2}", sum / n.max(1) as f64);

    // Retransmissions by day type (which phase suffers losses).
    let (mut retx_opt, mut retx_pkt, mut sp_opt, mut sp_pkt) = (0u64, 0u64, 0u64, 0u64);
    for r in res.day_records.iter().filter(|r| r.day >= 50) {
        if r.tdn == wire::TdnId(1) {
            retx_opt += r.retransmits;
            sp_opt += r.spurious_retransmits;
        } else {
            retx_pkt += r.retransmits;
            sp_pkt += r.spurious_retransmits;
        }
    }
    println!("retx per day: optical {:.1} (spurious {:.1}), packet {:.1} (spurious {:.1})",
        retx_opt as f64 / (res.day_records.len() as f64 / 7.0),
        sp_opt as f64 / (res.day_records.len() as f64 / 7.0),
        retx_pkt as f64 / (res.day_records.len() as f64 * 6.0 / 7.0),
        sp_pkt as f64 / (res.day_records.len() as f64 * 6.0 / 7.0));

    // Aggregate retransmit / rto counts.
    let rtos: u64 = res.sender_stats.iter().map(|s| s.rtos).sum();
    let retx: u64 = res.sender_stats.iter().map(|s| s.retransmits).sum();
    let recov: u64 = res.sender_stats.iter().map(|s| s.fast_recoveries).sum();
    let tlps: u64 = res.sender_stats.iter().map(|s| s.tlps).sum();
    println!("rtos={rtos} retransmits={retx} fast_recoveries={recov} tlps={tlps}");
    println!("final cwnds (first 4 flows): {:?}", &res.final_cwnds[..4.min(res.final_cwnds.len())]);
    let agg: u64 = res.final_cwnds.iter().flat_map(|v| v.iter()).map(|&c| c as u64).sum();
    println!("aggregate cwnd across flows/paths: {} ({} MSS)", agg, agg / 8948);
    let ev: u64 = res.sender_stats.iter().map(|s| s.reorder_events).sum();
    let mk: u64 = res.sender_stats.iter().map(|s| s.reorder_marked_pkts).sum();
    let sk: u64 = res.sender_stats.iter().map(|s| s.relaxed_skips).sum();
    let sp: u64 = res.receiver_stats.iter().map(|s| s.spurious_retransmits).sum();
    println!("reorder_events={ev} marked={mk} relaxed_skips={sk} spurious_at_rx={sp}");
}
