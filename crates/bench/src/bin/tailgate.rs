//! Tail-latency regression gate over `BENCH_tails.json` files.
//!
//! ```text
//! tailgate <baseline.json> <candidate.json> [--max-rise-pct P]
//! ```
//!
//! Both files are the `figures tails` output (`suite: tails`, one row
//! object per line). For every row present in the baseline, the
//! candidate's `p99_us` and `p999_us` must not exceed the baseline by
//! more than P percent (default 10), and the candidate must complete at
//! least as many logical flows. A row that vanished from the candidate
//! fails: deleting a sweep point must not silently retire its baseline.
//! Rows new in the candidate are reported but do not fail (they get a
//! baseline when it is next regenerated).
//!
//! The workload is deterministic, so on an unchanged tree the candidate
//! reproduces the baseline bit-for-bit and the tolerance only absorbs
//! intentional, reviewed behaviour changes — like `benchgate` for
//! events/sec, but over FCT tails.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extract the JSON string value following `"<key>": "` on a line.
/// The tails writer emits one row object per line, so line-local
/// scanning is exact for this format.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extract the JSON number following `"<key>": ` on a line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .map_or(line.len(), |i| start + i);
    line[start..end].parse().ok()
}

/// One parsed row.
#[derive(Debug, Clone, Copy)]
struct Row {
    p99_us: f64,
    p999_us: f64,
    completed: f64,
}

/// Parse a tails suite file into `name -> row`.
fn load_rows(path: &str) -> Result<BTreeMap<String, Row>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if let (Some(name), Some(p99_us), Some(p999_us), Some(completed)) = (
            str_field(line, "name"),
            num_field(line, "p99_us"),
            num_field(line, "p999_us"),
            num_field(line, "completed"),
        ) {
            out.insert(name, Row { p99_us, p999_us, completed });
        }
    }
    if out.is_empty() {
        return Err(format!("{path}: no tail rows found"));
    }
    Ok(out)
}

/// Check one metric of one row; returns whether it failed.
fn check(name: &str, metric: &str, old: f64, new: f64, max_ratio: f64) -> bool {
    // A zero baseline (nothing completed at that sweep point) only
    // passes a zero candidate: any completion-time appearing from
    // nowhere is a change worth reviewing.
    let failed = if old == 0.0 { new > 0.0 } else { new > old * max_ratio };
    let verdict = if failed { "FAIL" } else { "ok" };
    println!("  {verdict:<4} {name:<22} {metric:<8} {old:>10.1} -> {new:>10.1} us");
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_rise_pct = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-rise-pct" => {
                max_rise_pct = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-rise-pct needs a number");
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = &paths[..] else {
        eprintln!("usage: tailgate <baseline.json> <candidate.json> [--max-rise-pct P]");
        return ExitCode::FAILURE;
    };
    assert!(max_rise_pct >= 0.0, "--max-rise-pct must be non-negative");
    let max_ratio = 1.0 + max_rise_pct / 100.0;

    let baseline = match load_rows(baseline_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("tailgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let candidate = match load_rows(candidate_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("tailgate: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "tailgate: {candidate_path} vs baseline {baseline_path} \
         (fail above +{max_rise_pct}% p99/p999 FCT)"
    );
    let mut failures = 0u32;
    for (name, old) in &baseline {
        match candidate.get(name) {
            None => {
                println!("  FAIL {name:<22} missing from candidate");
                failures += 1;
            }
            Some(new) => {
                failures += check(name, "p99_us", old.p99_us, new.p99_us, max_ratio) as u32;
                failures += check(name, "p999_us", old.p999_us, new.p999_us, max_ratio) as u32;
                if new.completed < old.completed {
                    println!(
                        "  FAIL {name:<22} completed {} -> {}",
                        old.completed, new.completed
                    );
                    failures += 1;
                }
            }
        }
    }
    for name in candidate.keys().filter(|n| !baseline.contains_key(*n)) {
        println!("  new  {name:<22} (no baseline yet)");
    }

    if failures > 0 {
        eprintln!("tailgate: {failures} tail regression(s) beyond the +{max_rise_pct}% budget");
        return ExitCode::FAILURE;
    }
    println!("tailgate: OK");
    ExitCode::SUCCESS
}
