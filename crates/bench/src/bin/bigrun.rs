//! Large-multirack throughput gate: serial engine vs the sharded engine.
//!
//! ```text
//! bigrun [--json PATH] [--horizon-ms N] [--min-speedup X]
//! ```
//!
//! Runs one big fabric — 16 racks, 48 bulk TDTCP flows (every rack
//! sending at strides 1, 2 and 3) — three ways:
//!
//! 1. the serial [`rdcn::MultiRackEmulator`] (the baseline),
//! 2. the sharded [`rdcn::ShardedEmulator`] at `workers = 1`,
//! 3. the sharded engine at `workers = 4`.
//!
//! It then enforces the two PR-9 acceptance properties in one place:
//! the sharded digests must be **bit-identical across worker counts**
//! (1 vs 2 vs 4), and the sharded engine must clear a throughput floor
//! against the serial engine. The floor is hardware-aware: on hosts
//! with >= 4 CPUs the workers = 4 run must reach `--min-speedup`
//! (default 3.0) times the serial events/sec; on narrower hosts (CI
//! containers are often pinned to one core, where four OS threads
//! cannot beat one) the gate instead requires the *algorithmic* win —
//! sharded workers = 1 must beat serial by >= 1.25x, and workers = 4
//! may pay at most a bounded oversubscription tax (>= 0.6x serial).
//! Either failure exits non-zero, so `scripts/ci.sh bigrun` is a hard
//! gate, and the recorded per-row medians let `benchgate` catch
//! regressions on any host shape.
//!
//! Results land in `BENCH_bigrun.json` in the testkit
//! `name`/`median` format (median = ns per logical event, plus a
//! `peak imbalance × 1000` row), so `benchgate` guards the checked-in
//! baseline against >25% regressions like every other bench suite.

#![forbid(unsafe_code)]

use std::process::ExitCode;

use rdcn::{MultiRackConfig, MultiRackEmulator, PairFlow, ShardConfig, ShardedEmulator};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

const RACKS: usize = 16;

/// Every rack sends at strides 1, 2 and 3: 48 flows, every rack hosting
/// three senders and three receivers.
fn flows() -> Vec<PairFlow> {
    let mut v = Vec::new();
    for stride in 1..=3 {
        for r in 0..RACKS {
            v.push(PairFlow {
                src: r,
                dst: (r + stride) % RACKS,
            });
        }
    }
    v
}

fn tdtcp_pair(i: usize) -> (Box<dyn Transport + Send>, Box<dyn Transport + Send>) {
    let cfg = TdtcpConfig::default();
    let template = Cubic::new(CcConfig::default());
    (
        Box::new(TdtcpConnection::connect(
            FlowId(i as u32),
            cfg.clone(),
            &template,
            SimTime::ZERO,
        )),
        Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template)),
    )
}

fn net() -> MultiRackConfig {
    MultiRackConfig {
        racks: RACKS,
        ..MultiRackConfig::paper_8rack()
    }
}

struct Row {
    name: String,
    ns_per_event: f64,
}

fn write_json(path: &str, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n  \"suite\": \"bigrun\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters_per_trial\": 1, \"trials\": 1, \
             \"min\": {m:.2}, \"mean\": {m:.2}, \"median\": {m:.2}, \"p95\": {m:.2}}}{}\n",
            r.name,
            if i + 1 == rows.len() { "" } else { "," },
            m = r.ns_per_event,
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    eprintln!("bigrun: wrote {path}");
}

fn main() -> ExitCode {
    let mut json_path = "BENCH_bigrun.json".to_string();
    let mut horizon_ms = 30u64;
    let mut min_speedup = 3.0f64;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_path = it.next().expect("--json needs a path").clone(),
            "--horizon-ms" => {
                horizon_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--horizon-ms needs a number")
            }
            "--min-speedup" => {
                min_speedup = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--min-speedup needs a number")
            }
            other => {
                eprintln!("bigrun: unknown argument {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let horizon = SimTime::from_millis(horizon_ms);

    // Serial baseline: the original whole-fabric event loop.
    eprintln!("bigrun: serial engine, {RACKS} racks x {} flows, {horizon_ms}ms", flows().len());
    // detlint: allow(wall_clock) — engine-throughput measurement for BENCH_bigrun.json only
    let t0 = std::time::Instant::now();
    let serial = MultiRackEmulator::new(net(), flows(), |i, _| {
        let (s, r) = tdtcp_pair(i);
        (s as Box<dyn Transport>, r as Box<dyn Transport>)
    })
    .run(horizon);
    let serial_wall = t0.elapsed().as_secs_f64();
    let serial_eps = serial.events as f64 / serial_wall;
    eprintln!(
        "bigrun: serial   {:>10} events in {serial_wall:>6.2}s = {serial_eps:>12.0} events/s",
        serial.events
    );

    // Sharded engine at several worker counts; digests must agree.
    let mut rows = vec![Row {
        name: "bigrun_serial".into(),
        ns_per_event: serial_wall * 1e9 / serial.events as f64,
    }];
    let mut digests = Vec::new();
    let mut w1_eps = 0.0f64;
    let mut w4_eps = 0.0f64;
    for workers in [1usize, 2, 4] {
        // detlint: allow(wall_clock) — engine-throughput measurement for BENCH_bigrun.json only
        let t0 = std::time::Instant::now();
        let res = ShardedEmulator::new(ShardConfig::clean(net()), flows(), |i, _| tdtcp_pair(i))
            .run(horizon, workers);
        let wall = t0.elapsed().as_secs_f64();
        let eps = res.events as f64 / wall;
        let digest = res.stats_digest();
        eprintln!(
            "bigrun: sharded({workers}) {:>8} events in {wall:>6.2}s = {eps:>12.0} events/s  \
             digest {digest:016x}  imbalance {:.2}x",
            res.events,
            res.peak_imbalance()
        );
        digests.push((workers, digest));
        if workers == 1 {
            w1_eps = eps;
        }
        if workers == 1 || workers == 4 {
            rows.push(Row {
                name: format!("bigrun_sharded_w{workers}"),
                ns_per_event: wall * 1e9 / res.events as f64,
            });
        }
        if workers == 4 {
            w4_eps = eps;
            rows.push(Row {
                name: "bigrun_peak_imbalance_x1000".into(),
                ns_per_event: res.peak_imbalance() * 1000.0,
            });
        }
    }

    write_json(&json_path, &rows);

    let mut ok = true;
    let d1 = digests[0].1;
    for &(w, d) in &digests[1..] {
        if d != d1 {
            eprintln!(
                "bigrun: FAIL digest at workers={w} ({d:016x}) differs from workers=1 ({d1:016x})"
            );
            ok = false;
        }
    }
    if ok {
        eprintln!("bigrun: digests bit-identical across workers 1/2/4");
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = w4_eps / serial_eps;
    let w1_speedup = w1_eps / serial_eps;
    if hw >= 4 {
        if speedup < min_speedup {
            eprintln!(
                "bigrun: FAIL speedup {speedup:.2}x at workers=4 below the {min_speedup:.1}x \
                 floor ({hw} CPUs available)"
            );
            ok = false;
        } else {
            eprintln!(
                "bigrun: speedup {speedup:.2}x at workers=4 (floor {min_speedup:.1}x, {hw} CPUs)"
            );
        }
    } else {
        // Narrow host: four OS threads time-slice one core, so the
        // parallel floor is unmeasurable here. Gate the algorithmic win
        // (sharded at workers = 1 must beat serial outright) and bound
        // the oversubscription tax instead.
        let w1_floor = 1.25f64.min(min_speedup);
        let w4_floor = 0.6f64.min(min_speedup);
        eprintln!(
            "bigrun: only {hw} CPU(s) available — gating w1 >= {w1_floor:.2}x and \
             w4 >= {w4_floor:.2}x instead of the {min_speedup:.1}x parallel floor"
        );
        if w1_speedup < w1_floor {
            eprintln!(
                "bigrun: FAIL sharded w1 {w1_speedup:.2}x below the {w1_floor:.2}x serial floor"
            );
            ok = false;
        } else {
            eprintln!("bigrun: sharded w1 {w1_speedup:.2}x vs serial (floor {w1_floor:.2}x)");
        }
        if speedup < w4_floor {
            eprintln!(
                "bigrun: FAIL sharded w4 {speedup:.2}x below the {w4_floor:.2}x \
                 oversubscription bound"
            );
            ok = false;
        } else {
            eprintln!("bigrun: sharded w4 {speedup:.2}x vs serial (bound {w4_floor:.2}x)");
        }
    }
    if ok {
        eprintln!("bigrun: OK");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
