//! Perf-regression gate over testkit `BENCH_*.json` files.
//!
//! ```text
//! benchgate <baseline.json> <candidate.json> [--max-loss-pct P]
//! ```
//!
//! Both files are testkit [`BenchSuite`](testkit::bench::BenchSuite)
//! output (`unit: ns_per_iter`). For every benchmark present in the
//! baseline, the candidate's median must not be slower than
//! `1 / (1 - P/100)` times the baseline median — with the default
//! P = 25, a candidate may be at most 1.333x slower in ns/iter, which is
//! exactly a 25% loss in events (iterations) per second. A benchmark
//! that vanished from the candidate also fails: deleting a bench must
//! not silently retire its baseline.
//!
//! `scripts/ci.sh bench` wires this against the checked-in
//! `BENCH_simulator.json` at the repo root; exit status 1 on any
//! regression makes it a hard gate.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extract the JSON string value following `"<key>": "` on a line.
/// The testkit writer emits one result object per line, so line-local
/// scanning is exact for this format.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extract the JSON number following `"<key>": ` on a line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .map_or(line.len(), |i| start + i);
    line[start..end].parse().ok()
}

/// Parse a suite file into `name -> median ns/iter`.
fn load_medians(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if let (Some(name), Some(median)) =
            (str_field(line, "name"), num_field(line, "median"))
        {
            out.insert(name, median);
        }
    }
    if out.is_empty() {
        return Err(format!("{path}: no benchmark results found"));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_loss_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-loss-pct" => {
                max_loss_pct = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-loss-pct needs a number");
            }
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, candidate_path] = &paths[..] else {
        eprintln!("usage: benchgate <baseline.json> <candidate.json> [--max-loss-pct P]");
        return ExitCode::FAILURE;
    };
    assert!(
        (0.0..100.0).contains(&max_loss_pct),
        "--max-loss-pct must be in [0, 100)"
    );
    // A P% loss in iterations/sec is a 1/(1-P/100) growth in ns/iter.
    let max_ratio = 1.0 / (1.0 - max_loss_pct / 100.0);

    let baseline = match load_medians(baseline_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("benchgate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let candidate = match load_medians(candidate_path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("benchgate: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "benchgate: {candidate_path} vs baseline {baseline_path} \
         (fail above {max_loss_pct}% events/sec loss = {max_ratio:.3}x median ns)"
    );
    let mut failures = 0u32;
    for (name, &old) in &baseline {
        match candidate.get(name) {
            None => {
                println!("  FAIL {name:<40} missing from candidate");
                failures += 1;
            }
            Some(&new) => {
                let ratio = new / old;
                let verdict = if ratio > max_ratio { "FAIL" } else { "ok" };
                println!(
                    "  {verdict:<4} {name:<40} {old:>12.0} -> {new:>12.0} ns  ({:+.1}% events/sec)",
                    (old / new - 1.0) * 100.0
                );
                if ratio > max_ratio {
                    failures += 1;
                }
            }
        }
    }
    for name in candidate.keys().filter(|n| !baseline.contains_key(*n)) {
        println!("  new  {name:<40} (no baseline yet)");
    }

    if failures > 0 {
        eprintln!("benchgate: {failures} regression(s) beyond the {max_loss_pct}% budget");
        return ExitCode::FAILURE;
    }
    println!("benchgate: OK");
    ExitCode::SUCCESS
}
