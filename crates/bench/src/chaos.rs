//! Chaos scenarios and the transport invariant oracle.
//!
//! A [`ChaosSpec`] is a flat bundle of small integers — seed, variant
//! index, per-mille impairment rates — so the testkit shrinker can walk
//! every field toward zero independently: a minimal failing scenario is
//! one where every rate that does not matter has shrunk away. The spec
//! expands into a `(FaultPlan, ImpairPlan, ClockPlan, workload, variant)`
//! scenario — control-plane, data-path, and time-plane chaos together —
//! runs through the emulator, and the resulting [`RunResult`] is checked
//! against [`check_invariants`] — the oracle every chaos case must pass:
//!
//! 1. **Exactly-once in-order delivery**: a flow that completed without a
//!    [`ConnError`](tcp::ConnError) acknowledged and delivered exactly its
//!    configured bytes — no loss, duplication, or corruption survived the
//!    transport (payload damage is detected by the end-to-end checksum).
//! 2. **Byte conservation**: delivered ≤ sent, acked ≤ configured.
//! 3. **No silent stall**: every flow either completes or surfaces an
//!    explicit `ConnError` within a horizon that is generous for the
//!    scenario. A flow that does neither is deadlocked.
//! 4. **Stats sanity**: checksum-discarded segments never exceed the
//!    number the network actually corrupted, and a corruption-free plan
//!    yields zero `corrupt_rx`.

use crate::variants::Variant;
use crate::workload::Workload;
use rdcn::{ClockPlan, EpsBurst, FaultPlan, ImpairPlan, NetConfig, RunResult, SlotEdgePolicy};
use simcore::{SimDuration, SimTime};

/// Scenario horizon. Generous relative to the largest generated transfer
/// (a clean run completes in a few milliseconds), so a flow that neither
/// completes nor errors by the horizon is stalled, not slow.
pub const CHAOS_HORIZON: SimTime = SimTime::from_millis(250);

/// Variants exercised by the chaos harness.
pub const CHAOS_VARIANTS: [Variant; 3] = [Variant::Tdtcp, Variant::Cubic, Variant::ReTcp];

/// One chaos scenario, encoded as shrink-friendly scalars.
#[derive(Debug, Clone)]
pub struct ChaosSpec {
    /// Emulator seed (also drives the fault and impairment streams).
    pub seed: u64,
    /// Index into [`CHAOS_VARIANTS`] (mod its length).
    pub variant_idx: u8,
    /// Concurrent flows, 1 + (flows_idx mod 3).
    pub flows_idx: u8,
    /// Transfer size: 16 kB + this many kB per flow.
    pub bytes_kb: u32,
    /// Segment loss rate, per mille.
    pub loss_pm: u32,
    /// Reorder (extra-delay) rate, per mille.
    pub reorder_pm: u32,
    /// Upper bound of the reorder extra delay, µs (min 1).
    pub reorder_delay_us: u32,
    /// Duplication rate, per mille.
    pub dup_pm: u32,
    /// Payload corruption rate, per mille.
    pub corrupt_pm: u32,
    /// TDN-notification loss rate, per mille (control-plane chaos).
    pub notify_loss_pm: u32,
    /// Whether an EPS fault burst (drops + corruption in a 2 ms window)
    /// is layered on top.
    pub eps_burst: bool,
    /// Per-host static clock-offset bound, µs (time-plane chaos). Capped
    /// by [`Self::clock_plan`] so scenarios stay live — see there.
    pub clock_offset_us: u32,
    /// Per-host clock drift-rate bound, ppm (capped by `clock_plan`).
    pub clock_drift_ppm: u32,
    /// Index into `[Drop, Defer, WrongTdn]` (mod 3): what the fabric
    /// does with a launch mis-timed beyond the guard band.
    pub slot_edge_idx: u8,
    /// Whether hosts resync every 2 ms (PTP-style, 2 µs residual).
    /// Unlocks over-guard offsets: any blackhole lasts one interval.
    pub clock_resync: bool,
}

impl ChaosSpec {
    /// The variant under test.
    pub fn variant(&self) -> Variant {
        CHAOS_VARIANTS[usize::from(self.variant_idx) % CHAOS_VARIANTS.len()]
    }

    /// Concurrent flows (1–3).
    pub fn flows(&self) -> usize {
        1 + usize::from(self.flows_idx) % 3
    }

    /// Bytes each flow transfers.
    pub fn bytes_per_flow(&self) -> u64 {
        16_000 + u64::from(self.bytes_kb) * 1_000
    }

    /// The data-path impairment plan this spec encodes.
    pub fn impair_plan(&self) -> ImpairPlan {
        ImpairPlan {
            loss_rate: f64::from(self.loss_pm) / 1000.0,
            reorder_rate: f64::from(self.reorder_pm) / 1000.0,
            reorder_delay: SimDuration::from_micros(u64::from(self.reorder_delay_us.max(1))),
            duplicate_rate: f64::from(self.dup_pm) / 1000.0,
            corrupt_rate: f64::from(self.corrupt_pm) / 1000.0,
        }
    }

    /// The control-plane fault plan this spec encodes.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::notification_loss(f64::from(self.notify_loss_pm) / 1000.0);
        if self.eps_burst {
            plan.eps_burst = Some(EpsBurst {
                start: SimTime::from_millis(1),
                len: SimDuration::from_millis(2),
                drop_rate: 0.01,
                corrupt_rate: 0.005,
            });
        }
        plan
    }

    /// The time-plane clock plan this spec encodes. Zero clock scalars
    /// (the shrink target) yield `ClockPlan::none()` — the inert,
    /// zero-draw plan.
    ///
    /// The bounds are chosen so every scenario honestly terminates
    /// inside [`CHAOS_HORIZON`]: a host whose skew exceeds the guard
    /// band (100 µs in the paper baseline) drops the mis-timed fraction
    /// of its launches *persistently*, and the transport's
    /// retransmit-limit abort takes far longer than the horizon to
    /// trip. So without resync the offset is capped at 85 µs and drift
    /// at 60 ppm (≤ 15 µs over the horizon) — at most guard-band skew,
    /// absorbed by design. With resync on, offsets may overshoot to
    /// 150 µs: the slot-edge policy genuinely fires, but only until the
    /// host's first 2 ms resync collapses the offset to ≤ 2 µs.
    pub fn clock_plan(&self) -> ClockPlan {
        if self.clock_offset_us == 0 && self.clock_drift_ppm == 0 && !self.clock_resync {
            // A policy index alone skews nothing: collapse to the
            // inert plan so the zero-draw guarantee holds.
            return ClockPlan::none();
        }
        let cap_us = if self.clock_resync { 150 } else { 85 };
        ClockPlan {
            offset_bound: SimDuration::from_micros(u64::from(self.clock_offset_us.min(cap_us))),
            drift_ppm: f64::from(self.clock_drift_ppm.min(60)),
            jitter: SimDuration::ZERO,
            resync_interval: if self.clock_resync {
                SimDuration::from_millis(2)
            } else {
                SimDuration::ZERO
            },
            resync_error: if self.clock_resync {
                SimDuration::from_micros(2)
            } else {
                SimDuration::ZERO
            },
            slot_edge_policy: match self.slot_edge_idx % 3 {
                0 => SlotEdgePolicy::Drop,
                1 => SlotEdgePolicy::Defer,
                _ => SlotEdgePolicy::WrongTdn,
            },
        }
    }

    /// Expand and run the scenario.
    pub fn run(&self) -> RunResult {
        let mut net = NetConfig::paper_baseline();
        net.faults = self.fault_plan();
        net.impair = self.impair_plan();
        net.clock = self.clock_plan();
        let wl = Workload {
            variant: self.variant(),
            flows: self.flows(),
            duration: CHAOS_HORIZON,
            bytes_per_flow: self.bytes_per_flow(),
            seed: self.seed,
            sample_every: SimDuration::from_micros(100),
        };
        wl.run(&net)
    }
}

/// The transport invariant oracle (see the module docs for the laws).
/// Returns a diagnostic string naming the violated invariant and the
/// offending flow's counters.
pub fn check_invariants(spec: &ChaosSpec, res: &RunResult) -> Result<(), String> {
    let bytes = spec.bytes_per_flow();
    let n = spec.flows();
    if res.sender_stats.len() != n || res.receiver_stats.len() != n {
        return Err(format!(
            "stats arity: {} senders / {} receivers for {n} flows",
            res.sender_stats.len(),
            res.receiver_stats.len()
        ));
    }
    for i in 0..n {
        let s = &res.sender_stats[i];
        let r = &res.receiver_stats[i];
        let err = res.conn_errors[i];
        // No silent stall: the sender terminated — completed or aborted
        // with an explicit error — within the horizon.
        if res.completions[i].is_none() {
            return Err(format!(
                "flow {i} silently stalled: neither completed nor errored by {CHAOS_HORIZON} \
                 (sent {} acked {} delivered {} rtos {} persist_probes {})",
                s.bytes_sent, s.bytes_acked, r.bytes_delivered, s.rtos, s.persist_probes
            ));
        }
        // Exactly-once in-order delivery for clean completions.
        if err.is_none() {
            if s.bytes_acked != bytes {
                return Err(format!(
                    "flow {i} completed without error but acked {} of {bytes} bytes",
                    s.bytes_acked
                ));
            }
            if r.bytes_delivered != bytes {
                return Err(format!(
                    "flow {i} completed without error but delivered {} of {bytes} bytes \
                     (duplication or loss leaked through the transport)",
                    r.bytes_delivered
                ));
            }
        }
        // Byte conservation, completed or not.
        if r.bytes_delivered > s.bytes_sent {
            return Err(format!(
                "flow {i} delivered {} > sent {} (bytes out of nowhere)",
                r.bytes_delivered, s.bytes_sent
            ));
        }
        if s.bytes_acked > bytes {
            return Err(format!(
                "flow {i} acked {} > configured {bytes} (over-acknowledgement)",
                s.bytes_acked
            ));
        }
        if err.is_some() && s.conn_aborts == 0 {
            return Err(format!("flow {i}: errored without a counted abort"));
        }
    }
    // Stats sanity: a checksum discard needs a matching wire corruption.
    let corrupt_rx: u64 = res
        .sender_stats
        .iter()
        .chain(&res.receiver_stats)
        .map(|s| s.corrupt_rx)
        .sum();
    let corrupted_wire = res.impairments.segs_corrupted + res.faults.eps_corruptions;
    if corrupt_rx > corrupted_wire {
        return Err(format!(
            "corrupt_rx {corrupt_rx} exceeds wire corruptions {corrupted_wire}"
        ));
    }
    if corrupted_wire == 0 && corrupt_rx > 0 {
        return Err(format!(
            "corruption-free scenario discarded {corrupt_rx} segments as corrupt"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_spec() -> ChaosSpec {
        ChaosSpec {
            seed: 7,
            variant_idx: 1, // cubic
            flows_idx: 1,   // 2 flows
            bytes_kb: 16,
            loss_pm: 0,
            reorder_pm: 0,
            reorder_delay_us: 50,
            dup_pm: 0,
            corrupt_pm: 0,
            notify_loss_pm: 0,
            eps_burst: false,
            clock_offset_us: 0,
            clock_drift_ppm: 0,
            slot_edge_idx: 0,
            clock_resync: false,
        }
    }

    #[test]
    fn clean_scenario_passes_the_oracle() {
        let spec = quiet_spec();
        let res = spec.run();
        check_invariants(&spec, &res).unwrap();
        assert_eq!(res.impairments.total(), 0, "inert plan must not impair");
        assert_eq!(res.clock.total(), 0, "inert clock plan must not skew");
    }

    #[test]
    fn policy_index_alone_is_inert() {
        let spec = ChaosSpec {
            slot_edge_idx: 2,
            ..quiet_spec()
        };
        assert!(spec.clock_plan().is_none(), "no skew source, no plan");
    }

    #[test]
    fn skewed_scenario_passes_and_skews() {
        // Big enough (and lossy enough) to stay active past the first
        // 2 ms resync interval, so the resync path is exercised too.
        let spec = ChaosSpec {
            clock_offset_us: 150,
            clock_drift_ppm: 40,
            clock_resync: true,
            bytes_kb: 255,
            loss_pm: 15,
            ..quiet_spec()
        };
        let res = spec.run();
        check_invariants(&spec, &res).unwrap();
        assert!(res.clock.resyncs > 0, "resync plan never resynced");
        assert!(
            res.clock.max_abs_skew_ns > 0,
            "offset plan produced no skew"
        );
    }

    #[test]
    fn impaired_scenario_passes_and_impairs() {
        let spec = ChaosSpec {
            loss_pm: 10,
            reorder_pm: 50,
            dup_pm: 10,
            corrupt_pm: 5,
            bytes_kb: 48,
            ..quiet_spec()
        };
        let res = spec.run();
        check_invariants(&spec, &res).unwrap();
        assert!(res.impairments.total() > 0, "rates armed, nothing impaired");
    }

    #[test]
    fn oracle_rejects_a_stall() {
        let spec = quiet_spec();
        let mut res = spec.run();
        res.completions[0] = None;
        let err = check_invariants(&spec, &res).unwrap_err();
        assert!(err.contains("silently stalled"), "got: {err}");
    }

    #[test]
    fn oracle_rejects_short_delivery() {
        let spec = quiet_spec();
        let mut res = spec.run();
        res.receiver_stats[0].bytes_delivered -= 1;
        let err = check_invariants(&spec, &res).unwrap_err();
        assert!(err.contains("delivered"), "got: {err}");
    }
}
