//! The TCP variants under evaluation and their endpoint factories.
//!
//! §5.2 compares: single-path CUBIC and DCTCP, MPTCP with `tdm_schd`,
//! reTCP with and without dynamic buffer resizing, and TDTCP. Reno is
//! included as an extra reference. Each variant may also require network
//! support (ECN marking for DCTCP, circuit marks for reTCP, VOQ resizing
//! and prepare signals for retcpdyn, notifications for TDTCP), which
//! [`Variant::apply_net_config`] switches on.

use mptcp::{MptcpConfig, MptcpConnection};
use rdcn::{NetConfig, RetcpDynConfig};
use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic, Dctcp, Reno, ReTcp, ReTcpConfig};
use tcp::{Config, Connection, FlowId, Transport};
use tdtcp::{TdtcpConfig, TdtcpConnection};

/// A TCP variant under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Single-path CUBIC (Linux default).
    Cubic,
    /// Single-path DCTCP (needs ECN marking at the VOQ).
    Dctcp,
    /// Single-path NewReno.
    Reno,
    /// reTCP without dynamic buffer resizing.
    ReTcp,
    /// reTCP with advance VOQ enlargement and prepare signal ("retcpdyn").
    ReTcpDyn,
    /// MPTCP with the `tdm_schd` scheduler, one subflow per TDN.
    Mptcp,
    /// Time-division TCP (the paper's contribution).
    Tdtcp,
}

/// All variants in the paper's presentation order.
pub const ALL_VARIANTS: [Variant; 7] = [
    Variant::ReTcpDyn,
    Variant::Tdtcp,
    Variant::ReTcp,
    Variant::Dctcp,
    Variant::Cubic,
    Variant::Reno,
    Variant::Mptcp,
];

impl Variant {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Cubic => "cubic",
            Variant::Dctcp => "dctcp",
            Variant::Reno => "reno",
            Variant::ReTcp => "retcp",
            Variant::ReTcpDyn => "retcpdyn",
            Variant::Mptcp => "mptcp",
            Variant::Tdtcp => "tdtcp",
        }
    }

    /// Parse a label.
    pub fn parse(s: &str) -> Option<Variant> {
        ALL_VARIANTS.iter().copied().find(|v| v.label() == s)
    }

    /// Adjust the network configuration for the switch support this
    /// variant requires.
    pub fn apply_net_config(self, cfg: &mut NetConfig) {
        // ECN marking only for DCTCP (marking non-ECT traffic is a no-op,
        // but keeping thresholds off elsewhere avoids surprises).
        cfg.voq.ecn_threshold = match self {
            Variant::Dctcp => Some(8),
            _ => None,
        };
        cfg.circuit_marking = matches!(self, Variant::ReTcp | Variant::ReTcpDyn);
        cfg.retcpdyn = match self {
            Variant::ReTcpDyn => Some(RetcpDynConfig::default()),
            _ => None,
        };
        // Notifications always flow (ToRs do not know which variant runs
        // on a host); only TDTCP and MPTCP's scheduler consume them.
        cfg.notifications = true;
    }

    /// Build the endpoint factory for this variant with `bytes` per flow,
    /// tuned to `net`: TDTCP endpoints get a notification watchdog sized
    /// for the schedule's slot, so lost notifications degrade goodput
    /// instead of stranding the host on a stale TDN.
    pub fn factory_for(self, net: &NetConfig, bytes: u64) -> rdcn::EndpointFactory<'static> {
        match self {
            Variant::Tdtcp => {
                let cc = CcConfig::default();
                let watchdog = tdtcp::WatchdogConfig::for_slot_with_guard(
                    net.schedule.slot_len(),
                    net.guard_band,
                );
                Box::new(move |i| {
                    let mut cfg = TdtcpConfig::default();
                    cfg.tcp.bytes_to_send = bytes;
                    cfg.watchdog = Some(watchdog);
                    let template = Cubic::new(cc);
                    (
                        Box::new(TdtcpConnection::connect(
                            FlowId(i as u32),
                            cfg.clone(),
                            &template,
                            SimTime::ZERO,
                        )) as Box<dyn Transport>,
                        Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template))
                            as Box<dyn Transport>,
                    )
                })
            }
            _ => self.factory(bytes),
        }
    }

    /// Build the endpoint factory for this variant with `bytes` per flow.
    pub fn factory(self, bytes: u64) -> rdcn::EndpointFactory<'static> {
        let cc = CcConfig::default();
        match self {
            Variant::Cubic | Variant::Dctcp | Variant::Reno | Variant::ReTcp
            | Variant::ReTcpDyn => Box::new(move |i| {
                let cfg = Config {
                    bytes_to_send: bytes,
                    ecn: self == Variant::Dctcp,
                    ..Config::default()
                };
                let mk = || -> Box<dyn tcp::CongestionControl> {
                    match self {
                        Variant::Cubic => Box::new(Cubic::new(cc)),
                        Variant::Dctcp => Box::new(Dctcp::new(cc)),
                        Variant::Reno => Box::new(Reno::new(cc)),
                        Variant::ReTcp | Variant::ReTcpDyn => {
                            Box::new(ReTcp::new(ReTcpConfig::default()))
                        }
                        _ => unreachable!(),
                    }
                };
                (
                    Box::new(Connection::connect(
                        FlowId(i as u32),
                        cfg.clone(),
                        mk(),
                        SimTime::ZERO,
                    )) as Box<dyn Transport>,
                    Box::new(Connection::listen(FlowId(i as u32), cfg, mk()))
                        as Box<dyn Transport>,
                )
            }),
            Variant::Mptcp => Box::new(move |i| {
                let cfg = MptcpConfig {
                    bytes_to_send: bytes,
                    ..MptcpConfig::default()
                };
                let template = Cubic::new(cc);
                (
                    Box::new(MptcpConnection::connect(
                        FlowId(i as u32),
                        cfg.clone(),
                        &template,
                        SimTime::ZERO,
                    )) as Box<dyn Transport>,
                    Box::new(MptcpConnection::listen(FlowId(i as u32), cfg, &template))
                        as Box<dyn Transport>,
                )
            }),
            Variant::Tdtcp => Box::new(move |i| {
                let mut cfg = TdtcpConfig::default();
                cfg.tcp.bytes_to_send = bytes;
                let template = Cubic::new(cc);
                (
                    Box::new(TdtcpConnection::connect(
                        FlowId(i as u32),
                        cfg.clone(),
                        &template,
                        SimTime::ZERO,
                    )) as Box<dyn Transport>,
                    Box::new(TdtcpConnection::listen(FlowId(i as u32), cfg, &template))
                        as Box<dyn Transport>,
                )
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for v in ALL_VARIANTS {
            assert_eq!(Variant::parse(v.label()), Some(v));
        }
        assert_eq!(Variant::parse("nope"), None);
    }

    #[test]
    fn net_config_switches() {
        let mut cfg = NetConfig::paper_baseline();
        Variant::Dctcp.apply_net_config(&mut cfg);
        assert!(cfg.voq.ecn_threshold.is_some());
        assert!(!cfg.circuit_marking);
        Variant::ReTcpDyn.apply_net_config(&mut cfg);
        assert!(cfg.circuit_marking);
        assert!(cfg.retcpdyn.is_some());
        assert!(cfg.voq.ecn_threshold.is_none());
        Variant::Tdtcp.apply_net_config(&mut cfg);
        assert!(cfg.notifications);
        assert!(cfg.retcpdyn.is_none());
    }
}
