//! The workload generator (the `flowgrind` equivalent of §5.1): 16
//! long-lived bulk flows from every host in the source rack to its peer
//! in the destination rack, all starting simultaneously.

use crate::variants::Variant;
use rdcn::{Emulator, NetConfig, RunResult};
use simcore::{SimDuration, SimTime};

/// Parameters of one experiment run.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Variant under test.
    pub variant: Variant,
    /// Concurrent long-lived flows (the paper uses 16).
    pub flows: usize,
    /// Simulated duration.
    pub duration: SimTime,
    /// Bytes per flow (`u64::MAX` = run-long bulk flows).
    pub bytes_per_flow: u64,
    /// Seed for the run.
    pub seed: u64,
    /// Sampling interval for the sequence series.
    pub sample_every: SimDuration,
}

impl Workload {
    /// The paper's standard long-lived bulk workload for `variant`.
    pub fn bulk(variant: Variant, duration: SimTime) -> Workload {
        Workload {
            variant,
            flows: 16,
            duration,
            bytes_per_flow: u64::MAX,
            seed: 1,
            sample_every: SimDuration::from_micros(2),
        }
    }

    /// Run over the given base network configuration (variant-specific
    /// switch support is applied automatically).
    pub fn run(&self, base: &NetConfig) -> RunResult {
        let mut net = base.clone();
        net.seed = self.seed;
        self.variant.apply_net_config(&mut net);
        let factory = self.variant.factory_for(&net, self.bytes_per_flow);
        let mut emu = Emulator::new(net, self.flows, factory);
        emu.set_sample_interval(self.sample_every);
        emu.run(self.duration)
    }
}

/// Steady-state goodput in Gbps, measured from acknowledged bytes over
/// `[warmup, duration)` to exclude slow start and convergence transients.
pub fn steady_goodput_gbps(res: &RunResult, warmup: SimTime, end: SimTime) -> f64 {
    let b0 = res.seq_series.value_at(warmup, 0.0);
    let b1 = res.seq_series.value_at(end, 0.0);
    let dt = end.saturating_since(warmup);
    if dt == SimDuration::ZERO {
        return 0.0;
    }
    (b1 - b0) * 8.0 / dt.as_nanos() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_workload_runs_and_reports() {
        let wl = Workload {
            flows: 4,
            duration: SimTime::from_millis(5),
            ..Workload::bulk(Variant::Cubic, SimTime::from_millis(5))
        };
        let res = wl.run(&NetConfig::paper_baseline());
        assert!(res.total_acked() > 0);
        let g = steady_goodput_gbps(&res, SimTime::from_millis(1), SimTime::from_millis(5));
        assert!(g > 0.0 && g < 100.0, "goodput {g}");
    }

    #[test]
    fn seeds_change_runs_but_reproducibly() {
        let base = NetConfig::paper_baseline();
        let mut wl = Workload::bulk(Variant::Cubic, SimTime::from_millis(3));
        wl.flows = 2;
        let a = wl.run(&base).total_acked();
        let a2 = wl.run(&base).total_acked();
        wl.seed = 99;
        let b = wl.run(&base).total_acked();
        assert_eq!(a, a2, "same seed, same outcome");
        assert_ne!(a, b, "different seed perturbs notification jitter");
    }
}
