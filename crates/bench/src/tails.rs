//! The tail-latency workload family (`bench::tails`).
//!
//! The paper's evaluation is goodput-centric; the surrounding literature
//! is about *tails*: T-RACKs shows short data-center flows routinely
//! stall in RTO waiting on timer-based recovery, and RepNet cuts p99 FCT
//! by replicating short flows. This module builds the workload family
//! those papers evaluate on, deterministically:
//!
//! * **Incast**: `incast_degree` senders fan in simultaneously, in
//!   `incast_rounds` synchronized rounds — the classic shallow-buffer
//!   overflow that sends short flows into RTO.
//! * **Poisson short flows**: RPC-sized transfers with exponential
//!   inter-arrivals over long-lived background flows (the original
//!   `shortflows` experiment, which now rides this generator).
//! * **Hotspot skew**: a fraction of the short flows compress into one
//!   synchronized burst epoch instead of arriving Poisson.
//! * **Mixed populations**: TDTCP and CUBIC sharing the rack pair
//!   (coexistence fairness — a figure the paper never ran).
//! * **Replication** (RepNet's knob): every finite flow is duplicated
//!   `replication` times; the first finisher wins and the rest are
//!   ignored. Wins by a non-primary replica are counted.
//!
//! All randomness draws from a dedicated stream forked from the run seed
//! under [`TAIL_STREAM_LABEL`], with every draw guarded by a
//! count/rate > 0 check — an inert spec makes **zero** draws, so clean
//! digests are bit-identical whether or not a spec is constructed, and a
//! populated spec reproduces bit-identically per `(seed, spec)`.
//!
//! Flow completion times are measured first-byte-enqueued to
//! last-byte-acked ([`rdcn::RunResult::fct`]) and answered through an
//! **exact percentile oracle** ([`FctOracle`]): nearest-rank selection
//! over the full FCT multiset via quickselect — no sampling, no
//! interpolation, property-tested against a naive full sort.

use crate::variants::Variant;
use rdcn::{Emulator, FlowSpec, NetConfig, RunResult};
use simcore::{DetRng, SimDuration, SimTime};
use tcp::Transport;
use testkit::Digest;

/// The fixed fork label carving the tail-workload stream out of a run's
/// seed. Forking never advances the parent, so attaching a tails
/// workload can never perturb the emulator's main stream.
pub const TAIL_STREAM_LABEL: u64 = 0x07A1_1FC7;

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// Which transport population shares the rack pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Population {
    /// Every flow runs the same variant.
    Uniform(Variant),
    /// Logical flows alternate TDTCP / CUBIC (coexistence).
    MixedTdtcpCubic,
}

impl Population {
    /// Display label for tables and JSON rows.
    pub fn label(self) -> &'static str {
        match self {
            Population::Uniform(v) => v.label(),
            Population::MixedTdtcpCubic => "mixed",
        }
    }

    /// The variant logical flow `idx` runs (replicas inherit it).
    pub fn variant_for(self, idx: usize) -> Variant {
        match self {
            Population::Uniform(v) => v,
            Population::MixedTdtcpCubic => {
                if idx.is_multiple_of(2) {
                    Variant::Tdtcp
                } else {
                    Variant::Cubic
                }
            }
        }
    }

    /// The network support this population needs. Uniform populations
    /// get their variant's switch support; the mixed population gets the
    /// least common denominator (notifications on, no ECN/marking —
    /// neither TDTCP nor CUBIC needs more).
    pub fn apply_net_config(self, cfg: &mut NetConfig) {
        match self {
            Population::Uniform(v) => v.apply_net_config(cfg),
            Population::MixedTdtcpCubic => {
                cfg.voq.ecn_threshold = None;
                cfg.circuit_marking = false;
                cfg.retcpdyn = None;
                cfg.notifications = true;
            }
        }
    }
}

/// Declarative description of one tail-latency workload. The
/// [`TailSpec::inert`] spec schedules nothing and draws nothing.
#[derive(Debug, Clone)]
pub struct TailSpec {
    /// Long-lived background flows (start at t = 0, run forever).
    pub background: usize,
    /// Fan-in degree of each incast round (0 disables incast).
    pub incast_degree: usize,
    /// Synchronized incast rounds.
    pub incast_rounds: usize,
    /// Bytes per incast sender.
    pub incast_bytes: u64,
    /// Spacing between incast rounds (deterministic, no draws).
    pub incast_every: SimDuration,
    /// Poisson-arriving short flows (0 disables them).
    pub shorts: usize,
    /// Bytes per short flow.
    pub short_bytes: u64,
    /// Mean exponential inter-arrival gap of the short flows.
    pub mean_gap: SimDuration,
    /// Probability a short flow is pulled out of the Poisson process and
    /// into one synchronized hotspot burst (skewed mixes).
    pub hotspot_frac: f64,
    /// RepNet knob: extra replicas per finite flow (0 = off). The first
    /// finisher wins; non-primary wins are counted.
    pub replication: u32,
    /// The transport population.
    pub population: Population,
    /// Settle time before the first short flow / incast round, so the
    /// background flows converge first.
    pub settle: SimDuration,
}

impl TailSpec {
    /// A spec that schedules nothing beyond `background = 0` — and,
    /// crucially, makes **zero** RNG draws when generated.
    pub fn inert(population: Population) -> TailSpec {
        TailSpec {
            background: 0,
            incast_degree: 0,
            incast_rounds: 0,
            incast_bytes: 0,
            incast_every: SimDuration::ZERO,
            shorts: 0,
            short_bytes: 0,
            mean_gap: SimDuration::ZERO,
            hotspot_frac: 0.0,
            replication: 0,
            population,
            settle: SimDuration::ZERO,
        }
    }

    /// The standard incast family: `degree` fan-in senders of 100 kB,
    /// four rounds 3 ms apart over two background flows.
    pub fn incast(population: Population, degree: usize) -> TailSpec {
        TailSpec {
            background: 2,
            incast_degree: degree,
            incast_rounds: 4,
            incast_bytes: 100_000,
            incast_every: SimDuration::from_millis(3),
            shorts: 0,
            short_bytes: 0,
            mean_gap: SimDuration::ZERO,
            hotspot_frac: 0.0,
            replication: 0,
            population,
            settle: SimDuration::from_millis(2),
        }
    }

    /// The Poisson short-flow family (the `shortflows` experiment):
    /// `n` RPCs of `bytes` each, exponential gaps of `mean_gap`, over
    /// `background` long flows.
    pub fn poisson(
        population: Population,
        n: usize,
        bytes: u64,
        mean_gap: SimDuration,
        background: usize,
    ) -> TailSpec {
        TailSpec {
            background,
            incast_degree: 0,
            incast_rounds: 0,
            incast_bytes: 0,
            incast_every: SimDuration::ZERO,
            shorts: n,
            short_bytes: bytes,
            mean_gap,
            hotspot_frac: 0.0,
            replication: 0,
            population,
            settle: SimDuration::from_millis(2),
        }
    }

    /// Logical finite flows this spec schedules (before replication).
    pub fn logical_flows(&self) -> usize {
        self.shorts + self.incast_rounds * self.incast_degree
    }
}

// ---------------------------------------------------------------------------
// Schedule generation
// ---------------------------------------------------------------------------

/// What a generated flow is, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowClass {
    /// Long-lived background flow (no FCT).
    Background,
    /// Poisson / hotspot short flow.
    Short,
    /// Member of incast round `round`.
    Incast {
        /// Which synchronized round this sender belongs to.
        round: u32,
    },
}

/// One emulator flow of the generated schedule.
#[derive(Debug, Clone, Copy)]
pub struct TailFlow {
    /// When the flow's connection is created (first byte enqueued).
    pub start: SimTime,
    /// Bytes to send (`u64::MAX` for background).
    pub bytes: u64,
    /// Transport variant this flow runs.
    pub variant: Variant,
    /// Accounting class.
    pub class: FlowClass,
    /// Logical flow id; replicas share it (`u32::MAX` for background).
    pub group: u32,
}

/// The generated flow schedule: emulator flows in index order —
/// background first, then logical flows in schedule order with their
/// replicas adjacent (the primary replica first).
#[derive(Debug, Clone)]
pub struct TailSchedule {
    /// Flows, in emulator index order.
    pub flows: Vec<TailFlow>,
    /// Logical finite flows (groups); replicas collapse onto these.
    pub groups: usize,
    /// Replicas spawned beyond the primaries.
    pub replicas_spawned: usize,
}

impl TailSchedule {
    /// Order-sensitive digest of the schedule — the object of the
    /// generator-determinism property (same `(seed, spec)` → same
    /// digest; different seeds diverge).
    pub fn digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_usize(self.flows.len());
        for f in &self.flows {
            let TailFlow { start, bytes, variant, class, group } = *f;
            d.write_u64(start.as_nanos());
            d.write_u64(bytes);
            d.write_u64(variant as u64);
            match class {
                FlowClass::Background => {
                    d.write_u64(0);
                }
                FlowClass::Short => {
                    d.write_u64(1);
                }
                FlowClass::Incast { round } => {
                    d.write_u64(2).write_u64(u64::from(round));
                }
            }
            d.write_u64(u64::from(group));
        }
        d.write_usize(self.groups);
        d.write_usize(self.replicas_spawned);
        d.finish()
    }
}

/// Generate the flow schedule for `spec` from `rng` (conventionally
/// `DetRng::new(seed).fork(TAIL_STREAM_LABEL)`). Every draw is guarded
/// by a count/rate > 0 check: an inert spec draws nothing, so a freshly
/// forked stream is left untouched.
pub fn generate(spec: &TailSpec, rng: &mut DetRng) -> TailSchedule {
    let mut flows = Vec::new();
    for i in 0..spec.background {
        flows.push(TailFlow {
            start: SimTime::ZERO,
            bytes: u64::MAX,
            variant: spec.population.variant_for(i),
            class: FlowClass::Background,
            group: u32::MAX,
        });
    }

    // Logical finite flows: first the Poisson/hotspot shorts in arrival
    // order, then the incast rounds. Hotspot shorts land on one shared
    // burst epoch at half the expected Poisson span.
    let mut logical: Vec<(SimTime, u64, FlowClass)> = Vec::new();
    if spec.shorts > 0 {
        let span_ns = spec.mean_gap.as_nanos().saturating_mul(spec.shorts as u64);
        let hotspot_at = SimTime::ZERO + spec.settle + SimDuration::from_nanos(span_ns / 2);
        let mut t = SimTime::ZERO + spec.settle;
        for _ in 0..spec.shorts {
            t += SimDuration::from_nanos(rng.exponential(spec.mean_gap.as_nanos() as f64) as u64);
            let start = if spec.hotspot_frac > 0.0 && rng.chance(spec.hotspot_frac) {
                hotspot_at
            } else {
                t
            };
            logical.push((start, spec.short_bytes, FlowClass::Short));
        }
    }
    for round in 0..spec.incast_rounds {
        let at = SimTime::ZERO + spec.settle + spec.incast_every * round as u64;
        for _ in 0..spec.incast_degree {
            logical.push((at, spec.incast_bytes, FlowClass::Incast { round: round as u32 }));
        }
    }

    let mut replicas_spawned = 0;
    for (group, (start, bytes, class)) in logical.iter().enumerate() {
        let variant = spec.population.variant_for(spec.background + group);
        for replica in 0..=spec.replication {
            flows.push(TailFlow {
                start: *start,
                bytes: *bytes,
                variant,
                class: *class,
                group: group as u32,
            });
            if replica > 0 {
                replicas_spawned += 1;
            }
        }
    }

    TailSchedule {
        groups: logical.len(),
        replicas_spawned,
        flows,
    }
}

// ---------------------------------------------------------------------------
// Exact percentile oracle
// ---------------------------------------------------------------------------

/// Exact nearest-rank percentile selection over an FCT multiset.
///
/// Holds every sample (no reservoir, no sketch) and answers a permille
/// rank by quickselect (`select_nth_unstable`) — O(n) per query, exact by
/// construction. [`FctOracle::naive_percentile_permille`] is the full-sort
/// reference the property suite checks it against.
#[derive(Debug, Clone, Default)]
pub struct FctOracle {
    samples: Vec<u64>,
}

impl FctOracle {
    /// An oracle over `samples` (nanoseconds).
    pub fn new(samples: Vec<u64>) -> FctOracle {
        FctOracle { samples }
    }

    /// Add one sample.
    pub fn add(&mut self, fct_ns: u64) {
        self.samples.push(fct_ns);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Nearest-rank index for `permille` of `n` samples: the smallest
    /// index covering at least `permille`/1000 of the mass.
    fn rank_index(n: usize, permille: u32) -> usize {
        assert!(permille <= 1000, "permille {permille} out of range");
        let rank = (permille as u64 * n as u64).div_ceil(1000) as usize;
        rank.max(1).min(n) - 1
    }

    /// The `permille`-th permille (`p50` = 500, `p999` = 999) by exact
    /// nearest-rank selection. `None` when empty.
    pub fn percentile_permille(&mut self, permille: u32) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let idx = Self::rank_index(self.samples.len(), permille);
        let (_, v, _) = self.samples.select_nth_unstable(idx);
        Some(*v)
    }

    /// Median FCT.
    pub fn p50(&mut self) -> Option<u64> {
        self.percentile_permille(500)
    }

    /// 99th percentile FCT.
    pub fn p99(&mut self) -> Option<u64> {
        self.percentile_permille(990)
    }

    /// 99.9th percentile FCT.
    pub fn p999(&mut self) -> Option<u64> {
        self.percentile_permille(999)
    }

    /// Reference implementation: full sort, then the same nearest-rank
    /// index. The property suite pins `percentile_permille` to this for
    /// every rank over random multisets.
    pub fn naive_percentile_permille(samples: &[u64], permille: u32) -> Option<u64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        Some(sorted[Self::rank_index(sorted.len(), permille)])
    }
}

/// Jain's fairness index over per-flow rates/bytes.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sumsq: f64 = xs.iter().map(|x| x * x).sum();
    if sumsq == 0.0 {
        return 1.0;
    }
    sum * sum / (n * sumsq)
}

// ---------------------------------------------------------------------------
// Running a spec
// ---------------------------------------------------------------------------

/// Everything one tail-workload run produces.
#[derive(Debug)]
pub struct TailOutcome {
    /// Population label.
    pub label: String,
    /// Digest of the generated schedule.
    pub schedule_digest: u64,
    /// Logical flows that started within the horizon.
    pub started: usize,
    /// Logical flows with at least one completed replica.
    pub completed: usize,
    /// Replicas spawned beyond the primaries.
    pub replicas_spawned: usize,
    /// Logical completions where a non-primary replica finished first.
    pub replica_wins: u64,
    /// Per-logical-flow FCT in nanoseconds (min over completed
    /// replicas), in schedule order.
    pub fcts_ns: Vec<u64>,
    /// Horizon-censored FCTs: one sample per *started* logical flow —
    /// its FCT if any replica completed, else `horizon − start` (a lower
    /// bound on the true FCT). Under incast collapse the completed-only
    /// multiset suffers survivorship bias (the worst flows never finish
    /// inside the horizon and silently leave the tail); censored samples
    /// keep them in it.
    pub censored_fcts_ns: Vec<u64>,
    /// RTO-stall episodes summed over all senders (replicas included).
    pub rto_stalls: u64,
    /// Nanoseconds spent waiting on RTO timers, summed over senders.
    pub stall_ns: u64,
    /// Jain index over background flows' delivered bytes (1.0 when the
    /// spec has no background).
    pub jain: f64,
    /// The underlying run's `stats_digest` (determinism suite hook).
    pub run_digest: u64,
}

impl TailOutcome {
    /// An oracle over this outcome's completed-FCT multiset.
    pub fn oracle(&self) -> FctOracle {
        FctOracle::new(self.fcts_ns.clone())
    }

    /// An oracle over the horizon-censored multiset (started flows that
    /// never finished count at `horizon − start`).
    pub fn censored_oracle(&self) -> FctOracle {
        FctOracle::new(self.censored_fcts_ns.clone())
    }
}

/// Build one flow's endpoints at time `now` — like `Variant::factory`
/// but start-time aware (the connection initiates its SYN at `now`).
/// TDTCP endpoints get the notification watchdog sized for the
/// schedule's slot, matching `Variant::factory_for`.
pub fn make_endpoints(
    variant: Variant,
    net: &NetConfig,
    i: usize,
    bytes: u64,
    now: SimTime,
) -> (Box<dyn Transport>, Box<dyn Transport>) {
    use tcp::cc::{CcConfig, Cubic};
    use tcp::FlowId;
    let cc = CcConfig::default();
    match variant {
        Variant::Tdtcp => {
            let mut cfg = tdtcp::TdtcpConfig::default();
            cfg.tcp.bytes_to_send = bytes;
            cfg.watchdog = Some(tdtcp::WatchdogConfig::for_slot_with_guard(
                net.schedule.slot_len(),
                net.guard_band,
            ));
            let template = Cubic::new(cc);
            (
                Box::new(tdtcp::TdtcpConnection::connect(
                    FlowId(i as u32),
                    cfg.clone(),
                    &template,
                    now,
                )),
                Box::new(tdtcp::TdtcpConnection::listen(FlowId(i as u32), cfg, &template)),
            )
        }
        _ => {
            let cfg = tcp::Config {
                bytes_to_send: bytes,
                ..tcp::Config::default()
            };
            (
                Box::new(tcp::Connection::connect(
                    FlowId(i as u32),
                    cfg.clone(),
                    Box::new(Cubic::new(cc)),
                    now,
                )),
                Box::new(tcp::Connection::listen(
                    FlowId(i as u32),
                    cfg,
                    Box::new(Cubic::new(cc)),
                )),
            )
        }
    }
}

/// Run `spec` over `base` (population switch support applied on top)
/// until `horizon`, and fold the result into a [`TailOutcome`].
pub fn run_tails(spec: &TailSpec, base: &NetConfig, horizon: SimTime) -> TailOutcome {
    let mut net = base.clone();
    spec.population.apply_net_config(&mut net);
    let mut rng = DetRng::new(net.seed).fork(TAIL_STREAM_LABEL);
    let schedule = generate(spec, &mut rng);
    outcome_of(spec, &schedule, &net, horizon)
}

/// Run an already-generated `schedule` (exposed so tests can inspect the
/// schedule and its run together without regenerating).
pub fn outcome_of(
    spec: &TailSpec,
    schedule: &TailSchedule,
    net: &NetConfig,
    horizon: SimTime,
) -> TailOutcome {
    let specs: Vec<FlowSpec> = schedule
        .flows
        .iter()
        .map(|f| FlowSpec { start: f.start })
        .collect();
    let flows = schedule.flows.clone();
    let net_for_factory = net.clone();
    let factory: rdcn::emulator::TimedEndpointFactory = Box::new(move |i, now| {
        let f = &flows[i];
        make_endpoints(f.variant, &net_for_factory, i, f.bytes, now)
    });
    let emu = Emulator::new_staggered(net.clone(), specs, factory);
    let res = emu.run(horizon);
    fold_outcome(spec, schedule, &res, horizon)
}

/// Fold a finished run into the per-logical-flow FCT view: min over
/// replicas, first-finisher wins, stall counters summed.
fn fold_outcome(
    spec: &TailSpec,
    schedule: &TailSchedule,
    res: &RunResult,
    horizon: SimTime,
) -> TailOutcome {
    // Replica index lists per logical group, in schedule order.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); schedule.groups];
    for (i, f) in schedule.flows.iter().enumerate() {
        if f.group != u32::MAX {
            members[f.group as usize].push(i);
        }
    }

    let mut started = 0;
    let mut completed = 0;
    let mut replica_wins = 0;
    let mut fcts_ns = Vec::new();
    let mut censored_fcts_ns = Vec::new();
    for group in &members {
        let Some(&first) = group.first() else { continue };
        let start = schedule.flows[first].start;
        if start >= horizon {
            continue;
        }
        started += 1;
        // First finisher wins: minimize completion *time* (all replicas
        // share a start), then take its FCT.
        let mut best: Option<(u64, usize)> = None;
        for &i in group {
            if let Some(fct) = res.fct(i) {
                let fct = fct.as_nanos();
                if best.is_none_or(|(b, _)| fct < b) {
                    best = Some((fct, i));
                }
            }
        }
        if let Some((fct, winner)) = best {
            completed += 1;
            fcts_ns.push(fct);
            censored_fcts_ns.push(fct);
            if winner != first {
                replica_wins += 1;
            }
        } else {
            censored_fcts_ns.push(horizon.saturating_since(start).as_nanos());
        }
    }

    let jain = if spec.background == 0 {
        1.0
    } else {
        let delivered: Vec<f64> = res.receiver_stats[..spec.background]
            .iter()
            .map(|s| s.bytes_delivered as f64)
            .collect();
        jain_index(&delivered)
    };

    TailOutcome {
        label: spec.population.label().to_string(),
        schedule_digest: schedule.digest(),
        started,
        completed,
        replicas_spawned: schedule.replicas_spawned,
        replica_wins,
        fcts_ns,
        censored_fcts_ns,
        rto_stalls: res.rto_stalls(),
        stall_ns: res.stall_ns(),
        jain,
        run_digest: res.stats_digest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_properties() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One flow hogging everything: index -> 1/n.
        let skew = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skew - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0, "degenerate all-zero");
        let mid = jain_index(&[2.0, 1.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn oracle_nearest_rank_basics() {
        let mut o = FctOracle::new((1..=1000u64).collect());
        assert_eq!(o.p50(), Some(500));
        assert_eq!(o.p99(), Some(990));
        assert_eq!(o.p999(), Some(999));
        assert_eq!(o.percentile_permille(1000), Some(1000));
        assert_eq!(o.percentile_permille(0), Some(1));
        assert_eq!(FctOracle::default().p99(), None);
    }

    #[test]
    fn oracle_single_sample_every_rank() {
        let mut o = FctOracle::new(vec![42]);
        for permille in [0, 1, 500, 999, 1000] {
            assert_eq!(o.percentile_permille(permille), Some(42));
        }
    }

    #[test]
    fn inert_spec_generates_nothing() {
        let mut rng = DetRng::new(1).fork(TAIL_STREAM_LABEL);
        let s = generate(&TailSpec::inert(Population::Uniform(Variant::Cubic)), &mut rng);
        assert!(s.flows.is_empty());
        assert_eq!(s.groups, 0);
        assert_eq!(s.replicas_spawned, 0);
        // Zero draws: the stream is indistinguishable from a fresh fork.
        let mut fresh = DetRng::new(1).fork(TAIL_STREAM_LABEL);
        for _ in 0..8 {
            assert_eq!(rng.gen_range(0..u64::MAX), fresh.gen_range(0..u64::MAX));
        }
    }

    #[test]
    fn replication_shares_group_and_start() {
        let mut spec = TailSpec::incast(Population::Uniform(Variant::Cubic), 4);
        spec.replication = 2;
        let mut rng = DetRng::new(3).fork(TAIL_STREAM_LABEL);
        let s = generate(&spec, &mut rng);
        assert_eq!(s.groups, 16);
        assert_eq!(s.replicas_spawned, 32);
        assert_eq!(s.flows.len(), 2 + 16 * 3);
        for g in 0..s.groups as u32 {
            let reps: Vec<&TailFlow> =
                s.flows.iter().filter(|f| f.group == g).collect();
            assert_eq!(reps.len(), 3);
            assert!(reps.iter().all(|f| f.start == reps[0].start));
            assert!(reps.iter().all(|f| f.bytes == reps[0].bytes));
        }
    }

    #[test]
    fn mixed_population_alternates() {
        let spec = TailSpec::incast(Population::MixedTdtcpCubic, 4);
        let mut rng = DetRng::new(3).fork(TAIL_STREAM_LABEL);
        let s = generate(&spec, &mut rng);
        let variants: std::collections::BTreeSet<&str> =
            s.flows.iter().map(|f| f.variant.label()).collect();
        assert!(variants.contains("tdtcp") && variants.contains("cubic"));
    }
}
