//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation over the
//! emulated RDCN: variant factories ([`variants`]), the flowgrind-style
//! workload generator ([`workload`]), and one module per experiment
//! ([`experiments`]). The `figures` binary drives them from the command
//! line; Criterion benches measure component performance (codecs, event
//! queue, end-to-end simulation rate, notification path).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod tails;
pub mod variants;
pub mod workload;

pub use chaos::{check_invariants, ChaosSpec};
pub use variants::{Variant, ALL_VARIANTS};
pub use workload::Workload;
