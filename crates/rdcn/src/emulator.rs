//! The two-rack RDCN emulator (the Etalon equivalent).
//!
//! Rack A hosts the senders of `n_flows` bulk flows; rack B the receivers.
//! Each direction has one ToR VOQ serviced at the active TDN's rate; a
//! dequeued segment occupies the link for its serialization time and
//! arrives one propagation delay later. Nights service nothing (§2.1's
//! strict time division). At each day start the ToR emits per-host ICMP
//! TDN-change notifications with latencies drawn from the §5.4 model, and
//! optionally applies reTCP switch support (circuit marking, advance VOQ
//! enlargement, prepare signals).

use crate::clock::{ClockInjector, ClockStats, ClockVerdict, CLOCK_STREAM_LABEL};
use crate::config::NetConfig;
use crate::faults::{DayFate, EpsVerdict, FaultInjector, FaultStats, NotifyVerdict, FAULT_STREAM_LABEL};
use crate::impair::{ImpairInjector, ImpairStats, ImpairVerdict, IMPAIR_STREAM_LABEL};
use crate::notify::NotifyModel;
use crate::voq::Voq;
use simcore::{DetRng, EventId, EventQueue, FlightRecorder, SimDuration, SimTime, TimeSeries};
use tcp::{ConnError, ConnStats, Direction, Segment, Transport};
use testkit::Digest;
use wire::TdnId;

/// XOR mask applied to a segment's modeled payload checksum by corrupting
/// impairments. The fixed mask keeps corruption deterministic; the guard
/// against a zero result preserves the "0 = unstamped" sentinel so a
/// mangled stamp can never masquerade as an unstamped segment.
pub(crate) fn mangle_csum(c: u32) -> u32 {
    let m = c ^ 0x5A5A_5A5A;
    if m == 0 { 1 } else { m }
}

/// Which rack a host lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// Sender rack.
    A,
    /// Receiver rack.
    B,
}

/// Traffic direction through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// A → B (data).
    Ab,
    /// B → A (ACKs).
    Ba,
}

/// Process-wide count of simulator events executed, summed over every
/// [`Emulator`] (and multi-rack) run that completed in this process.
/// The figure harness snapshots it around each experiment to report
/// events/sec; runs on worker threads add their counts atomically.
pub static EVENTS_TOTAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Which flows an event can have called into. Only events that reach a
/// transport (`on_segment`/`on_timer`/`on_tdn_notification`/
/// `on_circuit_prepare`/construction) can flip a flow's `is_done`, so the
/// post-event completion check only needs to look at those flows instead
/// of scanning every sender after every event (the old hot-loop cost:
/// `n_flows` virtual calls per event).
enum Touched {
    None,
    One(usize),
    All,
}

enum Ev {
    StartFlow { flow: usize },
    Arrive { side: Side, flow: usize, seg: Segment },
    Enqueue { dir: Dir, seg: Segment },
    Service { dir: Dir },
    DayStart { day: u64 },
    NightStart { day: u64 },
    LinkFail { day: u64 },
    Prepare,
    Notify { side: Side, flow: usize, tdn: TdnId, gen: u64 },
    HostTimer { side: Side, flow: usize },
    Sample,
}

/// Per-day deltas of the counters Fig. 10 plots, one entry per finished day.
#[derive(Debug, Clone)]
pub struct DayRecord {
    /// Global day number.
    pub day: u64,
    /// The TDN that was active during this day.
    pub tdn: TdnId,
    /// Sum over flows of reordering events detected during the day.
    pub reorder_events: u64,
    /// Sum over flows of packets marked for retransmission by reordering.
    pub reorder_marked_pkts: u64,
    /// Retransmissions actually sent.
    pub retransmits: u64,
    /// Spurious retransmissions observed at receivers.
    pub spurious_retransmits: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunResult {
    /// Aggregate acknowledged bytes over time (the sequence graph of
    /// Figs. 2/7a/8a/9, summed over flows).
    pub seq_series: TimeSeries,
    /// A→B VOQ occupancy over time (Figs. 7b/8b/13/14).
    pub voq_ab: TimeSeries,
    /// B→A VOQ occupancy over time.
    pub voq_ba: TimeSeries,
    /// Final sender-side stats per flow.
    pub sender_stats: Vec<ConnStats>,
    /// Final receiver-side stats per flow.
    pub receiver_stats: Vec<ConnStats>,
    /// Per-day counter deltas (Fig. 10's input).
    pub day_records: Vec<DayRecord>,
    /// Segments tail-dropped in the A→B VOQ.
    pub drops_ab: u64,
    /// Segments tail-dropped in the B→A VOQ.
    pub drops_ba: u64,
    /// CE marks applied in the A→B VOQ.
    pub ce_marks_ab: u64,
    /// Final congestion windows per flow (one entry per path state).
    pub final_cwnds: Vec<Vec<u32>>,
    /// When each flow's sender finished (staggered/finite workloads).
    pub completions: Vec<Option<SimTime>>,
    /// When each flow started (its connection was created and the first
    /// byte enqueued) — `SimTime::ZERO` for simultaneous workloads.
    /// Together with [`RunResult::completions`] this yields per-flow FCT.
    pub starts: Vec<SimTime>,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Events processed (a performance counter).
    pub events: u64,
    /// Wall-clock time the run took. Excluded from [`RunResult::
    /// stats_digest`]: it is a property of the machine, not of the
    /// simulated system.
    pub wall: std::time::Duration,
    /// Faults actually injected during the run (all zero for an empty
    /// [`crate::FaultPlan`]).
    pub faults: FaultStats,
    /// Digest of the injected-fault sequence (order-sensitive); two runs
    /// with the same seed and plan must agree on it.
    pub fault_log_digest: u64,
    /// Data-path impairments applied during the run (all zero for an
    /// empty [`crate::ImpairPlan`]).
    pub impairments: ImpairStats,
    /// Digest of the applied-impairment sequence (order-sensitive); two
    /// runs with the same seed and plan must agree on it.
    pub impair_log_digest: u64,
    /// Time-plane effects applied during the run (all zero for an empty
    /// [`crate::ClockPlan`]).
    pub clock: ClockStats,
    /// Digest of the applied clock-event sequence (order-sensitive); two
    /// runs with the same seed and plan must agree on it.
    pub clock_log_digest: u64,
    /// Terminal error of each flow's sender, if it aborted instead of
    /// completing. `completions[i]` records when the sender *terminated*;
    /// this distinguishes success from surrender.
    pub conn_errors: Vec<Option<ConnError>>,
    /// The flight recorder's retained tail of coarse run events (day
    /// starts, injected faults, completions), oldest first.
    pub flight_log: Vec<(SimTime, String)>,
}

impl RunResult {
    /// Aggregate goodput across flows in bits per second.
    pub fn goodput_bps(&self) -> f64 {
        let bytes: u64 = self.receiver_stats.iter().map(|s| s.bytes_delivered).sum();
        if self.duration == SimDuration::ZERO {
            return 0.0;
        }
        bytes as f64 * 8.0 / self.duration.as_secs_f64()
    }

    /// Aggregate acknowledged bytes at the end of the run.
    pub fn total_acked(&self) -> u64 {
        self.sender_stats.iter().map(|s| s.bytes_acked).sum()
    }

    /// Simulator throughput: events processed per wall-clock second
    /// (0.0 if the run was too fast for the clock to register).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / secs
    }

    /// Notifications lost to injected faults.
    pub fn notifications_lost(&self) -> u64 {
        self.faults.notifications_dropped
    }

    /// Total time endpoints spent in degraded (desynchronized) mode,
    /// summed over senders and receivers.
    pub fn degraded_time(&self) -> SimDuration {
        let ns: u64 = self
            .sender_stats
            .iter()
            .chain(&self.receiver_stats)
            .map(|s| s.degraded_ns)
            .sum();
        SimDuration::from_nanos(ns)
    }

    /// Flow completion time of flow `i`: first-byte-enqueued (the flow's
    /// start) to last-byte-acked (its sender reporting done). `None` if
    /// the flow never finished within the run, or finished by *aborting*
    /// (a surrendered flow has a completion timestamp but no FCT).
    pub fn fct(&self, i: usize) -> Option<simcore::SimDuration> {
        if self.conn_errors.get(i).is_some_and(|e| e.is_some()) {
            return None;
        }
        let done = (*self.completions.get(i)?)?;
        Some(done.saturating_since(self.starts[i]))
    }

    /// Total RTO-stall episodes across all senders (timer-based recovery
    /// entries — the T-RACKs pathology counter).
    pub fn rto_stalls(&self) -> u64 {
        self.sender_stats.iter().map(|s| s.rto_stalls).sum()
    }

    /// Total nanoseconds senders spent waiting on RTO timers.
    pub fn stall_ns(&self) -> u64 {
        self.sender_stats.iter().map(|s| s.stall_ns).sum()
    }

    /// Total notification-watchdog fires, summed over all endpoints.
    pub fn watchdog_fires(&self) -> u64 {
        self.sender_stats
            .iter()
            .chain(&self.receiver_stats)
            .map(|s| s.notify_watchdog_fires)
            .sum()
    }

    /// Compare this run's [`RunResult::stats_digest`] against an expected
    /// value; on divergence, return a report carrying the flight
    /// recorder's last events so the mismatch can be localized.
    pub fn check_digest(&self, expected: u64) -> Result<(), String> {
        let got = self.stats_digest();
        if got == expected {
            return Ok(());
        }
        let mut report = format!(
            "stats_digest mismatch: expected {expected:#018x}, got {got:#018x}\n\
             last {} flight-recorder events:\n",
            self.flight_log.len()
        );
        for (t, e) in &self.flight_log {
            report.push_str(&format!("  [{t}] {e}\n"));
        }
        Err(report)
    }

    /// Digest every observable output of the run into one 64-bit value.
    ///
    /// Two runs with the same configuration and seed must produce the same
    /// digest — this is the workspace's golden-trace determinism guarantee
    /// (see `tests/determinism.rs`). Floats are hashed by bit pattern, so
    /// the comparison is exact, not approximate.
    pub fn stats_digest(&self) -> u64 {
        let mut d = Digest::new();
        for series in [&self.seq_series, &self.voq_ab, &self.voq_ba] {
            d.write_usize(series.points().len());
            for &(t, v) in series.points() {
                d.write_u64(t.as_nanos());
                d.write_f64(v);
            }
        }
        for stats in self.sender_stats.iter().chain(&self.receiver_stats) {
            stats.write_digest(&mut d);
        }
        d.write_usize(self.day_records.len());
        for r in &self.day_records {
            let DayRecord {
                day,
                tdn,
                reorder_events,
                reorder_marked_pkts,
                retransmits,
                spurious_retransmits,
            } = r;
            d.write_u64(*day);
            d.write_u64(u64::from(tdn.0));
            d.write_u64(*reorder_events);
            d.write_u64(*reorder_marked_pkts);
            d.write_u64(*retransmits);
            d.write_u64(*spurious_retransmits);
        }
        d.write_u64(self.drops_ab);
        d.write_u64(self.drops_ba);
        d.write_u64(self.ce_marks_ab);
        for cwnds in &self.final_cwnds {
            d.write_usize(cwnds.len());
            for &c in cwnds {
                d.write_u32(c);
            }
        }
        for c in &self.completions {
            match c {
                Some(t) => {
                    d.write_bool(true).write_u64(t.as_nanos());
                }
                None => {
                    d.write_bool(false);
                }
            }
        }
        for s in &self.starts {
            d.write_u64(s.as_nanos());
        }
        d.write_u64(self.duration.as_nanos());
        d.write_u64(self.events);
        self.faults.write_digest(&mut d);
        d.write_u64(self.fault_log_digest);
        self.impairments.write_digest(&mut d);
        d.write_u64(self.impair_log_digest);
        self.clock.write_digest(&mut d);
        d.write_u64(self.clock_log_digest);
        for e in &self.conn_errors {
            match e {
                None => {
                    d.write_bool(false);
                }
                Some(ConnError::RetransmitLimit { retries }) => {
                    d.write_bool(true).write_u64(1).write_u64(u64::from(*retries));
                }
                Some(ConnError::PersistTimeout { probes }) => {
                    d.write_bool(true).write_u64(2).write_u64(u64::from(*probes));
                }
            }
        }
        d.finish()
    }
}

/// Builds the two endpoints of flow `i`: `(sender, receiver)`. The sender
/// must already have initiated its connection (queued its SYN) at `t = 0`.
pub type EndpointFactory<'a> =
    Box<dyn FnMut(usize) -> (Box<dyn Transport>, Box<dyn Transport>) + 'a>;

/// Builds the endpoints of flow `i` when it starts at `now` (staggered
/// workloads). The sender should initiate its connection at `now`.
pub type TimedEndpointFactory<'a> =
    Box<dyn FnMut(usize, SimTime) -> (Box<dyn Transport>, Box<dyn Transport>) + 'a>;

/// Start time of each flow in a staggered workload.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// When the flow's connection is created (SYN queued).
    pub start: SimTime,
}

/// The emulator itself. Construct with [`Emulator::new`], then
/// [`Emulator::run`].
pub struct Emulator<'a> {
    cfg: NetConfig,
    q: EventQueue<Ev>,
    rng: DetRng,
    notify_model: NotifyModel,
    /// Executes `cfg.faults` against its own forked RNG stream, so the
    /// main stream's draw sequence is identical with or without a plan.
    faults: FaultInjector,
    /// Executes `cfg.impair` against its own forked RNG stream (same
    /// isolation guarantee as `faults`): an inert plan makes zero draws,
    /// so the clean path is bit-identical with or without the field.
    impair: ImpairInjector,
    /// Executes `cfg.clock` against its own forked RNG stream (same
    /// isolation guarantee): owns every host's perceived clock and the
    /// slot-edge enforcement; inert plans make zero draws and return
    /// true time untouched.
    clock: ClockInjector,
    recorder: FlightRecorder,

    senders: Vec<Option<Box<dyn Transport + 'a>>>,
    receivers: Vec<Option<Box<dyn Transport + 'a>>>,
    /// Deferred construction for staggered flows.
    timed_factory: Option<TimedEndpointFactory<'a>>,
    specs: Vec<FlowSpec>,
    /// Completion time of each flow (first instant its sender reported
    /// done), if it finished within the run.
    completions: Vec<Option<SimTime>>,
    /// Flows whose sender has been constructed (== n_flows once every
    /// staggered flow has started).
    started: usize,
    /// Flows with a recorded completion; the run terminates early when
    /// this reaches n_flows with every flow started.
    done_count: usize,
    timer_slots: Vec<[Option<(SimTime, EventId)>; 2]>,
    /// Per-rack shared uplink availability: the testbed emulates each rack
    /// as one machine with one data NIC, so all of a rack's hosts
    /// serialize through a single uplink — which caps the VOQ's input
    /// rate at the line rate and is what keeps circuit-day window bursts
    /// from instantly overflowing the shallow VOQ.
    nic_free: [SimTime; 2],

    voq_ab: Voq,
    voq_ba: Voq,
    service_pending: [bool; 2],
    link_free_at: [SimTime; 2],

    active: Option<TdnId>,
    seq_series: TimeSeries,
    day_records: Vec<DayRecord>,
    prev_snapshot: Vec<(ConnStats, ConnStats)>,
    prev_day: u64,
    prev_day_tdn: TdnId,
    sample_every: SimDuration,
}

impl<'a> Emulator<'a> {
    /// Create an emulator for `n_flows` flows whose endpoints come from
    /// `factory`.
    pub fn new(cfg: NetConfig, n_flows: usize, mut factory: EndpointFactory<'a>) -> Self {
        let rng = DetRng::new(cfg.seed);
        let notify_model = NotifyModel::new(cfg.notify);
        let faults = FaultInjector::new(cfg.faults.clone(), rng.fork(FAULT_STREAM_LABEL));
        let impair = ImpairInjector::new(cfg.impair.clone(), rng.fork(IMPAIR_STREAM_LABEL));
        let clock = ClockInjector::new(cfg.clock.clone(), rng.fork(CLOCK_STREAM_LABEL));
        let mut senders = Vec::with_capacity(n_flows);
        let mut receivers = Vec::with_capacity(n_flows);
        for i in 0..n_flows {
            let (s, r) = factory(i);
            senders.push(Some(s));
            receivers.push(Some(r));
        }
        Emulator {
            voq_ab: Voq::new("voq_ab", cfg.voq),
            voq_ba: Voq::new("voq_ba", cfg.voq),
            notify_model,
            faults,
            impair,
            clock,
            recorder: FlightRecorder::default(),
            rng,
            q: EventQueue::new(),
            senders,
            receivers,
            timed_factory: None,
            specs: (0..n_flows).map(|_| FlowSpec { start: SimTime::ZERO }).collect(),
            completions: vec![None; n_flows],
            started: n_flows,
            done_count: 0,
            timer_slots: vec![[None, None]; n_flows],
            nic_free: [SimTime::ZERO; 2],
            service_pending: [false, false],
            link_free_at: [SimTime::ZERO; 2],
            active: None,
            seq_series: TimeSeries::new("seq"),
            day_records: Vec::new(),
            prev_snapshot: vec![(ConnStats::new(), ConnStats::new()); n_flows],
            prev_day: 0,
            prev_day_tdn: cfg.schedule.day_tdn(0),
            sample_every: SimDuration::from_micros(2),
            cfg,
        }
    }

    /// Create an emulator whose flows start at individual times: flow `i`
    /// is constructed by `factory(i, specs[i].start)` when its start time
    /// arrives. Used by the short-flow / staggered-arrival experiments.
    pub fn new_staggered(
        cfg: NetConfig,
        specs: Vec<FlowSpec>,
        factory: TimedEndpointFactory<'a>,
    ) -> Self {
        let n_flows = specs.len();
        let rng = DetRng::new(cfg.seed);
        let notify_model = NotifyModel::new(cfg.notify);
        let faults = FaultInjector::new(cfg.faults.clone(), rng.fork(FAULT_STREAM_LABEL));
        let impair = ImpairInjector::new(cfg.impair.clone(), rng.fork(IMPAIR_STREAM_LABEL));
        let clock = ClockInjector::new(cfg.clock.clone(), rng.fork(CLOCK_STREAM_LABEL));
        Emulator {
            voq_ab: Voq::new("voq_ab", cfg.voq),
            voq_ba: Voq::new("voq_ba", cfg.voq),
            notify_model,
            faults,
            impair,
            clock,
            recorder: FlightRecorder::default(),
            rng,
            q: EventQueue::new(),
            senders: (0..n_flows).map(|_| None).collect(),
            receivers: (0..n_flows).map(|_| None).collect(),
            timed_factory: Some(factory),
            specs,
            completions: vec![None; n_flows],
            started: 0,
            done_count: 0,
            timer_slots: vec![[None, None]; n_flows],
            nic_free: [SimTime::ZERO; 2],
            service_pending: [false, false],
            link_free_at: [SimTime::ZERO; 2],
            active: None,
            seq_series: TimeSeries::new("seq"),
            day_records: Vec::new(),
            prev_snapshot: vec![(ConnStats::new(), ConnStats::new()); n_flows],
            prev_day: 0,
            prev_day_tdn: cfg.schedule.day_tdn(0),
            sample_every: SimDuration::from_micros(2),
            cfg,
        }
    }

    /// Override the sequence-series sampling interval.
    pub fn set_sample_interval(&mut self, every: SimDuration) {
        self.sample_every = every;
    }

    /// Run until `until` (or until every flow finishes). Consumes the
    /// emulator and returns the collected results.
    pub fn run(mut self, until: SimTime) -> RunResult {
        // detlint: allow(wall_clock) — perf reporting only (RunResult.wall); excluded from digests
        let wall_start = std::time::Instant::now();
        self.q.schedule(SimTime::ZERO, Ev::DayStart { day: 0 });
        self.q.schedule(SimTime::ZERO, Ev::Sample);
        if self.timed_factory.is_some() {
            for (i, spec) in self.specs.clone().iter().enumerate() {
                self.q.schedule(spec.start, Ev::StartFlow { flow: i });
            }
        } else {
            // Initial flush: SYNs queued by the factory go out at t = 0.
            for i in 0..self.senders.len() {
                self.flush(SimTime::ZERO, Side::A, i);
                self.flush(SimTime::ZERO, Side::B, i);
            }
            // A degenerate flow can be done at construction; record it at
            // t = 0 (the first event always pops at t = 0, so this matches
            // the per-event check's timestamp).
            for i in 0..self.senders.len() {
                self.note_completion(SimTime::ZERO, i);
            }
        }

        while let Some((now, ev)) = self.q.pop() {
            if now > until {
                break;
            }
            // A flow's `is_done` can only flip during an event that calls
            // into its transports, so the completion check below only
            // visits the flow(s) this event touched.
            let touched = match &ev {
                Ev::StartFlow { flow }
                | Ev::Arrive { flow, .. }
                | Ev::Notify { flow, .. }
                | Ev::HostTimer { flow, .. } => Touched::One(*flow),
                Ev::Prepare => Touched::All,
                _ => Touched::None,
            };
            match ev {
                Ev::StartFlow { flow } => {
                    let pnow = self.host_now(Side::A, flow, now);
                    let (s, r) = self
                        .timed_factory
                        .as_mut()
                        .expect("staggered emulator")(flow, pnow);
                    self.senders[flow] = Some(s);
                    self.receivers[flow] = Some(r);
                    self.started += 1;
                    self.flush(now, Side::A, flow);
                    self.flush(now, Side::B, flow);
                }
                Ev::Arrive { side, flow, seg } => {
                    if self.host_exists(side, flow) {
                        let pnow = self.host_now(side, flow, now);
                        self.host_mut(side, flow).on_segment(pnow, &seg);
                        self.flush(now, side, flow);
                        // The peer may now be able to send (window opened).
                        self.flush(now, side.other(), flow);
                    }
                }
                Ev::Enqueue { dir, seg } => {
                    // EPS ingress burst faults: drops vanish here, but
                    // corrupted *data* segments keep flowing — damage is
                    // detected end-to-end by the receiver's payload
                    // checksum (counted as `corrupt_rx`), not by the
                    // network silently eating the segment. A corrupted
                    // pure ACK has no trustworthy bits and degrades to a
                    // drop.
                    match self.faults.on_transit(now) {
                        EpsVerdict::Pass => {
                            let voq = match dir {
                                Dir::Ab => &mut self.voq_ab,
                                Dir::Ba => &mut self.voq_ba,
                            };
                            if voq.enqueue(now, seg) {
                                self.kick_service(now, dir);
                            }
                        }
                        EpsVerdict::Drop => {
                            self.recorder.record(now, "eps burst: segment dropped");
                        }
                        EpsVerdict::Corrupt => {
                            if seg.has_payload() {
                                let mut seg = seg;
                                seg.payload_csum = mangle_csum(seg.payload_csum);
                                self.recorder.record(now, "eps burst: segment corrupted");
                                let voq = match dir {
                                    Dir::Ab => &mut self.voq_ab,
                                    Dir::Ba => &mut self.voq_ba,
                                };
                                if voq.enqueue(now, seg) {
                                    self.kick_service(now, dir);
                                }
                            } else {
                                self.recorder
                                    .record(now, "eps burst: corrupted ack dropped");
                            }
                        }
                    }
                }
                Ev::Service { dir } => {
                    self.service_pending[dir.idx()] = false;
                    self.service(now, dir);
                }
                Ev::DayStart { day } => self.on_day_start(now, day, until),
                Ev::NightStart { day } => self.on_night_start(now, day),
                Ev::LinkFail { day } => {
                    // The light path drops mid-day: service stops until
                    // the next day start. Segments already in flight
                    // complete their propagation.
                    if self.prev_day == day && self.active.is_some() {
                        self.active = None;
                        self.recorder
                            .record(now, format!("day {day}: circuit failed mid-day"));
                    }
                }
                Ev::Prepare => self.on_prepare(now),
                Ev::Notify { side, flow, tdn, gen } => {
                    if self.host_exists(side, flow) {
                        // A skewed host reads the notification against its
                        // own clock — this is exactly what desynchronizes
                        // its slot-phase estimate.
                        let pnow = self.host_now(side, flow, now);
                        self.host_mut(side, flow).on_tdn_notification(pnow, tdn, gen);
                        self.flush(now, side, flow);
                    }
                }
                Ev::HostTimer { side, flow } => {
                    self.timer_slots[flow][side.idx()] = None;
                    if self.host_exists(side, flow) {
                        let pnow = self.host_now(side, flow, now);
                        self.host_mut(side, flow).on_timer(pnow);
                        self.flush(now, side, flow);
                    }
                }
                Ev::Sample => {
                    let acked: u64 = self
                        .senders
                        .iter()
                        .flatten()
                        .map(|s| s.stats().bytes_acked)
                        .sum();
                    self.seq_series.push(now, acked as f64);
                    if now + self.sample_every <= until {
                        self.q.schedule(now + self.sample_every, Ev::Sample);
                    }
                }
            }
            match touched {
                Touched::None => {}
                Touched::One(flow) => self.note_completion(now, flow),
                Touched::All => {
                    for flow in 0..self.senders.len() {
                        self.note_completion(now, flow);
                    }
                }
            }
            if self.started == self.senders.len() && self.done_count == self.senders.len() {
                break;
            }
        }

        let duration = self.q.now().saturating_since(SimTime::ZERO);
        EVENTS_TOTAL.fetch_add(self.q.events_processed(), std::sync::atomic::Ordering::Relaxed);
        RunResult {
            seq_series: self.seq_series,
            drops_ab: self.voq_ab.drops,
            drops_ba: self.voq_ba.drops,
            ce_marks_ab: self.voq_ab.ce_marks,
            voq_ab: self.voq_ab.into_series(),
            voq_ba: self.voq_ba.into_series(),
            final_cwnds: self
                .senders
                .iter()
                .map(|s| s.as_ref().map(|s| s.cwnd_report()).unwrap_or_default())
                .collect(),
            completions: self.completions.clone(),
            starts: self.specs.iter().map(|s| s.start).collect(),
            sender_stats: self
                .senders
                .iter()
                .map(|s| s.as_ref().map(|s| *s.stats()).unwrap_or_default())
                .collect(),
            receiver_stats: self
                .receivers
                .iter()
                .map(|r| r.as_ref().map(|r| *r.stats()).unwrap_or_default())
                .collect(),
            conn_errors: self
                .senders
                .iter()
                .map(|s| s.as_ref().and_then(|s| s.conn_error()))
                .collect(),
            day_records: self.day_records,
            duration,
            events: self.q.events_processed(),
            wall: wall_start.elapsed(),
            faults: *self.faults.stats(),
            fault_log_digest: self.faults.log_digest(),
            impairments: *self.impair.stats(),
            impair_log_digest: self.impair.log_digest(),
            clock: *self.clock.stats(),
            clock_log_digest: self.clock.log_digest(),
            flight_log: self.recorder.into_events(),
        }
    }

    /// Record flow `flow`'s completion time the first time its sender
    /// reports done. Called only for flows the current event touched.
    fn note_completion(&mut self, now: SimTime, flow: usize) {
        if self.completions[flow].is_some() {
            return;
        }
        let Some(s) = &self.senders[flow] else { return };
        if !s.is_done() {
            return;
        }
        self.completions[flow] = Some(now);
        self.done_count += 1;
        match s.conn_error() {
            Some(e) => self
                .recorder
                .record(now, format!("flow {flow} aborted: {e:?}")),
            None => self.recorder.record(now, format!("flow {flow} completed")),
        }
    }

    /// Stable clock-host index of `(side, flow)`: every endpoint is its
    /// own host with its own oscillator.
    fn host_id(side: Side, flow: usize) -> usize {
        flow * 2 + side.idx()
    }

    /// The host's perceived time at true time `now` (`now` exactly for an
    /// inert clock plan). Endpoint-visible timestamps pass through this;
    /// the emulator's own scheduling stays in true time.
    fn host_now(&mut self, side: Side, flow: usize, now: SimTime) -> SimTime {
        self.clock.perceived(Self::host_id(side, flow), now)
    }

    fn host_mut(&mut self, side: Side, flow: usize) -> &mut (dyn Transport + 'a) {
        match side {
            Side::A => self.senders[flow].as_mut().expect("flow started").as_mut(),
            Side::B => self.receivers[flow].as_mut().expect("flow started").as_mut(),
        }
    }

    fn host_exists(&self, side: Side, flow: usize) -> bool {
        match side {
            Side::A => self.senders[flow].is_some(),
            Side::B => self.receivers[flow].is_some(),
        }
    }

    /// Drain a host's outgoing segments into its ToR VOQ, then re-arm its
    /// timer event.
    fn flush(&mut self, now: SimTime, side: Side, flow: usize) {
        if !self.host_exists(side, flow) {
            return;
        }
        // The host paces and arms timers against its *perceived* clock;
        // deadlines it reports come back in that frame and are converted
        // to true time below (skew is locally constant over one re-arm).
        let pnow = self.host_now(side, flow, now);
        loop {
            let seg = match side {
                Side::A => self.senders[flow].as_mut().expect("checked").poll_send(pnow),
                Side::B => self.receivers[flow].as_mut().expect("checked").poll_send(pnow),
            };
            let Some(seg) = seg else { break };
            let dir = match seg.dir {
                Direction::DataPath => Dir::Ab,
                Direction::AckPath => Dir::Ba,
            };
            // Serialize through the rack's shared uplink NIC: the segment
            // reaches the ToR VOQ when its serialization completes.
            let nic = &mut self.nic_free[side.idx()];
            let start = (*nic).max(now);
            let done = start
                + SimDuration::serialization(u64::from(seg.wire_size()), self.cfg.host_rate_bps);
            *nic = done;
            self.q.schedule(done, Ev::Enqueue { dir, seg });
        }
        // Re-arm this host's timer (perceived frame → true frame).
        let want = match side {
            Side::A => self.senders[flow].as_ref().expect("checked").next_timer(),
            Side::B => self.receivers[flow].as_ref().expect("checked").next_timer(),
        }
        .map(|pt| (now + pt.saturating_since(pnow)).max(now));
        let slot = &mut self.timer_slots[flow][side.idx()];
        if want != slot.map(|(t, _)| t) {
            if let Some((_, id)) = slot.take() {
                self.q.cancel(id);
            }
            if let Some(t) = want {
                let id = self.q.schedule(t, Ev::HostTimer { side, flow });
                *slot = Some((t, id));
            }
        }
    }

    fn kick_service(&mut self, now: SimTime, dir: Dir) {
        if self.service_pending[dir.idx()] {
            return;
        }
        let at = self.link_free_at[dir.idx()].max(now);
        self.q.schedule(at, Ev::Service { dir });
        self.service_pending[dir.idx()] = true;
    }

    fn service(&mut self, now: SimTime, dir: Dir) {
        let Some(active) = self.active else { return };
        let mut params = *self.cfg.tdn(active);
        let mut mark = self.cfg.circuit_marking && active == self.cfg.circuit_tdn;
        let voq = match dir {
            Dir::Ab => &mut self.voq_ab,
            Dir::Ba => &mut self.voq_ba,
        };
        let Some(mut seg) = voq.dequeue_eligible(now, Some(active)) else {
            return;
        };
        // Serialization happens on the *true* plane regardless of the
        // sender's clock: the wire runs at the active TDN's rate.
        let ser = SimDuration::serialization(u64::from(seg.wire_size()), params.rate_bps);
        let to_side = match dir {
            Dir::Ab => Side::B,
            Dir::Ba => Side::A,
        };
        let flow = seg.flow.0 as usize;
        // Slot-edge enforcement (`cfg.clock`): if the sender's perceived
        // day disagrees with the true day by more than the guard band,
        // this launch was mis-timed and the plan's policy decides its
        // fate. The link is occupied either way — the segment went out;
        // the edge decided what became of it.
        if !self.clock.is_inert() {
            let sender = match dir {
                Dir::Ab => Side::A,
                Dir::Ba => Side::B,
            };
            let host = Self::host_id(sender, flow);
            match self
                .clock
                .on_send(host, now, &self.cfg.schedule, self.cfg.guard_band)
            {
                ClockVerdict::Send => {}
                ClockVerdict::GuardDrop => {
                    self.recorder
                        .record(now, "slot edge: mis-timed segment dropped");
                    self.finish_service(now, dir, ser, active);
                    return;
                }
                ClockVerdict::Defer => {
                    // Held at the ToR until the next slot opens.
                    let at = self
                        .cfg
                        .schedule
                        .day_start(self.cfg.schedule.day_number(now) + 1);
                    self.recorder
                        .record(now, "slot edge: mis-timed segment deferred");
                    self.q.schedule(at, Ev::Enqueue { dir, seg });
                    self.finish_service(now, dir, ser, active);
                    return;
                }
                ClockVerdict::WrongTdn { perceived_day } => {
                    // Delivered, but with the *stale* day's TDN semantics:
                    // the segment rides the plane the sender thought was
                    // up, picking up its propagation profile and marking.
                    let stale = self.cfg.schedule.day_tdn(perceived_day);
                    params = *self.cfg.tdn(stale);
                    mark = self.cfg.circuit_marking && stale == self.cfg.circuit_tdn;
                    self.recorder
                        .record(now, "slot edge: segment delivered on wrong tdn");
                }
            }
        }
        if mark {
            seg.circuit_mark = true;
        }
        // In-network queueing jitter (per-packet, so it can reorder
        // segments within a TDN and strand stragglers across transitions).
        let jitter = match params.jitter {
            Some((p, mean)) if self.rng.chance(p) => {
                SimDuration::from_nanos(self.rng.exponential(mean.as_nanos() as f64) as u64)
            }
            _ => SimDuration::ZERO,
        };
        let arrive_at = now + ser + params.one_way + jitter;
        // Wire-path impairments (`cfg.impair`): applied at the moment of
        // transmission, so they hit whichever plane — EPS day or circuit
        // day, including segments straddling a transition — carries the
        // segment. The link is occupied either way (the segment was
        // transmitted; the wire damaged or lost it downstream).
        match self.impair.on_wire(now) {
            ImpairVerdict::Pass => {
                self.q.schedule(arrive_at, Ev::Arrive { side: to_side, flow, seg });
            }
            ImpairVerdict::Drop => {}
            ImpairVerdict::Delay(extra) => {
                self.q
                    .schedule(arrive_at + extra, Ev::Arrive { side: to_side, flow, seg });
            }
            ImpairVerdict::Duplicate(lag) => {
                self.q.schedule(
                    arrive_at,
                    Ev::Arrive { side: to_side, flow, seg },
                );
                self.q
                    .schedule(arrive_at + lag, Ev::Arrive { side: to_side, flow, seg });
            }
            ImpairVerdict::Corrupt => {
                if seg.has_payload() {
                    let mut seg = seg;
                    seg.payload_csum = mangle_csum(seg.payload_csum);
                    self.q.schedule(arrive_at, Ev::Arrive { side: to_side, flow, seg });
                }
                // A corrupted pure ACK degrades to a drop: no bit of it
                // can be trusted, so nothing arrives.
            }
        }
        self.finish_service(now, dir, ser, active);
    }

    /// Common tail of one service step: the link stays occupied for the
    /// segment's serialization time, and service continues if the VOQ
    /// still holds eligible segments.
    fn finish_service(&mut self, now: SimTime, dir: Dir, ser: SimDuration, active: TdnId) {
        self.link_free_at[dir.idx()] = now + ser;
        let voq = match dir {
            Dir::Ab => &mut self.voq_ab,
            Dir::Ba => &mut self.voq_ba,
        };
        if voq.has_eligible(Some(active)) {
            self.q.schedule(now + ser, Ev::Service { dir });
            self.service_pending[dir.idx()] = true;
        }
    }

    fn on_day_start(&mut self, now: SimTime, day: u64, until: SimTime) {
        // Record the finished day (if any) for Fig. 10.
        if day > 0 {
            self.record_day(day - 1);
        }
        // Schedule freeze: a stuck rotor replays the frozen day's TDN.
        let sched_day = self.faults.schedule_day(day);
        let tdn = self.cfg.schedule.day_tdn(sched_day);
        let fate = self.faults.day_fate(day, tdn, self.cfg.circuit_tdn);
        self.prev_day = day;
        self.prev_day_tdn = tdn;

        match fate {
            DayFate::Absent => {
                // The circuit never comes up, and the failure is
                // unannounced — the ToR sends no notifications, so hosts
                // discover the outage only through their watchdogs.
                self.active = None;
                self.recorder
                    .record(now, format!("day {day}: circuit absent (outage)"));
            }
            DayFate::Truncated(frac) => {
                self.active = Some(tdn);
                let at = now + self.cfg.schedule.day_len.mul_f64(frac);
                self.q.schedule(at, Ev::LinkFail { day });
                self.recorder.record(
                    now,
                    format!("day {day} tdn {} starts (fails mid-day)", tdn.0),
                );
            }
            DayFate::Normal => {
                self.active = Some(tdn);
                self.recorder
                    .record(now, format!("day {day} tdn {} starts", tdn.0));
            }
        }

        // Notifications to every host (none for an absent day). The gen
        // is the day number: monotone at the ToR, so endpoints can
        // discard duplicated/reordered deliveries. Latency is sampled
        // from the main stream even for dropped notifications, keeping
        // the clean-path draw sequence identical across plans.
        if self.cfg.notifications && fate != DayFate::Absent {
            for flow in 0..self.senders.len() {
                for side in [Side::A, Side::B] {
                    let lat = self.notify_model.sample(&mut self.rng, flow).total();
                    match self.faults.on_notify(day, flow, side.idx() as u8) {
                        NotifyVerdict::Drop => {
                            self.recorder.record(
                                now,
                                format!("day {day}: notify dropped (flow {flow})"),
                            );
                        }
                        NotifyVerdict::Deliver { extra, duplicate } => {
                            let at = now + lat + extra;
                            self.q
                                .schedule(at, Ev::Notify { side, flow, tdn, gen: day });
                            if let Some(lag) = duplicate {
                                self.q
                                    .schedule(at + lag, Ev::Notify { side, flow, tdn, gen: day });
                            }
                        }
                    }
                }
            }
        }

        // retcpdyn: schedule the prepare lead for the *next* circuit day.
        if let Some(dyncfg) = self.cfg.retcpdyn {
            let next = day + 1;
            if self.cfg.schedule.day_tdn(next) == self.cfg.circuit_tdn {
                let at = self.cfg.schedule.day_start(next) - dyncfg.prepare_lead;
                if at >= now && at <= until {
                    self.q.schedule(at, Ev::Prepare);
                }
            }
        }

        self.q.schedule(now + self.cfg.schedule.day_len, Ev::NightStart { day });
        self.kick_service(now, Dir::Ab);
        self.kick_service(now, Dir::Ba);
    }

    fn on_night_start(&mut self, now: SimTime, day: u64) {
        self.active = None;
        // A circuit day just ended: restore the VOQ cap (retcpdyn). The
        // *effective* TDN (frozen schedules replay a day) decides.
        if self.cfg.retcpdyn.is_some() && self.prev_day_tdn == self.cfg.circuit_tdn {
            self.voq_ab.reset_cap();
            self.voq_ba.reset_cap();
        }
        self.q
            .schedule(now + self.cfg.schedule.night_len, Ev::DayStart { day: day + 1 });
    }

    fn on_prepare(&mut self, now: SimTime) {
        let cap = self.cfg.retcpdyn.expect("prepare only with retcpdyn").enlarged_cap;
        self.voq_ab.set_cap(cap);
        self.voq_ba.set_cap(cap);
        for flow in 0..self.senders.len() {
            if self.senders[flow].is_some() {
                let pnow = self.host_now(Side::A, flow, now);
                self.senders[flow]
                    .as_mut()
                    .expect("checked")
                    .on_circuit_prepare(pnow);
                self.flush(now, Side::A, flow);
            }
        }
    }

    fn record_day(&mut self, day: u64) {
        // `prev_day_tdn` still holds the finished day's *effective* TDN
        // (on_day_start records day-1 before overwriting it), which can
        // differ from the nominal schedule under a freeze fault.
        let mut rec = DayRecord {
            day,
            tdn: self.prev_day_tdn,
            reorder_events: 0,
            reorder_marked_pkts: 0,
            retransmits: 0,
            spurious_retransmits: 0,
        };
        for (i, snap) in self.prev_snapshot.iter_mut().enumerate() {
            let (Some(snd), Some(rcv)) = (&self.senders[i], &self.receivers[i]) else {
                continue;
            };
            let s = *snd.stats();
            let r = *rcv.stats();
            rec.reorder_events += s.reorder_events - snap.0.reorder_events;
            rec.reorder_marked_pkts += s.reorder_marked_pkts - snap.0.reorder_marked_pkts;
            rec.retransmits += s.retransmits - snap.0.retransmits;
            rec.spurious_retransmits += r.spurious_retransmits - snap.1.spurious_retransmits;
            *snap = (s, r);
        }
        self.day_records.push(rec);
    }
}

impl Side {
    fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
    fn idx(self) -> usize {
        match self {
            Side::A => 0,
            Side::B => 1,
        }
    }
}

impl Dir {
    fn idx(self) -> usize {
        match self {
            Dir::Ab => 0,
            Dir::Ba => 1,
        }
    }
}
