//! Deterministic per-host clock skew/drift injection — the time plane of
//! the chaos triad.
//!
//! [`crate::faults`] attacks the control plane and [`crate::impair`] the
//! data path; this module attacks the assumption underneath both: that
//! every host agrees with the ToR about *when* the rotor schedule is.
//! A [`ClockPlan`] on `NetConfig` gives each host a local clock with a
//! static offset, a constant ppm drift rate, bounded per-read jitter,
//! and periodic PTP-style resyncs that collapse the accumulated offset
//! back to a configurable residual error floor. The emulator computes
//! each host's *perceived* time through [`ClockInjector::perceived`] and
//! judges every link-service launch through [`ClockInjector::on_send`]:
//! a segment launched while the sender's perceived day disagrees with
//! the true day, by more skew than the guard band absorbs, is dropped,
//! deferred to the next day, or delivered on the sender's stale TDN —
//! per the plan's [`SlotEdgePolicy`].
//!
//! Like the other injectors, the clock draws from its own RNG stream
//! forked from the run seed under [`CLOCK_STREAM_LABEL`], and every draw
//! is guarded so an inert plan makes **zero** draws and allocates no
//! host state: a clean run is bit-identical whether or not a
//! `ClockPlan::none()` is attached, and a skewed run is fully
//! reproducible per `(seed, plan)`. Per-host parameters are drawn
//! lazily on first touch; the emulator's event order is deterministic,
//! so the draw order is too.

use crate::schedule::Schedule;
use crate::statfold::{self, InjectorStats, LogEvent};
use simcore::{DetRng, SimDuration, SimTime};
use testkit::Digest;

/// The fixed fork label carving the clock stream out of a run's seed;
/// keeps the main emulator stream (and the fault/impair streams)
/// identical whether or not a plan is attached.
pub const CLOCK_STREAM_LABEL: u64 = 0xC10C;

/// What the fabric does with a segment launched across a slot edge —
/// i.e. when the sender's perceived day disagrees with the true day by
/// more than the guard band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotEdgePolicy {
    /// The segment dies at the edge (slot-edge loss, the T-RACKs
    /// tail-loss regime). The default.
    #[default]
    Drop,
    /// The segment is held and launched at the start of the next true
    /// day (models ToR-side admission parking mis-timed traffic).
    Defer,
    /// The segment is delivered, but attributed to the sender's stale
    /// TDN view (models a mis-labelled launch crossing the
    /// reconfiguration).
    WrongTdn,
}

/// Declarative description of time-plane adversity. The default plan
/// skews nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockPlan {
    /// Per-host static offset bound: each host draws a fixed offset
    /// uniform in `[-offset_bound, +offset_bound]`.
    pub offset_bound: SimDuration,
    /// Per-host drift-rate bound in parts per million: each host draws
    /// a constant rate uniform in `[-drift_ppm, +drift_ppm]`.
    pub drift_ppm: f64,
    /// Per-read clock jitter bound: every perceived-time read wobbles
    /// uniform in `[-jitter, +jitter]` (clamped so each host's
    /// perceived clock stays monotone).
    pub jitter: SimDuration,
    /// Period of PTP-style resync events per host; `ZERO` disables
    /// resync, so offset and accumulated drift persist.
    pub resync_interval: SimDuration,
    /// Residual error floor after a resync: the offset collapses to a
    /// fresh draw uniform in `[-resync_error, +resync_error]` rather
    /// than to zero (drift keeps running — it is a hardware property).
    pub resync_error: SimDuration,
    /// What the fabric does with a mis-timed launch.
    pub slot_edge_policy: SlotEdgePolicy,
}

impl Default for ClockPlan {
    fn default() -> Self {
        ClockPlan {
            offset_bound: SimDuration::ZERO,
            drift_ppm: 0.0,
            jitter: SimDuration::ZERO,
            resync_interval: SimDuration::ZERO,
            resync_error: SimDuration::ZERO,
            slot_edge_policy: SlotEdgePolicy::Drop,
        }
    }
}

impl ClockPlan {
    /// A plan that skews nothing (`Default`).
    pub fn none() -> ClockPlan {
        ClockPlan::default()
    }

    /// A pure drift plan: hosts drift apart at up to `ppm`, never
    /// resyncing.
    pub fn drift(ppm: f64) -> ClockPlan {
        ClockPlan {
            drift_ppm: ppm,
            ..ClockPlan::default()
        }
    }

    /// A static-offset plan: hosts disagree by up to `bound`, stably.
    pub fn offset(bound: SimDuration) -> ClockPlan {
        ClockPlan {
            offset_bound: bound,
            ..ClockPlan::default()
        }
    }

    /// Whether the plan skews anything at all.
    pub fn is_none(&self) -> bool {
        *self == ClockPlan::default()
    }
}

/// Counters of time-plane effects actually applied during a run. All
/// monotone except `max_abs_skew_ns` (a running maximum, still
/// non-decreasing); digested into `RunResult::stats_digest`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockStats {
    /// Launches made while the sender's perceived day disagreed with
    /// the true day (whether or not the guard band absorbed it).
    pub skewed_sends: u64,
    /// Mis-timed launches killed at the slot edge (policy `Drop`).
    pub guard_drops: u64,
    /// Mis-timed launches parked until the next true day (policy
    /// `Defer`).
    pub deferred_sends: u64,
    /// Mis-timed launches delivered on the sender's stale TDN (policy
    /// `WrongTdn`).
    pub wrong_tdn_deliveries: u64,
    /// PTP-style resync events applied across all hosts.
    pub resyncs: u64,
    /// Largest absolute perceived-minus-true skew observed on any host,
    /// in nanoseconds (signed source value; the maximum of `|skew|`).
    pub max_abs_skew_ns: i64,
}

impl ClockStats {
    /// Total time-plane events applied (the running maximum is not an
    /// event count and is excluded).
    pub fn total(&self) -> u64 {
        let ClockStats {
            skewed_sends,
            guard_drops,
            deferred_sends,
            wrong_tdn_deliveries,
            resyncs,
            max_abs_skew_ns: _,
        } = *self;
        skewed_sends + guard_drops + deferred_sends + wrong_tdn_deliveries + resyncs
    }

    /// Feed every counter into `d` in declaration order.
    pub fn write_digest(&self, d: &mut Digest) {
        let ClockStats {
            skewed_sends,
            guard_drops,
            deferred_sends,
            wrong_tdn_deliveries,
            resyncs,
            max_abs_skew_ns,
        } = *self;
        for v in [
            skewed_sends,
            guard_drops,
            deferred_sends,
            wrong_tdn_deliveries,
            resyncs,
        ] {
            d.write_u64(v);
        }
        d.write_i64(max_abs_skew_ns);
    }
}

impl InjectorStats for ClockStats {
    fn total(&self) -> u64 {
        ClockStats::total(self)
    }
    fn write_digest(&self, d: &mut Digest) {
        ClockStats::write_digest(self, d)
    }
}

/// One concrete applied time-plane event, recorded in order of
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockEvent {
    /// A host's clock resynced, collapsing its offset to a residual.
    Resync {
        /// True simulated time of the resync in nanoseconds.
        at_ns: u64,
        /// Host index.
        host: usize,
        /// Residual offset after the resync, in nanoseconds.
        residual_ns: i64,
    },
    /// A mis-timed launch was killed at the slot edge.
    GuardDrop {
        /// True simulated time of the launch in nanoseconds.
        at_ns: u64,
        /// Sending host index.
        host: usize,
        /// The sender's skew at launch, in nanoseconds.
        skew_ns: i64,
    },
    /// A mis-timed launch was parked until the next true day.
    Defer {
        /// True simulated time of the launch in nanoseconds.
        at_ns: u64,
        /// Sending host index.
        host: usize,
        /// The sender's skew at launch, in nanoseconds.
        skew_ns: i64,
    },
    /// A mis-timed launch was delivered on the sender's stale TDN.
    WrongTdn {
        /// True simulated time of the launch in nanoseconds.
        at_ns: u64,
        /// Sending host index.
        host: usize,
        /// The sender's skew at launch, in nanoseconds.
        skew_ns: i64,
    },
}

impl LogEvent for ClockEvent {
    fn write_digest(&self, d: &mut Digest) {
        match *self {
            ClockEvent::Resync {
                at_ns,
                host,
                residual_ns,
            } => {
                d.write_u64(1).write_u64(at_ns).write_usize(host).write_i64(residual_ns);
            }
            ClockEvent::GuardDrop { at_ns, host, skew_ns } => {
                d.write_u64(2).write_u64(at_ns).write_usize(host).write_i64(skew_ns);
            }
            ClockEvent::Defer { at_ns, host, skew_ns } => {
                d.write_u64(3).write_u64(at_ns).write_usize(host).write_i64(skew_ns);
            }
            ClockEvent::WrongTdn { at_ns, host, skew_ns } => {
                d.write_u64(4).write_u64(at_ns).write_usize(host).write_i64(skew_ns);
            }
        }
    }
}

/// The injector's decision for one segment launched onto a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockVerdict {
    /// The launch is aligned (or absorbed by the guard band): deliver
    /// normally.
    Send,
    /// Kill the segment at the slot edge.
    GuardDrop,
    /// Park the segment; the emulator relaunches it at the next true
    /// day start.
    Defer,
    /// Deliver, but attributed to the sender's perceived (stale) day —
    /// the segment rides that day's TDN characteristics instead of the
    /// true active one's.
    WrongTdn {
        /// The day the sender believed was active at launch.
        perceived_day: u64,
    },
}

/// One host's local clock: a fixed offset, a constant drift rate, and
/// the true time of its last resync.
#[derive(Debug, Clone, Copy)]
struct HostClock {
    /// Offset at the last sync point, in nanoseconds.
    offset_ns: i64,
    /// Drift rate in parts per million (perceived runs fast when
    /// positive).
    drift_ppm: f64,
    /// True time of the last (re)sync the drift term accumulates from.
    synced_at: SimTime,
    /// Monotonicity clamp: the largest perceived time handed out so
    /// far.
    last_perceived: SimTime,
}

/// Executes a [`ClockPlan`] against a dedicated RNG stream, owns every
/// host's local clock, and records what was applied.
#[derive(Debug)]
pub struct ClockInjector {
    plan: ClockPlan,
    rng: DetRng,
    stats: ClockStats,
    log: Vec<ClockEvent>,
    hosts: Vec<Option<HostClock>>,
}

impl ClockInjector {
    /// An injector for `plan` drawing from `rng` (conventionally
    /// `run_rng.fork(CLOCK_STREAM_LABEL)`).
    pub fn new(plan: ClockPlan, rng: DetRng) -> Self {
        ClockInjector {
            plan,
            rng,
            stats: ClockStats::default(),
            log: Vec::new(),
            hosts: Vec::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &ClockPlan {
        &self.plan
    }

    /// Counters of time-plane effects applied so far.
    pub fn stats(&self) -> &ClockStats {
        &self.stats
    }

    /// The applied-event log, in application order (capped; counters
    /// keep counting past the cap).
    pub fn log(&self) -> &[ClockEvent] {
        &self.log
    }

    /// Digest of the applied-event sequence plus the counters — the
    /// object of the `ClockPlan` determinism property.
    pub fn log_digest(&self) -> u64 {
        statfold::log_digest(&self.log, &self.stats)
    }

    /// Whether the plan skews nothing (the zero-draw fast path).
    pub fn is_inert(&self) -> bool {
        self.plan.is_none()
    }

    /// Draw a value uniform in `[-bound, +bound]` nanoseconds, making
    /// no draw (and returning 0) when the bound is zero.
    fn draw_signed(rng: &mut DetRng, bound: SimDuration) -> i64 {
        let b = bound.as_nanos();
        if b == 0 {
            return 0;
        }
        rng.gen_range(0..=2 * b) as i64 - b as i64
    }

    /// The host's clock, drawing its parameters on first touch and
    /// applying any resyncs due by `now`.
    fn host_mut(&mut self, host: usize, now: SimTime) -> &mut HostClock {
        if self.hosts.len() <= host {
            self.hosts.resize(host + 1, None);
        }
        if self.hosts[host].is_none() {
            let offset_ns = Self::draw_signed(&mut self.rng, self.plan.offset_bound);
            let drift_ppm = if self.plan.drift_ppm > 0.0 {
                (self.rng.gen_f64() * 2.0 - 1.0) * self.plan.drift_ppm
            } else {
                0.0
            };
            self.hosts[host] = Some(HostClock {
                offset_ns,
                drift_ppm,
                synced_at: SimTime::ZERO,
                last_perceived: SimTime::ZERO,
            });
        }
        // Apply every resync that has come due since the last touch.
        let interval = self.plan.resync_interval;
        if interval > SimDuration::ZERO {
            loop {
                let due = {
                    let hc = self.hosts[host].as_ref().unwrap();
                    hc.synced_at + interval
                };
                if now < due {
                    break;
                }
                let residual_ns = Self::draw_signed(&mut self.rng, self.plan.resync_error);
                let hc = self.hosts[host].as_mut().unwrap();
                hc.synced_at = due;
                hc.offset_ns = residual_ns;
                self.stats.resyncs += 1;
                statfold::push_capped(
                    &mut self.log,
                    ClockEvent::Resync {
                        at_ns: due.as_nanos(),
                        host,
                        residual_ns,
                    },
                );
            }
        }
        self.hosts[host].as_mut().unwrap()
    }

    /// The host's perceived local time at true time `now`: offset plus
    /// accumulated drift plus bounded read jitter, clamped monotone.
    /// Inert plans return `now` untouched with zero draws.
    pub fn perceived(&mut self, host: usize, now: SimTime) -> SimTime {
        if self.is_inert() {
            return now;
        }
        let jitter = self.plan.jitter;
        let jitter_ns = Self::draw_signed(&mut self.rng, jitter);
        let hc = self.host_mut(host, now);
        let elapsed = now.saturating_since(hc.synced_at).as_nanos();
        let drift_ns = (hc.drift_ppm * elapsed as f64 / 1e6) as i64;
        let raw = now.as_nanos() as i128 + hc.offset_ns as i128 + drift_ns as i128
            + jitter_ns as i128;
        let p = SimTime::from_nanos(raw.clamp(0, u64::MAX as i128) as u64);
        let p = if p < hc.last_perceived { hc.last_perceived } else { p };
        hc.last_perceived = p;
        let skew = p.as_nanos() as i128 - now.as_nanos() as i128;
        let abs = skew.unsigned_abs().min(i64::MAX as u128) as i64;
        if abs > self.stats.max_abs_skew_ns {
            self.stats.max_abs_skew_ns = abs;
        }
        p
    }

    /// Perceived-minus-true skew of `host` at `now`, in nanoseconds.
    pub fn skew_ns(&mut self, host: usize, now: SimTime) -> i64 {
        let p = self.perceived(host, now);
        p.as_nanos() as i64 - now.as_nanos() as i64
    }

    /// Judge one segment launched by `host` at true time `now`: if the
    /// sender's perceived day (per `sched`) disagrees with the true day
    /// by more skew than `guard_band` absorbs, the plan's slot-edge
    /// policy applies. Aligned launches — and all launches under an
    /// inert plan — pass untouched.
    pub fn on_send(
        &mut self,
        host: usize,
        now: SimTime,
        sched: &Schedule,
        guard_band: SimDuration,
    ) -> ClockVerdict {
        if self.is_inert() {
            return ClockVerdict::Send;
        }
        let p = self.perceived(host, now);
        let perceived_day = sched.day_number(p);
        if perceived_day == sched.day_number(now) {
            return ClockVerdict::Send;
        }
        self.stats.skewed_sends += 1;
        let skew_ns = p.as_nanos() as i64 - now.as_nanos() as i64;
        if skew_ns.unsigned_abs() <= guard_band.as_nanos() {
            // The guard band exists precisely to absorb this much skew.
            return ClockVerdict::Send;
        }
        let at_ns = now.as_nanos();
        match self.plan.slot_edge_policy {
            SlotEdgePolicy::Drop => {
                self.stats.guard_drops += 1;
                statfold::push_capped(&mut self.log, ClockEvent::GuardDrop { at_ns, host, skew_ns });
                ClockVerdict::GuardDrop
            }
            SlotEdgePolicy::Defer => {
                self.stats.deferred_sends += 1;
                statfold::push_capped(&mut self.log, ClockEvent::Defer { at_ns, host, skew_ns });
                ClockVerdict::Defer
            }
            SlotEdgePolicy::WrongTdn => {
                self.stats.wrong_tdn_deliveries += 1;
                statfold::push_capped(&mut self.log, ClockEvent::WrongTdn { at_ns, host, skew_ns });
                ClockVerdict::WrongTdn { perceived_day }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: ClockPlan, seed: u64) -> ClockInjector {
        ClockInjector::new(plan, DetRng::new(seed).fork(CLOCK_STREAM_LABEL))
    }

    #[test]
    fn inert_plan_skews_nothing_and_draws_nothing() {
        let mut inj = injector(ClockPlan::none(), 1);
        let sched = Schedule::hybrid_6to1();
        for i in 0..200u64 {
            let t = SimTime::from_micros(i * 7);
            assert_eq!(inj.perceived(3, t), t);
            assert_eq!(inj.skew_ns(5, t), 0);
            assert_eq!(
                inj.on_send(3, t, &sched, SimDuration::ZERO),
                ClockVerdict::Send
            );
        }
        assert_eq!(inj.stats().total(), 0);
        assert_eq!(inj.stats().max_abs_skew_ns, 0);
        assert!(inj.log().is_empty());
        assert!(inj.hosts.is_empty(), "inert plans allocate no host state");
    }

    #[test]
    fn static_offset_is_bounded_and_stable() {
        let plan = ClockPlan::offset(SimDuration::from_micros(50));
        let mut inj = injector(plan, 7);
        for host in 0..8 {
            let s0 = inj.skew_ns(host, SimTime::from_micros(100));
            let s1 = inj.skew_ns(host, SimTime::from_millis(40));
            assert!(s0.unsigned_abs() <= 50_000, "offset {s0} out of bound");
            assert_eq!(s0, s1, "a pure offset must not move");
        }
        assert!(
            (0..8).any(|h| inj.skew_ns(h, SimTime::from_millis(40)) != 0),
            "some host should draw a nonzero offset"
        );
    }

    #[test]
    fn drift_accumulates_linearly() {
        let plan = ClockPlan::drift(100.0);
        let mut inj = injector(plan, 11);
        // 100 ppm over 10 ms is at most 1 µs of skew.
        let early = inj.skew_ns(0, SimTime::from_millis(1));
        let late = inj.skew_ns(0, SimTime::from_millis(10));
        assert!(late.unsigned_abs() <= 1_000, "skew {late} over ppm bound");
        if early != 0 {
            assert!(
                late.unsigned_abs() >= early.unsigned_abs(),
                "drift must accumulate ({early} -> {late})"
            );
        }
    }

    #[test]
    fn resync_collapses_offset_to_error_floor() {
        let plan = ClockPlan {
            offset_bound: SimDuration::from_micros(80),
            resync_interval: SimDuration::from_millis(1),
            resync_error: SimDuration::from_micros(2),
            ..ClockPlan::default()
        };
        let mut inj = injector(plan, 13);
        // Touch early so the initial offset is drawn, then jump past
        // several resync intervals.
        let _ = inj.skew_ns(0, SimTime::from_micros(10));
        let s = inj.skew_ns(0, SimTime::from_millis(5));
        assert!(
            s.unsigned_abs() <= 2_000,
            "post-resync skew {s} above the error floor"
        );
        assert!(inj.stats().resyncs >= 5, "resyncs {}", inj.stats().resyncs);
    }

    #[test]
    fn guard_band_absorbs_small_skew_and_policy_applies_past_it() {
        let sched = Schedule::hybrid_6to1();
        // Force a deterministic, large positive offset by drawing until
        // a host with |offset| > 40 µs turns up.
        let plan = ClockPlan {
            offset_bound: SimDuration::from_micros(60),
            ..ClockPlan::default()
        };
        let mut inj = injector(plan.clone(), 17);
        let host = (0..64)
            .find(|&h| inj.skew_ns(h, SimTime::ZERO).unsigned_abs() > 40_000)
            .expect("some host draws a large offset");
        let skew = inj.skew_ns(host, SimTime::ZERO);
        // Pick a true launch time so that now and now+skew straddle a
        // day boundary: just before a boundary for positive skew, just
        // after for negative.
        let slot = sched.slot_len();
        let boundary = SimTime::ZERO + slot * 3;
        let launch = if skew > 0 {
            boundary - SimDuration::from_nanos(skew.unsigned_abs() / 2)
        } else {
            boundary + SimDuration::from_nanos(skew.unsigned_abs() / 2 - 1)
        };
        // Wide guard band: absorbed.
        assert_eq!(
            inj.on_send(host, launch, &sched, SimDuration::from_micros(100)),
            ClockVerdict::Send
        );
        assert_eq!(inj.stats().guard_drops, 0);
        assert!(inj.stats().skewed_sends > 0, "mis-timing must be counted");
        // Narrow guard band: the policy fires.
        assert_eq!(
            inj.on_send(host, launch, &sched, SimDuration::from_micros(1)),
            ClockVerdict::GuardDrop
        );
        assert_eq!(inj.stats().guard_drops, 1);
        // Same scenario under the other policies.
        for policy in [SlotEdgePolicy::Defer, SlotEdgePolicy::WrongTdn] {
            let mut inj2 = injector(
                ClockPlan {
                    slot_edge_policy: policy,
                    ..plan.clone()
                },
                17,
            );
            let v = inj2.on_send(host, launch, &sched, SimDuration::from_micros(1));
            match policy {
                SlotEdgePolicy::Defer => assert_eq!(v, ClockVerdict::Defer),
                SlotEdgePolicy::WrongTdn => {
                    assert!(matches!(v, ClockVerdict::WrongTdn { .. }), "got {v:?}");
                }
                SlotEdgePolicy::Drop => unreachable!(),
            }
        }
    }

    #[test]
    fn log_digest_is_deterministic_per_seed_and_plan() {
        let sched = Schedule::hybrid_6to1();
        let plan = ClockPlan {
            offset_bound: SimDuration::from_micros(120),
            drift_ppm: 200.0,
            jitter: SimDuration::from_nanos(500),
            resync_interval: SimDuration::from_millis(2),
            resync_error: SimDuration::from_micros(1),
            ..ClockPlan::default()
        };
        let mut a = injector(plan.clone(), 21);
        let mut b = injector(plan.clone(), 21);
        for i in 0..4_000u64 {
            let t = SimTime::from_nanos(i * 3_113);
            let host = (i % 6) as usize;
            assert_eq!(
                a.on_send(host, t, &sched, SimDuration::from_micros(5)),
                b.on_send(host, t, &sched, SimDuration::from_micros(5))
            );
        }
        assert_eq!(a.log_digest(), b.log_digest());
        assert_eq!(a.log(), b.log());
        assert_eq!(a.stats(), b.stats());
        let mut c = injector(plan, 22);
        for i in 0..4_000u64 {
            let t = SimTime::from_nanos(i * 3_113);
            c.on_send((i % 6) as usize, t, &sched, SimDuration::from_micros(5));
        }
        assert_ne!(a.log_digest(), c.log_digest(), "seed must matter");
    }

    #[test]
    fn perceived_time_is_monotone_per_host() {
        let plan = ClockPlan {
            jitter: SimDuration::from_micros(3),
            drift_ppm: 50.0,
            ..ClockPlan::default()
        };
        let mut inj = injector(plan, 29);
        let mut last = SimTime::ZERO;
        for i in 0..2_000u64 {
            let p = inj.perceived(0, SimTime::from_nanos(i * 400));
            assert!(p >= last, "perceived time went backwards");
            last = p;
        }
    }
}
