//! Rack-sharded multirack engine: intra-run parallelism with
//! bit-identical output at any worker count (DESIGN.md §13).
//!
//! [`crate::MultiRackEmulator`] runs one serial event loop over the
//! whole fabric. This engine partitions the same fabric *by rack*: each
//! rack shard owns a private event queue ([`simcore::DefaultQueue`]),
//! its own forked RNG and chaos injectors, the transports resident in
//! that rack, its ToR VOQ row, and its EPS/circuit/NIC port state. The
//! only inter-rack traffic is segment delivery, and every wire between
//! racks has a one-way latency of at least the *lookahead*
//! `L = min(packet.one_way, circuit.one_way)` — so all shards can
//! safely simulate a window `[w, min(w + L, next schedule edge))`
//! in parallel (conservative-lookahead PDES), exchanging the segments
//! they emitted through per-rack mailboxes drained at the window
//! barrier in fixed rack order.
//!
//! Determinism: a shard's window work depends only on its own state and
//! its deterministic queue, so the mailbox contents are identical at
//! any worker count; the single-threaded barrier drains them in
//! (source rack, emission order), and the destination queue's FIFO
//! tie-break makes the merged order total. Every reduction at the end
//! folds in fixed rack order. `run(.., workers)` therefore produces a
//! bit-identical [`ShardResult::stats_digest`] for workers 1, 2, 4, …
//! — pinned by `tests/determinism.rs`.
//!
//! The serial hot path is rebuilt relative to the old engine (these are
//! deliberate semantic differences, not bugs — this engine defines its
//! own digest):
//! * **service trains**: one `CircuitService`/`PacketService` event
//!   launches every already-queued eligible segment back-to-back up to
//!   the window end, with analytic launch times, instead of one event
//!   per segment (window ends are worker-count independent, so trains
//!   are too);
//! * **lazy struct-of-arrays timers**: per-host `deadline`/`armed`/
//!   `gen` arrays replace cancel/reschedule churn — moving a timer
//!   *later* is a plain array write, and a stale fire rearms from the
//!   array;
//! * **single-side flush**: delivering to a host flushes that host
//!   only (the old engine conservatively polled both flow endpoints);
//! * **batched delivery**: same-instant segments to one host arrive as
//!   one event.
//!
//! Chaos planes: notification faults (`notify_loss`/`extra_delay`/
//! `duplicate`), EPS transit bursts (`eps_burst`), the full data-path
//! impairment set, and per-host clock skew all run per rack on streams
//! forked from the rack's RNG. Day-fate faults (`link_failure`,
//! `freeze`) are two-rack-emulator concepts and are rejected at
//! construction.

use crate::faults::{EpsVerdict, FaultInjector, FaultPlan, NotifyVerdict, FAULT_STREAM_LABEL};
use crate::impair::{ImpairInjector, ImpairPlan, ImpairVerdict, IMPAIR_STREAM_LABEL};
use crate::clock::{ClockInjector, ClockPlan, ClockVerdict, CLOCK_STREAM_LABEL};
use crate::config::TdnParams;
use crate::multirack::{MultiRackConfig, PairFlow};
use crate::notify::NotifyModel;
use crate::schedule::{rotor, Schedule};
use crate::voq::Voq;
use simcore::{par, DefaultQueue, DetRng, SimDuration, SimTime};
use tcp::{ConnStats, Direction, Segment, Transport};
use testkit::Digest;
use wire::TdnId;

/// Label base for forking one RNG stream per rack off the run seed;
/// rack `r` uses `DetRng::new(seed).fork(RACK_STREAM_BASE + r)`, and
/// the rack's injectors fork their own streams off that.
pub const RACK_STREAM_BASE: u64 = 0x5AAD_0000;

/// Configuration of a sharded multirack run: the fabric plus one plan
/// per chaos plane (all [`inert`](FaultPlan::none) by default).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// The fabric (racks, link parameters, schedule, VOQ, notify, seed).
    pub net: MultiRackConfig,
    /// Control-plane notification / EPS-burst faults. `link_failure`
    /// and `freeze` must be `None` (two-rack emulator concepts).
    pub faults: FaultPlan,
    /// Data-path impairments applied per launched segment.
    pub impair: ImpairPlan,
    /// Per-host clock skew; hosts are numbered rack-locally.
    pub clock: ClockPlan,
    /// Skew absorbed at slot edges before the clock plan's slot-edge
    /// policy applies.
    pub guard_band: SimDuration,
}

impl ShardConfig {
    /// A clean (all-chaos-inert) run over `net`.
    pub fn clean(net: MultiRackConfig) -> ShardConfig {
        ShardConfig {
            net,
            faults: FaultPlan::none(),
            impair: ImpairPlan::none(),
            clock: ClockPlan::none(),
            guard_band: SimDuration::ZERO,
        }
    }
}

/// Where each endpoint of a flow lives: racks and rack-local host ids.
#[derive(Debug, Clone, Copy)]
struct FlowSeat {
    src_rack: u32,
    dst_rack: u32,
    /// Sender's host index within `src_rack`.
    s_local: u32,
    /// Receiver's host index within `dst_rack`.
    r_local: u32,
}

/// One or more segments arriving at the same host at the same instant.
enum SegBatch {
    One(Segment),
    Many(Vec<Segment>),
}

impl SegBatch {
    fn len(&self) -> usize {
        match self {
            SegBatch::One(_) => 1,
            SegBatch::Many(v) => v.len(),
        }
    }
}

/// Rack-local events. Cross-rack arrivals enter as `Deliver` via the
/// window barrier; everything else is scheduled and consumed by the
/// same shard.
enum REv {
    Deliver { host: u32, segs: SegBatch },
    Enqueue { dst: u32, seg: Segment },
    CircuitService,
    PacketService,
    DayStart { day: u64 },
    NightStart { day: u64 },
    Notify { host: u32, tdn: TdnId, gen: u64 },
    HostTimer { host: u32, tgen: u32 },
}

/// One segment waiting in a shard's outbox: `(arrival time, destination
/// rack, destination host, segment)`, in emission order.
type OutMsg = (SimTime, u32, u32, Segment);

/// One rack's complete simulation state.
struct RackShard<'a> {
    r: usize,
    racks: usize,
    q: DefaultQueue<REv>,
    rng: DetRng,
    notify_model: NotifyModel,
    faults: FaultInjector,
    impair: ImpairInjector,
    clock: ClockInjector,
    /// Synthetic schedule handed to the clock plane (`on_send` only
    /// consults day numbering, which needs just the day/night lengths).
    sched: Schedule,
    guard_band: SimDuration,
    matchings: Vec<Vec<(usize, usize)>>,
    packet: TdnParams,
    circuit: TdnParams,
    host_rate_bps: u64,
    day_len: SimDuration,
    night_len: SimDuration,

    /// Current OCS peer of this rack (None during nights).
    peer: Option<usize>,
    /// voqs[dst]: per-destination queue at this rack's ToR.
    voqs: Vec<Voq>,
    eps_busy_until: SimTime,
    eps_pending: bool,
    eps_rr: usize,
    circuit_busy_until: SimTime,
    circuit_pending: bool,
    nic_free: SimTime,

    /// Where every flow's endpoints live (shared copy; indexed by the
    /// global flow id carried in each segment).
    seats: Vec<FlowSeat>,
    /// Resident transports, in global flow order (a flow's sender if it
    /// sources here, its receiver if it sinks here — never both).
    hosts: Vec<Box<dyn Transport + Send + 'a>>,
    /// SoA per-host hot state, parallel to `hosts`: global flow id,
    /// sender side, flow src/dst racks, and the lazy timer triple.
    hflow: Vec<u32>,
    hsend: Vec<bool>,
    /// Next deadline wanted by the host (`SimTime::MAX` = none).
    tdeadline: Vec<SimTime>,
    /// Earliest time a live `HostTimer` event will fire (`MAX` = none).
    tarmed: Vec<SimTime>,
    /// Generation guard: a fired event with a stale generation is a
    /// no-op, which is what lets timer *postponement* cost zero queue
    /// operations.
    tgen: Vec<u32>,

    hdone: Vec<bool>,
    completion: Vec<Option<SimTime>>,
    n_senders: usize,
    done_count: usize,

    outbox: Vec<OutMsg>,
    /// Exclusive end of the window this shard may simulate.
    w_end: SimTime,
    /// Train/batch segments beyond the event that carried them — added
    /// to the queue's pop count to keep `events` comparable with the
    /// one-event-per-segment serial engine.
    extra_events: u64,
}

/// The sharded N-rack emulator. Construct with [`ShardedEmulator::new`],
/// then [`run`](ShardedEmulator::run).
pub struct ShardedEmulator<'a> {
    shards: Vec<std::sync::Mutex<RackShard<'a>>>,
    flows: Vec<PairFlow>,
    lookahead: SimDuration,
    day_len: SimDuration,
    night_len: SimDuration,
}

/// Results of a sharded multirack run.
#[derive(Debug)]
pub struct ShardResult {
    /// Per-flow sender stats, in global flow order.
    pub sender_stats: Vec<ConnStats>,
    /// Per-flow receiver stats.
    pub receiver_stats: Vec<ConnStats>,
    /// Per-flow sender completion time (first barrier-visible event at
    /// which the sender reported done), `None` if unfinished.
    pub completions: Vec<Option<SimTime>>,
    /// Whether each flow's sender aborted with a connection error.
    pub sender_errors: Vec<bool>,
    /// Tail drops summed over all VOQs.
    pub drops: u64,
    /// CE marks summed over all VOQs.
    pub ce_marks: u64,
    /// Logical events processed: queue pops plus train/batch segments
    /// beyond the first, summed over racks.
    pub events: u64,
    /// Logical events per rack — `max/mean` of this is the shard
    /// imbalance the bigrun benchmark reports.
    pub rack_events: Vec<u64>,
    /// Control-plane fault events applied (summed over racks).
    pub faults_total: u64,
    /// Data-path impairments applied (summed over racks).
    pub impairments_total: u64,
    /// Time-plane effects applied (summed over racks).
    pub clock_total: u64,
    /// Per-rack fault log digests, in rack order.
    pub fault_log_digests: Vec<u64>,
    /// Per-rack impairment log digests, in rack order.
    pub impair_log_digests: Vec<u64>,
    /// Per-rack clock log digests, in rack order.
    pub clock_log_digests: Vec<u64>,
    /// Simulated duration (max over racks).
    pub duration: SimDuration,
}

impl ShardResult {
    /// Aggregate acknowledged bytes.
    pub fn total_acked(&self) -> u64 {
        self.sender_stats.iter().map(|s| s.bytes_acked).sum()
    }

    /// Peak shard imbalance: max rack event count over the mean
    /// (1.0 = perfectly balanced). Racks with no events count toward
    /// the mean.
    pub fn peak_imbalance(&self) -> f64 {
        let n = self.rack_events.len();
        if n == 0 || self.events == 0 {
            return 1.0;
        }
        let mean = self.events as f64 / n as f64;
        let max = self.rack_events.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }

    /// Fold every counter into `d` in declaration order.
    pub fn write_digest(&self, d: &mut Digest) {
        d.write_u64(self.drops)
            .write_u64(self.ce_marks)
            .write_u64(self.events)
            .write_u64(self.faults_total)
            .write_u64(self.impairments_total)
            .write_u64(self.clock_total);
        for v in &self.rack_events {
            d.write_u64(*v);
        }
        for v in &self.fault_log_digests {
            d.write_u64(*v);
        }
        for v in &self.impair_log_digests {
            d.write_u64(*v);
        }
        for v in &self.clock_log_digests {
            d.write_u64(*v);
        }
        d.write_u64(self.duration.as_nanos());
    }

    /// Digest over everything observable in the result, folded in fixed
    /// order — the object of the worker-count invariance property.
    pub fn stats_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.write_usize(self.sender_stats.len());
        for s in &self.sender_stats {
            s.write_digest(&mut d);
        }
        for s in &self.receiver_stats {
            s.write_digest(&mut d);
        }
        for c in &self.completions {
            d.write_bool(c.is_some());
            d.write_u64(c.map_or(0, |t| t.as_nanos()));
        }
        for e in &self.sender_errors {
            d.write_bool(*e);
        }
        self.write_digest(&mut d);
        d.finish()
    }
}

impl<'a> ShardedEmulator<'a> {
    /// Create the sharded fabric with one (sender, receiver) pair per
    /// flow. Transports must be `Send`: shards migrate across worker
    /// threads between windows.
    pub fn new(
        cfg: ShardConfig,
        flows: Vec<PairFlow>,
        mut factory: impl FnMut(
            usize,
            &PairFlow,
        ) -> (Box<dyn Transport + Send + 'a>, Box<dyn Transport + Send + 'a>),
    ) -> Self {
        let net = &cfg.net;
        assert!(net.racks >= 2 && net.racks.is_multiple_of(2));
        for f in &flows {
            assert!(f.src != f.dst && f.src < net.racks && f.dst < net.racks);
        }
        assert!(
            cfg.faults.link_failure.is_none() && cfg.faults.freeze.is_none(),
            "day-fate faults (link_failure/freeze) are not modeled by the sharded engine"
        );
        let lookahead = net.packet.one_way.min(net.circuit.one_way);
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative lookahead needs a positive minimum one-way latency"
        );
        let matchings = rotor::matchings(net.racks);
        let sched = Schedule {
            day_len: net.day_len,
            night_len: net.night_len,
            days: vec![TdnId(1); net.racks - 1],
        };

        // Seat every flow's endpoints: rack-local host ids in global
        // flow order.
        let mut next_local = vec![0u32; net.racks];
        let seats: Vec<FlowSeat> = flows
            .iter()
            .map(|f| {
                let s_local = next_local[f.src];
                next_local[f.src] += 1;
                let r_local = next_local[f.dst];
                next_local[f.dst] += 1;
                FlowSeat {
                    src_rack: f.src as u32,
                    dst_rack: f.dst as u32,
                    s_local,
                    r_local,
                }
            })
            .collect();

        let mut shards: Vec<RackShard<'a>> = (0..net.racks)
            .map(|r| {
                let rng = DetRng::new(net.seed).fork(RACK_STREAM_BASE + r as u64);
                RackShard {
                    r,
                    racks: net.racks,
                    q: DefaultQueue::new(),
                    faults: FaultInjector::new(cfg.faults.clone(), rng.fork(FAULT_STREAM_LABEL)),
                    impair: ImpairInjector::new(cfg.impair.clone(), rng.fork(IMPAIR_STREAM_LABEL)),
                    clock: ClockInjector::new(cfg.clock.clone(), rng.fork(CLOCK_STREAM_LABEL)),
                    rng,
                    notify_model: NotifyModel::new(net.notify),
                    sched: sched.clone(),
                    guard_band: cfg.guard_band,
                    matchings: matchings.clone(),
                    packet: net.packet,
                    circuit: net.circuit,
                    host_rate_bps: net.host_rate_bps,
                    day_len: net.day_len,
                    night_len: net.night_len,
                    peer: None,
                    voqs: (0..net.racks).map(|_| Voq::untraced(net.voq)).collect(),
                    eps_busy_until: SimTime::ZERO,
                    eps_pending: false,
                    eps_rr: 0,
                    circuit_busy_until: SimTime::ZERO,
                    circuit_pending: false,
                    nic_free: SimTime::ZERO,
                    seats: seats.clone(),
                    hosts: Vec::new(),
                    hflow: Vec::new(),
                    hsend: Vec::new(),
                    tdeadline: Vec::new(),
                    tarmed: Vec::new(),
                    tgen: Vec::new(),
                    hdone: Vec::new(),
                    completion: Vec::new(),
                    n_senders: 0,
                    done_count: 0,
                    outbox: Vec::new(),
                    w_end: SimTime::ZERO,
                    extra_events: 0,
                }
            })
            .collect();

        for (i, f) in flows.iter().enumerate() {
            let (s, r) = factory(i, f);
            shards[f.src].add_host(i as u32, true, s);
            shards[f.dst].add_host(i as u32, false, r);
        }

        ShardedEmulator {
            shards: shards.into_iter().map(std::sync::Mutex::new).collect(),
            flows,
            lookahead,
            day_len: net.day_len,
            night_len: net.night_len,
        }
    }

    /// The schedule edge strictly after `t` (day→night or night→day
    /// boundary) — windows never span an edge, so service trains can
    /// use the window's matching throughout.
    fn edge_after(&self, t: SimTime) -> SimTime {
        let slot = self.day_len + self.night_len;
        let k = t.as_nanos() / slot.as_nanos();
        let night_at = SimTime::from_nanos(k * slot.as_nanos()) + self.day_len;
        if t < night_at {
            night_at
        } else {
            SimTime::from_nanos((k + 1) * slot.as_nanos())
        }
    }

    /// Run the fabric until `until` with up to `workers` threads.
    /// Output is bit-identical for every worker count.
    pub fn run(self, until: SimTime, workers: usize) -> ShardResult {
        for s in &self.shards {
            s.lock().expect("shard poisoned").start();
        }
        let epsilon = SimDuration::from_nanos(1);
        par::run_windows(
            workers,
            &self.shards,
            |shards| {
                // Drain mailboxes in fixed rack order; batch runs of
                // same-(host, time) segments into one delivery event.
                for src in 0..shards.len() {
                    let out =
                        std::mem::take(&mut shards[src].lock().expect("shard poisoned").outbox);
                    let mut i = 0;
                    while i < out.len() {
                        let (t, dst, host, _) = out[i];
                        let mut j = i + 1;
                        while j < out.len() && out[j].0 == t && out[j].1 == dst && out[j].2 == host
                        {
                            j += 1;
                        }
                        let segs = if j == i + 1 {
                            SegBatch::One(out[i].3)
                        } else {
                            SegBatch::Many(out[i..j].iter().map(|m| m.3).collect())
                        };
                        shards[dst as usize]
                            .lock()
                            .expect("shard poisoned")
                            .q
                            .schedule(t, REv::Deliver { host, segs });
                        i = j;
                    }
                }
                // Window bounds and stop decision.
                let mut all_done = true;
                let mut w_start: Option<SimTime> = None;
                for s in shards {
                    let mut g = s.lock().expect("shard poisoned");
                    if g.done_count < g.n_senders {
                        all_done = false;
                    }
                    if let Some(t) = g.q.peek_time() {
                        w_start = Some(w_start.map_or(t, |w: SimTime| w.min(t)));
                    }
                }
                let Some(w_start) = w_start else { return false };
                if all_done || w_start > until {
                    return false;
                }
                let w_end = (w_start + self.lookahead)
                    .min(self.edge_after(w_start))
                    .min(until + epsilon);
                for s in shards {
                    s.lock().expect("shard poisoned").w_end = w_end;
                }
                true
            },
            |_, shard| shard.run_window(),
        );

        // Fold the result in fixed (flow, rack) order.
        let nf = self.flows.len();
        let mut sender_stats = vec![ConnStats::default(); nf];
        let mut receiver_stats = vec![ConnStats::default(); nf];
        let mut completions = vec![None; nf];
        let mut sender_errors = vec![false; nf];
        let mut drops = 0u64;
        let mut ce_marks = 0u64;
        let mut events = 0u64;
        let mut rack_events = Vec::new();
        let mut faults_total = 0u64;
        let mut impairments_total = 0u64;
        let mut clock_total = 0u64;
        let mut fault_log_digests = Vec::new();
        let mut impair_log_digests = Vec::new();
        let mut clock_log_digests = Vec::new();
        let mut duration = SimDuration::ZERO;
        for s in &self.shards {
            let g = s.lock().expect("shard poisoned");
            for h in 0..g.hosts.len() {
                let flow = g.hflow[h] as usize;
                if g.hsend[h] {
                    sender_stats[flow] = *g.hosts[h].stats();
                    completions[flow] = g.completion[h];
                    sender_errors[flow] = g.hosts[h].conn_error().is_some();
                } else {
                    receiver_stats[flow] = *g.hosts[h].stats();
                }
            }
            drops += g.voqs.iter().map(|v| v.drops).sum::<u64>();
            ce_marks += g.voqs.iter().map(|v| v.ce_marks).sum::<u64>();
            let re = g.q.events_processed() + g.extra_events;
            events += re;
            rack_events.push(re);
            faults_total += crate::statfold::InjectorStats::total(g.faults.stats());
            impairments_total += crate::statfold::InjectorStats::total(g.impair.stats());
            clock_total += g.clock.stats().total();
            fault_log_digests.push(g.faults.log_digest());
            impair_log_digests.push(g.impair.log_digest());
            clock_log_digests.push(g.clock.log_digest());
            duration = duration.max(g.q.now().saturating_since(SimTime::ZERO));
        }
        crate::emulator::EVENTS_TOTAL.fetch_add(events, std::sync::atomic::Ordering::Relaxed);
        ShardResult {
            sender_stats,
            receiver_stats,
            completions,
            sender_errors,
            drops,
            ce_marks,
            events,
            rack_events,
            faults_total,
            impairments_total,
            clock_total,
            fault_log_digests,
            impair_log_digests,
            clock_log_digests,
            duration,
        }
    }
}

impl<'a> RackShard<'a> {
    fn add_host(&mut self, flow: u32, sender: bool, t: Box<dyn Transport + Send + 'a>) {
        self.hosts.push(t);
        self.hflow.push(flow);
        self.hsend.push(sender);
        self.tdeadline.push(SimTime::MAX);
        self.tarmed.push(SimTime::MAX);
        self.tgen.push(0);
        self.hdone.push(false);
        self.completion.push(None);
        if sender {
            self.n_senders += 1;
        }
    }

    /// Seed day 0, flush every resident host's initial sends, and count
    /// already-done senders (zero-byte flows).
    fn start(&mut self) {
        self.q.schedule(SimTime::ZERO, REv::DayStart { day: 0 });
        for h in 0..self.hosts.len() {
            self.flush(SimTime::ZERO, h);
        }
        for h in 0..self.hosts.len() {
            if self.hsend[h] && self.hosts[h].is_done() {
                self.hdone[h] = true;
                self.completion[h] = Some(SimTime::ZERO);
                self.done_count += 1;
            }
        }
    }

    /// Process every local event strictly before `w_end`.
    fn run_window(&mut self) {
        while let Some((now, ev)) = self.q.pop_before(self.w_end) {
            let touched = match &ev {
                REv::Deliver { host, .. }
                | REv::Notify { host, .. }
                | REv::HostTimer { host, .. } => Some(*host as usize),
                _ => None,
            };
            match ev {
                REv::Deliver { host, segs } => {
                    let h = host as usize;
                    self.extra_events += segs.len() as u64 - 1;
                    match segs {
                        SegBatch::One(seg) => self.hosts[h].on_segment(now, &seg),
                        SegBatch::Many(v) => {
                            for seg in &v {
                                self.hosts[h].on_segment(now, seg);
                            }
                        }
                    }
                    self.flush(now, h);
                }
                REv::Enqueue { dst, seg } => {
                    let dst = dst as usize;
                    if self.voqs[dst].enqueue(now, seg) {
                        self.kick(now, dst);
                    }
                }
                REv::CircuitService => {
                    self.circuit_pending = false;
                    self.circuit_service(now);
                }
                REv::PacketService => {
                    self.eps_pending = false;
                    self.packet_service(now);
                }
                REv::DayStart { day } => self.on_day_start(now, day),
                REv::NightStart { day } => self.on_night_start(now, day),
                REv::Notify { host, tdn, gen } => {
                    let h = host as usize;
                    self.hosts[h].on_tdn_notification(now, tdn, gen);
                    self.flush(now, h);
                }
                REv::HostTimer { host, tgen } => self.host_timer(now, host as usize, tgen),
            }
            if let Some(h) = touched {
                if self.hsend[h] && !self.hdone[h] && self.hosts[h].is_done() {
                    self.hdone[h] = true;
                    self.completion[h] = Some(now);
                    self.done_count += 1;
                }
            }
        }
    }

    /// Drain a host's sends through the rack NIC, then maintain its lazy
    /// timer. No cancel is ever issued: pulling a timer *earlier* bumps
    /// the generation and schedules anew; pushing it *later* is just the
    /// `tdeadline` write, and the already-armed event rearms itself when
    /// it fires stale.
    fn flush(&mut self, now: SimTime, h: usize) {
        while let Some(seg) = self.hosts[h].poll_send(now) {
            let seat = self.seats[seg.flow.0 as usize];
            let dst = match seg.dir {
                Direction::DataPath => seat.dst_rack,
                Direction::AckPath => seat.src_rack,
            };
            let start = self.nic_free.max(now);
            let done = start
                + SimDuration::serialization(u64::from(seg.wire_size()), self.host_rate_bps);
            self.nic_free = done;
            self.q.schedule(done, REv::Enqueue { dst, seg });
        }
        let want = self.hosts[h].next_timer().map_or(SimTime::MAX, |t| t.max(now));
        self.tdeadline[h] = want;
        if want < self.tarmed[h] {
            self.tgen[h] = self.tgen[h].wrapping_add(1);
            self.tarmed[h] = want;
            self.q.schedule(
                want,
                REv::HostTimer {
                    host: h as u32,
                    tgen: self.tgen[h],
                },
            );
        }
    }

    fn host_timer(&mut self, now: SimTime, h: usize, gen: u32) {
        if gen != self.tgen[h] {
            return; // superseded by an earlier rearm
        }
        self.tarmed[h] = SimTime::MAX;
        let deadline = self.tdeadline[h];
        if deadline == SimTime::MAX {
            return; // disarmed since
        }
        if deadline <= now {
            self.hosts[h].on_timer(now);
            self.flush(now, h);
        } else {
            // Fired early (the deadline moved later, lazily): rearm at
            // the real deadline.
            self.tgen[h] = self.tgen[h].wrapping_add(1);
            self.tarmed[h] = deadline;
            self.q.schedule(
                deadline,
                REv::HostTimer {
                    host: h as u32,
                    tgen: self.tgen[h],
                },
            );
        }
    }

    /// New data for `dst`: wake whichever service path owns it.
    fn kick(&mut self, now: SimTime, dst: usize) {
        if self.peer == Some(dst) {
            if !self.circuit_pending {
                let at = self.circuit_busy_until.max(now);
                self.q.schedule(at, REv::CircuitService);
                self.circuit_pending = true;
            }
        } else if !self.eps_pending {
            let at = self.eps_busy_until.max(now);
            self.q.schedule(at, REv::PacketService);
            self.eps_pending = true;
        }
    }

    /// Serve the circuit as a train: launch every already-queued
    /// eligible segment back-to-back until the VOQ runs dry or the
    /// window ends. Window ends are worker-count independent, so the
    /// train extent is too.
    fn circuit_service(&mut self, now: SimTime) {
        let Some(dst) = self.peer else { return };
        let mut at = now;
        let mut first = true;
        loop {
            if at >= self.w_end {
                if self.voqs[dst].has_eligible(Some(TdnId(1))) {
                    self.q.schedule(at, REv::CircuitService);
                    self.circuit_pending = true;
                }
                return;
            }
            let Some(seg) = self.voqs[dst].dequeue_eligible(at, Some(TdnId(1))) else {
                return;
            };
            if !first {
                self.extra_events += 1;
            }
            first = false;
            let ser = self.launch(at, seg, true, dst);
            at += ser;
            self.circuit_busy_until = at;
        }
    }

    /// Serve the shared EPS uplink as a train: round-robin over the
    /// rack's non-circuit destinations until nothing is eligible or the
    /// window ends.
    fn packet_service(&mut self, now: SimTime) {
        let n = self.racks;
        let mut at = now;
        let mut first = true;
        loop {
            if at >= self.w_end {
                let more = (0..n).any(|d| {
                    d != self.r
                        && self.peer != Some(d)
                        && self.voqs[d].has_eligible(Some(TdnId(0)))
                });
                if more {
                    self.q.schedule(at, REv::PacketService);
                    self.eps_pending = true;
                }
                return;
            }
            let start = self.eps_rr;
            let mut chosen = None;
            for k in 0..n {
                let dst = (start + k) % n;
                if dst == self.r || self.peer == Some(dst) {
                    continue; // circuit traffic does not ride the EPS
                }
                if self.voqs[dst].has_eligible(Some(TdnId(0))) {
                    chosen = Some(dst);
                    break;
                }
            }
            let Some(dst) = chosen else { return };
            self.eps_rr = (dst + 1) % n;
            let seg = self.voqs[dst]
                .dequeue_eligible(at, Some(TdnId(0)))
                .expect("has_eligible checked");
            if !first {
                self.extra_events += 1;
            }
            first = false;
            let ser = self.launch(at, seg, false, dst);
            at += ser;
            self.eps_busy_until = at;
        }
    }

    /// Whether `matchings[day]` connects racks `a` and `b`.
    fn connected_on_day(&self, day: u64, a: usize, b: usize) -> bool {
        let m = &self.matchings[(day % self.matchings.len() as u64) as usize];
        m.iter().any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Launch one segment from this rack's ToR toward `dst` at `at`,
    /// running it through the chaos pipeline in fixed order — clock →
    /// EPS jitter → EPS transit faults → wire impairments — and
    /// emitting any surviving copies into the outbox. Returns the
    /// serialization time the port slot consumed.
    fn launch(&mut self, at: SimTime, mut seg: Segment, circuit: bool, dst: usize) -> SimDuration {
        let mut p = if circuit { self.circuit } else { self.packet };
        let true_ser = SimDuration::serialization(u64::from(seg.wire_size()), p.rate_bps);
        // Time plane: the launching host is always resident (data
        // launches at the flow's source rack, acks at its destination).
        if !self.clock.is_inert() {
            let seat = self.seats[seg.flow.0 as usize];
            let host = match seg.dir {
                Direction::DataPath => seat.s_local,
                Direction::AckPath => seat.r_local,
            } as usize;
            match self.clock.on_send(host, at, &self.sched, self.guard_band) {
                ClockVerdict::Send => {}
                ClockVerdict::GuardDrop => return true_ser, // slot burned, segment gone
                ClockVerdict::Defer => {
                    // Re-enqueue at what the host believes is the next
                    // slot start.
                    let next = self.sched.day_start(self.sched.day_number(at) + 1);
                    self.q.schedule(next, REv::Enqueue { dst: dst as u32, seg });
                    return true_ser;
                }
                ClockVerdict::WrongTdn { perceived_day } => {
                    // The host launches under the network it thinks is
                    // active: stale parameters for this transmission.
                    p = if self.connected_on_day(perceived_day, self.r, dst) {
                        self.circuit
                    } else {
                        self.packet
                    };
                }
            }
        }
        let ser = SimDuration::serialization(u64::from(seg.wire_size()), p.rate_bps);
        let jitter = match p.jitter {
            Some((prob, mean)) if self.rng.chance(prob) => {
                SimDuration::from_nanos(self.rng.exponential(mean.as_nanos() as f64) as u64)
            }
            _ => SimDuration::ZERO,
        };
        // EPS transit faults (burst windows) apply on the packet
        // network only.
        if !circuit {
            match self.faults.on_transit(at) {
                EpsVerdict::Pass => {}
                EpsVerdict::Drop => return ser,
                EpsVerdict::Corrupt => {
                    if seg.has_payload() {
                        seg.payload_csum = crate::emulator::mangle_csum(seg.payload_csum);
                    } else {
                        return ser; // a corrupted pure ACK is a loss
                    }
                }
            }
        }
        let arrive = at + ser + p.one_way + jitter;
        match self.impair.on_wire(at) {
            ImpairVerdict::Pass => self.emit(arrive, seg),
            ImpairVerdict::Drop => {}
            ImpairVerdict::Delay(extra) => self.emit(arrive + extra, seg),
            ImpairVerdict::Duplicate(lag) => {
                self.emit(arrive, seg);
                self.emit(arrive + lag, seg);
            }
            ImpairVerdict::Corrupt => {
                if seg.has_payload() {
                    seg.payload_csum = crate::emulator::mangle_csum(seg.payload_csum);
                    self.emit(arrive, seg);
                }
            }
        }
        ser
    }

    /// Queue a segment for cross-rack delivery at the next barrier.
    fn emit(&mut self, arrive: SimTime, seg: Segment) {
        let seat = self.seats[seg.flow.0 as usize];
        let (rack, host) = match seg.dir {
            Direction::DataPath => (seat.dst_rack, seat.r_local),
            Direction::AckPath => (seat.src_rack, seat.s_local),
        };
        debug_assert!(
            arrive >= self.w_end,
            "cross-rack arrival inside the window violates the lookahead"
        );
        self.outbox.push((arrive, rack, host, seg));
    }

    fn on_day_start(&mut self, now: SimTime, day: u64) {
        let m = &self.matchings[(day % self.matchings.len() as u64) as usize];
        self.peer = m.iter().find_map(|&(a, b)| {
            if a == self.r {
                Some(b)
            } else if b == self.r {
                Some(a)
            } else {
                None
            }
        });
        // Notify resident hosts, sampling latencies (and fault
        // verdicts) in fixed host order.
        for h in 0..self.hosts.len() {
            let flow = self.hflow[h] as usize;
            let seat = self.seats[flow];
            let connected =
                self.connected_on_day(day, seat.src_rack as usize, seat.dst_rack as usize);
            let tdn = if connected { TdnId(1) } else { TdnId(0) };
            let lat = self.notify_model.sample(&mut self.rng, flow).total();
            let side = u8::from(!self.hsend[h]);
            match self.faults.on_notify(day, flow, side) {
                NotifyVerdict::Drop => {}
                NotifyVerdict::Deliver { extra, duplicate } => {
                    let base = now + lat + extra;
                    let host = h as u32;
                    self.q.schedule(base, REv::Notify { host, tdn, gen: day });
                    if let Some(lag) = duplicate {
                        self.q
                            .schedule(base + lag, REv::Notify { host, tdn, gen: day });
                    }
                }
            }
        }
        // Kick services for the new matching.
        if let Some(dst) = self.peer {
            if self.voqs[dst].has_eligible(Some(TdnId(1))) && !self.circuit_pending {
                let at = self.circuit_busy_until.max(now);
                self.q.schedule(at, REv::CircuitService);
                self.circuit_pending = true;
            }
        }
        self.kick_eps_if_work(now);
        self.q.schedule(now + self.day_len, REv::NightStart { day });
    }

    fn on_night_start(&mut self, now: SimTime, day: u64) {
        self.peer = None;
        self.q
            .schedule(now + self.night_len, REv::DayStart { day: day + 1 });
        // Traffic that was circuit-bound now needs the EPS.
        self.kick_eps_if_work(now);
    }

    /// Schedule an EPS service pass if any destination has eligible
    /// packet traffic (the old engine kicked unconditionally; checking
    /// first saves an empty pop per rack per edge).
    fn kick_eps_if_work(&mut self, now: SimTime) {
        if self.eps_pending {
            return;
        }
        let any = (0..self.racks).any(|d| {
            d != self.r && self.peer != Some(d) && self.voqs[d].has_eligible(Some(TdnId(0)))
        });
        if any {
            let at = self.eps_busy_until.max(now);
            self.q.schedule(at, REv::PacketService);
            self.eps_pending = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp::cc::{CcConfig, Cubic};
    use tcp::{Config, Connection, FlowId};

    fn cubic_pair(
        i: usize,
        bytes: u64,
    ) -> (Box<dyn Transport + Send>, Box<dyn Transport + Send>) {
        let cfg = Config {
            bytes_to_send: bytes,
            ..Config::default()
        };
        let cc = CcConfig::default();
        (
            Box::new(Connection::connect(
                FlowId(i as u32),
                cfg.clone(),
                Box::new(Cubic::new(cc)),
                SimTime::ZERO,
            )),
            Box::new(Connection::listen(
                FlowId(i as u32),
                cfg,
                Box::new(Cubic::new(cc)),
            )),
        )
    }

    fn small_cfg() -> ShardConfig {
        let mut net = MultiRackConfig::paper_8rack();
        net.racks = 4;
        ShardConfig::clean(net)
    }

    fn ring_flows(n: usize) -> Vec<PairFlow> {
        (0..n)
            .map(|r| PairFlow {
                src: r,
                dst: (r + 1) % n,
            })
            .collect()
    }

    fn run_digest(cfg: ShardConfig, workers: usize, bytes: u64) -> (u64, ShardResult) {
        let emu = ShardedEmulator::new(cfg, ring_flows(4), |i, _| cubic_pair(i, bytes));
        let res = emu.run(SimTime::from_millis(3), workers);
        (res.stats_digest(), res)
    }

    #[test]
    fn every_flow_makes_progress() {
        let (_, res) = run_digest(small_cfg(), 1, u64::MAX);
        assert_eq!(res.sender_stats.len(), 4);
        for (i, s) in res.sender_stats.iter().enumerate() {
            assert!(s.bytes_acked > 0, "flow {i} starved");
        }
        assert!(res.events > 0);
        assert_eq!(res.rack_events.len(), 4);
        assert_eq!(res.events, res.rack_events.iter().sum::<u64>());
    }

    #[test]
    fn finite_transfers_complete() {
        let emu = ShardedEmulator::new(small_cfg(), ring_flows(4), |i, _| {
            cubic_pair(i, 300_000)
        });
        let res = emu.run(SimTime::from_millis(50), 1);
        for (i, r) in res.receiver_stats.iter().enumerate() {
            assert_eq!(r.bytes_delivered, 300_000, "flow {i}");
            assert!(res.completions[i].is_some(), "flow {i} never completed");
        }
    }

    #[test]
    fn digest_invariant_across_worker_counts() {
        let (d1, r1) = run_digest(small_cfg(), 1, u64::MAX);
        let (d2, _) = run_digest(small_cfg(), 2, u64::MAX);
        let (d4, _) = run_digest(small_cfg(), 4, u64::MAX);
        assert!(r1.total_acked() > 0);
        assert_eq!(d1, d2, "workers=2 diverged from workers=1");
        assert_eq!(d1, d4, "workers=4 diverged from workers=1");
    }

    #[test]
    fn chaos_run_is_worker_invariant() {
        let chaos = || {
            let mut cfg = small_cfg();
            cfg.faults.notify_loss = 0.05;
            cfg.faults.notify_duplicate = 0.05;
            cfg.impair.loss_rate = 0.005;
            cfg.impair.reorder_rate = 0.02;
            cfg.impair.reorder_delay = SimDuration::from_micros(120);
            cfg.clock = ClockPlan {
                offset_bound: SimDuration::from_micros(40),
                ..ClockPlan::none()
            };
            cfg.guard_band = SimDuration::from_micros(2);
            cfg
        };
        let (d1, r1) = run_digest(chaos(), 1, u64::MAX);
        let (d4, _) = run_digest(chaos(), 4, u64::MAX);
        assert!(r1.total_acked() > 0);
        assert_eq!(d1, d4, "chaos run diverged across worker counts");
    }

    #[test]
    #[should_panic(expected = "day-fate faults")]
    fn day_fate_faults_are_rejected() {
        let mut cfg = small_cfg();
        cfg.faults.link_failure = Some(crate::faults::LinkFailure {
            day: 1,
            at_fraction: 0.5,
            outage_days: 1,
        });
        let _ = ShardedEmulator::new(cfg, ring_flows(4), |i, _| cubic_pair(i, 1_000));
    }
}
