//! The general N-rack hybrid RDCN of §2.1/Fig. 1.
//!
//! The two-rack [`crate::Emulator`] reproduces Etalon's *strict
//! time-division* emulation (only one network serves the measured pair at
//! a time — their 6:1 schedule stands in for an 8-rack rotor). This
//! module models the full hybrid fabric instead:
//!
//! * every rack has an always-on EPS uplink (10 Gbps, shared by all of
//!   its outgoing pair-queues, round-robin);
//! * one OCS port per rack; a rotor schedule of `N−1` matchings connects
//!   every rack pair directly exactly once per week (demand-oblivious,
//!   [`crate::schedule::rotor`]), with reconfiguration nights between
//!   days;
//! * per destination the ToR uses the circuit when it exists, otherwise
//!   the packet network ("for a given destination, only one network is
//!   in use at a time");
//! * ToRs notify hosts per flow when their pair's circuit comes up
//!   (TDN 1) or goes away (TDN 0).
//!
//! Flows are unidirectional bulk transfers between rack pairs; each flow
//! has one sender container in the source rack and one receiver in the
//! destination rack, as in the testbed.

use crate::config::TdnParams;
use crate::notify::{NotifyConfig, NotifyModel};
use crate::schedule::rotor;
use crate::voq::{Voq, VoqConfig};
use simcore::{DetRng, EventId, EventQueue, SimDuration, SimTime};
use tcp::{ConnStats, Direction, Segment, Transport};
use wire::TdnId;

/// Configuration of the N-rack fabric.
#[derive(Debug, Clone)]
pub struct MultiRackConfig {
    /// Number of racks (even, ≥ 2).
    pub racks: usize,
    /// The always-on packet network (per-rack uplink capacity and
    /// one-way latency through the EPS core).
    pub packet: TdnParams,
    /// The circuit network (per-circuit rate and one-way latency).
    pub circuit: TdnParams,
    /// OCS day length.
    pub day_len: SimDuration,
    /// Reconfiguration night between days.
    pub night_len: SimDuration,
    /// Per-pair VOQ configuration at each source ToR.
    pub voq: VoqConfig,
    /// Notification latency model.
    pub notify: NotifyConfig,
    /// Host/rack NIC serialization rate.
    pub host_rate_bps: u64,
    /// Seed.
    pub seed: u64,
}

impl MultiRackConfig {
    /// An 8-rack fabric with the paper's §5.1 link parameters — the
    /// topology whose rotor schedule *is* the 6:1 ratio of the evaluation.
    pub fn paper_8rack() -> MultiRackConfig {
        MultiRackConfig {
            racks: 8,
            packet: TdnParams::packet_10g(),
            circuit: TdnParams::optical_100g(),
            day_len: SimDuration::from_micros(180),
            night_len: SimDuration::from_micros(20),
            voq: VoqConfig {
                cap_pkts: 16,
                ecn_threshold: None,
            },
            notify: NotifyConfig::optimized(),
            host_rate_bps: 100_000_000_000,
            seed: 1,
        }
    }
}

/// One flow between a rack pair.
#[derive(Debug, Clone, Copy)]
pub struct PairFlow {
    /// Source rack of the data.
    pub src: usize,
    /// Destination rack.
    pub dst: usize,
}

enum Ev {
    Arrive { flow: usize, to_sender: bool, seg: Segment },
    /// Serve the circuit queue of `src` (its current peer's VOQ).
    CircuitService { src: usize },
    /// Serve rack `src`'s shared EPS uplink (round-robin over pair VOQs).
    PacketService { src: usize },
    DayStart { day: u64 },
    NightStart { day: u64 },
    Notify { flow: usize, to_sender: bool, tdn: TdnId, gen: u64 },
    HostTimer { flow: usize, to_sender: bool },
    Enqueue { src: usize, dst: usize, seg: Segment },
}

/// Results of a multi-rack run.
#[derive(Debug)]
pub struct MultiRackResult {
    /// Per-flow sender stats.
    pub sender_stats: Vec<ConnStats>,
    /// Per-flow receiver stats.
    pub receiver_stats: Vec<ConnStats>,
    /// Tail drops summed over all pair VOQs.
    pub drops: u64,
    /// Events processed.
    pub events: u64,
    /// Simulated duration.
    pub duration: SimDuration,
}

impl MultiRackResult {
    /// Aggregate acknowledged bytes.
    pub fn total_acked(&self) -> u64 {
        self.sender_stats.iter().map(|s| s.bytes_acked).sum()
    }
}

/// The N-rack emulator.
pub struct MultiRackEmulator<'a> {
    cfg: MultiRackConfig,
    q: EventQueue<Ev>,
    rng: DetRng,
    notify_model: NotifyModel,
    matchings: Vec<Vec<(usize, usize)>>,
    /// Current OCS peer of each rack (None during nights).
    peer: Vec<Option<usize>>,

    flows: Vec<PairFlow>,
    senders: Vec<Box<dyn Transport + 'a>>,
    receivers: Vec<Box<dyn Transport + 'a>>,
    timer_slots: Vec<[Option<(SimTime, EventId)>; 2]>,

    /// voqs[src][dst]: per-pair queue at the source ToR.
    voqs: Vec<Vec<Voq>>,
    /// Shared EPS uplink state per rack.
    eps_busy_until: Vec<SimTime>,
    eps_pending: Vec<bool>,
    eps_rr: Vec<usize>,
    /// Circuit port state per rack.
    circuit_busy_until: Vec<SimTime>,
    circuit_pending: Vec<bool>,
    /// Host NIC per rack.
    nic_free: Vec<SimTime>,
}

impl<'a> MultiRackEmulator<'a> {
    /// Create the fabric with one (sender, receiver) pair per flow.
    pub fn new(
        cfg: MultiRackConfig,
        flows: Vec<PairFlow>,
        mut factory: impl FnMut(usize, &PairFlow) -> (Box<dyn Transport + 'a>, Box<dyn Transport + 'a>),
    ) -> Self {
        assert!(cfg.racks >= 2 && cfg.racks.is_multiple_of(2));
        for f in &flows {
            assert!(f.src != f.dst && f.src < cfg.racks && f.dst < cfg.racks);
        }
        let matchings = rotor::matchings(cfg.racks);
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            let (s, r) = factory(i, f);
            senders.push(s);
            receivers.push(r);
        }
        let voqs = (0..cfg.racks)
            .map(|s| {
                (0..cfg.racks)
                    .map(|d| Voq::new(format!("voq_{s}_{d}"), cfg.voq))
                    .collect()
            })
            .collect();
        let n = cfg.racks;
        let nf = flows.len();
        MultiRackEmulator {
            rng: DetRng::new(cfg.seed),
            notify_model: NotifyModel::new(cfg.notify),
            matchings,
            peer: vec![None; n],
            q: EventQueue::new(),
            flows,
            senders,
            receivers,
            timer_slots: vec![[None, None]; nf],
            voqs,
            eps_busy_until: vec![SimTime::ZERO; n],
            eps_pending: vec![false; n],
            eps_rr: vec![0; n],
            circuit_busy_until: vec![SimTime::ZERO; n],
            circuit_pending: vec![false; n],
            nic_free: vec![SimTime::ZERO; n],
            cfg,
        }
    }

    /// Run the fabric until `until`.
    pub fn run(mut self, until: SimTime) -> MultiRackResult {
        self.q.schedule(SimTime::ZERO, Ev::DayStart { day: 0 });
        for i in 0..self.senders.len() {
            self.flush(SimTime::ZERO, i, true);
            self.flush(SimTime::ZERO, i, false);
        }
        // Flows finish only during events that call into their
        // transports, so track doneness per touched flow instead of
        // scanning every sender after every event.
        let mut done = vec![false; self.senders.len()];
        let mut done_count = 0;
        for (i, s) in self.senders.iter().enumerate() {
            if s.is_done() {
                done[i] = true;
                done_count += 1;
            }
        }
        while let Some((now, ev)) = self.q.pop() {
            if now > until {
                break;
            }
            let touched = match &ev {
                Ev::Arrive { flow, .. }
                | Ev::Notify { flow, .. }
                | Ev::HostTimer { flow, .. } => Some(*flow),
                _ => None,
            };
            match ev {
                Ev::Arrive { flow, to_sender, seg } => {
                    self.host(flow, to_sender).on_segment(now, &seg);
                    self.flush(now, flow, to_sender);
                    self.flush(now, flow, !to_sender);
                }
                Ev::Enqueue { src, dst, seg } => {
                    if self.voqs[src][dst].enqueue(now, seg) {
                        self.kick(now, src, dst);
                    }
                }
                Ev::CircuitService { src } => {
                    self.circuit_pending[src] = false;
                    self.circuit_service(now, src);
                }
                Ev::PacketService { src } => {
                    self.eps_pending[src] = false;
                    self.packet_service(now, src);
                }
                Ev::DayStart { day } => self.on_day_start(now, day),
                Ev::NightStart { day } => self.on_night_start(now, day),
                Ev::Notify { flow, to_sender, tdn, gen } => {
                    self.host(flow, to_sender).on_tdn_notification(now, tdn, gen);
                    self.flush(now, flow, to_sender);
                }
                Ev::HostTimer { flow, to_sender } => {
                    self.timer_slots[flow][usize::from(to_sender)] = None;
                    self.host(flow, to_sender).on_timer(now);
                    self.flush(now, flow, to_sender);
                }
            }
            if let Some(flow) = touched {
                if !done[flow] && self.senders[flow].is_done() {
                    done[flow] = true;
                    done_count += 1;
                }
            }
            if done_count == self.senders.len() {
                break;
            }
        }
        crate::emulator::EVENTS_TOTAL
            .fetch_add(self.q.events_processed(), std::sync::atomic::Ordering::Relaxed);
        MultiRackResult {
            sender_stats: self.senders.iter().map(|s| *s.stats()).collect(),
            receiver_stats: self.receivers.iter().map(|r| *r.stats()).collect(),
            drops: self
                .voqs
                .iter()
                .flat_map(|row| row.iter().map(|v| v.drops))
                .sum(),
            events: self.q.events_processed(),
            duration: self.q.now().saturating_since(SimTime::ZERO),
        }
    }

    fn host(&mut self, flow: usize, to_sender: bool) -> &mut (dyn Transport + 'a) {
        if to_sender {
            self.senders[flow].as_mut()
        } else {
            self.receivers[flow].as_mut()
        }
    }

    /// The (src, dst) racks a segment travels between, given its flow and
    /// direction.
    fn seg_racks(&self, flow: usize, dir: Direction) -> (usize, usize) {
        let f = self.flows[flow];
        match dir {
            Direction::DataPath => (f.src, f.dst),
            Direction::AckPath => (f.dst, f.src),
        }
    }

    fn flush(&mut self, now: SimTime, flow: usize, sender_side: bool) {
        loop {
            let seg = if sender_side {
                self.senders[flow].poll_send(now)
            } else {
                self.receivers[flow].poll_send(now)
            };
            let Some(seg) = seg else { break };
            let (src, dst) = self.seg_racks(flow, seg.dir);
            // Rack NIC serialization, as in the two-rack model.
            let start = self.nic_free[src].max(now);
            let done = start
                + SimDuration::serialization(u64::from(seg.wire_size()), self.cfg.host_rate_bps);
            self.nic_free[src] = done;
            self.q.schedule(done, Ev::Enqueue { src, dst, seg });
        }
        let want = if sender_side {
            self.senders[flow].next_timer()
        } else {
            self.receivers[flow].next_timer()
        }
        .map(|t| t.max(now));
        let slot = &mut self.timer_slots[flow][usize::from(sender_side)];
        if want != slot.map(|(t, _)| t) {
            if let Some((_, id)) = slot.take() {
                self.q.cancel(id);
            }
            if let Some(t) = want {
                let id = self.q.schedule(
                    t,
                    Ev::HostTimer {
                        flow,
                        to_sender: sender_side,
                    },
                );
                *slot = Some((t, id));
            }
        }
    }

    /// New data arrived for (src, dst): wake whichever service path
    /// currently owns that destination.
    fn kick(&mut self, now: SimTime, src: usize, dst: usize) {
        if self.peer[src] == Some(dst) {
            if !self.circuit_pending[src] {
                let at = self.circuit_busy_until[src].max(now);
                self.q.schedule(at, Ev::CircuitService { src });
                self.circuit_pending[src] = true;
            }
        } else if !self.eps_pending[src] {
            let at = self.eps_busy_until[src].max(now);
            self.q.schedule(at, Ev::PacketService { src });
            self.eps_pending[src] = true;
        }
    }

    /// Serve the circuit: drain the VOQ toward the connected peer.
    fn circuit_service(&mut self, now: SimTime, src: usize) {
        let Some(dst) = self.peer[src] else { return };
        let Some(seg) = self.voqs[src][dst].dequeue_eligible(now, Some(TdnId(1))) else {
            return;
        };
        let p = self.cfg.circuit;
        let ser = SimDuration::serialization(u64::from(seg.wire_size()), p.rate_bps);
        self.deliver(now + ser + p.one_way, seg);
        self.circuit_busy_until[src] = now + ser;
        if self.voqs[src][dst].has_eligible(Some(TdnId(1))) {
            self.q.schedule(now + ser, Ev::CircuitService { src });
            self.circuit_pending[src] = true;
        }
    }

    /// Serve the shared EPS uplink: round-robin over the rack's pair
    /// queues whose destination has no circuit right now.
    fn packet_service(&mut self, now: SimTime, src: usize) {
        let n = self.cfg.racks;
        let start = self.eps_rr[src];
        let mut chosen = None;
        for k in 0..n {
            let dst = (start + k) % n;
            if dst == src || self.peer[src] == Some(dst) {
                continue; // circuit traffic does not ride the EPS
            }
            if self.voqs[src][dst].has_eligible(Some(TdnId(0))) {
                chosen = Some(dst);
                break;
            }
        }
        let Some(dst) = chosen else { return };
        self.eps_rr[src] = (dst + 1) % n;
        let seg = self.voqs[src][dst]
            .dequeue_eligible(now, Some(TdnId(0)))
            .expect("has_eligible checked");
        let p = self.cfg.packet;
        let ser = SimDuration::serialization(u64::from(seg.wire_size()), p.rate_bps);
        let jitter = match p.jitter {
            Some((prob, mean)) if self.rng.chance(prob) => {
                SimDuration::from_nanos(self.rng.exponential(mean.as_nanos() as f64) as u64)
            }
            _ => SimDuration::ZERO,
        };
        self.deliver(now + ser + p.one_way + jitter, seg);
        self.eps_busy_until[src] = now + ser;
        // More EPS work for this rack?
        let more = (0..n).any(|d| {
            d != src && self.peer[src] != Some(d) && self.voqs[src][d].has_eligible(Some(TdnId(0)))
        });
        if more {
            self.q.schedule(now + ser, Ev::PacketService { src });
            self.eps_pending[src] = true;
        }
    }

    fn deliver(&mut self, at: SimTime, seg: Segment) {
        let flow = seg.flow.0 as usize;
        let to_sender = seg.dir == Direction::AckPath;
        self.q.schedule(at, Ev::Arrive { flow, to_sender, seg });
    }

    fn on_day_start(&mut self, now: SimTime, day: u64) {
        let m = &self.matchings[(day % self.matchings.len() as u64) as usize];
        let mut peer = vec![None; self.cfg.racks];
        for &(a, b) in m {
            peer[a] = Some(b);
            peer[b] = Some(a);
        }
        self.peer = peer;
        // Notify flows whose pair's connectivity changed; every flow gets
        // a notification each day (circuit up -> TDN 1, otherwise TDN 0),
        // mirroring the ToR broadcast.
        for i in 0..self.flows.len() {
            let f = self.flows[i];
            let tdn = if self.peer[f.src] == Some(f.dst) {
                TdnId(1)
            } else {
                TdnId(0)
            };
            for to_sender in [true, false] {
                let lat = self.notify_model.sample(&mut self.rng, i).total();
                self.q
                    .schedule(now + lat, Ev::Notify { flow: i, to_sender, tdn, gen: day });
            }
        }
        // Kick services: circuits for the new matching, EPS for the rest.
        for src in 0..self.cfg.racks {
            if let Some(dst) = self.peer[src] {
                if self.voqs[src][dst].has_eligible(Some(TdnId(1))) && !self.circuit_pending[src] {
                    let at = self.circuit_busy_until[src].max(now);
                    self.q.schedule(at, Ev::CircuitService { src });
                    self.circuit_pending[src] = true;
                }
            }
            if !self.eps_pending[src] {
                let at = self.eps_busy_until[src].max(now);
                self.q.schedule(at, Ev::PacketService { src });
                self.eps_pending[src] = true;
            }
        }
        self.q
            .schedule(now + self.cfg.day_len, Ev::NightStart { day });
    }

    fn on_night_start(&mut self, now: SimTime, day: u64) {
        // Circuits go dark while the OCS reconfigures; the EPS keeps
        // running (the general hybrid model — unlike the strict-TDM
        // two-rack emulation).
        self.peer = vec![None; self.cfg.racks];
        self.q
            .schedule(now + self.cfg.night_len, Ev::DayStart { day: day + 1 });
        // Traffic that was circuit-bound now needs the EPS.
        for src in 0..self.cfg.racks {
            if !self.eps_pending[src] {
                self.q.schedule(now, Ev::PacketService { src });
                self.eps_pending[src] = true;
            }
        }
    }
}
