//! Analytic reference curves for the sequence graphs: the "optimal" line
//! (an idealized TCP that fully uses whichever TDN is up) and the
//! "packet only" line (the packet network's rate with no blackouts),
//! exactly as defined in §2.2/§5.2.

use crate::config::NetConfig;
use simcore::{SimDuration, SimTime};

/// Bytes an idealized flow transfers by time `t`: full rate of the active
/// TDN during days, nothing during nights.
pub fn optimal_bytes(cfg: &NetConfig, t: SimTime) -> f64 {
    let sched = &cfg.schedule;
    let slot = sched.slot_len().as_nanos();
    let day = sched.day_len.as_nanos();
    let mut bytes = 0.0;
    let mut day_no = 0u64;
    loop {
        let start = day_no * slot;
        if start >= t.as_nanos() {
            break;
        }
        let rate = cfg.tdn(sched.day_tdn(day_no)).rate_bps as f64 / 8e9; // bytes per ns
        let active_end = start + day;
        let covered = t.as_nanos().min(active_end).saturating_sub(start);
        bytes += covered as f64 * rate;
        day_no += 1;
    }
    bytes
}

/// Bytes transferred by time `t` using only the packet network at its full
/// rate continuously (no blackout penalty — the flow never leaves the
/// always-up packet fabric).
pub fn packet_only_bytes(cfg: &NetConfig, t: SimTime) -> f64 {
    let rate = cfg.tdn(wire::TdnId(0)).rate_bps as f64 / 8e9;
    t.as_nanos() as f64 * rate
}

/// Mean optimal rate in bits per second over whole weeks.
pub fn optimal_rate_bps(cfg: &NetConfig) -> f64 {
    let week = cfg.schedule.week_len();
    let bytes = optimal_bytes(cfg, SimTime::ZERO + week);
    bytes * 8.0 / week.as_secs_f64()
}

/// Sample a reference curve on a fixed grid, for printing next to
/// measured series.
pub fn sample_curve(
    f: impl Fn(SimTime) -> f64,
    start: SimTime,
    end: SimTime,
    step: SimDuration,
) -> Vec<f64> {
    let mut out = Vec::new();
    let mut t = start;
    let base = f(start);
    while t < end {
        out.push(f(t) - base);
        t += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_one_week() {
        let cfg = NetConfig::paper_baseline();
        let week_end = SimTime::ZERO + cfg.schedule.week_len();
        let bytes = optimal_bytes(&cfg, week_end);
        // 6 packet days * 180us * 1.25 B/ns + 1 optical day * 180us * 12.5
        // = 1_350_000 + 2_250_000 = 3.6 MB.
        assert!((bytes - 3_600_000.0).abs() < 1.0, "got {bytes}");
    }

    #[test]
    fn optimal_mid_day_partial() {
        let cfg = NetConfig::paper_baseline();
        // 90us into the first (packet) day: 90_000ns * 1.25 B/ns.
        let b = optimal_bytes(&cfg, SimTime::from_micros(90));
        assert!((b - 112_500.0).abs() < 1.0);
        // Nights contribute nothing: 180us and 200us give the same bytes.
        let day_end = optimal_bytes(&cfg, SimTime::from_micros(180));
        let night_end = optimal_bytes(&cfg, SimTime::from_micros(200));
        assert_eq!(day_end, night_end);
    }

    #[test]
    fn packet_only_ignores_blackouts() {
        let cfg = NetConfig::paper_baseline();
        let b = packet_only_bytes(&cfg, SimTime::from_micros(200));
        assert!((b - 250_000.0).abs() < 1.0, "10G for 200us = 250kB");
    }

    #[test]
    fn optimal_average_rate_headline() {
        let cfg = NetConfig::paper_baseline();
        let rate = optimal_rate_bps(&cfg);
        // 3.6 MB per 1400us ≈ 20.57 Gbps.
        assert!(
            (rate - 20.57e9).abs() < 0.05e9,
            "optimal mean rate {rate:.3e}"
        );
        // The optical capacity roughly doubles what packet-only achieves —
        // the "potential gain" the paper describes.
        assert!(rate / 10e9 > 2.0);
    }

    #[test]
    fn latency_only_optimal_close_to_packet_only() {
        // With equal bandwidth, optimal < packet-only because of blackout
        // periods (Fig. 9's observation).
        let cfg = NetConfig::latency_only(100_000_000_000);
        let t = SimTime::ZERO + cfg.schedule.week_len();
        let opt = optimal_bytes(&cfg, t);
        let pkt = packet_only_bytes(&cfg, t);
        assert!(opt < pkt);
        assert!(opt / pkt > 0.85, "only the 10% duty cycle separates them");
    }

    #[test]
    fn sample_curve_zero_based() {
        let cfg = NetConfig::paper_baseline();
        let v = sample_curve(
            |t| optimal_bytes(&cfg, t),
            SimTime::from_micros(1400),
            SimTime::from_micros(1600),
            SimDuration::from_micros(100),
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], 0.0, "curves re-zeroed at the window start");
        assert!(v[1] > 0.0);
    }
}
