//! The ToR virtual output queue (VOQ).
//!
//! Etalon emulates one VOQ per rack per direction (§5.1); it tail-drops at
//! a configurable cap (16 jumbo frames in the baseline), optionally marks
//! ECN above a threshold (DCTCP), and supports runtime resizing (the
//! "retcpdyn" variant enlarges it to 50 packets 150 µs before a circuit
//! day). MPTCP subflow segments are *pinned* to a TDN and may only be
//! serviced while that TDN is active; the service scan skips over them
//! otherwise, preserving FIFO order within each pin class.

use simcore::{Gauge, SimTime};
use tcp::Segment;
use wire::{Ecn, TdnId};
use std::collections::VecDeque;

/// VOQ configuration.
#[derive(Debug, Clone, Copy)]
pub struct VoqConfig {
    /// Capacity in packets (tail drop beyond).
    pub cap_pkts: usize,
    /// ECN marking threshold in packets (mark CE when occupancy at
    /// enqueue is at or above this), if ECN is in use.
    pub ecn_threshold: Option<usize>,
}

impl Default for VoqConfig {
    fn default() -> Self {
        VoqConfig {
            cap_pkts: 16,
            ecn_threshold: Some(8),
        }
    }
}

/// One direction's virtual output queue.
#[derive(Debug)]
pub struct Voq {
    q: VecDeque<Segment>,
    cap: usize,
    base_cap: usize,
    ecn_k: Option<usize>,
    /// Occupancy per pin class (index 0 = unpinned, 1 + tdn = pinned).
    /// Kept in sync with `q` so the per-class cap/ECN check at enqueue
    /// and the eligibility test are O(1) instead of a queue scan.
    class_len: Vec<usize>,
    /// Total pinned segments queued; zero means every segment is
    /// eligible and dequeue can take the head without scanning.
    pinned_total: usize,
    /// Occupancy over time, the raw series behind Figs. 7b/8b/13/14.
    gauge: Gauge,
    /// Whether occupancy changes append to the gauge. The figure
    /// pipelines need the series; the sharded multirack engine doesn't
    /// read it, and skipping the per-op append keeps its hot path free
    /// of unbounded trace growth.
    traced: bool,
    /// Tail drops.
    pub drops: u64,
    /// Total enqueues accepted.
    pub enqueued: u64,
    /// CE marks applied.
    pub ce_marks: u64,
}

/// Pin-class index: unpinned traffic is class 0, TDN `t` is class `1+t`.
fn class_of(pin: Option<TdnId>) -> usize {
    pin.map_or(0, |t| 1 + t.0 as usize)
}

impl Voq {
    /// New VOQ with the given config; `name` labels its trace series.
    pub fn new(name: impl Into<String>, cfg: VoqConfig) -> Self {
        Voq {
            q: VecDeque::new(),
            cap: cfg.cap_pkts,
            base_cap: cfg.cap_pkts,
            ecn_k: cfg.ecn_threshold,
            class_len: Vec::new(),
            pinned_total: 0,
            gauge: Gauge::new(name, 0.0),
            traced: true,
            drops: 0,
            enqueued: 0,
            ce_marks: 0,
        }
    }

    /// New VOQ that keeps all counters (drops/enqueued/ce_marks — the
    /// digest-folded state) but records no occupancy trace. Queue
    /// *behaviour* is identical to [`Voq::new`]; only the `series()`
    /// observation is absent.
    pub fn untraced(cfg: VoqConfig) -> Self {
        let mut v = Voq::new(String::new(), cfg);
        v.traced = false;
        v
    }

    /// Current occupancy in packets.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Current capacity in packets.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Resize at runtime (retcpdyn). Shrinking below the current
    /// occupancy does not drop queued packets — they drain normally, the
    /// cap only gates new arrivals (matching Etalon's behaviour).
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap;
    }

    /// Restore the configured base capacity.
    pub fn reset_cap(&mut self) {
        self.cap = self.base_cap;
    }

    /// Offer a segment. Returns `false` on tail drop.
    ///
    /// Capacity (and the ECN threshold) applies *per pin class*: pinned
    /// traffic physically queues at its own ToR uplink port (EPS vs OCS),
    /// so TDN-pinned MPTCP subflows cannot starve each other or unpinned
    /// traffic out of buffer space. Single-path variants (all unpinned)
    /// see exactly one 16-packet queue.
    pub fn enqueue(&mut self, now: SimTime, mut seg: Segment) -> bool {
        let class = class_of(seg.pin);
        if class >= self.class_len.len() {
            self.class_len.resize(class + 1, 0);
        }
        let class_len = self.class_len[class];
        if class_len >= self.cap {
            self.drops += 1;
            return false;
        }
        if let Some(k) = self.ecn_k {
            if class_len >= k && seg.ecn.is_capable() {
                seg.ecn = Ecn::Ce;
                self.ce_marks += 1;
            }
        }
        self.class_len[class] += 1;
        if seg.pin.is_some() {
            self.pinned_total += 1;
        }
        self.q.push_back(seg);
        self.enqueued += 1;
        if self.traced {
            self.gauge.set(now, self.q.len() as f64);
        }
        true
    }

    /// Dequeue the first segment eligible under `active`: unpinned
    /// segments are always eligible; pinned segments only when their pin
    /// matches the active TDN. Returns `None` during blackouts
    /// (`active = None` never services anything: time division is strict,
    /// §2.1).
    pub fn dequeue_eligible(&mut self, now: SimTime, active: Option<TdnId>) -> Option<Segment> {
        let active = active?;
        if !self.has_eligible(Some(active)) {
            return None;
        }
        let seg = if self.pinned_total == 0 {
            // All-unpinned queue (the single-path variants): the head is
            // always eligible, no scan needed.
            self.q.pop_front().expect("has_eligible implies non-empty")
        } else {
            let idx = self
                .q
                .iter()
                .position(|s| s.pin.is_none_or(|p| p == active))
                .expect("class counts said an eligible segment exists");
            self.q.remove(idx).expect("index in range")
        };
        self.class_len[class_of(seg.pin)] -= 1;
        if seg.pin.is_some() {
            self.pinned_total -= 1;
        }
        if self.traced {
            self.gauge.set(now, self.q.len() as f64);
        }
        Some(seg)
    }

    /// Whether any segment is eligible under `active`.
    pub fn has_eligible(&self, active: Option<TdnId>) -> bool {
        match active {
            None => false,
            Some(a) => {
                self.class_len.first().is_some_and(|&n| n > 0)
                    || self.class_len.get(class_of(Some(a))).is_some_and(|&n| n > 0)
            }
        }
    }

    /// The occupancy trace.
    pub fn series(&self) -> &simcore::TimeSeries {
        self.gauge.series()
    }

    /// Consume, returning the occupancy trace.
    pub fn into_series(self) -> simcore::TimeSeries {
        self.gauge.into_series()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp::{Direction, FlowId};

    fn seg(pin: Option<u8>, ecn: bool) -> Segment {
        let mut s = Segment::new(FlowId(0), Direction::DataPath);
        s.len = 1000;
        s.ecn = if ecn { Ecn::Ect0 } else { Ecn::NotEct };
        s.pin = pin.map(TdnId);
        s
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn fifo_order_unpinned() {
        let mut v = Voq::new("q", VoqConfig::default());
        for i in 0..3u32 {
            let mut s = seg(None, false);
            s.seq = tcp::SeqNum(i * 1000);
            assert!(v.enqueue(t(i as u64), s));
        }
        assert_eq!(v.len(), 3);
        let a = v.dequeue_eligible(t(5), Some(TdnId(0))).unwrap();
        assert_eq!(a.seq, tcp::SeqNum(0));
        let b = v.dequeue_eligible(t(6), Some(TdnId(1))).unwrap();
        assert_eq!(b.seq, tcp::SeqNum(1000), "unpinned serves on any TDN");
    }

    #[test]
    fn tail_drop_at_cap() {
        let mut v = Voq::new(
            "q",
            VoqConfig {
                cap_pkts: 2,
                ecn_threshold: None,
            },
        );
        assert!(v.enqueue(t(0), seg(None, false)));
        assert!(v.enqueue(t(0), seg(None, false)));
        assert!(!v.enqueue(t(0), seg(None, false)), "third is dropped");
        assert_eq!(v.drops, 1);
        assert_eq!(v.enqueued, 2);
    }

    #[test]
    fn ecn_marking_above_threshold() {
        let mut v = Voq::new(
            "q",
            VoqConfig {
                cap_pkts: 16,
                ecn_threshold: Some(2),
            },
        );
        v.enqueue(t(0), seg(None, true));
        v.enqueue(t(0), seg(None, true));
        v.enqueue(t(0), seg(None, true)); // occupancy 2 at enqueue -> mark
        assert_eq!(v.ce_marks, 1);
        v.dequeue_eligible(t(1), Some(TdnId(0)));
        v.dequeue_eligible(t(1), Some(TdnId(0)));
        let marked = v.dequeue_eligible(t(1), Some(TdnId(0))).unwrap();
        assert_eq!(marked.ecn, Ecn::Ce);
    }

    #[test]
    fn not_ect_never_marked() {
        let mut v = Voq::new(
            "q",
            VoqConfig {
                cap_pkts: 16,
                ecn_threshold: Some(0),
            },
        );
        v.enqueue(t(0), seg(None, false));
        let s = v.dequeue_eligible(t(1), Some(TdnId(0))).unwrap();
        assert_eq!(s.ecn, Ecn::NotEct);
        assert_eq!(v.ce_marks, 0);
    }

    #[test]
    fn pinned_segments_wait_for_their_tdn() {
        let mut v = Voq::new("q", VoqConfig::default());
        v.enqueue(t(0), seg(Some(1), false)); // optical-pinned at head
        v.enqueue(t(0), seg(Some(0), false));
        // Packet day: the head is ineligible, the second serves.
        let s = v.dequeue_eligible(t(1), Some(TdnId(0))).unwrap();
        assert_eq!(s.pin, Some(TdnId(0)));
        assert_eq!(v.len(), 1);
        // Still packet day: nothing eligible.
        assert!(v.dequeue_eligible(t(2), Some(TdnId(0))).is_none());
        assert!(v.has_eligible(Some(TdnId(1))));
        let s = v.dequeue_eligible(t(3), Some(TdnId(1))).unwrap();
        assert_eq!(s.pin, Some(TdnId(1)));
    }

    #[test]
    fn blackout_services_nothing() {
        let mut v = Voq::new("q", VoqConfig::default());
        v.enqueue(t(0), seg(None, false));
        assert!(v.dequeue_eligible(t(1), None).is_none());
        assert!(!v.has_eligible(None));
        assert_eq!(v.len(), 1, "segment held through the night");
    }

    #[test]
    fn runtime_resize() {
        let mut v = Voq::new(
            "q",
            VoqConfig {
                cap_pkts: 2,
                ecn_threshold: None,
            },
        );
        v.enqueue(t(0), seg(None, false));
        v.enqueue(t(0), seg(None, false));
        assert!(!v.enqueue(t(0), seg(None, false)));
        v.set_cap(50);
        assert!(v.enqueue(t(1), seg(None, false)), "enlarged cap admits");
        v.reset_cap();
        assert_eq!(v.cap(), 2);
        // Over-occupied after shrink: drains without dropping queued.
        assert_eq!(v.len(), 3);
        assert!(!v.enqueue(t(2), seg(None, false)), "but admits nothing new");
    }

    #[test]
    fn gauge_tracks_occupancy() {
        let mut v = Voq::new("q", VoqConfig::default());
        v.enqueue(t(1), seg(None, false));
        v.enqueue(t(2), seg(None, false));
        v.dequeue_eligible(t(3), Some(TdnId(0)));
        let pts = v.series().points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1].1, 2.0);
        assert_eq!(pts[2].1, 1.0);
    }
}
