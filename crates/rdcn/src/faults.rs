//! Deterministic fault injection for the emulated RDCN.
//!
//! TDTCP's premise is that hosts track the network's time-division state
//! via ToR notifications (§3.2, §5.4) — so the interesting question is
//! what happens when that signal is late, lost, duplicated, or the
//! optical day itself fails mid-cycle. A [`FaultPlan`] declares the
//! adversity; a [`FaultInjector`] executes it against its own
//! [`DetRng`] stream (forked from the run seed under a fixed label), so
//! a `(seed, plan)` pair fully determines the injected-event sequence
//! and faulted runs stay digest-stable like clean ones.
//!
//! Fault classes:
//! - **Notification faults**: drop, extra delay, and duplication of TDN
//!   change notifications. A duplicate is re-delivered with a lag of up
//!   to two schedule slots, which also produces *reordering* — the
//!   duplicate of day N can arrive after day N+1's notification.
//! - **Link failure**: an OCS circuit day truncated mid-day (the light
//!   path drops while packets are in flight) followed by an outage
//!   window during which circuit days simply never come up. Failures
//!   are unannounced: the ToR sends no notifications for absent days,
//!   so hosts discover the outage only through their watchdogs.
//! - **Schedule freeze**: the rotor stops advancing for a window of
//!   days, replaying one day's TDN (a stuck-rotor fault).
//! - **EPS burst**: a window of random drop/corruption at ToR ingress
//!   (corrupted segments fail their checksum at delivery and are
//!   discarded, so both manifest as loss with distinct counters).

use crate::statfold::{self, InjectorStats, LogEvent};
use simcore::{DetRng, SimDuration, SimTime};
use testkit::Digest;
use wire::TdnId;

/// A mid-day OCS circuit failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFailure {
    /// Global day number of the circuit day that fails (must map to the
    /// circuit TDN for the fault to trigger).
    pub day: u64,
    /// Fraction of the day length after which the circuit drops
    /// (clamped to `[0, 1]`).
    pub at_fraction: f64,
    /// Outage length in day-slots: any circuit day `d` with
    /// `day < d < day + outage_days` never comes up at all.
    pub outage_days: u64,
}

/// A stuck rotor: the schedule replays `from_day`'s TDN for `days`
/// consecutive days.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleFreeze {
    /// First frozen day.
    pub from_day: u64,
    /// Number of days the rotor stays stuck.
    pub days: u64,
}

/// A burst of random drop/corruption applied at ToR ingress.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsBurst {
    /// Burst window start.
    pub start: SimTime,
    /// Burst window length.
    pub len: SimDuration,
    /// Per-segment drop probability within the window.
    pub drop_rate: f64,
    /// Per-segment corruption probability within the window (checked
    /// after the drop draw; corrupted segments are discarded too).
    pub corrupt_rate: f64,
}

/// Declarative description of the adversity to inject into a run. The
/// default plan injects nothing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability that a TDN-change notification is silently dropped.
    pub notify_loss: f64,
    /// With probability `.0`, add an exponentially distributed extra
    /// delivery delay of mean `.1` to a notification.
    pub notify_extra_delay: Option<(f64, SimDuration)>,
    /// Probability that a notification is delivered twice; the duplicate
    /// lags the original by up to ~2 schedule slots (so it can arrive
    /// out of order with the next day's notification).
    pub notify_duplicate: f64,
    /// Mid-day OCS circuit failure plus outage window.
    pub link_failure: Option<LinkFailure>,
    /// Stuck-rotor schedule freeze.
    pub freeze: Option<ScheduleFreeze>,
    /// ToR-ingress drop/corruption burst.
    pub eps_burst: Option<EpsBurst>,
}

impl FaultPlan {
    /// A plan that injects nothing (`Default`).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan that only drops notifications at `rate`.
    pub fn notification_loss(rate: f64) -> FaultPlan {
        FaultPlan {
            notify_loss: rate,
            ..FaultPlan::default()
        }
    }

    /// Whether the plan injects anything at all.
    pub fn is_none(&self) -> bool {
        *self == FaultPlan::default()
    }
}

/// Counters of every fault actually injected during a run. All monotone;
/// digested into `RunResult::stats_digest`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Notifications silently dropped.
    pub notifications_dropped: u64,
    /// Notifications delivered with injected extra delay.
    pub notifications_delayed: u64,
    /// Notifications delivered twice.
    pub notifications_duplicated: u64,
    /// Circuit days truncated mid-day.
    pub days_truncated: u64,
    /// Circuit days that never came up during an outage window.
    pub days_absent: u64,
    /// Days served with a frozen (replayed) TDN.
    pub days_frozen: u64,
    /// Segments dropped by the ingress burst.
    pub eps_drops: u64,
    /// Segments corrupted (and discarded) by the ingress burst.
    pub eps_corruptions: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        let FaultStats {
            notifications_dropped,
            notifications_delayed,
            notifications_duplicated,
            days_truncated,
            days_absent,
            days_frozen,
            eps_drops,
            eps_corruptions,
        } = *self;
        notifications_dropped
            + notifications_delayed
            + notifications_duplicated
            + days_truncated
            + days_absent
            + days_frozen
            + eps_drops
            + eps_corruptions
    }

    /// Feed every counter into `d` in declaration order.
    pub fn write_digest(&self, d: &mut Digest) {
        let FaultStats {
            notifications_dropped,
            notifications_delayed,
            notifications_duplicated,
            days_truncated,
            days_absent,
            days_frozen,
            eps_drops,
            eps_corruptions,
        } = *self;
        for v in [
            notifications_dropped,
            notifications_delayed,
            notifications_duplicated,
            days_truncated,
            days_absent,
            days_frozen,
            eps_drops,
            eps_corruptions,
        ] {
            d.write_u64(v);
        }
    }
}

impl InjectorStats for FaultStats {
    fn total(&self) -> u64 {
        FaultStats::total(self)
    }
    fn write_digest(&self, d: &mut Digest) {
        FaultStats::write_digest(self, d)
    }
}

/// One concrete injected fault, recorded in order of injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// A notification was dropped.
    NotifyDropped {
        /// Day whose notification was lost.
        day: u64,
        /// Flow index.
        flow: u32,
        /// Endpoint side (0 = sender rack, 1 = receiver rack).
        side: u8,
    },
    /// A notification picked up injected extra delay.
    NotifyDelayed {
        /// Day whose notification was delayed.
        day: u64,
        /// Flow index.
        flow: u32,
        /// Endpoint side.
        side: u8,
        /// Injected extra delay in nanoseconds.
        extra_ns: u64,
    },
    /// A notification was delivered twice.
    NotifyDuplicated {
        /// Day whose notification was duplicated.
        day: u64,
        /// Flow index.
        flow: u32,
        /// Endpoint side.
        side: u8,
        /// Duplicate's lag behind the original in nanoseconds.
        lag_ns: u64,
    },
    /// A circuit day was truncated mid-day.
    DayTruncated {
        /// The truncated day.
        day: u64,
    },
    /// A circuit day never came up (outage window).
    DayAbsent {
        /// The absent day.
        day: u64,
    },
    /// A day was served with a frozen (replayed) TDN.
    DayFrozen {
        /// The frozen day.
        day: u64,
    },
    /// A segment was dropped at ToR ingress.
    EpsDrop {
        /// Simulated time of the drop in nanoseconds.
        at_ns: u64,
    },
    /// A segment was corrupted (and discarded) at ToR ingress.
    EpsCorrupt {
        /// Simulated time of the corruption in nanoseconds.
        at_ns: u64,
    },
}

impl LogEvent for InjectedFault {
    fn write_digest(&self, d: &mut Digest) {
        match *self {
            InjectedFault::NotifyDropped { day, flow, side } => {
                d.write_u64(1).write_u64(day).write_u32(flow);
                d.write_u64(u64::from(side));
            }
            InjectedFault::NotifyDelayed {
                day,
                flow,
                side,
                extra_ns,
            } => {
                d.write_u64(2).write_u64(day).write_u32(flow);
                d.write_u64(u64::from(side)).write_u64(extra_ns);
            }
            InjectedFault::NotifyDuplicated {
                day,
                flow,
                side,
                lag_ns,
            } => {
                d.write_u64(3).write_u64(day).write_u32(flow);
                d.write_u64(u64::from(side)).write_u64(lag_ns);
            }
            InjectedFault::DayTruncated { day } => {
                d.write_u64(4).write_u64(day);
            }
            InjectedFault::DayAbsent { day } => {
                d.write_u64(5).write_u64(day);
            }
            InjectedFault::DayFrozen { day } => {
                d.write_u64(6).write_u64(day);
            }
            InjectedFault::EpsDrop { at_ns } => {
                d.write_u64(7).write_u64(at_ns);
            }
            InjectedFault::EpsCorrupt { at_ns } => {
                d.write_u64(8).write_u64(at_ns);
            }
        }
    }
}

/// The injector's decision for one notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyVerdict {
    /// Silently dropped.
    Drop,
    /// Delivered (possibly late, possibly twice).
    Deliver {
        /// Extra delivery delay beyond the latency model's sample.
        extra: SimDuration,
        /// If set, deliver a second copy this much after the original.
        duplicate: Option<SimDuration>,
    },
}

/// What becomes of one scheduled day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DayFate {
    /// The day proceeds normally.
    Normal,
    /// The day starts but the link fails after this fraction of it.
    Truncated(f64),
    /// The day never comes up; no notifications are sent.
    Absent,
}

/// The injector's decision for one segment at ToR ingress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpsVerdict {
    /// Forward normally.
    Pass,
    /// Drop at ingress.
    Drop,
    /// Corrupt; the segment fails its checksum downstream and is
    /// discarded.
    Corrupt,
}

/// Executes a [`FaultPlan`] against a dedicated RNG stream and records
/// what was injected.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: DetRng,
    stats: FaultStats,
    log: Vec<InjectedFault>,
}

/// The fixed fork label carving the fault stream out of a run's seed;
/// keeps the main emulator stream identical whether or not a plan is
/// attached.
pub const FAULT_STREAM_LABEL: u64 = 0xFA17;

impl FaultInjector {
    /// An injector for `plan` drawing from `rng` (conventionally
    /// `run_rng.fork(FAULT_STREAM_LABEL)`).
    pub fn new(plan: FaultPlan, rng: DetRng) -> Self {
        FaultInjector {
            plan,
            rng,
            stats: FaultStats::default(),
            log: Vec::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// The injected-event log, in injection order (capped at
    /// [`statfold::LOG_CAP`] entries; counters keep counting past the
    /// cap).
    pub fn log(&self) -> &[InjectedFault] {
        &self.log
    }

    /// Digest of the injected-event sequence plus the counters — the
    /// object of the `FaultPlan` determinism property.
    pub fn log_digest(&self) -> u64 {
        statfold::log_digest(&self.log, &self.stats)
    }

    fn push(&mut self, ev: InjectedFault) {
        statfold::push_capped(&mut self.log, ev);
    }

    /// Decide the fate of the notification for (`day`, `flow`, `side`).
    pub fn on_notify(&mut self, day: u64, flow: usize, side: u8) -> NotifyVerdict {
        let flow = flow as u32;
        if self.plan.notify_loss > 0.0 && self.rng.chance(self.plan.notify_loss) {
            self.stats.notifications_dropped += 1;
            self.push(InjectedFault::NotifyDropped { day, flow, side });
            return NotifyVerdict::Drop;
        }
        let mut extra = SimDuration::ZERO;
        if let Some((p, mean)) = self.plan.notify_extra_delay {
            if p > 0.0 && self.rng.chance(p) {
                extra =
                    SimDuration::from_nanos(self.rng.exponential(mean.as_nanos() as f64) as u64);
                self.stats.notifications_delayed += 1;
                self.push(InjectedFault::NotifyDelayed {
                    day,
                    flow,
                    side,
                    extra_ns: extra.as_nanos(),
                });
            }
        }
        let duplicate = if self.plan.notify_duplicate > 0.0
            && self.rng.chance(self.plan.notify_duplicate)
        {
            // Lag up to ~2 hybrid-schedule slots: duplicates routinely
            // arrive after the *next* day's notification, exercising the
            // endpoint's out-of-order (stale-generation) path.
            let lag = SimDuration::from_nanos(self.rng.gen_range(1_000..400_000u64));
            self.stats.notifications_duplicated += 1;
            self.push(InjectedFault::NotifyDuplicated {
                day,
                flow,
                side,
                lag_ns: lag.as_nanos(),
            });
            Some(lag)
        } else {
            None
        };
        NotifyVerdict::Deliver { extra, duplicate }
    }

    /// Map a schedule day through the freeze fault: frozen days replay
    /// `from_day`'s position in the rotor.
    pub fn schedule_day(&mut self, day: u64) -> u64 {
        if let Some(fz) = self.plan.freeze {
            if day >= fz.from_day && day < fz.from_day.saturating_add(fz.days) && day != fz.from_day
            {
                self.stats.days_frozen += 1;
                self.push(InjectedFault::DayFrozen { day });
                return fz.from_day;
            }
        }
        day
    }

    /// Decide the fate of day `day` serving `tdn` (`circuit_tdn` names
    /// the OCS TDN the link-failure fault applies to).
    pub fn day_fate(&mut self, day: u64, tdn: TdnId, circuit_tdn: TdnId) -> DayFate {
        let Some(lf) = self.plan.link_failure else {
            return DayFate::Normal;
        };
        if tdn != circuit_tdn {
            return DayFate::Normal;
        }
        if day == lf.day {
            self.stats.days_truncated += 1;
            self.push(InjectedFault::DayTruncated { day });
            DayFate::Truncated(lf.at_fraction.clamp(0.0, 1.0))
        } else if day > lf.day && day < lf.day.saturating_add(lf.outage_days) {
            self.stats.days_absent += 1;
            self.push(InjectedFault::DayAbsent { day });
            DayFate::Absent
        } else {
            DayFate::Normal
        }
    }

    /// Decide the fate of one segment entering the ToR at `now`.
    pub fn on_transit(&mut self, now: SimTime) -> EpsVerdict {
        let Some(b) = self.plan.eps_burst else {
            return EpsVerdict::Pass;
        };
        if now < b.start || now >= b.start + b.len {
            return EpsVerdict::Pass;
        }
        if b.drop_rate > 0.0 && self.rng.chance(b.drop_rate) {
            self.stats.eps_drops += 1;
            self.push(InjectedFault::EpsDrop { at_ns: now.as_nanos() });
            return EpsVerdict::Drop;
        }
        if b.corrupt_rate > 0.0 && self.rng.chance(b.corrupt_rate) {
            self.stats.eps_corruptions += 1;
            self.push(InjectedFault::EpsCorrupt { at_ns: now.as_nanos() });
            return EpsVerdict::Corrupt;
        }
        EpsVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector::new(plan, DetRng::new(seed).fork(FAULT_STREAM_LABEL))
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = injector(FaultPlan::none(), 1);
        for day in 0..50 {
            assert_eq!(
                inj.on_notify(day, 0, 0),
                NotifyVerdict::Deliver {
                    extra: SimDuration::ZERO,
                    duplicate: None
                }
            );
            assert_eq!(inj.day_fate(day, TdnId(1), TdnId(1)), DayFate::Normal);
            assert_eq!(inj.schedule_day(day), day);
            assert_eq!(
                inj.on_transit(SimTime::from_micros(day)),
                EpsVerdict::Pass
            );
        }
        assert_eq!(inj.stats().total(), 0);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn notification_loss_rate_is_respected() {
        let mut inj = injector(FaultPlan::notification_loss(0.2), 7);
        let mut dropped = 0u64;
        for day in 0..5_000 {
            if inj.on_notify(day, 0, 0) == NotifyVerdict::Drop {
                dropped += 1;
            }
        }
        assert_eq!(dropped, inj.stats().notifications_dropped);
        let rate = dropped as f64 / 5_000.0;
        assert!((0.15..0.25).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn link_failure_truncates_then_absents_circuit_days() {
        let plan = FaultPlan {
            link_failure: Some(LinkFailure {
                day: 6,
                at_fraction: 0.5,
                outage_days: 14,
            }),
            ..FaultPlan::default()
        };
        let mut inj = injector(plan, 3);
        let circuit = TdnId(1);
        // Packet days are untouched even inside the outage window.
        assert_eq!(inj.day_fate(7, TdnId(0), circuit), DayFate::Normal);
        assert_eq!(inj.day_fate(6, circuit, circuit), DayFate::Truncated(0.5));
        assert_eq!(inj.day_fate(13, circuit, circuit), DayFate::Absent);
        assert_eq!(inj.day_fate(20, circuit, circuit), DayFate::Normal);
        assert_eq!(inj.stats().days_truncated, 1);
        assert_eq!(inj.stats().days_absent, 1);
    }

    #[test]
    fn freeze_replays_the_stuck_day() {
        let plan = FaultPlan {
            freeze: Some(ScheduleFreeze { from_day: 3, days: 4 }),
            ..FaultPlan::default()
        };
        let mut inj = injector(plan, 3);
        assert_eq!(inj.schedule_day(2), 2);
        assert_eq!(inj.schedule_day(3), 3);
        assert_eq!(inj.schedule_day(4), 3);
        assert_eq!(inj.schedule_day(5), 3);
        assert_eq!(inj.schedule_day(6), 3);
        assert_eq!(inj.schedule_day(7), 7);
        assert_eq!(inj.stats().days_frozen, 3);
    }

    #[test]
    fn eps_burst_only_fires_inside_its_window() {
        let plan = FaultPlan {
            eps_burst: Some(EpsBurst {
                start: SimTime::from_micros(100),
                len: SimDuration::from_micros(50),
                drop_rate: 1.0,
                corrupt_rate: 0.0,
            }),
            ..FaultPlan::default()
        };
        let mut inj = injector(plan, 5);
        assert_eq!(inj.on_transit(SimTime::from_micros(99)), EpsVerdict::Pass);
        assert_eq!(inj.on_transit(SimTime::from_micros(100)), EpsVerdict::Drop);
        assert_eq!(inj.on_transit(SimTime::from_micros(149)), EpsVerdict::Drop);
        assert_eq!(inj.on_transit(SimTime::from_micros(150)), EpsVerdict::Pass);
        assert_eq!(inj.stats().eps_drops, 2);
    }

    #[test]
    fn log_digest_reflects_injections() {
        let mut a = injector(FaultPlan::notification_loss(0.5), 11);
        let mut b = injector(FaultPlan::notification_loss(0.5), 11);
        for day in 0..100 {
            a.on_notify(day, day as usize % 4, (day % 2) as u8);
            b.on_notify(day, day as usize % 4, (day % 2) as u8);
        }
        assert_eq!(a.log_digest(), b.log_digest());
        assert_eq!(a.log(), b.log());
        let mut c = injector(FaultPlan::notification_loss(0.5), 12);
        for day in 0..100 {
            c.on_notify(day, day as usize % 4, (day % 2) as u8);
        }
        assert_ne!(a.log_digest(), c.log_digest(), "seed must matter");
    }
}
