//! Network-level configuration for the emulated RDCN.

use crate::clock::ClockPlan;
use crate::faults::FaultPlan;
use crate::impair::ImpairPlan;
use crate::notify::NotifyConfig;
use crate::schedule::Schedule;
use crate::voq::VoqConfig;
use simcore::SimDuration;
use wire::TdnId;

/// Physical characteristics of one TDN between the rack pair.
#[derive(Debug, Clone, Copy)]
pub struct TdnParams {
    /// Bottleneck bandwidth in bits per second.
    pub rate_bps: u64,
    /// One-way propagation delay (per direction), excluding serialization
    /// and queueing.
    pub one_way: SimDuration,
    /// In-network queueing jitter: with probability `.0`, a packet picks
    /// up an exponentially distributed extra delay of mean `.1`. The EPS
    /// fabric queues inside the network (its "100 µs RTT" is *with*
    /// queueing, §2.1) — which is also what makes segments straggle when
    /// the circuit activates; the OCS "does not queue inside the network".
    pub jitter: Option<(f64, SimDuration)>,
}

impl TdnParams {
    /// The paper's packet network: 10 Gbps, 100 µs RTT (with in-network
    /// queueing jitter from the multi-hop EPS fabric).
    pub fn packet_10g() -> TdnParams {
        TdnParams {
            rate_bps: 10_000_000_000,
            one_way: SimDuration::from_micros(50),
            jitter: Some((0.15, SimDuration::from_micros(12))),
        }
    }

    /// The paper's optical network: 100 Gbps, 40 µs RTT, no in-network
    /// queueing (circuits have no intermediate buffering).
    pub fn optical_100g() -> TdnParams {
        TdnParams {
            rate_bps: 100_000_000_000,
            one_way: SimDuration::from_micros(20),
            jitter: None,
        }
    }

    /// Bandwidth-delay product in bytes for this TDN.
    pub fn bdp_bytes(&self) -> u64 {
        // rate * RTT / 8
        (self.rate_bps as f64 * (self.one_way.as_secs_f64() * 2.0) / 8.0) as u64
    }
}

/// retcpdyn switch support: advance VOQ enlargement + sender prepare
/// signal (§5.2).
#[derive(Debug, Clone, Copy)]
pub struct RetcpDynConfig {
    /// Lead time before a circuit day at which the VOQ is enlarged and
    /// senders are told to ramp (150 µs in the paper).
    pub prepare_lead: SimDuration,
    /// Enlarged VOQ capacity (50 packets in the paper).
    pub enlarged_cap: usize,
}

impl Default for RetcpDynConfig {
    fn default() -> Self {
        RetcpDynConfig {
            prepare_lead: SimDuration::from_micros(150),
            enlarged_cap: 50,
        }
    }
}

/// Full configuration of the emulated two-rack RDCN.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Per-TDN link characteristics, indexed by TDN ID.
    pub tdns: Vec<TdnParams>,
    /// The day/night schedule.
    pub schedule: Schedule,
    /// ToR VOQ settings (applied to both directions).
    pub voq: VoqConfig,
    /// Whether ToRs send TDN-change notifications (TDTCP needs them; other
    /// variants ignore them).
    pub notifications: bool,
    /// Notification latency model.
    pub notify: NotifyConfig,
    /// Whether the switch sets the circuit mark on segments that traverse
    /// the optical TDN (reTCP's explicit feedback).
    pub circuit_marking: bool,
    /// Which TDN counts as "the circuit" for marking/retcpdyn purposes.
    pub circuit_tdn: TdnId,
    /// retcpdyn switch support, if enabled.
    pub retcpdyn: Option<RetcpDynConfig>,
    /// Host NIC uplink rate in bits per second: segments leave a host at
    /// this serialization rate rather than as instantaneous bursts (the
    /// testbed's hosts have their own NICs; without this, window-sized
    /// bursts at TDN switches would overstate VOQ tail drops).
    pub host_rate_bps: u64,
    /// RNG seed for the run.
    pub seed: u64,
    /// Faults to inject during the run (none by default). The fault
    /// stream is forked from `seed` under a fixed label, so attaching a
    /// plan never perturbs the clean-path RNG draws.
    pub faults: FaultPlan,
    /// Data-path impairments to apply during the run (none by default).
    /// Like `faults`, the impairment stream is forked from `seed` under
    /// its own fixed label and never perturbs the clean path.
    pub impair: ImpairPlan,
    /// Per-host clock skew/drift to inject during the run (none by
    /// default). Like the other chaos layers, the clock stream is forked
    /// from `seed` under its own fixed label and an inert plan makes
    /// zero draws.
    pub clock: ClockPlan,
    /// The schedule guard band: the slack around each slot edge that
    /// absorbs host clock skew. Shared by the slot-edge enforcement (a
    /// mis-timed launch whose skew exceeds this is penalized per the
    /// clock plan's policy) and by the TDTCP endpoint watchdog/skew
    /// hardening (its timer slack and escalation threshold). Defaults to
    /// half a slot, which preserves the watchdog's historical
    /// `for_slot` slack.
    pub guard_band: SimDuration,
}

impl NetConfig {
    /// The paper's baseline testbed (§5.1): hybrid 6:1 schedule,
    /// 10 G/100 µs packet TDN, 100 G/40 µs optical TDN, 16-packet VOQs.
    pub fn paper_baseline() -> NetConfig {
        let schedule = Schedule::hybrid_6to1();
        let guard_band = schedule.slot_len() / 2;
        NetConfig {
            tdns: vec![TdnParams::packet_10g(), TdnParams::optical_100g()],
            schedule,
            voq: VoqConfig::default(),
            notifications: true,
            notify: NotifyConfig::optimized(),
            circuit_marking: false,
            circuit_tdn: TdnId(1),
            retcpdyn: None,
            host_rate_bps: 100_000_000_000,
            seed: 1,
            faults: FaultPlan::default(),
            impair: ImpairPlan::default(),
            clock: ClockPlan::default(),
            guard_band,
        }
    }

    /// Fig. 8 variant: bandwidth difference only (both TDNs at the packet
    /// network's 100 µs RTT).
    pub fn bandwidth_only() -> NetConfig {
        let mut c = NetConfig::paper_baseline();
        c.tdns = vec![
            TdnParams::packet_10g(),
            TdnParams {
                rate_bps: 100_000_000_000,
                one_way: SimDuration::from_micros(50),
                jitter: None,
            },
        ];
        c
    }

    /// Fig. 9 / Fig. 14 variant: latency difference only, at the given
    /// shared bandwidth; RTTs 20 µs and 10 µs per the appendix.
    pub fn latency_only(rate_bps: u64) -> NetConfig {
        let mut c = NetConfig::paper_baseline();
        c.tdns = vec![
            TdnParams {
                rate_bps,
                one_way: SimDuration::from_micros(10),
                jitter: Some((0.15, SimDuration::from_micros(3))),
            },
            TdnParams {
                rate_bps,
                one_way: SimDuration::from_micros(5),
                jitter: None,
            },
        ];
        c
    }

    /// The same configuration with the VOQ capacity (both directions)
    /// replaced — the tiny-buffer knob the tail-latency suite sweeps.
    pub fn with_voq_cap(mut self, cap_pkts: usize) -> NetConfig {
        self.voq.cap_pkts = cap_pkts;
        self
    }

    /// Parameters of the TDN `id`.
    pub fn tdn(&self, id: TdnId) -> &TdnParams {
        &self.tdns[id.index()]
    }

    /// The slowest TDN's RTT (TDTCP's pessimistic RTO assumption, §4.4).
    pub fn slowest_rtt(&self) -> SimDuration {
        self.tdns
            .iter()
            .map(|t| t.one_way * 2)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let c = NetConfig::paper_baseline();
        assert_eq!(c.tdns.len(), 2);
        assert_eq!(c.tdn(TdnId(0)).rate_bps, 10_000_000_000);
        assert_eq!(c.tdn(TdnId(1)).rate_bps, 100_000_000_000);
        assert_eq!(c.tdn(TdnId(0)).one_way, SimDuration::from_micros(50));
        assert_eq!(c.slowest_rtt(), SimDuration::from_micros(100));
        // Packet BDP = 10 Gbps * 100us = 125 kB ≈ 14 jumbo frames; the
        // 16-packet VOQ is "slightly larger than the packet network BDP".
        let bdp = c.tdn(TdnId(0)).bdp_bytes();
        assert_eq!(bdp, 125_000);
        assert!(c.voq.cap_pkts as u64 * 9000 > bdp);
    }

    #[test]
    fn variant_configs() {
        let b = NetConfig::bandwidth_only();
        assert_eq!(b.tdn(TdnId(0)).one_way, b.tdn(TdnId(1)).one_way);
        assert_ne!(b.tdn(TdnId(0)).rate_bps, b.tdn(TdnId(1)).rate_bps);
        let l = NetConfig::latency_only(100_000_000_000);
        assert_eq!(l.tdn(TdnId(0)).rate_bps, l.tdn(TdnId(1)).rate_bps);
        assert_ne!(l.tdn(TdnId(0)).one_way, l.tdn(TdnId(1)).one_way);
    }

    #[test]
    fn optical_bdp() {
        let o = TdnParams::optical_100g();
        assert_eq!(o.bdp_bytes(), 500_000); // 100G * 40us
    }
}
