//! The TDN-change notification latency model (§3.2, §5.4).
//!
//! When the ToR reconfigures it sends each attached host an ICMP
//! notification (Fig. 5a). End-to-end delivery latency decomposes into:
//!
//! 1. **packet construction** at the ToR — dominated by allocation unless
//!    the ToR caches a pre-built ICMP packet and stamps the TDN ID into it
//!    (§5.4 opt. 1: caching reduces construction 8× at p50, 2.7× at p99);
//! 2. **fan-out** — a "push" model walks every established flow and
//!    updates it in turn, so the k-th flow waits k iterations; a "pull"
//!    model publishes one global TDN variable that flows read under an
//!    rwlock (§5.4 opt. 2: ~3 orders of magnitude less update time);
//! 3. **transit + host processing** — sharing the busy data-plane NIC
//!    queues the ICMP behind data packets; a dedicated control network
//!    avoids that queueing (§5.4 opt. 3: ~5× lower one-way delay).
//!
//! The constants below are calibrated to those reported ratios rather
//! than to absolute kernel timings, which are hardware-specific.

use simcore::{DetRng, SimDuration};

/// Which optimizations are enabled.
#[derive(Debug, Clone, Copy)]
pub struct NotifyConfig {
    /// Opt. 1: pre-constructed, cached ICMP packet at the ToR.
    pub cached_construction: bool,
    /// Opt. 2: hosts pull a global TDN variable instead of the kernel
    /// pushing per-flow updates.
    pub pull_model: bool,
    /// Opt. 3: notifications travel a dedicated control network.
    pub dedicated_network: bool,
    /// Physical propagation within the rack.
    pub propagation: SimDuration,
    /// Additional fixed delay added to every delivery — not part of the
    /// paper's system, but the knob behind the notification-latency
    /// sensitivity ablation (generalizing Fig. 11).
    pub extra_delay: SimDuration,
}

impl NotifyConfig {
    /// All three §5.4 optimizations on (the "optimized" line of Fig. 11).
    pub fn optimized() -> Self {
        NotifyConfig {
            cached_construction: true,
            pull_model: true,
            dedicated_network: true,
            propagation: SimDuration::from_nanos(500),
            extra_delay: SimDuration::ZERO,
        }
    }

    /// All optimizations off (the "unoptimized" line of Fig. 11).
    pub fn unoptimized() -> Self {
        NotifyConfig {
            cached_construction: false,
            pull_model: false,
            dedicated_network: false,
            propagation: SimDuration::from_nanos(500),
            extra_delay: SimDuration::ZERO,
        }
    }
}

/// Per-component latency sample, exposed so microbenchmarks can report
/// the §5.4 component breakdown.
#[derive(Debug, Clone, Copy)]
pub struct NotifySample {
    /// ToR-side packet construction.
    pub construction: SimDuration,
    /// Fan-out position cost (zero under the pull model).
    pub fanout: SimDuration,
    /// Transit including data-plane queueing (if shared) and host-side
    /// processing.
    pub transit: SimDuration,
}

impl NotifySample {
    /// Total one-way delivery latency.
    pub fn total(&self) -> SimDuration {
        self.construction + self.fanout + self.transit
    }
}

/// Mean of the shared-data-plane NIC queueing delay (exponential).
const QUEUEING_MEAN_NS: f64 = 8_000.0;

/// Clamp on the queueing draw: 3× the mean. A real NIC queue is finite —
/// the ICMP cannot wait behind more data than the queue holds — and an
/// unbounded exponential tail would make the model's worst case
/// seed-dependent. The truncated mean is `m·(1 − e⁻³) ≈ 0.95·m`, so the
/// §5.4 shared/dedicated transit ratio is preserved.
const QUEUEING_CLAMP_NS: u64 = 24_000;

/// Draws notification latencies for a ToR with `flows` attached flows.
#[derive(Debug)]
pub struct NotifyModel {
    cfg: NotifyConfig,
}

impl NotifyModel {
    /// New model.
    pub fn new(cfg: NotifyConfig) -> Self {
        NotifyModel { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NotifyConfig {
        &self.cfg
    }

    /// Sample the delivery latency for the flow at position `flow_idx`
    /// (0-based) among `_flows` established flows.
    pub fn sample(&self, rng: &mut DetRng, flow_idx: usize) -> NotifySample {
        // Construction: cached ≈ 0.5 µs with a light tail; uncached ≈ 4 µs
        // p50 with a heavy tail — giving the paper's 8× p50 / 2.7× p99.
        let construction = if self.cfg.cached_construction {
            SimDuration::from_nanos(400 + rng.gen_range(0..300u64))
            // p50 ≈ 0.55 µs, p99 ≈ 0.7 µs
        } else {
            let base = 4_000 + rng.gen_range(0..1_000u64);
            let tail = if rng.chance(0.05) {
                rng.gen_range(0..14_000u64) // occasional allocation stall
            } else {
                0
            };
            SimDuration::from_nanos(base + tail)
            // p50 ≈ 4.5 µs (8× cached), p99 ≈ 1.9 µs tail -> ~2.7× ratio
        };

        // Fan-out: push walks the flow list; each entry costs ~5 µs of
        // kernel time (socket lookup, lock, per-connection state update),
        // so the k-th flow waits k·5 µs — the paper reports the pull
        // model cuts whole-machine update time by ~3 orders of magnitude,
        // which puts the push loop's total in the tens of microseconds
        // even for modest flow counts. Pull is a single rwlock read.
        let fanout = if self.cfg.pull_model {
            SimDuration::from_nanos(rng.gen_range(20..60u64))
        } else {
            SimDuration::from_nanos(5_000 * flow_idx as u64 + rng.gen_range(0..800u64))
        };

        // Transit: propagation plus host processing; a shared data plane
        // adds NIC queueing behind data packets (exponential, mean 4 µs),
        // the ~5× one-way gap of §5.4.
        let host_processing = SimDuration::from_nanos(600 + rng.gen_range(0..200u64));
        let queueing = if self.cfg.dedicated_network {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(
                (rng.exponential(QUEUEING_MEAN_NS) as u64).min(QUEUEING_CLAMP_NS),
            )
        };
        let transit = self.cfg.propagation + host_processing + queueing + self.cfg.extra_delay;

        NotifySample {
            construction,
            fanout,
            transit,
        }
    }

    /// Analytic worst-case delivery latency for the last-notified of
    /// `flows` flows: every draw at its upper bound or clamp. Holds for
    /// every seed (the endpoint watchdog guard band and the notify-bound
    /// tests rely on this being seed-independent).
    pub fn worst_case_total(&self, flows: usize) -> SimDuration {
        let construction: u64 = if self.cfg.cached_construction {
            400 + 299
        } else {
            4_000 + 999 + 13_999
        };
        let fanout: u64 = if self.cfg.pull_model {
            59
        } else {
            5_000 * flows.saturating_sub(1) as u64 + 799
        };
        let queueing: u64 = if self.cfg.dedicated_network {
            0
        } else {
            QUEUEING_CLAMP_NS
        };
        let host_processing: u64 = 600 + 199;
        self.cfg.propagation
            + self.cfg.extra_delay
            + SimDuration::from_nanos(construction + fanout + host_processing + queueing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Cdf;

    fn percentiles(cfg: NotifyConfig, flow_idx: usize, n: usize) -> (f64, f64) {
        let model = NotifyModel::new(cfg);
        let mut rng = DetRng::new(42);
        let mut c = Cdf::new();
        for _ in 0..n {
            c.add(model.sample(&mut rng, flow_idx).construction.as_nanos() as f64);
        }
        (c.percentile(50.0).unwrap(), c.percentile(99.0).unwrap())
    }

    #[test]
    fn caching_speedup_matches_paper_ratios() {
        let (p50_c, p99_c) = percentiles(NotifyConfig::optimized(), 0, 20_000);
        let (p50_u, p99_u) = percentiles(NotifyConfig::unoptimized(), 0, 20_000);
        let r50 = p50_u / p50_c;
        let r99 = p99_u / p99_c;
        // Paper: 8× at p50, 2.7× at p99. Accept the right ballpark.
        assert!(
            (6.0..=10.0).contains(&r50),
            "p50 speedup {r50:.1} should be ~8x"
        );
        assert!(
            (2.0..=35.0).contains(&r99),
            "p99 speedup {r99:.1} should exceed ~2.7x"
        );
        assert!(r99 < r50 * 4.0, "tail ratio stays comparable");
    }

    #[test]
    fn push_fanout_penalizes_late_flows() {
        let model = NotifyModel::new(NotifyConfig::unoptimized());
        let mut rng = DetRng::new(1);
        let first = model.sample(&mut rng, 0).fanout;
        let last = model.sample(&mut rng, 15).fanout;
        assert!(
            last.as_nanos() > first.as_nanos() + 10_000,
            "flow 15 waits ≥ 13.5us more: {first} vs {last}"
        );
    }

    #[test]
    fn pull_fanout_is_flat() {
        let model = NotifyModel::new(NotifyConfig::optimized());
        let mut rng = DetRng::new(1);
        let first = model.sample(&mut rng, 0).fanout;
        let last = model.sample(&mut rng, 15).fanout;
        assert!(last.as_nanos() < first.as_nanos() + 100);
    }

    #[test]
    fn dedicated_network_removes_queueing() {
        let mut rng = DetRng::new(3);
        let ded = NotifyModel::new(NotifyConfig::optimized());
        let shared = NotifyModel::new(NotifyConfig {
            dedicated_network: false,
            ..NotifyConfig::optimized()
        });
        let mut sum_d = 0u64;
        let mut sum_s = 0u64;
        for _ in 0..10_000 {
            sum_d += ded.sample(&mut rng, 0).transit.as_nanos();
            sum_s += shared.sample(&mut rng, 0).transit.as_nanos();
        }
        let ratio = sum_s as f64 / sum_d as f64;
        assert!(
            (4.0..=11.0).contains(&ratio),
            "shared/dedicated transit ratio {ratio:.1} should be >=5x"
        );
    }

    #[test]
    fn optimized_total_is_microseconds_not_tens() {
        let model = NotifyModel::new(NotifyConfig::optimized());
        let mut rng = DetRng::new(9);
        for idx in 0..16 {
            let total = model.sample(&mut rng, idx).total();
            assert!(
                total < SimDuration::from_micros(3),
                "optimized delivery {total} stays ~2us"
            );
        }
    }

    #[test]
    fn unoptimized_total_eats_into_a_day() {
        let model = NotifyModel::new(NotifyConfig::unoptimized());
        // With the queueing draw clamped, the worst case is an analytic
        // bound, not a seed lottery: ~120 µs for the last of 16 flows —
        // a huge bite out of a 180 µs day, yet always within it.
        let bound = model.worst_case_total(16);
        assert!(
            bound < SimDuration::from_micros(180),
            "analytic worst case {bound} should stay within one day"
        );
        for seed in 0..32u64 {
            let mut rng = DetRng::new(seed);
            let mut worst = SimDuration::ZERO;
            for idx in 0..16 {
                worst = worst.max(model.sample(&mut rng, idx).total());
            }
            assert!(
                worst > SimDuration::from_micros(30),
                "seed {seed}: unoptimized worst-case {worst} should exceed 30us"
            );
            assert!(
                worst <= bound,
                "seed {seed}: sampled worst-case {worst} above analytic bound {bound}"
            );
        }
    }

    #[test]
    fn optimized_worst_case_is_tiny_and_respected() {
        let model = NotifyModel::new(NotifyConfig::optimized());
        let bound = model.worst_case_total(16);
        assert!(bound < SimDuration::from_micros(3));
        for seed in 0..32u64 {
            let mut rng = DetRng::new(seed);
            for idx in 0..16 {
                assert!(model.sample(&mut rng, idx).total() <= bound, "seed {seed}");
            }
        }
    }
}
