//! # rdcn — the reconfigurable data center network substrate
//!
//! A deterministic emulation of the paper's Etalon testbed (§5.1): the
//! demand-oblivious rotor [`schedule`], ToR virtual output queues
//! ([`voq`]) with ECN marking, circuit marking and runtime resizing, the
//! ToR-generated TDN-change [`notify`] latency model with the three §5.4
//! optimizations, analytic reference curves ([`analytic`]), and the
//! [`emulator`] that drives any [`tcp::Transport`] implementation over the
//! emulated fabric.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod clock;
pub mod config;
pub mod emulator;
pub mod faults;
pub mod impair;
pub mod multirack;
pub mod notify;
pub mod schedule;
pub mod shard;
pub mod statfold;
pub mod voq;

pub use clock::{
    ClockEvent, ClockInjector, ClockPlan, ClockStats, ClockVerdict, SlotEdgePolicy,
    CLOCK_STREAM_LABEL,
};
pub use config::{NetConfig, RetcpDynConfig, TdnParams};
pub use faults::{
    DayFate, EpsBurst, EpsVerdict, FaultInjector, FaultPlan, FaultStats, InjectedFault,
    LinkFailure, NotifyVerdict, ScheduleFreeze, FAULT_STREAM_LABEL,
};
pub use emulator::{
    DayRecord, Emulator, EndpointFactory, FlowSpec, RunResult, TimedEndpointFactory, EVENTS_TOTAL,
};
pub use impair::{
    ImpairEvent, ImpairInjector, ImpairPlan, ImpairStats, ImpairVerdict, IMPAIR_STREAM_LABEL,
};
pub use multirack::{MultiRackConfig, MultiRackEmulator, MultiRackResult, PairFlow};
pub use notify::{NotifyConfig, NotifyModel, NotifySample};
pub use schedule::{Phase, Schedule};
pub use shard::{ShardConfig, ShardResult, ShardedEmulator, RACK_STREAM_BASE};
pub use statfold::{InjectorStats, LogEvent, LOG_CAP};
pub use voq::{Voq, VoqConfig};
