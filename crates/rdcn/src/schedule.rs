//! The demand-oblivious RDCN schedule (§2.1).
//!
//! OCSes cycle through a fixed set of configurations — *days* — separated
//! by reconfiguration blackouts — *nights* — during which no packets move.
//! The full cycle is a *week*. For the evaluated rack pair the schedule
//! reduces to a repeating pattern of which TDN is active in each day
//! (six packet days then one optical day in the paper's 6:1 setting).
//!
//! [`rotor`] generates full N-rack round-robin matchings and proves the
//! demand-oblivious property: every rack pair is directly connected
//! exactly once per week.

use simcore::{SimDuration, SimTime};
use wire::TdnId;

/// What the network is doing at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A configuration is up: `tdn` carries traffic until `ends`.
    Day {
        /// Index of this day within the week.
        index: usize,
        /// The active TDN.
        tdn: TdnId,
        /// When this day started.
        started: SimTime,
        /// When this day ends (night begins).
        ends: SimTime,
    },
    /// Reconfiguration blackout: nothing moves until `ends`.
    Night {
        /// The TDN of the day that follows.
        next_tdn: TdnId,
        /// When the blackout ends.
        ends: SimTime,
    },
}

impl Phase {
    /// The currently active TDN, if any.
    pub fn active(&self) -> Option<TdnId> {
        match self {
            Phase::Day { tdn, .. } => Some(*tdn),
            Phase::Night { .. } => None,
        }
    }

    /// When this phase ends.
    pub fn ends(&self) -> SimTime {
        match self {
            Phase::Day { ends, .. } | Phase::Night { ends, .. } => *ends,
        }
    }
}

/// A repeating day/night schedule for one rack pair.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Length of each day.
    pub day_len: SimDuration,
    /// Length of each night (reconfiguration blackout).
    pub night_len: SimDuration,
    /// The TDN active in each day of the week, in order.
    pub days: Vec<TdnId>,
}

impl Schedule {
    /// The paper's baseline: 180 µs days, 20 µs nights, six packet (TDN 0)
    /// days then one optical (TDN 1) day — the natural schedule of an
    /// 8-rack hybrid RDCN (§5.1).
    pub fn hybrid_6to1() -> Schedule {
        Schedule {
            day_len: SimDuration::from_micros(180),
            night_len: SimDuration::from_micros(20),
            days: vec![
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(0),
                TdnId(1),
            ],
        }
    }

    /// A uniform alternation (used by microbenchmarks and the satellite
    /// example): each TDN in `cycle` gets one `day_len` day per week.
    pub fn alternating(day_len: SimDuration, night_len: SimDuration, cycle: Vec<TdnId>) -> Schedule {
        assert!(!cycle.is_empty());
        Schedule {
            day_len,
            night_len,
            days: cycle,
        }
    }

    /// One full day+night slot.
    pub fn slot_len(&self) -> SimDuration {
        self.day_len + self.night_len
    }

    /// The length of a week.
    pub fn week_len(&self) -> SimDuration {
        self.slot_len() * self.days.len() as u64
    }

    /// Number of distinct TDNs this schedule references.
    pub fn num_tdns(&self) -> usize {
        self.days.iter().map(|t| t.index()).max().unwrap_or(0) + 1
    }

    /// Duty cycle: fraction of time a configuration is up.
    pub fn duty_cycle(&self) -> f64 {
        self.day_len / self.slot_len()
    }

    /// The phase at time `t`. Days run `[k·slot, k·slot + day_len)`;
    /// nights fill the rest of the slot.
    pub fn phase_at(&self, t: SimTime) -> Phase {
        let slot_ns = self.slot_len().as_nanos();
        let week_ns = self.week_len().as_nanos();
        let in_week = t.as_nanos() % week_ns;
        let index = (in_week / slot_ns) as usize;
        let in_slot = in_week % slot_ns;
        let slot_start = t.as_nanos() - in_slot;
        if in_slot < self.day_len.as_nanos() {
            Phase::Day {
                index,
                tdn: self.days[index],
                started: SimTime::from_nanos(slot_start),
                ends: SimTime::from_nanos(slot_start + self.day_len.as_nanos()),
            }
        } else {
            let next = self.days[(index + 1) % self.days.len()];
            Phase::Night {
                next_tdn: next,
                ends: SimTime::from_nanos(slot_start + slot_ns),
            }
        }
    }

    /// Global day counter at time `t` (how many day starts have passed).
    pub fn day_number(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.slot_len().as_nanos()
            + u64::from(t.as_nanos() % self.slot_len().as_nanos() >= self.day_len.as_nanos())
    }

    /// Start time of day number `n` (0-based).
    pub fn day_start(&self, n: u64) -> SimTime {
        SimTime::from_nanos(n * self.slot_len().as_nanos())
    }

    /// The TDN of day number `n`.
    pub fn day_tdn(&self, n: u64) -> TdnId {
        self.days[(n % self.days.len() as u64) as usize]
    }

    /// Total time TDN `tdn` is up during one week.
    pub fn uptime_per_week(&self, tdn: TdnId) -> SimDuration {
        let n = self.days.iter().filter(|&&d| d == tdn).count() as u64;
        self.day_len * n
    }
}

/// Round-robin rotor matchings for an N-rack OCS (RotorNet-style).
pub mod rotor {
    /// Generate the week of matchings for `n` racks (n even): `n - 1`
    /// configurations, each a perfect matching, which together connect
    /// every rack pair exactly once (the classic circle method for
    /// round-robin tournaments).
    pub fn matchings(n: usize) -> Vec<Vec<(usize, usize)>> {
        assert!(n >= 2 && n.is_multiple_of(2), "rotor needs an even rack count");
        let mut out = Vec::with_capacity(n - 1);
        // Fix rack n-1; rotate the rest.
        for round in 0..n - 1 {
            let mut pairs = Vec::with_capacity(n / 2);
            let pos = |i: usize| -> usize {
                if i == n - 1 {
                    n - 1
                } else {
                    (i + round) % (n - 1)
                }
            };
            // Pair positions (0, n-1), (1, n-2), ...
            let mut ring: Vec<usize> = vec![0; n];
            for i in 0..n {
                ring[if pos(i) == n - 1 { n - 1 } else { pos(i) }] = i;
            }
            pairs.push((ring[n - 1], ring[0]));
            for k in 1..n / 2 {
                pairs.push((ring[k], ring[n - 1 - k]));
            }
            out.push(pairs);
        }
        out
    }

    /// For a given rack pair, which configuration (day index) connects
    /// them directly?
    pub fn day_connecting(matchings: &[Vec<(usize, usize)>], a: usize, b: usize) -> Option<usize> {
        matchings.iter().position(|m| {
            m.iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn hybrid_schedule_parameters() {
        let s = Schedule::hybrid_6to1();
        assert_eq!(s.slot_len(), SimDuration::from_micros(200));
        assert_eq!(s.week_len(), SimDuration::from_micros(1400));
        assert_eq!(s.num_tdns(), 2);
        assert!((s.duty_cycle() - 0.9).abs() < 1e-12, "9:1 duty cycle");
        assert_eq!(
            s.uptime_per_week(TdnId(0)),
            SimDuration::from_micros(1080)
        );
        assert_eq!(s.uptime_per_week(TdnId(1)), SimDuration::from_micros(180));
    }

    #[test]
    fn phase_at_day_and_night() {
        let s = Schedule::hybrid_6to1();
        match s.phase_at(us(0)) {
            Phase::Day { index, tdn, started, ends } => {
                assert_eq!(index, 0);
                assert_eq!(tdn, TdnId(0));
                assert_eq!(started, us(0));
                assert_eq!(ends, us(180));
            }
            p => panic!("expected day, got {p:?}"),
        }
        match s.phase_at(us(190)) {
            Phase::Night { next_tdn, ends } => {
                assert_eq!(next_tdn, TdnId(0));
                assert_eq!(ends, us(200));
            }
            p => panic!("expected night, got {p:?}"),
        }
        // Day 6 (index 6) is optical.
        match s.phase_at(us(6 * 200 + 10)) {
            Phase::Day { index, tdn, .. } => {
                assert_eq!(index, 6);
                assert_eq!(tdn, TdnId(1));
            }
            p => panic!("{p:?}"),
        }
        // Night before the wrap announces day 0's TDN.
        match s.phase_at(us(6 * 200 + 190)) {
            Phase::Night { next_tdn, .. } => assert_eq!(next_tdn, TdnId(0)),
            p => panic!("{p:?}"),
        }
    }

    #[test]
    fn phase_repeats_weekly() {
        let s = Schedule::hybrid_6to1();
        let week = s.week_len();
        for t in [0u64, 50, 180, 199, 777, 1250] {
            let a = s.phase_at(us(t)).active();
            let b = s.phase_at(us(t) + week).active();
            assert_eq!(a, b, "t={t}");
        }
    }

    #[test]
    fn day_boundaries_exact() {
        let s = Schedule::hybrid_6to1();
        // The instant a day ends, the night phase begins (half-open).
        assert_eq!(s.phase_at(us(179)).active(), Some(TdnId(0)));
        assert_eq!(s.phase_at(us(180)).active(), None);
        assert_eq!(s.phase_at(us(200)).active(), Some(TdnId(0)));
    }

    #[test]
    fn day_numbering() {
        let s = Schedule::hybrid_6to1();
        assert_eq!(s.day_number(us(0)), 0);
        assert_eq!(s.day_number(us(100)), 0);
        assert_eq!(s.day_number(us(185)), 1, "night counts toward next day");
        assert_eq!(s.day_number(us(200)), 1);
        assert_eq!(s.day_start(7), us(1400));
        assert_eq!(s.day_tdn(6), TdnId(1));
        assert_eq!(s.day_tdn(13), TdnId(1));
        assert_eq!(s.day_tdn(7), TdnId(0));
    }

    #[test]
    fn alternating_builder() {
        let s = Schedule::alternating(
            SimDuration::from_micros(100),
            SimDuration::from_micros(10),
            vec![TdnId(0), TdnId(1), TdnId(2)],
        );
        assert_eq!(s.num_tdns(), 3);
        assert_eq!(s.week_len(), SimDuration::from_micros(330));
    }

    #[test]
    fn rotor_matchings_cover_all_pairs_once() {
        for n in [2usize, 4, 8, 16] {
            let ms = rotor::matchings(n);
            assert_eq!(ms.len(), n - 1, "n={n}");
            // detlint: allow(unordered_iter) — membership-only pair set; iteration order never observed
            let mut seen = std::collections::HashSet::new();
            for m in &ms {
                assert_eq!(m.len(), n / 2);
                // detlint: allow(unordered_iter) — membership-only set; iteration order never observed
                let mut in_round = std::collections::HashSet::new();
                for &(a, b) in m {
                    assert_ne!(a, b);
                    assert!(in_round.insert(a), "rack {a} appears twice in a round");
                    assert!(in_round.insert(b), "rack {b} appears twice in a round");
                    let key = (a.min(b), a.max(b));
                    assert!(seen.insert(key), "pair {key:?} connected twice (n={n})");
                }
            }
            assert_eq!(seen.len(), n * (n - 1) / 2, "all pairs covered");
        }
    }

    #[test]
    fn rotor_day_lookup() {
        let ms = rotor::matchings(8);
        for a in 0..8 {
            for b in 0..8 {
                if a != b {
                    assert!(rotor::day_connecting(&ms, a, b).is_some());
                }
            }
        }
        // An 8-rack rotor gives each pair 1 day in 7 — the 6:1 ratio of the
        // evaluation (§5.1).
        assert_eq!(ms.len(), 7);
    }
}
