//! Deterministic data-path impairment injection for the emulated RDCN.
//!
//! Where [`crate::faults`] makes the *control plane* hostile (lost
//! notifications, failed circuit days), this module makes the *data
//! path* hostile: an [`ImpairPlan`] on `NetConfig` applies per-segment
//! loss, delay-based reordering, duplication, and payload corruption on
//! the wire itself — both the EPS and circuit planes, including
//! segments serviced exactly at day/night transitions, because the
//! verdict is drawn at link-service time regardless of which TDN is
//! active.
//!
//! Like the fault injector, the impairment injector draws from its own
//! RNG stream forked from the run seed under [`IMPAIR_STREAM_LABEL`],
//! and every probabilistic draw is guarded by a `rate > 0.0` check, so:
//!
//! - a clean run is bit-identical whether or not an (inert) plan is
//!   constructed and attached, and
//! - an impaired run is fully reproducible per `(seed, plan)`.
//!
//! Impairment semantics at the emulator:
//! - **Loss**: the segment is serviced (occupies the link) but never
//!   arrives.
//! - **Reorder**: the segment picks up a uniform extra delay in
//!   `(0, reorder_delay]` *after* serialization, so later segments can
//!   overtake it — delay-based reordering, the kind RACK/TDTCP's
//!   relaxed loss detection must tolerate.
//! - **Duplicate**: a second copy arrives a short lag after the first.
//! - **Corrupt**: the segment arrives with a mangled payload checksum;
//!   the receiving endpoint detects and discards it (`corrupt_rx`),
//!   distinct from a drop.

use crate::statfold::{self, InjectorStats, LogEvent};
use simcore::{DetRng, SimDuration, SimTime};
use testkit::Digest;

/// Declarative description of data-path adversity. The default plan
/// impairs nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ImpairPlan {
    /// Per-segment probability of silent loss on the wire.
    pub loss_rate: f64,
    /// Per-segment probability of picking up a reordering delay.
    pub reorder_rate: f64,
    /// Maximum extra delay for a reordered segment; the actual delay is
    /// uniform in `(0, reorder_delay]`.
    pub reorder_delay: SimDuration,
    /// Per-segment probability of being delivered twice.
    pub duplicate_rate: f64,
    /// Per-segment probability of payload corruption (delivered, then
    /// detected and discarded at the receiver).
    pub corrupt_rate: f64,
}

impl Default for ImpairPlan {
    fn default() -> Self {
        ImpairPlan {
            loss_rate: 0.0,
            reorder_rate: 0.0,
            // One packet-fabric RTT: enough to overtake several
            // in-flight segments without parking one past a whole day.
            reorder_delay: SimDuration::from_micros(100),
            duplicate_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }
}

impl ImpairPlan {
    /// A plan that impairs nothing (`Default`).
    pub fn none() -> ImpairPlan {
        ImpairPlan::default()
    }

    /// A plan that only drops segments at `rate`.
    pub fn loss(rate: f64) -> ImpairPlan {
        ImpairPlan {
            loss_rate: rate,
            ..ImpairPlan::default()
        }
    }

    /// Whether the plan impairs anything at all.
    pub fn is_none(&self) -> bool {
        *self == ImpairPlan::default()
    }
}

/// Counters of every impairment actually applied during a run. All
/// monotone; digested into `RunResult::stats_digest`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairStats {
    /// Segments silently lost on the wire.
    pub segs_dropped: u64,
    /// Segments delivered late (delay-based reordering).
    pub segs_reordered: u64,
    /// Segments delivered twice.
    pub segs_duplicated: u64,
    /// Segments delivered with a corrupted payload.
    pub segs_corrupted: u64,
}

impl ImpairStats {
    /// Total impairments applied across all classes.
    pub fn total(&self) -> u64 {
        let ImpairStats {
            segs_dropped,
            segs_reordered,
            segs_duplicated,
            segs_corrupted,
        } = *self;
        segs_dropped + segs_reordered + segs_duplicated + segs_corrupted
    }

    /// Feed every counter into `d` in declaration order.
    pub fn write_digest(&self, d: &mut Digest) {
        let ImpairStats {
            segs_dropped,
            segs_reordered,
            segs_duplicated,
            segs_corrupted,
        } = *self;
        for v in [segs_dropped, segs_reordered, segs_duplicated, segs_corrupted] {
            d.write_u64(v);
        }
    }
}

impl InjectorStats for ImpairStats {
    fn total(&self) -> u64 {
        ImpairStats::total(self)
    }
    fn write_digest(&self, d: &mut Digest) {
        ImpairStats::write_digest(self, d)
    }
}

/// One concrete applied impairment, recorded in order of application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpairEvent {
    /// A segment was lost on the wire.
    Drop {
        /// Simulated time of the loss in nanoseconds.
        at_ns: u64,
    },
    /// A segment was delayed into reordering.
    Reorder {
        /// Simulated time of the draw in nanoseconds.
        at_ns: u64,
        /// Injected extra delay in nanoseconds.
        extra_ns: u64,
    },
    /// A segment was delivered twice.
    Duplicate {
        /// Simulated time of the draw in nanoseconds.
        at_ns: u64,
        /// Duplicate's lag behind the original in nanoseconds.
        lag_ns: u64,
    },
    /// A segment's payload was corrupted in flight.
    Corrupt {
        /// Simulated time of the corruption in nanoseconds.
        at_ns: u64,
    },
}

impl LogEvent for ImpairEvent {
    fn write_digest(&self, d: &mut Digest) {
        match *self {
            ImpairEvent::Drop { at_ns } => {
                d.write_u64(1).write_u64(at_ns);
            }
            ImpairEvent::Reorder { at_ns, extra_ns } => {
                d.write_u64(2).write_u64(at_ns).write_u64(extra_ns);
            }
            ImpairEvent::Duplicate { at_ns, lag_ns } => {
                d.write_u64(3).write_u64(at_ns).write_u64(lag_ns);
            }
            ImpairEvent::Corrupt { at_ns } => {
                d.write_u64(4).write_u64(at_ns);
            }
        }
    }
}

/// The injector's decision for one segment leaving a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpairVerdict {
    /// Deliver normally.
    Pass,
    /// Lose the segment on the wire.
    Drop,
    /// Deliver with this much extra delay (reordering).
    Delay(SimDuration),
    /// Deliver, then deliver a second copy this much later.
    Duplicate(SimDuration),
    /// Deliver with a corrupted payload checksum.
    Corrupt,
}

/// The fixed fork label carving the impairment stream out of a run's
/// seed; keeps the main emulator stream (and the fault stream) identical
/// whether or not a plan is attached.
pub const IMPAIR_STREAM_LABEL: u64 = 0xDA7A;

/// Executes an [`ImpairPlan`] against a dedicated RNG stream and records
/// what was applied.
#[derive(Debug)]
pub struct ImpairInjector {
    plan: ImpairPlan,
    rng: DetRng,
    stats: ImpairStats,
    log: Vec<ImpairEvent>,
}

impl ImpairInjector {
    /// An injector for `plan` drawing from `rng` (conventionally
    /// `run_rng.fork(IMPAIR_STREAM_LABEL)`).
    pub fn new(plan: ImpairPlan, rng: DetRng) -> Self {
        ImpairInjector {
            plan,
            rng,
            stats: ImpairStats::default(),
            log: Vec::new(),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &ImpairPlan {
        &self.plan
    }

    /// Counters of impairments applied so far.
    pub fn stats(&self) -> &ImpairStats {
        &self.stats
    }

    /// The applied-event log, in application order (capped at
    /// [`statfold::LOG_CAP`] entries; counters keep counting past the
    /// cap).
    pub fn log(&self) -> &[ImpairEvent] {
        &self.log
    }

    /// Digest of the applied-event sequence plus the counters — the
    /// object of the `ImpairPlan` determinism property.
    pub fn log_digest(&self) -> u64 {
        statfold::log_digest(&self.log, &self.stats)
    }

    fn push(&mut self, ev: ImpairEvent) {
        statfold::push_capped(&mut self.log, ev);
    }

    /// Decide the fate of one segment leaving a link at `now`. Called
    /// once per serviced segment on whichever plane (EPS or circuit) is
    /// active, so every class applies across day/night transitions.
    pub fn on_wire(&mut self, now: SimTime) -> ImpairVerdict {
        let at_ns = now.as_nanos();
        if self.plan.loss_rate > 0.0 && self.rng.chance(self.plan.loss_rate) {
            self.stats.segs_dropped += 1;
            self.push(ImpairEvent::Drop { at_ns });
            return ImpairVerdict::Drop;
        }
        if self.plan.corrupt_rate > 0.0 && self.rng.chance(self.plan.corrupt_rate) {
            self.stats.segs_corrupted += 1;
            self.push(ImpairEvent::Corrupt { at_ns });
            return ImpairVerdict::Corrupt;
        }
        if self.plan.duplicate_rate > 0.0 && self.rng.chance(self.plan.duplicate_rate) {
            // Short lag: the copy lands while the original's ACK is
            // still in flight, exercising the receiver's duplicate path.
            let lag = SimDuration::from_nanos(self.rng.gen_range(1_000..50_000u64));
            self.stats.segs_duplicated += 1;
            self.push(ImpairEvent::Duplicate {
                at_ns,
                lag_ns: lag.as_nanos(),
            });
            return ImpairVerdict::Duplicate(lag);
        }
        if self.plan.reorder_rate > 0.0
            && self.plan.reorder_delay > SimDuration::ZERO
            && self.rng.chance(self.plan.reorder_rate)
        {
            let max_ns = self.plan.reorder_delay.as_nanos().max(1);
            let extra = SimDuration::from_nanos(self.rng.gen_range(1..=max_ns));
            self.stats.segs_reordered += 1;
            self.push(ImpairEvent::Reorder {
                at_ns,
                extra_ns: extra.as_nanos(),
            });
            return ImpairVerdict::Delay(extra);
        }
        ImpairVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(plan: ImpairPlan, seed: u64) -> ImpairInjector {
        ImpairInjector::new(plan, DetRng::new(seed).fork(IMPAIR_STREAM_LABEL))
    }

    #[test]
    fn empty_plan_impairs_nothing() {
        let mut inj = injector(ImpairPlan::none(), 1);
        for i in 0..200 {
            assert_eq!(inj.on_wire(SimTime::from_micros(i)), ImpairVerdict::Pass);
        }
        assert_eq!(inj.stats().total(), 0);
        assert!(inj.log().is_empty());
    }

    #[test]
    fn loss_rate_is_respected() {
        let mut inj = injector(ImpairPlan::loss(0.2), 7);
        let mut dropped = 0u64;
        for i in 0..5_000 {
            if inj.on_wire(SimTime::from_micros(i)) == ImpairVerdict::Drop {
                dropped += 1;
            }
        }
        assert_eq!(dropped, inj.stats().segs_dropped);
        let rate = dropped as f64 / 5_000.0;
        assert!((0.15..0.25).contains(&rate), "loss rate {rate}");
    }

    #[test]
    fn reorder_delay_is_bounded() {
        let plan = ImpairPlan {
            reorder_rate: 1.0,
            reorder_delay: SimDuration::from_micros(30),
            ..ImpairPlan::default()
        };
        let mut inj = injector(plan, 9);
        for i in 0..500 {
            match inj.on_wire(SimTime::from_micros(i)) {
                ImpairVerdict::Delay(extra) => {
                    assert!(extra > SimDuration::ZERO);
                    assert!(extra <= SimDuration::from_micros(30), "extra {extra}");
                }
                v => panic!("expected Delay, got {v:?}"),
            }
        }
        assert_eq!(inj.stats().segs_reordered, 500);
    }

    #[test]
    fn log_digest_is_deterministic_per_seed_and_plan() {
        let plan = ImpairPlan {
            loss_rate: 0.1,
            reorder_rate: 0.1,
            duplicate_rate: 0.05,
            corrupt_rate: 0.05,
            ..ImpairPlan::default()
        };
        let mut a = injector(plan.clone(), 11);
        let mut b = injector(plan.clone(), 11);
        for i in 0..2_000 {
            assert_eq!(
                a.on_wire(SimTime::from_micros(i)),
                b.on_wire(SimTime::from_micros(i))
            );
        }
        assert_eq!(a.log_digest(), b.log_digest());
        assert_eq!(a.log(), b.log());
        let mut c = injector(plan, 12);
        for i in 0..2_000 {
            c.on_wire(SimTime::from_micros(i));
        }
        assert_ne!(a.log_digest(), c.log_digest(), "seed must matter");
    }
}
