//! The shared injector bookkeeping shape.
//!
//! Every chaos layer ([`crate::faults`], [`crate::impair`],
//! [`crate::clock`]) carries the same three-piece bookkeeping block: a
//! struct of monotone counters folded into `RunResult::stats_digest`, a
//! capped log of applied events, and a `log_digest` that folds the log
//! length, every event, and the counters into one value. The first two
//! copies were hand-rolled; this module is the single home for the
//! pattern so the third (and any later) layer reuses it.
//!
//! Note on detlint: the counter structs keep their *inherent*
//! `write_digest` methods (the `digest_coverage` rule matches
//! `impl StructName` blocks by name); the [`InjectorStats`] impls
//! delegate to them, giving generic call sites a trait without hiding
//! the fold from the linter.

use testkit::Digest;

/// Cap on retained applied-event log entries per injector; the counters
/// keep counting past it.
pub const LOG_CAP: usize = 4096;

/// Counter block of one chaos injector: every field monotone, every
/// field folded into the run digest.
pub trait InjectorStats {
    /// Total events applied across all classes — zero on a clean run is
    /// the inert-plan guarantee made observable.
    fn total(&self) -> u64;
    /// Feed every counter into `d` in declaration order.
    fn write_digest(&self, d: &mut Digest);
}

/// One applied chaos event that can fold itself into a digest
/// (discriminant first, then payload, so reordered variants cannot
/// collide).
pub trait LogEvent {
    /// Feed the event into `d`, discriminant first.
    fn write_digest(&self, d: &mut Digest);
}

/// Append `ev` to `log` unless the [`LOG_CAP`] is reached.
pub fn push_capped<E>(log: &mut Vec<E>, ev: E) {
    if log.len() < LOG_CAP {
        log.push(ev);
    }
}

/// The shared log-digest fold: log length, then every event in
/// application order, then the counters.
pub fn log_digest<E: LogEvent, S: InjectorStats>(log: &[E], stats: &S) -> u64 {
    let mut d = Digest::new();
    d.write_usize(log.len());
    for ev in log {
        ev.write_digest(&mut d);
    }
    stats.write_digest(&mut d);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneStat(u64);
    impl InjectorStats for OneStat {
        fn total(&self) -> u64 {
            self.0
        }
        fn write_digest(&self, d: &mut Digest) {
            d.write_u64(self.0);
        }
    }
    struct Ev(u64);
    impl LogEvent for Ev {
        fn write_digest(&self, d: &mut Digest) {
            d.write_u64(1).write_u64(self.0);
        }
    }

    #[test]
    fn push_capped_stops_at_cap() {
        let mut log = Vec::new();
        for i in 0..(LOG_CAP as u64 + 10) {
            push_capped(&mut log, Ev(i));
        }
        assert_eq!(log.len(), LOG_CAP);
    }

    #[test]
    fn fold_covers_len_events_and_stats() {
        let log = vec![Ev(3), Ev(4)];
        let a = log_digest(&log, &OneStat(7));
        assert_eq!(a, log_digest(&log, &OneStat(7)));
        assert_ne!(a, log_digest(&log, &OneStat(8)), "stats must fold");
        assert_ne!(a, log_digest(&log[..1], &OneStat(7)), "len must fold");
    }
}
