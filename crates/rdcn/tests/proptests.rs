//! Property tests on the RDCN substrate: schedule total-coverage laws,
//! rotor matching completeness, VOQ conservation, and analytic-curve
//! monotonicity.

use proptest::collection::vec;
use proptest::prelude::*;
use rdcn::schedule::rotor;
use rdcn::{analytic, NetConfig, Schedule, Voq, VoqConfig};
use simcore::{SimDuration, SimTime};
use tcp::{Direction, FlowId, Segment};
use wire::TdnId;

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (
        1u64..1_000,                      // day_len us
        1u64..200,                        // night_len us
        vec(0u8..4, 1..10),               // day TDNs
    )
        .prop_map(|(d, n, days)| Schedule {
            day_len: SimDuration::from_micros(d),
            night_len: SimDuration::from_micros(n),
            days: days.into_iter().map(TdnId).collect(),
        })
}

proptest! {
    /// phase_at and day_number agree at every instant: the phase's day
    /// index matches the schedule layout, and phase ends are in the
    /// future.
    #[test]
    fn schedule_phase_consistency(s in arb_schedule(), t_us in 0u64..10_000_000) {
        let t = SimTime::from_micros(t_us);
        let phase = s.phase_at(t);
        prop_assert!(phase.ends() > t);
        match phase {
            rdcn::Phase::Day { index, tdn, started, ends } => {
                prop_assert!(started <= t);
                prop_assert_eq!(ends.saturating_since(started), s.day_len);
                prop_assert_eq!(s.days[index], tdn);
            }
            rdcn::Phase::Night { next_tdn, ends } => {
                // The announced TDN is the one actually active right after.
                let after = s.phase_at(ends);
                prop_assert_eq!(after.active(), Some(next_tdn));
            }
        }
    }

    /// Per-TDN uptimes sum to the total active time of a week.
    #[test]
    fn schedule_uptime_partition(s in arb_schedule()) {
        let total: u64 = (0..s.num_tdns())
            .map(|i| s.uptime_per_week(TdnId(i as u8)).as_nanos())
            .sum();
        prop_assert_eq!(total, s.day_len.as_nanos() * s.days.len() as u64);
    }

    /// Rotor matchings connect every pair exactly once for any even rack
    /// count.
    #[test]
    fn rotor_complete_coverage(half in 1usize..12) {
        let n = half * 2;
        let ms = rotor::matchings(n);
        prop_assert_eq!(ms.len(), n - 1);
        let mut count = vec![vec![0u32; n]; n];
        for m in &ms {
            for &(a, b) in m {
                count[a][b] += 1;
                count[b][a] += 1;
            }
        }
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    prop_assert_eq!(count[a][b], 1, "pair ({},{})", a, b);
                }
            }
        }
    }

    /// VOQ conservation: accepted = dequeued + still queued, per-class
    /// occupancy never exceeds the cap, and FIFO order holds per class.
    #[test]
    fn voq_conservation(
        ops in vec((0u8..3, 0u8..2), 1..200),
        cap in 1usize..20,
    ) {
        let mut v = Voq::new("p", VoqConfig { cap_pkts: cap, ecn_threshold: None });
        let mut accepted = 0u64;
        let mut dequeued = 0u64;
        let mut seq_counter = 0u32;
        let mut last_out: std::collections::HashMap<Option<TdnId>, u32> =
            std::collections::HashMap::new();
        let mut t = 0u64;
        for (op, tdn) in ops {
            t += 1;
            let now = SimTime::from_micros(t);
            match op {
                0 | 1 => {
                    let mut s = Segment::new(FlowId(0), Direction::DataPath);
                    s.len = 100;
                    s.seq = tcp::SeqNum(seq_counter);
                    seq_counter += 1;
                    s.pin = (op == 1).then_some(TdnId(tdn));
                    if v.enqueue(now, s) {
                        accepted += 1;
                    }
                }
                _ => {
                    if let Some(s) = v.dequeue_eligible(now, Some(TdnId(tdn))) {
                        dequeued += 1;
                        // FIFO within the segment's own class.
                        let k = s.pin;
                        if let Some(&prev) = last_out.get(&k) {
                            prop_assert!(s.seq.0 > prev, "per-class FIFO");
                        }
                        last_out.insert(k, s.seq.0);
                    }
                }
            }
            prop_assert!(v.len() as u64 == accepted - dequeued);
        }
        prop_assert_eq!(v.enqueued, accepted);
    }

    /// The analytic optimal curve is monotone and bounded by the fastest
    /// TDN's rate.
    #[test]
    fn optimal_curve_monotone(t1 in 0u64..5_000, dt in 1u64..5_000) {
        let cfg = NetConfig::paper_baseline();
        let a = analytic::optimal_bytes(&cfg, SimTime::from_micros(t1));
        let b = analytic::optimal_bytes(&cfg, SimTime::from_micros(t1 + dt));
        prop_assert!(b >= a);
        let max_rate_bytes_per_us = 100_000_000_000.0 / 8.0 / 1e6;
        prop_assert!(b - a <= (dt as f64 + 1.0) * max_rate_bytes_per_us);
    }
}
