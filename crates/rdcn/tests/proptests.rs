//! Property tests on the RDCN substrate: schedule total-coverage laws,
//! rotor matching completeness, VOQ conservation, analytic-curve
//! monotonicity, and notification-model determinism. Runs on the in-repo
//! `testkit` harness.

use rdcn::schedule::rotor;
use rdcn::{analytic, NetConfig, NotifyConfig, NotifyModel, Schedule, Voq, VoqConfig};
use simcore::{DetRng, SimDuration, SimTime};
use tcp::{Direction, FlowId, Segment};
use testkit::prop::{range, tuple2, tuple3, tuple4, vec_of, Gen};
use testkit::{tk_assert, tk_assert_eq};
use wire::TdnId;

fn arb_schedule() -> Gen<Schedule> {
    tuple3(
        range(1u64..1_000), // day_len us
        range(1u64..200),   // night_len us
        vec_of(range(0u8..4), 1..10),
    )
    .map(|(d, n, days)| Schedule {
        day_len: SimDuration::from_micros(d),
        night_len: SimDuration::from_micros(n),
        days: days.into_iter().map(TdnId).collect(),
    })
}

testkit::props! {
    // phase_at and day_number agree at every instant: the phase's day
    // index matches the schedule layout, and phase ends are in the
    // future.
    fn schedule_phase_consistency(
        input in tuple2(arb_schedule(), range(0u64..10_000_000))
    ) {
        let (s, t_us) = input;
        let t = SimTime::from_micros(t_us);
        let phase = s.phase_at(t);
        tk_assert!(phase.ends() > t);
        match phase {
            rdcn::Phase::Day { index, tdn, started, ends } => {
                tk_assert!(started <= t);
                tk_assert_eq!(ends.saturating_since(started), s.day_len);
                tk_assert_eq!(s.days[index], tdn);
            }
            rdcn::Phase::Night { next_tdn, ends } => {
                // The announced TDN is the one actually active right after.
                let after = s.phase_at(ends);
                tk_assert_eq!(after.active(), Some(next_tdn));
            }
        }
    }

    // Per-TDN uptimes sum to the total active time of a week.
    fn schedule_uptime_partition(s in arb_schedule()) {
        let total: u64 = (0..s.num_tdns())
            .map(|i| s.uptime_per_week(TdnId(i as u8)).as_nanos())
            .sum();
        tk_assert_eq!(total, s.day_len.as_nanos() * s.days.len() as u64);
    }

    // Rotor matchings connect every pair exactly once for any even rack
    // count.
    fn rotor_complete_coverage(half in range(1usize..12)) {
        let n = half * 2;
        let ms = rotor::matchings(n);
        tk_assert_eq!(ms.len(), n - 1);
        let mut count = vec![vec![0u32; n]; n];
        for m in &ms {
            for &(a, b) in m {
                count[a][b] += 1;
                count[b][a] += 1;
            }
        }
        for (a, row) in count.iter().enumerate() {
            for (b, &c) in row.iter().enumerate() {
                if a != b {
                    tk_assert_eq!(c, 1, "pair ({},{})", a, b);
                }
            }
        }
    }

    // VOQ conservation: accepted = dequeued + still queued, per-class
    // occupancy never exceeds the cap, and FIFO order holds per class.
    fn voq_conservation(
        input in tuple2(
            vec_of(tuple2(range(0u8..3), range(0u8..2)), 1..200),
            range(1usize..20),
        )
    ) {
        let (ops, cap) = input;
        let mut v = Voq::new("p", VoqConfig { cap_pkts: cap, ecn_threshold: None });
        let mut accepted = 0u64;
        let mut dequeued = 0u64;
        let mut seq_counter = 0u32;
        let mut last_out: std::collections::BTreeMap<Option<TdnId>, u32> =
            std::collections::BTreeMap::new();
        let mut t = 0u64;
        for (op, tdn) in ops {
            t += 1;
            let now = SimTime::from_micros(t);
            match op {
                0 | 1 => {
                    let mut s = Segment::new(FlowId(0), Direction::DataPath);
                    s.len = 100;
                    s.seq = tcp::SeqNum(seq_counter);
                    seq_counter += 1;
                    s.pin = (op == 1).then_some(TdnId(tdn));
                    if v.enqueue(now, s) {
                        accepted += 1;
                    }
                }
                _ => {
                    if let Some(s) = v.dequeue_eligible(now, Some(TdnId(tdn))) {
                        dequeued += 1;
                        // FIFO within the segment's own class.
                        let k = s.pin;
                        if let Some(&prev) = last_out.get(&k) {
                            tk_assert!(s.seq.0 > prev, "per-class FIFO");
                        }
                        last_out.insert(k, s.seq.0);
                    }
                }
            }
            tk_assert!(v.len() as u64 == accepted - dequeued);
        }
        tk_assert_eq!(v.enqueued, accepted);
    }

    // The analytic optimal curve is monotone and bounded by the fastest
    // TDN's rate.
    fn optimal_curve_monotone(
        input in tuple2(range(0u64..5_000), range(1u64..5_000))
    ) {
        let (t1, dt) = input;
        let cfg = NetConfig::paper_baseline();
        let a = analytic::optimal_bytes(&cfg, SimTime::from_micros(t1));
        let b = analytic::optimal_bytes(&cfg, SimTime::from_micros(t1 + dt));
        tk_assert!(b >= a);
        let max_rate_bytes_per_us = 100_000_000_000.0 / 8.0 / 1e6;
        tk_assert!(b - a <= (dt as f64 + 1.0) * max_rate_bytes_per_us);
    }

    // Fault injection is a pure function of (plan, seed): two injectors
    // built from the same plan and the same forked stream agree verdict
    // by verdict, and their logs, stats and digests are identical. A
    // different seed must diverge whenever any probabilistic fault is
    // armed and enough notifications flow to make collision unlikely.
    fn fault_injector_determinism(
        input in tuple3(
            range(0u64..1_000),                       // seed
            tuple3(range(0u32..101), range(0u32..101), range(0u32..101)),
            vec_of(tuple2(range(0u64..64), range(0usize..8)), 1..120),
        )
    ) {
        let (seed, (loss_pct, dup_pct, delay_pct), ops) = input;
        let plan = rdcn::FaultPlan {
            notify_loss: f64::from(loss_pct) / 100.0,
            notify_duplicate: f64::from(dup_pct) / 100.0,
            notify_extra_delay: Some((
                f64::from(delay_pct) / 100.0,
                SimDuration::from_micros(5),
            )),
            link_failure: Some(rdcn::LinkFailure {
                day: 10,
                at_fraction: 0.5,
                outage_days: 4,
            }),
            eps_burst: Some(rdcn::EpsBurst {
                start: SimTime::from_micros(100),
                len: SimDuration::from_micros(200),
                drop_rate: f64::from(loss_pct) / 100.0,
                corrupt_rate: f64::from(dup_pct) / 100.0,
            }),
            ..rdcn::FaultPlan::default()
        };
        let mk = || {
            rdcn::FaultInjector::new(
                plan.clone(),
                DetRng::new(seed).fork(rdcn::FAULT_STREAM_LABEL),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        for &(day, flow) in &ops {
            let side = (day % 2) as u8;
            tk_assert_eq!(a.on_notify(day, flow, side), b.on_notify(day, flow, side));
            tk_assert_eq!(a.schedule_day(day), b.schedule_day(day));
            tk_assert_eq!(
                a.day_fate(day, TdnId((day % 2) as u8), TdnId(0)),
                b.day_fate(day, TdnId((day % 2) as u8), TdnId(0))
            );
            let t = SimTime::from_micros(day * 7);
            tk_assert_eq!(a.on_transit(t), b.on_transit(t));
        }
        tk_assert_eq!(a.log(), b.log());
        tk_assert_eq!(a.stats(), b.stats());
        tk_assert_eq!(a.log_digest(), b.log_digest());

        // A different seed draws a different fault stream. Only check
        // when the plan is probabilistic enough that equality would be
        // a miracle (many ops, mid-range rates).
        if (20..=80).contains(&loss_pct) && ops.len() >= 60 {
            let mut c = rdcn::FaultInjector::new(
                plan.clone(),
                DetRng::new(seed + 1).fork(rdcn::FAULT_STREAM_LABEL),
            );
            for &(day, flow) in &ops {
                let _ = c.on_notify(day, flow, (day % 2) as u8);
                let _ = c.schedule_day(day);
                let _ = c.day_fate(day, TdnId((day % 2) as u8), TdnId(0));
                let _ = c.on_transit(SimTime::from_micros(day * 7));
            }
            tk_assert!(
                c.log_digest() != a.log_digest(),
                "independent seeds produced identical fault streams"
            );
        }
    }

    // The data-path impairment injector is a pure function of
    // (plan, seed): two injectors built from the same plan and the same
    // forked stream agree verdict by verdict, and their logs, stats and
    // digests are identical — the reproducibility contract the chaos
    // soak's shrinking depends on. A different seed must diverge
    // whenever the rates are mid-range and enough segments flow.
    fn impair_injector_determinism(
        input in tuple3(
            range(0u64..1_000),                       // seed
            tuple4(
                range(0u32..101),                     // loss %
                range(0u32..101),                     // reorder %
                range(0u32..101),                     // duplicate %
                range(0u32..101),                     // corrupt %
            ),
            vec_of(range(1u64..10_000), 1..200),      // service times, us
        )
    ) {
        let (seed, (loss, reorder, dup, corrupt), times) = input;
        let plan = rdcn::ImpairPlan {
            loss_rate: f64::from(loss) / 100.0,
            reorder_rate: f64::from(reorder) / 100.0,
            reorder_delay: SimDuration::from_micros(120),
            duplicate_rate: f64::from(dup) / 100.0,
            corrupt_rate: f64::from(corrupt) / 100.0,
        };
        let mk = |s: u64| {
            rdcn::ImpairInjector::new(
                plan.clone(),
                DetRng::new(s).fork(rdcn::IMPAIR_STREAM_LABEL),
            )
        };
        let (mut a, mut b) = (mk(seed), mk(seed));
        for &t_us in &times {
            let t = SimTime::from_micros(t_us);
            tk_assert_eq!(a.on_wire(t), b.on_wire(t));
        }
        tk_assert_eq!(a.log(), b.log());
        tk_assert_eq!(a.stats(), b.stats());
        tk_assert_eq!(a.log_digest(), b.log_digest());

        // An inert plan never draws: the verdict stream is all Pass and
        // the log digest equals a fresh injector's.
        let mut inert = rdcn::ImpairInjector::new(
            rdcn::ImpairPlan::none(),
            DetRng::new(seed).fork(rdcn::IMPAIR_STREAM_LABEL),
        );
        for &t_us in &times {
            tk_assert_eq!(
                inert.on_wire(SimTime::from_micros(t_us)),
                rdcn::ImpairVerdict::Pass
            );
        }
        tk_assert_eq!(inert.stats().total(), 0);

        // A different seed draws a different impairment stream — only
        // checked when rates make coincidence astronomically unlikely.
        if (20..=80).contains(&loss) && times.len() >= 60 {
            let mut c = mk(seed + 1);
            for &t_us in &times {
                let _ = c.on_wire(SimTime::from_micros(t_us));
            }
            tk_assert!(
                c.log_digest() != a.log_digest(),
                "independent seeds produced identical impairment streams"
            );
        }
    }

    // New with the testkit port: the §5.4 notification model is
    // deterministic per seed (same seed ⇒ identical component samples),
    // its components always sum to the reported total, and the optimized
    // configuration never adds push fan-out cost.
    fn notify_model_deterministic(
        input in tuple3(range(0u64..1_000), range(0usize..16), range(0u8..2))
    ) {
        let (seed, flow_idx, which) = input;
        let cfg = if which == 0 {
            NotifyConfig::optimized()
        } else {
            NotifyConfig::unoptimized()
        };
        let model = NotifyModel::new(cfg);
        let mut r1 = DetRng::new(seed);
        let mut r2 = DetRng::new(seed);
        let a = model.sample(&mut r1, flow_idx);
        let b = model.sample(&mut r2, flow_idx);
        tk_assert_eq!(a.construction, b.construction);
        tk_assert_eq!(a.fanout, b.fanout);
        tk_assert_eq!(a.transit, b.transit);
        tk_assert_eq!(a.total(), a.construction + a.fanout + a.transit);
        if which == 0 {
            // Pull model: fan-out cost is flow-count independent and tiny.
            tk_assert!(a.fanout < simcore::SimDuration::from_micros(1));
        }
    }
}
