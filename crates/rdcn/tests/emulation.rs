//! End-to-end emulator tests: real TCP flows over the emulated RDCN.
//! These pin down the dynamics every figure depends on: flows complete,
//! throughput lands between the packet-only floor and the optimal
//! ceiling, VOQs drain during optical days, and runs are deterministic.

use rdcn::{analytic, Emulator, NetConfig};
use simcore::{SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic, Dctcp};
use tcp::{Config, Connection, FlowId, Transport};

fn cubic_factory(
    n_bytes: u64,
    ecn: bool,
) -> impl FnMut(usize) -> (Box<dyn Transport>, Box<dyn Transport>) {
    move |i| {
        let cfg = Config {
            bytes_to_send: n_bytes,
            ecn,
            ..Config::default()
        };
        let cc = CcConfig::default();
        let mk = |c: CcConfig| -> Box<dyn tcp::CongestionControl> {
            if ecn {
                Box::new(Dctcp::new(c))
            } else {
                Box::new(Cubic::new(c))
            }
        };
        let s = Connection::connect(FlowId(i as u32), cfg.clone(), mk(cc), SimTime::ZERO);
        let r = Connection::listen(FlowId(i as u32), cfg, mk(cc));
        (
            Box::new(s) as Box<dyn Transport>,
            Box::new(r) as Box<dyn Transport>,
        )
    }
}

#[test]
fn single_flow_bulk_completes() {
    let cfg = NetConfig::paper_baseline();
    let emu = Emulator::new(cfg, 1, Box::new(cubic_factory(2_000_000, false)));
    let res = emu.run(SimTime::from_millis(50));
    assert_eq!(res.receiver_stats[0].bytes_delivered, 2_000_000, "{res:?}");
    assert_eq!(res.sender_stats[0].bytes_acked, 2_000_000);
}

#[test]
fn sixteen_flows_share_fairly_enough() {
    let cfg = NetConfig::paper_baseline();
    let emu = Emulator::new(cfg, 16, Box::new(cubic_factory(u64::MAX, false)));
    let res = emu.run(SimTime::from_millis(20));
    let per_flow: Vec<u64> = res.receiver_stats.iter().map(|s| s.bytes_delivered).collect();
    let total: u64 = per_flow.iter().sum();
    assert!(total > 0);
    // Every flow makes progress (no starvation).
    for (i, &b) in per_flow.iter().enumerate() {
        assert!(b > 0, "flow {i} starved: {per_flow:?}");
    }
}

#[test]
fn cubic_lands_between_packet_only_and_optimal() {
    // The central Fig. 2 observation: CUBIC beats nothing below the
    // packet-only floor by much, and sits far below optimal.
    let cfg = NetConfig::paper_baseline();
    let horizon = SimTime::from_millis(20);
    let emu = Emulator::new(cfg.clone(), 16, Box::new(cubic_factory(u64::MAX, false)));
    let res = emu.run(horizon);
    let measured = res.total_acked() as f64;
    let optimal = analytic::optimal_bytes(&cfg, horizon);
    let packet_only = analytic::packet_only_bytes(&cfg, horizon);
    assert!(
        measured < optimal,
        "measured {measured:.0} must be below optimal {optimal:.0}"
    );
    assert!(
        measured > packet_only * 0.5,
        "measured {measured:.0} vs packet-only {packet_only:.0}: too low"
    );
}

#[test]
fn voq_drains_during_optical_days() {
    // Appendix A.3: with CUBIC the VOQ stays occupied during packet days
    // and is nearly empty during optical days (service rate >> arrival).
    let cfg = NetConfig::paper_baseline();
    let sched = cfg.schedule.clone();
    let emu = Emulator::new(cfg, 16, Box::new(cubic_factory(u64::MAX, false)));
    let res = emu.run(SimTime::from_millis(15));
    // Average occupancy over packet vs optical days, skipping warmup.
    let (mut pkt_sum, mut pkt_n, mut opt_sum, mut opt_n) = (0.0, 0u64, 0.0, 0u64);
    let start = SimTime::from_millis(5);
    let mut t = start;
    while t < SimTime::from_millis(15) {
        let v = res.voq_ab.value_at(t, 0.0);
        match sched.phase_at(t).active() {
            Some(wire::TdnId(0)) => {
                pkt_sum += v;
                pkt_n += 1;
            }
            Some(_) => {
                opt_sum += v;
                opt_n += 1;
            }
            None => {}
        }
        t += SimDuration::from_micros(5);
    }
    let pkt_avg = pkt_sum / pkt_n as f64;
    let opt_avg = opt_sum / opt_n as f64;
    assert!(
        opt_avg < pkt_avg,
        "optical-day VOQ {opt_avg:.2} should sit below packet-day {pkt_avg:.2}"
    );
}

#[test]
fn dctcp_keeps_voq_below_cubic() {
    // With 16 flows the VOQ is floor-limited (16 x 2-MSS minimum windows
    // exceed cap + BDP) and every CCA pins the queue — the regime of
    // Fig. 7b where only TDTCP escapes. Use 4 flows so DCTCP's ECN
    // back-off has room to show.
    let run = |ecn: bool| {
        let mut cfg = NetConfig::paper_baseline();
        cfg.voq.ecn_threshold = if ecn { Some(4) } else { None };
        let emu = Emulator::new(cfg, 4, Box::new(cubic_factory(u64::MAX, ecn)));
        let res = emu.run(SimTime::from_millis(15));
        let pts = res.voq_ab.points();
        let from = SimTime::from_millis(5);
        let (sum, n) = pts
            .iter()
            .filter(|(t, _)| *t >= from)
            .fold((0.0, 0u32), |(s, n), (_, v)| (s + v, n + 1));
        (sum / n as f64, res.ce_marks_ab)
    };
    let (cubic_avg, cubic_marks) = run(false);
    let (dctcp_avg, dctcp_marks) = run(true);
    assert_eq!(cubic_marks, 0);
    assert!(dctcp_marks > 0, "DCTCP flows must see CE marks");
    assert!(
        dctcp_avg < cubic_avg,
        "DCTCP mean VOQ {dctcp_avg:.2} should undercut CUBIC {cubic_avg:.2}"
    );
}

#[test]
fn deterministic_runs() {
    let run = || {
        let cfg = NetConfig::paper_baseline();
        let emu = Emulator::new(cfg, 4, Box::new(cubic_factory(u64::MAX, false)));
        let res = emu.run(SimTime::from_millis(10));
        (res.total_acked(), res.drops_ab, res.events)
    };
    assert_eq!(run(), run());
}

#[test]
fn day_records_cover_run() {
    let cfg = NetConfig::paper_baseline();
    let emu = Emulator::new(cfg.clone(), 4, Box::new(cubic_factory(u64::MAX, false)));
    let res = emu.run(SimTime::from_millis(10));
    // 10ms / 200us slots = 50 days; the last may be unfinished.
    assert!(res.day_records.len() >= 48, "{}", res.day_records.len());
    for (i, rec) in res.day_records.iter().enumerate() {
        assert_eq!(rec.day, i as u64);
        assert_eq!(rec.tdn, cfg.schedule.day_tdn(i as u64));
    }
    // Optical days exist in the record (1 in 7).
    assert!(res.day_records.iter().any(|r| r.tdn == wire::TdnId(1)));
}

#[test]
fn drops_occur_with_bursty_cubic_and_tiny_voq() {
    let mut cfg = NetConfig::paper_baseline();
    cfg.voq.cap_pkts = 4;
    let emu = Emulator::new(cfg, 16, Box::new(cubic_factory(u64::MAX, false)));
    let res = emu.run(SimTime::from_millis(10));
    assert!(res.drops_ab > 0, "a 4-packet VOQ under 16 bursty flows drops");
    // And the flows survive it.
    assert!(res.total_acked() > 0);
}
