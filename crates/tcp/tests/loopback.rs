//! End-to-end loopback tests: two `Connection`s joined by a simple
//! delay/loss pipe, driven by the simcore event queue. These exercise the
//! handshake, bulk transfer, SACK recovery, RTO, TLP, FIN teardown, and
//! determinism — the machinery every experiment in the harness relies on.

use simcore::{EventQueue, SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic, Reno};
use tcp::{Config, Connection, Segment, Transport};

const MSS: u32 = 1000;

fn test_config(bytes: u64) -> Config {
    Config {
        mss: MSS,
        recv_buf: 1 << 20,
        bytes_to_send: bytes,
        ..Config::default()
    }
}

enum Ev {
    Deliver { to: usize, seg: Segment },
    Timer { who: usize },
}

/// Drive both endpoints until quiescent or `deadline`. `drop_tx` decides,
/// per segment leaving endpoint 0 (the sender), whether the network drops
/// it; `delay` is the one-way latency both ways.
type DropFn = Box<dyn FnMut(&Segment, u64) -> bool>;

struct Pipe {
    q: EventQueue<Ev>,
    delay: SimDuration,
    drop_tx: DropFn,
    tx_count: u64,
    timer_scheduled: [Option<(SimTime, simcore::EventId)>; 2],
}

impl Pipe {
    fn new(delay_us: u64, drop_tx: impl FnMut(&Segment, u64) -> bool + 'static) -> Self {
        Pipe {
            q: EventQueue::new(),
            delay: SimDuration::from_micros(delay_us),
            drop_tx: Box::new(drop_tx),
            tx_count: 0,
            timer_scheduled: [None, None],
        }
    }

    fn flush(&mut self, now: SimTime, who: usize, conn: &mut Connection) {
        while let Some(seg) = Transport::poll_send(conn, now) {
            let dropped = if seg.has_payload() || seg.flags.syn || seg.flags.fin {
                self.tx_count += 1;
                (self.drop_tx)(&seg, self.tx_count)
            } else {
                false
            };
            if !dropped {
                self.q.schedule(now + self.delay, Ev::Deliver { to: 1 - who, seg });
            }
        }
        // (Re)arm the endpoint's timer event.
        let want = Transport::next_timer(conn);
        let have = self.timer_scheduled[who];
        if want.map(|t| t.max(now)) != have.map(|(t, _)| t) {
            if let Some((_, id)) = have {
                self.q.cancel(id);
            }
            self.timer_scheduled[who] = want.map(|t| {
                let t = t.max(now);
                (t, self.q.schedule(t, Ev::Timer { who }))
            });
        }
    }

    fn run(&mut self, conns: &mut [Connection; 2], deadline: SimTime) -> SimTime {
        self.flush(SimTime::ZERO, 0, &mut conns[0]);
        self.flush(SimTime::ZERO, 1, &mut conns[1]);
        let mut now = SimTime::ZERO;
        while let Some((t, ev)) = self.q.pop() {
            now = t;
            if now > deadline {
                break;
            }
            match ev {
                Ev::Deliver { to, seg } => {
                    conns[to].on_segment(now, &seg);
                    self.flush(now, to, &mut conns[to]);
                    self.flush(now, 1 - to, &mut conns[1 - to]);
                }
                Ev::Timer { who } => {
                    self.timer_scheduled[who] = None;
                    conns[who].on_timer(now);
                    self.flush(now, who, &mut conns[who]);
                }
            }
            if conns[0].is_done() && conns[1].is_done() {
                break;
            }
        }
        now
    }
}

fn transfer(
    bytes: u64,
    delay_us: u64,
    drop_tx: impl FnMut(&Segment, u64) -> bool + 'static,
) -> ([Connection; 2], SimTime) {
    let cfg = test_config(bytes);
    let cc = CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    };
    let mut conns = [
        Connection::connect(
            tcp::FlowId(1),
            cfg.clone(),
            Box::new(Cubic::new(cc)),
            SimTime::ZERO,
        ),
        Connection::listen(tcp::FlowId(1), cfg, Box::new(Cubic::new(cc))),
    ];
    let mut pipe = Pipe::new(delay_us, drop_tx);
    let end = pipe.run(&mut conns, SimTime::from_secs(10));
    (conns, end)
}

#[test]
fn clean_transfer_completes() {
    let (conns, _) = transfer(100_000, 50, |_, _| false);
    assert!(conns[0].is_done(), "sender: {:?}", conns[0]);
    assert!(conns[1].is_done(), "receiver: {:?}", conns[1]);
    assert_eq!(conns[1].stats().bytes_delivered, 100_000);
    assert_eq!(conns[0].stats().bytes_acked, 100_000);
    assert_eq!(conns[0].stats().retransmits, 0);
    assert_eq!(conns[1].stats().spurious_retransmits, 0);
}

#[test]
fn handshake_establishes_both_ends() {
    let (conns, _) = transfer(1_000, 50, |_, _| false);
    assert!(conns[0].established_at().is_some());
    assert!(conns[1].established_at().is_some());
    // Roughly 1.5 RTT for the initiator to establish (SYN + SYN-ACK).
    let t = conns[0].established_at().unwrap();
    assert_eq!(t, SimTime::from_micros(100));
}

#[test]
fn rtt_estimator_converges_to_path_rtt() {
    let (conns, _) = transfer(500_000, 50, |_, _| false);
    let srtt = conns[0].rtt().srtt().expect("samples taken");
    let us = srtt.as_micros();
    assert!((95..=115).contains(&us), "srtt {us}us should be ~100us");
}

#[test]
fn single_loss_recovers_via_sack() {
    // Drop exactly the 20th data transmission.
    let (conns, _) = transfer(300_000, 50, |_, n| n == 20);
    assert!(conns[0].is_done());
    assert_eq!(conns[1].stats().bytes_delivered, 300_000);
    assert!(conns[0].stats().retransmits >= 1);
    assert!(conns[0].stats().fast_recoveries >= 1 || conns[0].stats().tlps >= 1);
    // No RTO needed: SACK/TLP recovery is enough for a mid-stream loss.
    assert_eq!(conns[0].stats().rtos, 0, "stats: {:?}", conns[0].stats());
}

#[test]
fn burst_loss_recovers() {
    let (conns, _) = transfer(300_000, 50, |_, n| (30..36).contains(&n));
    assert!(conns[0].is_done(), "sender {:?} {:?}", conns[0], conns[0].stats());
    assert_eq!(conns[1].stats().bytes_delivered, 300_000);
    assert!(conns[0].stats().retransmits >= 6);
}

#[test]
fn random_heavy_loss_still_completes() {
    use simcore::DetRng;
    let mut rng = DetRng::new(7);
    let (conns, _) = transfer(200_000, 50, move |_, _| rng.chance(0.05));
    assert!(conns[0].is_done(), "{:?}", conns[0].stats());
    assert_eq!(conns[1].stats().bytes_delivered, 200_000);
}

#[test]
fn tail_loss_recovered_by_probe_or_rto() {
    // Drop the very last data segment (and the FIN once).
    let (conns, _) = transfer(50_000, 50, |seg, _| {
        seg.has_payload() && seg.seq.0 as u64 + seg.len as u64 == 50_001 && seg.len == 49
    });
    // seq 1 + 50_000 bytes; last partial segment [49952, 50001).
    assert!(conns[0].is_done(), "{:?} {:?}", conns[0], conns[0].stats());
    assert_eq!(conns[1].stats().bytes_delivered, 50_000);
}

#[test]
fn syn_loss_retransmitted_by_rto() {
    let mut dropped_syn = false;
    let (conns, _) = transfer(10_000, 50, move |seg, _| {
        if seg.flags.syn && !dropped_syn {
            dropped_syn = true;
            return true;
        }
        false
    });
    assert!(conns[0].is_done());
    assert_eq!(conns[1].stats().bytes_delivered, 10_000);
    assert!(conns[0].stats().rtos >= 1, "SYN loss needs an RTO");
}

#[test]
fn duplicate_delivery_counts_spurious() {
    // Never drop, but duplicate one data segment by a custom pipe: easiest
    // proxy — force a retransmit by dropping an ACK-side segment? ACKs are
    // not dropped by our hook, so instead drop a data segment whose
    // retransmission will arrive after a TLP already resent it.
    let (conns, _) = transfer(100_000, 200, |_, n| n == 50 || n == 53);
    assert!(conns[0].is_done());
    assert_eq!(conns[1].stats().bytes_delivered, 100_000);
}

#[test]
fn throughput_reasonable_for_window_limited_flow() {
    // 100k bytes, 100us RTT, no loss: should finish in a handful of RTTs
    // (slow start from 10 segments: 10+20+40+64... covers 100 segments in
    // ~4 RTTs) plus handshake.
    let (_, end) = transfer(100_000, 50, |_, _| false);
    assert!(
        end <= SimTime::from_micros(1200),
        "transfer took {end}, expected < 1.2ms"
    );
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (conns, end) = transfer(150_000, 50, |_, n| n % 37 == 0);
        (
            end,
            *conns[0].stats(),
            *conns[1].stats(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn reno_also_completes() {
    let cfg = test_config(100_000);
    let cc = CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    };
    let mut conns = [
        Connection::connect(
            tcp::FlowId(2),
            cfg.clone(),
            Box::new(Reno::new(cc)),
            SimTime::ZERO,
        ),
        Connection::listen(tcp::FlowId(2), cfg, Box::new(Reno::new(cc))),
    ];
    let mut pipe = Pipe::new(50, |_, n| n == 11);
    pipe.run(&mut conns, SimTime::from_secs(10));
    assert!(conns[0].is_done());
    assert_eq!(conns[1].stats().bytes_delivered, 100_000);
}

#[test]
fn receiver_window_limits_inflight() {
    // Tiny receive buffer: sender must respect it and still finish.
    let mut cfg = test_config(50_000);
    cfg.recv_buf = 4 * MSS;
    let cc = CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    };
    let mut conns = [
        Connection::connect(
            tcp::FlowId(3),
            cfg.clone(),
            Box::new(Cubic::new(cc)),
            SimTime::ZERO,
        ),
        Connection::listen(tcp::FlowId(3), cfg, Box::new(Cubic::new(cc))),
    ];
    let mut pipe = Pipe::new(50, |_, _| false);
    pipe.run(&mut conns, SimTime::from_secs(10));
    assert!(conns[0].is_done());
    assert_eq!(conns[1].stats().bytes_delivered, 50_000);
}
