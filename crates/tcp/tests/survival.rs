//! Survival-hardening tests for the TCP engine: zero-window persist
//! probing with backoff, the max-retransmissions abort, and SACK
//! reneging tolerance. These are the behaviours the chaos soak's
//! no-silent-stall invariant leans on.

use simcore::SimTime;
use tcp::cc::{CcConfig, Cubic};
use tcp::{
    Config, ConnError, Connection, Direction, FlowId, SackBlocks, Segment, SeqNum, Transport,
};

const MSS: u32 = 1000;

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

fn cfg(bytes: u64) -> Config {
    Config {
        mss: MSS,
        bytes_to_send: bytes,
        pacing: false,
        tlp: false, // force the RTO path; TLP timing is covered elsewhere
        ..Config::default()
    }
}

fn cc() -> Box<dyn tcp::CongestionControl> {
    Box::new(Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    }))
}

/// Establish by hand; returns the sender with the handshake drained.
fn establish(config: Config) -> Connection {
    let mut a = Connection::connect(FlowId(1), config, cc(), t(0));
    let _syn = a.poll_send(t(0)).unwrap();
    let mut synack = Segment::new(FlowId(1), Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.seq = SeqNum(0);
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 20;
    a.on_segment(t(100), &synack);
    assert!(a.is_established());
    let hs = a.poll_send(t(100)).expect("handshake ACK");
    assert!(!hs.has_payload());
    a
}

fn ack(cum: SeqNum, wnd: u32) -> Segment {
    let mut s = Segment::new(FlowId(1), Direction::AckPath);
    s.flags.ack = true;
    s.ack = cum;
    s.wnd = wnd;
    s
}

/// Park the sender behind a zero window with data still unsent: four
/// segments out, all acked, window closed.
fn park_behind_zero_window(a: &mut Connection, now_us: u64) {
    for _ in 0..4 {
        Transport::poll_send(a, t(110)).expect("window open");
    }
    a.on_segment(t(now_us), &ack(SeqNum(1 + 4 * MSS), 0));
    assert!(
        Transport::poll_send(a, t(now_us)).is_none(),
        "no new data at wnd=0"
    );
}

#[test]
fn persist_probe_fires_backs_off_and_resumes() {
    let mut a = establish(cfg(u64::from(10 * MSS)));
    park_behind_zero_window(&mut a, 300);

    // The persist timer is armed (nothing outstanding, so it is the only
    // timer) and fires a one-byte probe from the unsent stream.
    let fire1 = Transport::next_timer(&a).expect("persist armed");
    let gap1 = fire1.saturating_since(t(300));
    a.on_timer(fire1);
    let probe = Transport::poll_send(&mut a, fire1).expect("probe sent");
    assert_eq!(probe.seq, SeqNum(1 + 4 * MSS));
    assert_eq!(probe.len, 1, "window probe is one byte of real data");
    assert_eq!(a.stats().persist_probes, 1);

    // The peer acks the probe byte but keeps the window shut: the timer
    // re-arms with exponential backoff.
    let t2 = fire1 + gap1 / 4;
    a.on_segment(t2, &ack(SeqNum(1 + 4 * MSS + 1), 0));
    let fire2 = Transport::next_timer(&a).expect("persist re-armed");
    let gap2 = fire2.saturating_since(t2);
    assert!(gap2 > gap1, "backoff must grow: {gap1} then {gap2}");
    a.on_timer(fire2);
    let probe2 = Transport::poll_send(&mut a, fire2).expect("second probe");
    assert_eq!(probe2.seq, SeqNum(1 + 4 * MSS + 1));
    assert_eq!(a.stats().persist_probes, 2);

    // The window reopens: full-size sending resumes in sequence.
    let t3 = fire2 + gap1;
    a.on_segment(t3, &ack(SeqNum(1 + 4 * MSS + 2), 1 << 20));
    let seg = Transport::poll_send(&mut a, t3).expect("window reopened");
    assert_eq!(seg.seq, SeqNum(1 + 4 * MSS + 2));
    assert_eq!(seg.len, MSS);
    assert!(a.conn_error().is_none());
}

#[test]
fn persist_timeout_aborts_with_conn_error() {
    let mut a = establish(Config {
        max_retries: 3,
        ..cfg(u64::from(10 * MSS))
    });
    park_behind_zero_window(&mut a, 300);

    // The peer acks every probe but never reopens its window; after
    // `max_retries` probes the connection surrenders explicitly.
    let mut acked = SeqNum(1 + 4 * MSS);
    for _ in 0..20 {
        if a.is_done() {
            break;
        }
        let fire = Transport::next_timer(&a).expect("a timer while alive");
        a.on_timer(fire);
        while let Some(seg) = Transport::poll_send(&mut a, fire) {
            if seg.has_payload() {
                acked = seg.seq + seg.len;
            }
        }
        if !a.is_done() {
            a.on_segment(fire + gap_us(1), &ack(acked, 0));
        }
    }
    assert!(a.is_done(), "zero-window flow must terminate");
    assert_eq!(a.conn_error(), Some(ConnError::PersistTimeout { probes: 3 }));
    assert_eq!(a.stats().persist_probes, 3);
    assert_eq!(a.stats().conn_aborts, 1);
}

fn gap_us(us: u64) -> simcore::SimDuration {
    simcore::SimDuration::from_micros(us)
}

/// Satellite regression: a blackholed flow (no ACKs, ever) terminates
/// with `ConnError::RetransmitLimit` instead of retrying forever behind
/// the shift-capped RTO backoff.
#[test]
fn blackholed_flow_aborts_with_retransmit_limit() {
    let mut a = establish(Config {
        max_retries: 3,
        ..cfg(u64::from(10 * MSS))
    });
    for _ in 0..4 {
        Transport::poll_send(&mut a, t(110)).expect("window open");
    }
    // Nothing ever comes back. Drive timers until the engine gives up.
    let mut fired = 0;
    while !a.is_done() {
        let fire = Transport::next_timer(&a).expect("RTO armed while alive");
        a.on_timer(fire);
        while Transport::poll_send(&mut a, fire).is_some() {}
        fired += 1;
        assert!(fired <= 10, "flow did not terminate within the retry budget");
    }
    assert_eq!(
        a.conn_error(),
        Some(ConnError::RetransmitLimit { retries: 3 })
    );
    assert!(a.stats().rtos >= 3);
    assert_eq!(a.stats().conn_aborts, 1);
    assert!(
        Transport::poll_send(&mut a, t(1_000_000)).is_none(),
        "an aborted flow transmits nothing"
    );
}

/// SACK reneging tolerance: ranges the receiver SACKed and then
/// discarded are re-marked lost at the next RTO (never freed on SACK
/// alone), retransmitted, and the flow completes cleanly.
#[test]
fn sack_reneged_ranges_are_retransmitted_and_flow_completes() {
    let mut a = establish(cfg(u64::from(6 * MSS)));
    let mut sent = 0;
    while let Some(seg) = Transport::poll_send(&mut a, t(110)) {
        if seg.has_payload() {
            sent += 1;
        }
    }
    assert_eq!(sent, 6, "all data plus FIN go out");

    // Cumulative stuck at 1 (hole = segment 1), segments 2..=6 SACKed.
    let mut sack = ack(SeqNum(1), 1 << 20);
    let mut sb = SackBlocks::EMPTY;
    sb.push(SeqNum(1 + MSS), SeqNum(1 + 6 * MSS));
    sack.sack = sb;
    a.on_segment(t(400), &sack);

    // RTO retransmits the hole.
    let fire = Transport::next_timer(&a).expect("RTO armed");
    a.on_timer(fire);
    let head = Transport::poll_send(&mut a, fire).expect("hole retransmitted");
    assert_eq!(head.seq, SeqNum(1));

    // The receiver reneged: its cumulative ACK only covers the hole —
    // the previously SACKed 2..=6 are gone from its buffer.
    a.on_segment(fire + gap_us(50), &ack(SeqNum(1 + MSS), 1 << 20));

    // Next RTO finds the queue head still marked SACKed: reneging is
    // detected, marks are cleared, and the ranges retransmit.
    let fire2 = Transport::next_timer(&a).expect("RTO re-armed");
    a.on_timer(fire2);
    let mut retx = Vec::new();
    while let Some(seg) = Transport::poll_send(&mut a, fire2) {
        if seg.has_payload() {
            retx.push(seg.seq);
        }
    }
    assert!(
        a.stats().sack_reneges > 0,
        "reneging must be detected and counted"
    );
    assert!(
        retx.contains(&SeqNum(1 + MSS)),
        "reneged range must retransmit, got {retx:?}"
    );

    // With the data really delivered this time, the flow completes.
    a.on_segment(fire2 + gap_us(50), &ack(SeqNum(1 + 6 * MSS + 1), 1 << 20));
    let mut guard = 0;
    while !a.is_done() {
        let Some(fire) = Transport::next_timer(&a) else {
            break;
        };
        a.on_timer(fire);
        while Transport::poll_send(&mut a, fire).is_some() {}
        a.on_segment(fire + gap_us(10), &ack(SeqNum(1 + 6 * MSS + 1), 1 << 20));
        guard += 1;
        assert!(guard <= 10, "flow must complete after reneging recovery");
    }
    assert!(a.is_done());
    assert!(a.conn_error().is_none(), "reneging is survivable, not fatal");
    assert_eq!(a.stats().bytes_acked, u64::from(6 * MSS));
}
