//! Property tests on the TCP engine's core data structures: sequence
//! arithmetic laws, retransmission-queue accounting invariants, SACK
//! scoreboard idempotence, and reassembler correctness against a
//! reference model. Runs on the in-repo `testkit` harness.

use simcore::SimTime;
use tcp::recv::Reassembler;
use tcp::rtx::{RtxQueue, TxSeg};
use tcp::SeqNum;
use testkit::prop::{range, tuple2, tuple3, tuple4, uniform, vec_of};
use testkit::{tk_assert, tk_assert_eq};
use wire::TdnId;

fn seg(i: u32, tdn: u8) -> TxSeg {
    TxSeg {
        seq: SeqNum(i * 100),
        len: 100,
        is_syn: false,
        is_fin: false,
        tdn: TdnId(tdn),
        tx_time: SimTime::from_micros(u64::from(i)),
        first_tx: SimTime::from_micros(u64::from(i)),
        sacked: false,
        lost: false,
        retx_in_flight: false,
        retx_count: 0,
    }
}

testkit::props! {
    // ---------------- sequence arithmetic ----------------

    fn seq_ordering_antisymmetric(
        input in tuple2(uniform::<u32>(), range(1u32..i32::MAX as u32))
    ) {
        let (a, d) = input;
        let x = SeqNum(a);
        let y = x + d;
        tk_assert!(x.before(y));
        tk_assert!(y.after(x));
        tk_assert!(!y.before(x));
        tk_assert_eq!(y - x, d);
        tk_assert_eq!(y.distance(x), d as i64 as i32);
    }

    fn seq_add_associative(
        input in tuple3(uniform::<u32>(), range(0u32..1_000_000), range(0u32..1_000_000))
    ) {
        let (a, m, n) = input;
        tk_assert_eq!((SeqNum(a) + m) + n, SeqNum(a) + (m + n));
    }

    fn seq_within_halfopen(
        input in tuple3(uniform::<u32>(), range(1u32..1_000_000), range(0u32..1_000_000))
    ) {
        let (base, len, off) = input;
        let lo = SeqNum(base);
        let hi = lo + len;
        let p = lo + off;
        tk_assert_eq!(p.within(lo, hi), off < len);
    }

    // ---------------- rtx queue accounting ----------------

    // Whatever sequence of SACKs, loss marks, and cumulative ACKs is
    // applied, the pipe counters stay consistent: partitions sum to the
    // total, nothing goes negative, and per-TDN counts partition the
    // whole (§4.3 "all TDNs" semantics).
    fn rtx_counter_invariants(
        input in tuple4(
            range(1usize..60),
            vec_of(tuple2(range(0u32..60), range(1u32..20)), 0..12),
            vec_of(range(0u32..60), 0..12),
            vec_of(range(0u32..80), 0..8),
        )
    ) {
        let (nsegs, sacks, losses, acks) = input;
        let mut q = RtxQueue::new();
        for i in 0..nsegs {
            q.push(seg(i as u32, (i % 3) as u8));
        }
        for (start, n) in sacks {
            let l = SeqNum(start * 100);
            let r = SeqNum((start + n) * 100);
            q.mark_sacked([(l, r)].into_iter());
        }
        for below in losses {
            q.mark_lost_below(SeqNum(below * 100), |_| true);
        }
        for ack in acks {
            q.cum_ack(SeqNum(ack * 100));
        }
        let c = q.counts();
        tk_assert!(c.sacked_out + c.lost_out <= c.packets_out + c.retrans_out);
        tk_assert_eq!(c.packets_out as usize, q.len());
        // Per-TDN counts partition the totals.
        let mut sum = tcp::rtx::PipeCounts::default();
        for t in 0..3u8 {
            let p = q.counts_for_tdn(TdnId(t));
            sum.packets_out += p.packets_out;
            sum.sacked_out += p.sacked_out;
            sum.lost_out += p.lost_out;
            sum.retrans_out += p.retrans_out;
        }
        tk_assert_eq!(sum, c);
        // No segment is simultaneously sacked and lost.
        for s in q.iter() {
            tk_assert!(!(s.sacked && s.lost));
        }
    }

    // Cumulative ACK never removes un-covered bytes and is monotone.
    fn rtx_cum_ack_monotone(
        input in tuple2(range(1usize..50), vec_of(range(0u32..6000), 1..10))
    ) {
        let (nsegs, acks) = input;
        let mut q = RtxQueue::new();
        for i in 0..nsegs {
            let mut s = seg(i as u32, 0);
            s.tx_time = SimTime::ZERO;
            s.first_tx = SimTime::ZERO;
            q.push(s);
        }
        let mut highest = SeqNum(0);
        let mut total_acked = 0u32;
        for a in acks {
            let ack = SeqNum(a);
            let r = q.cum_ack(ack);
            total_acked += r.acked_space;
            if ack.after(highest) {
                highest = ack;
            }
            // The queue front is never below the highest ACK seen.
            if let Some(front) = q.front() {
                tk_assert!(front.end().after(highest));
            }
        }
        let covered = highest.min(SeqNum(nsegs as u32 * 100));
        tk_assert_eq!(total_acked, covered - SeqNum(0));
    }

    // New with the testkit port: the SACK scoreboard is idempotent — and
    // never un-marks — under arbitrary ack/loss interleavings. Replaying
    // the full SACK history a second time changes nothing.
    fn rtx_sack_idempotent(
        input in tuple3(
            range(1usize..50),
            vec_of(tuple2(range(0u32..50), range(1u32..16)), 1..10),
            vec_of(range(0u32..50), 0..6),
        )
    ) {
        let (nsegs, sacks, losses) = input;
        let blocks: Vec<(SeqNum, SeqNum)> = sacks
            .iter()
            .map(|&(s, n)| (SeqNum(s * 100), SeqNum((s + n) * 100)))
            .collect();
        let mut q = RtxQueue::new();
        for i in 0..nsegs {
            q.push(seg(i as u32, (i % 2) as u8));
        }
        // Interleave loss marks between SACK applications.
        for (j, b) in blocks.iter().enumerate() {
            q.mark_sacked([*b].into_iter());
            if let Some(&below) = losses.get(j) {
                q.mark_lost_below(SeqNum(below * 100), |_| true);
            }
        }
        let counts_once = q.counts();
        let sacked_once: Vec<bool> = q.iter().map(|s| s.sacked).collect();
        // Replay the entire SACK history.
        q.mark_sacked(blocks.iter().copied());
        tk_assert_eq!(q.counts(), counts_once);
        let sacked_twice: Vec<bool> = q.iter().map(|s| s.sacked).collect();
        tk_assert_eq!(sacked_twice, sacked_once);
    }

    // ---------------- reassembler vs reference model ----------------

    // The reassembler agrees with a naive bitmap model for arbitrary
    // segment arrival orders (including overlaps and duplicates).
    fn reassembler_matches_reference(
        segs in vec_of(tuple2(range(0u32..40), range(1u32..8)), 1..40)
    ) {
        let mut rx = Reassembler::new(SeqNum(0), 1 << 20);
        let mut bitmap = [false; 512];
        let mut delivered_total = 0u64;
        for (start, len) in segs {
            let out = rx.on_data(SeqNum(start * 10), len * 10);
            delivered_total += u64::from(out.delivered);
            for b in (start * 10)..(start * 10 + len * 10) {
                bitmap[b as usize] = true;
            }
            // Reference rcv_nxt: first false bit.
            let ref_nxt = bitmap.iter().position(|&x| !x).unwrap_or(bitmap.len()) as u32;
            tk_assert_eq!(rx.rcv_nxt(), SeqNum(ref_nxt));
            // OOO bytes = received bits above rcv_nxt.
            let ref_ooo: u32 = bitmap[ref_nxt as usize..]
                .iter()
                .map(|&x| u32::from(x))
                .sum();
            tk_assert_eq!(rx.ooo_bytes(), ref_ooo);
            // SACK blocks exactly cover the out-of-order bits.
            let mut sack_covered = 0u32;
            for (l, r) in rx.sack_blocks().iter() {
                tk_assert!(l.after_eq(rx.rcv_nxt()));
                tk_assert!(l.before(r));
                sack_covered += r - l;
            }
            if rx.sack_blocks().len() < 4 {
                // With at most 4 blocks reported and our merged intervals
                // never exceeding that here, coverage must be exact.
                tk_assert_eq!(sack_covered, ref_ooo);
            }
        }
        tk_assert_eq!(delivered_total, u64::from(rx.rcv_nxt() - SeqNum(0)));
    }
}
