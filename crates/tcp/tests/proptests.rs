//! Property tests on the TCP engine's core data structures: sequence
//! arithmetic laws, retransmission-queue accounting invariants, and
//! reassembler correctness against a reference model.

use proptest::collection::vec;
use proptest::prelude::*;
use simcore::SimTime;
use tcp::recv::Reassembler;
use tcp::rtx::{RtxQueue, TxSeg};
use tcp::SeqNum;
use wire::TdnId;

proptest! {
    // ---------------- sequence arithmetic ----------------

    #[test]
    fn seq_ordering_antisymmetric(a in any::<u32>(), d in 1u32..i32::MAX as u32) {
        let x = SeqNum(a);
        let y = x + d;
        prop_assert!(x.before(y));
        prop_assert!(y.after(x));
        prop_assert!(!y.before(x));
        prop_assert_eq!(y - x, d);
        prop_assert_eq!(y.distance(x), d as i64 as i32);
    }

    #[test]
    fn seq_add_associative(a in any::<u32>(), m in 0u32..1_000_000, n in 0u32..1_000_000) {
        prop_assert_eq!((SeqNum(a) + m) + n, SeqNum(a) + (m + n));
    }

    #[test]
    fn seq_within_halfopen(base in any::<u32>(), len in 1u32..1_000_000, off in 0u32..1_000_000) {
        let lo = SeqNum(base);
        let hi = lo + len;
        let p = lo + off;
        prop_assert_eq!(p.within(lo, hi), off < len);
    }

    // ---------------- rtx queue accounting ----------------

    /// Whatever sequence of SACKs, loss marks, and cumulative ACKs is
    /// applied, the pipe counters stay consistent: partitions sum to the
    /// total, nothing goes negative, and per-TDN counts partition the
    /// whole (§4.3 "all TDNs" semantics).
    #[test]
    fn rtx_counter_invariants(
        nsegs in 1usize..60,
        sacks in vec((0u32..60, 1u32..20), 0..12),
        losses in vec(0u32..60, 0..12),
        acks in vec(0u32..80, 0..8),
    ) {
        let mut q = RtxQueue::new();
        for i in 0..nsegs {
            q.push(TxSeg {
                seq: SeqNum(i as u32 * 100),
                len: 100,
                is_syn: false,
                is_fin: false,
                tdn: TdnId((i % 3) as u8),
                tx_time: SimTime::from_micros(i as u64),
                first_tx: SimTime::from_micros(i as u64),
                sacked: false,
                lost: false,
                retx_in_flight: false,
                retx_count: 0,
            });
        }
        for (start, n) in sacks {
            let l = SeqNum(start * 100);
            let r = SeqNum((start + n) * 100);
            q.mark_sacked([(l, r)].into_iter());
        }
        for below in losses {
            q.mark_lost_below(SeqNum(below * 100), |_| true);
        }
        for ack in acks {
            q.cum_ack(SeqNum(ack * 100));
        }
        let c = q.counts();
        prop_assert!(c.sacked_out + c.lost_out <= c.packets_out + c.retrans_out);
        prop_assert_eq!(c.packets_out as usize, q.len());
        // Per-TDN counts partition the totals.
        let mut sum = tcp::rtx::PipeCounts::default();
        for t in 0..3u8 {
            let p = q.counts_for_tdn(TdnId(t));
            sum.packets_out += p.packets_out;
            sum.sacked_out += p.sacked_out;
            sum.lost_out += p.lost_out;
            sum.retrans_out += p.retrans_out;
        }
        prop_assert_eq!(sum, c);
        // No segment is simultaneously sacked and lost.
        for s in q.iter() {
            prop_assert!(!(s.sacked && s.lost));
        }
    }

    /// Cumulative ACK never removes un-covered bytes and is monotone.
    #[test]
    fn rtx_cum_ack_monotone(nsegs in 1usize..50, acks in vec(0u32..6000, 1..10)) {
        let mut q = RtxQueue::new();
        for i in 0..nsegs {
            q.push(TxSeg {
                seq: SeqNum(i as u32 * 100),
                len: 100,
                is_syn: false,
                is_fin: false,
                tdn: TdnId(0),
                tx_time: SimTime::ZERO,
                first_tx: SimTime::ZERO,
                sacked: false,
                lost: false,
                retx_in_flight: false,
                retx_count: 0,
            });
        }
        let mut highest = SeqNum(0);
        let mut total_acked = 0u32;
        for a in acks {
            let ack = SeqNum(a);
            let r = q.cum_ack(ack);
            total_acked += r.acked_space;
            if ack.after(highest) {
                highest = ack;
            }
            // The queue front is never below the highest ACK seen.
            if let Some(front) = q.front() {
                prop_assert!(front.end().after(highest));
            }
        }
        let covered = highest.min(SeqNum(nsegs as u32 * 100));
        prop_assert_eq!(total_acked, covered - SeqNum(0));
    }

    // ---------------- reassembler vs reference model ----------------

    /// The reassembler agrees with a naive bitmap model for arbitrary
    /// segment arrival orders (including overlaps and duplicates).
    #[test]
    fn reassembler_matches_reference(
        segs in vec((0u32..40, 1u32..8), 1..40),
    ) {
        let mut rx = Reassembler::new(SeqNum(0), 1 << 20);
        let mut bitmap = [false; 512];
        let mut delivered_total = 0u64;
        for (start, len) in segs {
            let out = rx.on_data(SeqNum(start * 10), len * 10);
            delivered_total += u64::from(out.delivered);
            for b in (start * 10)..(start * 10 + len * 10) {
                bitmap[b as usize] = true;
            }
            // Reference rcv_nxt: first false bit.
            let ref_nxt = bitmap.iter().position(|&x| !x).unwrap_or(bitmap.len()) as u32;
            prop_assert_eq!(rx.rcv_nxt(), SeqNum(ref_nxt));
            // OOO bytes = received bits above rcv_nxt.
            let ref_ooo: u32 = bitmap[ref_nxt as usize..]
                .iter()
                .map(|&x| u32::from(x))
                .sum();
            prop_assert_eq!(rx.ooo_bytes(), ref_ooo);
            // SACK blocks exactly cover the out-of-order bits.
            let mut sack_covered = 0u32;
            for (l, r) in rx.sack_blocks().iter() {
                prop_assert!(l.after_eq(rx.rcv_nxt()));
                prop_assert!(l.before(r));
                sack_covered += r - l;
            }
            if rx.sack_blocks().len() < 4 {
                // With at most 4 blocks reported and our merged intervals
                // never exceeding that here, coverage must be exact.
                prop_assert_eq!(sack_covered, ref_ooo);
            }
        }
        prop_assert_eq!(delivered_total, u64::from(rx.rcv_nxt() - SeqNum(0)));
    }
}
