//! Edge-case tests for the TCP engine: RST handling, zero-window
//! deadlock freedom, stale/overshooting ACKs, and reTCP's circuit-mark
//! echo path.

use simcore::{SimDuration, SimTime};
use tcp::cc::{CcConfig, Cubic, ReTcp, ReTcpConfig};
use tcp::{Config, Connection, Direction, FlowId, SackBlocks, Segment, SeqNum, State, Transport};

const MSS: u32 = 1000;

fn t(us: u64) -> SimTime {
    SimTime::from_micros(us)
}

fn cfg(bytes: u64) -> Config {
    Config {
        mss: MSS,
        bytes_to_send: bytes,
        ..Config::default()
    }
}

fn cc() -> Box<dyn tcp::CongestionControl> {
    Box::new(Cubic::new(CcConfig {
        mss: MSS,
        init_cwnd_pkts: 10,
        max_cwnd: 1 << 24,
    }))
}

/// Establish by hand; returns the sender.
fn establish(mut config: Config) -> Connection {
    config.pacing = false;
    let mut a = Connection::connect(FlowId(1), config, cc(), t(0));
    let _syn = a.poll_send(t(0)).unwrap();
    let mut synack = Segment::new(FlowId(1), Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.seq = SeqNum(0);
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 20;
    a.on_segment(t(100), &synack);
    assert!(a.is_established());
    // Drain the handshake ACK so subsequent polls yield data.
    let hs = a.poll_send(t(100)).expect("handshake ACK");
    assert!(!hs.has_payload());
    a
}

#[test]
fn rst_terminates_connection() {
    let mut a = establish(cfg(u64::MAX));
    let mut rst = Segment::new(FlowId(1), Direction::AckPath);
    rst.flags.rst = true;
    a.on_segment(t(200), &rst);
    assert!(a.is_done());
    assert_eq!(a.state(), State::Done);
    // No further transmissions.
    assert!(Transport::poll_send(&mut a, t(201)).is_none());
}

#[test]
fn zero_window_does_not_deadlock_recovery() {
    // The peer's window closes completely while a hole exists; the hole's
    // retransmission must still go out (retransmissions are not gated by
    // the advertised window) so the window can reopen.
    let mut a = establish(cfg(u64::MAX));
    // Send 6 segments.
    for _ in 0..6 {
        Transport::poll_send(&mut a, t(110)).expect("window open");
    }
    // SACK 2..6, cumulative stuck at 1 (hole = first segment), window 0.
    let mut ack = Segment::new(FlowId(1), Direction::AckPath);
    ack.flags.ack = true;
    ack.ack = SeqNum(1);
    ack.wnd = 0; // closed!
    let mut sb = SackBlocks::EMPTY;
    sb.push(SeqNum(1 + MSS), SeqNum(1 + 6 * MSS));
    ack.sack = sb;
    a.on_segment(t(300), &ack);
    // RACK anchors its cutoff at the newest SACKed transmission, so a
    // same-instant hole is "too recent" to mark — tail recovery is the
    // TLP's job. Fire it.
    assert!(Transport::poll_send(&mut a, t(301)).is_none(), "no new data at wnd=0");
    let tlp_at = Transport::next_timer(&a).expect("TLP armed");
    a.on_timer(tlp_at);
    let seg = Transport::poll_send(&mut a, tlp_at).expect("probe not window-gated");
    assert_eq!(seg.seq, SeqNum(1));
    assert!(seg.has_payload());
    // Window reopens once the hole is delivered.
    let mut ack2 = Segment::new(FlowId(1), Direction::AckPath);
    ack2.flags.ack = true;
    ack2.ack = SeqNum(1 + 6 * MSS);
    ack2.wnd = 1 << 20;
    a.on_segment(t(400), &ack2);
    assert!(Transport::poll_send(&mut a, t(401)).is_some());
}

#[test]
fn ack_beyond_snd_nxt_ignored() {
    let mut a = establish(cfg(u64::MAX));
    Transport::poll_send(&mut a, t(110)).unwrap();
    let before = a.stats().bytes_acked;
    let mut bogus = Segment::new(FlowId(1), Direction::AckPath);
    bogus.flags.ack = true;
    bogus.ack = SeqNum(1_000_000); // far beyond anything sent
    bogus.wnd = 1 << 20;
    a.on_segment(t(200), &bogus);
    assert_eq!(a.stats().bytes_acked, before, "bogus ACK changed nothing");
}

#[test]
fn stale_ack_is_counted_as_dupack_not_progress() {
    let mut a = establish(cfg(u64::MAX));
    for _ in 0..4 {
        Transport::poll_send(&mut a, t(110)).unwrap();
    }
    let mut ack = Segment::new(FlowId(1), Direction::AckPath);
    ack.flags.ack = true;
    ack.ack = SeqNum(1 + 2 * MSS);
    ack.wnd = 1 << 20;
    a.on_segment(t(200), &ack);
    let progressed = a.stats().bytes_acked;
    assert_eq!(progressed, 2 * u64::from(MSS));
    // An older (stale) ACK afterwards: no regression.
    let mut old = Segment::new(FlowId(1), Direction::AckPath);
    old.flags.ack = true;
    old.ack = SeqNum(1 + MSS);
    old.wnd = 1 << 20;
    a.on_segment(t(210), &old);
    assert_eq!(a.stats().bytes_acked, progressed);
}

#[test]
fn retcp_circuit_mark_echo_drives_boost() {
    // Receiver echoes circuit marks on its ACKs; the reTCP sender boosts
    // on the off->on edge and shrinks on the on->off edge.
    let mut config = cfg(u64::MAX);
    config.pacing = false;
    let retcp = ReTcp::new(ReTcpConfig {
        cc: CcConfig {
            mss: MSS,
            init_cwnd_pkts: 10,
            max_cwnd: 1 << 24,
        },
        scale: 4.0,
        boost_cap: 1 << 20,
    });
    let mut a = Connection::connect(FlowId(1), config, Box::new(retcp), t(0));
    let _syn = a.poll_send(t(0)).unwrap();
    let mut synack = Segment::new(FlowId(1), Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 20;
    a.on_segment(t(100), &synack);
    let _hs_ack = Transport::poll_send(&mut a, t(100)).unwrap();
    let data = Transport::poll_send(&mut a, t(110)).unwrap();
    assert!(data.has_payload());
    let w0 = a.cwnd();
    // ACK with the circuit mark echoed: boost.
    let mut ack = Segment::new(FlowId(1), Direction::AckPath);
    ack.flags.ack = true;
    ack.ack = SeqNum(1 + MSS);
    ack.wnd = 1 << 20;
    ack.circuit_mark = true;
    a.on_segment(t(200), &ack);
    assert!(a.cwnd() >= w0 * 3, "boosted: {} -> {}", w0, a.cwnd());
    // Mark disappears: shrink back near the original.
    Transport::poll_send(&mut a, t(210)).unwrap();
    let mut ack2 = Segment::new(FlowId(1), Direction::AckPath);
    ack2.flags.ack = true;
    ack2.ack = SeqNum(1 + 2 * MSS);
    ack2.wnd = 1 << 20;
    ack2.circuit_mark = false;
    a.on_segment(t(300), &ack2);
    assert!(a.cwnd() < w0 * 2, "shrunk: {}", a.cwnd());
}

#[test]
fn receiver_echoes_circuit_mark() {
    let mut b = Connection::listen(FlowId(1), cfg(0), cc());
    let mut syn = Segment::new(FlowId(1), Direction::DataPath);
    syn.flags.syn = true;
    syn.wnd = 1 << 20;
    b.on_segment(t(10), &syn);
    let _synack = Transport::poll_send(&mut b, t(10)).unwrap();
    // Data arrives with the switch's circuit mark set.
    let mut data = Segment::new(FlowId(1), Direction::DataPath);
    data.seq = SeqNum(1);
    data.len = MSS;
    data.flags.ack = true;
    data.ack = SeqNum(1);
    data.circuit_mark = true;
    b.on_segment(t(50), &data);
    let ack = Transport::poll_send(&mut b, t(51)).expect("ACK generated");
    assert!(ack.circuit_mark, "mark echoed to the sender");
}

#[test]
fn pacing_spreads_transmissions() {
    let mut config = cfg(u64::MAX);
    config.pacing = true;
    let mut a = Connection::connect(FlowId(1), config, cc(), t(0));
    let _syn = a.poll_send(t(0)).unwrap();
    let mut synack = Segment::new(FlowId(1), Direction::AckPath);
    synack.flags.syn = true;
    synack.flags.ack = true;
    synack.ack = SeqNum(1);
    synack.wnd = 1 << 20;
    a.on_segment(t(100), &synack);
    // Prime srtt (100us) so the pacer has a rate.
    Transport::poll_send(&mut a, t(100)).unwrap();
    let mut ack = Segment::new(FlowId(1), Direction::AckPath);
    ack.flags.ack = true;
    ack.ack = SeqNum(1 + MSS);
    ack.wnd = 1 << 20;
    a.on_segment(t(200), &ack);
    // First send passes, immediate second poll at the same instant is
    // pace-gated.
    assert!(Transport::poll_send(&mut a, t(200)).is_some());
    assert!(Transport::poll_send(&mut a, t(200)).is_none(), "pacing gates");
    // And a pacing wake-up is scheduled.
    let wake = Transport::next_timer(&a).expect("pacing timer armed");
    assert!(wake > t(200));
    assert!(wake < t(200) + SimDuration::from_micros(50));
    // After the gap, sending resumes.
    assert!(Transport::poll_send(&mut a, wake).is_some());
}
