//! The simulation-level segment.
//!
//! The simulator passes this structured form instead of encoded bytes so a
//! multi-second run does not spend its time in codecs; [`Segment::to_wire`]
//! and [`Segment::from_wire`] convert to and from the byte-exact formats in
//! the `wire` crate (used by the dissector example and round-trip tests),
//! so the struct is provably equivalent to real packets.

use crate::seq::SeqNum;
use wire::ip::protocol;
use wire::{Ecn, Ipv4Header, TcpFlags, TcpHeader, TcpOption, TdnId};

/// Identifies one flow (connection) in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

/// Which way a segment travels. Flows are unidirectional bulk transfers:
/// data travels `DataPath`, ACKs travel `AckPath`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Sender → receiver (data).
    DataPath,
    /// Receiver → sender (ACKs).
    AckPath,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Direction {
        match self {
            Direction::DataPath => Direction::AckPath,
            Direction::AckPath => Direction::DataPath,
        }
    }
}

/// Up to four SACK blocks, fixed-size to keep [`Segment`] allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SackBlocks {
    blocks: [(SeqNum, SeqNum); 4],
    len: u8,
}

impl SackBlocks {
    /// No blocks.
    pub const EMPTY: SackBlocks = SackBlocks {
        blocks: [(SeqNum(0), SeqNum(0)); 4],
        len: 0,
    };

    /// Append a `[left, right)` block; silently ignored beyond four blocks
    /// (the least recent blocks are the ones dropped by construction order,
    /// matching RFC 2018's best-effort semantics).
    pub fn push(&mut self, left: SeqNum, right: SeqNum) {
        debug_assert!(left.before(right), "SACK block must be non-empty");
        if (self.len as usize) < 4 {
            self.blocks[self.len as usize] = (left, right);
            self.len += 1;
        }
    }

    /// The blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = (SeqNum, SeqNum)> + '_ {
        self.blocks[..self.len as usize].iter().copied()
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Data-sequence mapping carried by MPTCP subflow segments (simplified DSS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DssMap {
    /// Connection-level (data) sequence number of the first payload byte.
    pub dsn: u64,
    /// Subflow sequence number of the first payload byte.
    pub ssn: SeqNum,
    /// Mapped length in bytes.
    pub len: u32,
}

/// A TCP segment in flight in the simulator.
///
/// `len` is the payload length; payload bytes themselves are not carried
/// (bulk flows synthesize them on demand), which keeps the event queue
/// allocation-free per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// The flow this segment belongs to.
    pub flow: FlowId,
    /// Travel direction (used by the network for routing).
    pub dir: Direction,
    /// Sequence number of the first payload byte.
    pub seq: SeqNum,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: SeqNum,
    /// Payload length in bytes.
    pub len: u32,
    /// TCP flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes (already descaled).
    pub wnd: u32,
    /// SACK blocks.
    pub sack: SackBlocks,
    /// TDTCP: TDN on which the data in this segment was sent.
    pub data_tdn: Option<TdnId>,
    /// TDTCP: TDN on which this (ACK) segment was sent.
    pub ack_tdn: Option<TdnId>,
    /// TDTCP: `TD_CAPABLE` number of TDNs (SYN/SYN-ACK only).
    pub td_capable: Option<u8>,
    /// MPTCP: data-sequence mapping for the payload.
    pub dss: Option<DssMap>,
    /// MPTCP: connection-level cumulative data ACK.
    pub data_ack: Option<u64>,
    /// IP ECN codepoint; switches rewrite ECT → CE above threshold.
    pub ecn: Ecn,
    /// reTCP: switch sets this when the segment traversed the circuit.
    pub circuit_mark: bool,
    /// Routing pin: the segment may only be serviced while this TDN is
    /// active (MPTCP subflows are pinned; everything else floats).
    pub pin: Option<TdnId>,
    /// End-to-end payload checksum. Payload bytes are synthesized, so the
    /// checksum is modelled as a pure function of `(flow, seq, len)`
    /// (see [`Segment::expected_payload_csum`]): senders stamp it on
    /// every payload-carrying segment, impairment injectors mangle it,
    /// and receivers discard segments whose stamp does not verify.
    /// `0` means "unstamped" (control segments; legacy paths).
    pub payload_csum: u32,
}

/// Fixed per-segment header overhead assumed for serialization timing:
/// 20 B IPv4 + 20 B TCP + up to ~20 B of options, rounded to a constant so
/// runs are deterministic regardless of which options a variant uses.
pub const HEADER_OVERHEAD: u32 = 60;

impl Segment {
    /// A zeroed template for flow `flow` travelling `dir`.
    pub fn new(flow: FlowId, dir: Direction) -> Segment {
        Segment {
            flow,
            dir,
            seq: SeqNum::ZERO,
            ack: SeqNum::ZERO,
            len: 0,
            flags: TcpFlags::default(),
            wnd: 0,
            sack: SackBlocks::EMPTY,
            data_tdn: None,
            ack_tdn: None,
            td_capable: None,
            dss: None,
            data_ack: None,
            ecn: Ecn::NotEct,
            circuit_mark: false,
            pin: None,
            payload_csum: 0,
        }
    }

    /// The checksum a pristine copy of this segment's payload would carry.
    /// Payload bytes are synthesized deterministically from the stream
    /// position, so the checksum is a pure function of `(flow, seq, len)`
    /// — always nonzero, so a stamped segment is distinguishable from an
    /// unstamped one.
    pub fn expected_payload_csum(&self) -> u32 {
        let mut d = testkit::Digest::new();
        d.write_u32(self.flow.0).write_u32(self.seq.0).write_u32(self.len);
        let h = d.finish();
        let folded = (h ^ (h >> 32)) as u32;
        if folded == 0 {
            1
        } else {
            folded
        }
    }

    /// Stamp the payload checksum (no-op on segments without payload).
    pub fn stamp_payload(&mut self) {
        if self.has_payload() {
            self.payload_csum = self.expected_payload_csum();
        }
    }

    /// Whether the payload arrived damaged: the segment carries a stamp
    /// and it does not verify. Unstamped segments are accepted (control
    /// segments never carry a stamp).
    pub fn payload_is_corrupt(&self) -> bool {
        self.has_payload() && self.payload_csum != 0 && self.payload_csum != self.expected_payload_csum()
    }

    /// Total on-wire size used for serialization-delay computation.
    pub fn wire_size(&self) -> u32 {
        HEADER_OVERHEAD + self.len
    }

    /// Sequence number consumed on the circle: payload plus one for SYN
    /// and one for FIN.
    pub fn seq_space(&self) -> u32 {
        self.len + u32::from(self.flags.syn) + u32::from(self.flags.fin)
    }

    /// End of this segment's sequence range (exclusive).
    pub fn seq_end(&self) -> SeqNum {
        self.seq + self.seq_space()
    }

    /// Whether the segment carries payload bytes.
    pub fn has_payload(&self) -> bool {
        self.len > 0
    }

    /// Encode to real IPv4+TCP bytes (payload synthesized as zeros).
    pub fn to_wire(&self, src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> Vec<u8> {
        let mut options = Vec::new();
        if self.flags.syn {
            options.push(TcpOption::Mss(8948));
            options.push(TcpOption::SackPermitted);
        }
        if let Some(n) = self.td_capable {
            options.push(TcpOption::TdCapable {
                version: 0,
                num_tdns: n,
            });
        }
        if self.data_tdn.is_some() || self.ack_tdn.is_some() {
            options.push(TcpOption::TdDataAck {
                data_tdn: self.data_tdn,
                ack_tdn: self.ack_tdn,
            });
        }
        if let Some(dss) = self.dss {
            options.push(TcpOption::MpDss {
                data_seq: dss.dsn,
                subflow_seq: dss.ssn.0,
                len: dss.len.min(u16::MAX as u32) as u16,
            });
        }
        if !self.sack.is_empty() {
            // Fit what we can in remaining option space.
            let used: usize = options.iter().map(TcpOption::wire_len).sum();
            let room = (40 - used).saturating_sub(2) / 8;
            let blocks: Vec<(u32, u32)> = self
                .sack
                .iter()
                .take(room)
                .map(|(l, r)| (l.0, r.0))
                .collect();
            if !blocks.is_empty() {
                options.push(TcpOption::Sack(blocks));
            }
        }
        let mut ip = Ipv4Header::new(src_ip, dst_ip, protocol::TCP);
        ip.ecn = self.ecn;
        let tcp = TcpHeader {
            src_port,
            dst_port,
            seq: self.seq.0,
            ack: self.ack.0,
            flags: self.flags,
            window: (self.wnd >> 10).min(u16::MAX as u32) as u16, // wscale 10
            options,
        };
        let payload = vec![0u8; self.len as usize];
        let mut buf = Vec::with_capacity(20 + tcp.header_len() + payload.len());
        ip.emit(&mut buf, tcp.header_len() + payload.len());
        tcp.emit(&mut buf, &ip, &payload);
        buf
    }

    /// Decode from IPv4+TCP bytes produced by [`Segment::to_wire`].
    ///
    /// `flow` and `dir` are routing context the wire does not carry.
    pub fn from_wire(data: &[u8], flow: FlowId, dir: Direction) -> wire::Result<Segment> {
        let (ip, total) = Ipv4Header::parse(data)?;
        let tcp_bytes = &data[20..total as usize];
        let (tcp, payload_off) = TcpHeader::parse(tcp_bytes, &ip)?;
        let mut seg = Segment::new(flow, dir);
        seg.seq = SeqNum(tcp.seq);
        seg.ack = SeqNum(tcp.ack);
        seg.flags = tcp.flags;
        seg.wnd = (tcp.window as u32) << 10;
        seg.len = (tcp_bytes.len() - payload_off) as u32;
        seg.ecn = ip.ecn;
        for opt in &tcp.options {
            match opt {
                TcpOption::TdCapable { num_tdns, .. } => seg.td_capable = Some(*num_tdns),
                TcpOption::TdDataAck { data_tdn, ack_tdn } => {
                    seg.data_tdn = *data_tdn;
                    seg.ack_tdn = *ack_tdn;
                }
                TcpOption::Sack(blocks) => {
                    for &(l, r) in blocks {
                        seg.sack.push(SeqNum(l), SeqNum(r));
                    }
                }
                TcpOption::MpDss {
                    data_seq,
                    subflow_seq,
                    len,
                } => {
                    seg.dss = Some(DssMap {
                        dsn: *data_seq,
                        ssn: SeqNum(*subflow_seq),
                        len: *len as u32,
                    });
                }
                _ => {}
            }
        }
        Ok(seg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_space_accounting() {
        let mut s = Segment::new(FlowId(1), Direction::DataPath);
        s.seq = SeqNum(100);
        s.len = 50;
        assert_eq!(s.seq_space(), 50);
        assert_eq!(s.seq_end(), SeqNum(150));
        s.flags.syn = true;
        assert_eq!(s.seq_space(), 51);
        s.flags.fin = true;
        assert_eq!(s.seq_space(), 52);
        let mut bare = Segment::new(FlowId(1), Direction::AckPath);
        bare.flags.ack = true;
        assert_eq!(bare.seq_space(), 0, "pure ACK consumes no sequence space");
    }

    #[test]
    fn sack_blocks_capacity() {
        let mut sb = SackBlocks::EMPTY;
        for i in 0..6u32 {
            sb.push(SeqNum(i * 100), SeqNum(i * 100 + 50));
        }
        assert_eq!(sb.len(), 4, "capped at four blocks");
        let v: Vec<_> = sb.iter().collect();
        assert_eq!(v[0], (SeqNum(0), SeqNum(50)));
        assert_eq!(v[3], (SeqNum(300), SeqNum(350)));
    }

    #[test]
    fn wire_round_trip_data_segment() {
        let mut s = Segment::new(FlowId(7), Direction::DataPath);
        s.seq = SeqNum(12345);
        s.ack = SeqNum(999);
        s.len = 100;
        s.flags.ack = true;
        s.flags.psh = true;
        s.wnd = 1 << 16;
        s.data_tdn = Some(TdnId(1));
        s.ecn = Ecn::Ect0;
        let bytes = s.to_wire(0x0A000001, 0x0A000002, 40000, 5001);
        let back = Segment::from_wire(&bytes, FlowId(7), Direction::DataPath).unwrap();
        assert_eq!(back.seq, s.seq);
        assert_eq!(back.ack, s.ack);
        assert_eq!(back.len, s.len);
        assert_eq!(back.flags, s.flags);
        assert_eq!(back.wnd, s.wnd);
        assert_eq!(back.data_tdn, s.data_tdn);
        assert_eq!(back.ecn, s.ecn);
    }

    #[test]
    fn wire_round_trip_tdtcp_syn() {
        let mut s = Segment::new(FlowId(0), Direction::DataPath);
        s.flags.syn = true;
        s.td_capable = Some(2);
        s.wnd = 1 << 20;
        let bytes = s.to_wire(1, 2, 3, 4);
        let back = Segment::from_wire(&bytes, FlowId(0), Direction::DataPath).unwrap();
        assert_eq!(back.td_capable, Some(2));
        assert!(back.flags.syn);
    }

    #[test]
    fn wire_round_trip_sack_ack() {
        let mut s = Segment::new(FlowId(0), Direction::AckPath);
        s.flags.ack = true;
        s.ack = SeqNum(5000);
        s.ack_tdn = Some(TdnId(0));
        s.sack.push(SeqNum(6000), SeqNum(7000));
        s.sack.push(SeqNum(8000), SeqNum(9000));
        let bytes = s.to_wire(1, 2, 3, 4);
        let back = Segment::from_wire(&bytes, FlowId(0), Direction::AckPath).unwrap();
        assert_eq!(back.sack.len(), 2);
        assert_eq!(
            back.sack.iter().collect::<Vec<_>>(),
            vec![(SeqNum(6000), SeqNum(7000)), (SeqNum(8000), SeqNum(9000))]
        );
        assert_eq!(back.ack_tdn, Some(TdnId(0)));
    }

    #[test]
    fn wire_round_trip_mptcp_dss() {
        let mut s = Segment::new(FlowId(3), Direction::DataPath);
        s.flags.ack = true;
        s.len = 1448;
        s.dss = Some(DssMap {
            dsn: 1 << 40,
            ssn: SeqNum(777),
            len: 1448,
        });
        let bytes = s.to_wire(1, 2, 3, 4);
        let back = Segment::from_wire(&bytes, FlowId(3), Direction::DataPath).unwrap();
        assert_eq!(back.dss, s.dss);
    }

    #[test]
    fn payload_csum_stamp_and_verify() {
        let mut s = Segment::new(FlowId(3), Direction::DataPath);
        s.seq = SeqNum(8948);
        s.len = 8948;
        assert!(!s.payload_is_corrupt(), "unstamped segments are accepted");
        s.stamp_payload();
        assert_ne!(s.payload_csum, 0, "stamp is always nonzero");
        assert!(!s.payload_is_corrupt());
        s.payload_csum ^= 0x00C0_FFEE;
        assert!(s.payload_is_corrupt(), "a mangled stamp is detected");

        // Pure ACKs never carry a stamp.
        let mut a = Segment::new(FlowId(3), Direction::AckPath);
        a.flags.ack = true;
        a.stamp_payload();
        assert_eq!(a.payload_csum, 0);
        assert!(!a.payload_is_corrupt());
    }

    #[test]
    fn payload_csum_depends_on_flow_seq_len() {
        let mut s = Segment::new(FlowId(1), Direction::DataPath);
        s.seq = SeqNum(100);
        s.len = 50;
        let base = s.expected_payload_csum();
        let mut other = s;
        other.flow = FlowId(2);
        assert_ne!(base, other.expected_payload_csum());
        other = s;
        other.seq = SeqNum(101);
        assert_ne!(base, other.expected_payload_csum());
        other = s;
        other.len = 51;
        assert_ne!(base, other.expected_payload_csum());
    }

    #[test]
    fn direction_reverse() {
        assert_eq!(Direction::DataPath.reverse(), Direction::AckPath);
        assert_eq!(Direction::AckPath.reverse(), Direction::DataPath);
    }
}
