//! # tcp — a from-scratch userspace TCP engine
//!
//! The substrate the TDTCP reproduction builds on: everything the paper's
//! kernel implementation relies on from the Linux stack, reimplemented as
//! a deterministic, poll-driven engine:
//!
//! * wrapping sequence arithmetic ([`SeqNum`]),
//! * a retransmission queue with SACK scoreboard and RFC 6675 pipe
//!   accounting ([`rtx::RtxQueue`]) whose per-segment TDN tags enable
//!   TDTCP's §4.3 state-class semantics,
//! * receiver reassembly with SACK generation ([`recv::Reassembler`]),
//! * RTT estimation per RFC 6298 ([`rtt::RttEstimator`]),
//! * the Linux congestion-avoidance state machine ([`ca::CaState`]),
//! * RACK-style loss marking and tail-loss probes (in
//!   [`connection::Connection`]),
//! * pluggable congestion control ([`cc::CongestionControl`]) with Reno,
//!   CUBIC, DCTCP and reTCP implementations,
//! * and the [`Transport`] trait the RDCN emulator drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ca;
pub mod cc;
pub mod connection;
pub mod recv;
pub mod rtt;
pub mod rtx;
pub mod segment;
pub mod seq;
pub mod stats;
pub mod transport;

pub use ca::CaState;
pub use cc::{CcConfig, CongestionControl};
pub use connection::{Config, Connection, State};
pub use segment::{Direction, DssMap, FlowId, SackBlocks, Segment};
pub use seq::SeqNum;
pub use stats::ConnStats;
pub use transport::{ConnError, Transport};
