//! The retransmission queue: per-segment transmit metadata and the SACK
//! scoreboard (RFC 2018 / RFC 6675 pipe accounting).
//!
//! Every transmitted-but-unacknowledged segment carries the TDN it was
//! (last) sent on, which is what lets TDTCP implement the "specific TDN"
//! accounting of §4.3 (an incoming cumulative ACK may acknowledge data
//! sent over several TDNs; the queue is scanned to credit each one) and
//! the relaxed reordering heuristics of §3.4.

use crate::seq::SeqNum;
use simcore::SimTime;
use std::collections::VecDeque;
use wire::TdnId;

/// Metadata for one transmitted, unacknowledged segment.
#[derive(Debug, Clone, Copy)]
pub struct TxSeg {
    /// First sequence number.
    pub seq: SeqNum,
    /// Sequence space consumed (payload + SYN/FIN).
    pub len: u32,
    /// Segment carries SYN.
    pub is_syn: bool,
    /// Segment carries FIN.
    pub is_fin: bool,
    /// TDN of the most recent transmission of this segment.
    pub tdn: TdnId,
    /// Time of the most recent transmission.
    pub tx_time: SimTime,
    /// Time of the first transmission.
    pub first_tx: SimTime,
    /// Selectively acknowledged.
    pub sacked: bool,
    /// Declared lost by loss detection.
    pub lost: bool,
    /// A retransmission of this segment is currently in flight.
    pub retx_in_flight: bool,
    /// Total times retransmitted.
    pub retx_count: u32,
}

impl TxSeg {
    /// Exclusive end of the segment's sequence range.
    pub fn end(&self) -> SeqNum {
        self.seq + self.len
    }

    /// Karn's rule: never sample RTT from a segment that was ever
    /// retransmitted.
    pub fn ever_retransmitted(&self) -> bool {
        self.retx_count > 0
    }

    /// Whether this segment needs (re)transmission right now.
    pub fn wants_retransmit(&self) -> bool {
        self.lost && !self.retx_in_flight && !self.sacked
    }
}

/// Counters in packets, Linux-style (`tcp_sock` fields of §3.1's "pipe"
/// class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeCounts {
    /// Segments outstanding (`packets_out`).
    pub packets_out: u32,
    /// Segments SACKed (`sacked_out`).
    pub sacked_out: u32,
    /// Segments marked lost (`lost_out`).
    pub lost_out: u32,
    /// Retransmissions in flight (`retrans_out`).
    pub retrans_out: u32,
}

impl PipeCounts {
    /// RFC 6675 pipe: an estimate of segments currently in the network.
    pub fn pipe(&self) -> u32 {
        (self.packets_out + self.retrans_out).saturating_sub(self.sacked_out + self.lost_out)
    }
}

/// Result of processing a cumulative ACK.
#[derive(Debug, Default)]
pub struct CumAckResult {
    /// Fully acknowledged segments, removed from the queue in order.
    pub acked: Vec<TxSeg>,
    /// Bytes of sequence space newly acknowledged.
    pub acked_space: u32,
}

/// The retransmission queue proper: contiguous segments covering
/// `[snd_una, snd_nxt)` in order.
#[derive(Debug, Default)]
pub struct RtxQueue {
    segs: VecDeque<TxSeg>,
}

impl RtxQueue {
    /// Empty queue.
    pub fn new() -> Self {
        RtxQueue::default()
    }

    /// Number of outstanding segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Append a newly transmitted segment. Its `seq` must equal the current
    /// right edge (contiguity invariant).
    pub fn push(&mut self, seg: TxSeg) {
        if let Some(last) = self.segs.back() {
            debug_assert_eq!(
                last.end(),
                seg.seq,
                "rtx queue must stay contiguous: last ends {} but pushed {}",
                last.end(),
                seg.seq
            );
        }
        self.segs.push_back(seg);
    }

    /// Process a cumulative ACK at `ack`: remove fully covered segments.
    /// A mid-segment ACK trims the front segment (only possible if a peer
    /// ACKs at sub-segment granularity, which ours never does, but the
    /// queue stays correct regardless).
    pub fn cum_ack(&mut self, ack: SeqNum) -> CumAckResult {
        let mut out = CumAckResult::default();
        while let Some(front) = self.segs.front() {
            if front.end().before_eq(ack) {
                let seg = self.segs.pop_front().expect("checked front");
                out.acked_space += seg.len;
                out.acked.push(seg);
            } else if front.seq.before(ack) {
                // Partial: trim the acknowledged prefix.
                let front = self.segs.front_mut().expect("checked front");
                let trimmed = ack - front.seq;
                front.seq = ack;
                front.len -= trimmed;
                front.is_syn = false; // SYN is the first octet; it is covered
                out.acked_space += trimmed;
                break;
            } else {
                break;
            }
        }
        out
    }

    /// Apply SACK blocks; returns the newly sacked segments (copies).
    pub fn mark_sacked<'a>(
        &mut self,
        blocks: impl Iterator<Item = (SeqNum, SeqNum)> + 'a,
    ) -> Vec<TxSeg> {
        let mut newly = Vec::new();
        for (left, right) in blocks {
            for seg in self.segs.iter_mut() {
                if !seg.sacked && seg.seq.after_eq(left) && seg.end().before_eq(right) {
                    seg.sacked = true;
                    // A sacked segment is definitionally not lost.
                    seg.lost = false;
                    seg.retx_in_flight = false;
                    newly.push(*seg);
                }
            }
        }
        newly
    }

    /// Highest SACKed sequence (exclusive end), if any segment is sacked.
    pub fn highest_sacked(&self) -> Option<SeqNum> {
        self.segs
            .iter()
            .rev()
            .find(|s| s.sacked)
            .map(|s| s.end())
    }

    /// Most recent transmit time among sacked segments (RACK's reference
    /// point: anything sent sufficiently earlier and still unsacked is
    /// presumed lost).
    pub fn newest_sacked_tx_time(&self) -> Option<SimTime> {
        self.segs
            .iter()
            .filter(|s| s.sacked)
            .map(|s| s.tx_time)
            .max()
    }

    /// Count of sacked segments strictly above `seq`.
    pub fn sacked_above(&self, seq: SeqNum) -> u32 {
        self.segs
            .iter()
            .filter(|s| s.sacked && s.seq.after_eq(seq))
            .count() as u32
    }

    /// Mark as lost every unsacked, not-already-lost segment below
    /// `below` that satisfies `pred`. Returns copies of the segments
    /// marked. This is the hook TDTCP's relaxed detection uses: its
    /// predicate rejects hole segments whose TDN differs from the
    /// triggering ACK's TDN (§3.4).
    pub fn mark_lost_below<F>(&mut self, below: SeqNum, mut pred: F) -> Vec<TxSeg>
    where
        F: FnMut(&TxSeg) -> bool,
    {
        let mut marked = Vec::new();
        for seg in self.segs.iter_mut() {
            if seg.seq.after_eq(below) {
                break;
            }
            if !seg.sacked && !seg.lost && pred(seg) {
                seg.lost = true;
                seg.retx_in_flight = false;
                marked.push(*seg);
            }
        }
        marked
    }

    /// RACK-style refresh of stale retransmissions: a retransmission
    /// transmitted at or before `cutoff` that is still unacknowledged was
    /// itself lost; clear its in-flight flag (and ensure it is marked
    /// lost) so it is retransmitted again. Without this, a dropped
    /// retransmission plugs the hole until an RTO. Returns the number of
    /// segments refreshed.
    pub fn refresh_stale_retx<F>(&mut self, cutoff: SimTime, mut pred: F) -> u32
    where
        F: FnMut(&TxSeg) -> bool,
    {
        let mut n = 0;
        for seg in self.segs.iter_mut() {
            if seg.retx_in_flight && !seg.sacked && seg.tx_time <= cutoff && pred(seg) {
                seg.retx_in_flight = false;
                seg.lost = true;
                n += 1;
            }
        }
        n
    }

    /// SACK-reneging recovery (the `tcp_check_sack_reneging` analogue):
    /// forget every SACK mark so the segments become eligible for
    /// retransmission again. Data is *never* freed on SACK alone — only
    /// [`RtxQueue::cum_ack`] removes segments — so reneged ranges are
    /// still here to re-mark and resend. Returns the number of segments
    /// whose marks were cleared.
    pub fn clear_sack_marks(&mut self) -> u32 {
        let mut n = 0;
        for seg in self.segs.iter_mut() {
            if seg.sacked {
                seg.sacked = false;
                seg.retx_in_flight = false;
                n += 1;
            }
        }
        n
    }

    /// Mark every unsacked segment lost (RTO recovery).
    pub fn mark_all_lost(&mut self) -> u32 {
        let mut n = 0;
        for seg in self.segs.iter_mut() {
            if !seg.sacked {
                seg.lost = true;
                seg.retx_in_flight = false;
                n += 1;
            }
        }
        n
    }

    /// The next segment wanting retransmission, lowest sequence first.
    pub fn next_retransmit(&mut self) -> Option<&mut TxSeg> {
        self.segs.iter_mut().find(|s| s.wants_retransmit())
    }

    /// The highest outstanding segment (TLP probes retransmit this).
    pub fn last_unsacked(&mut self) -> Option<&mut TxSeg> {
        self.segs.iter_mut().rev().find(|s| !s.sacked)
    }

    /// The first (oldest) outstanding segment.
    pub fn front(&self) -> Option<&TxSeg> {
        self.segs.front()
    }

    /// Find the segment starting exactly at `seq`.
    pub fn get_mut(&mut self, seq: SeqNum) -> Option<&mut TxSeg> {
        self.segs.iter_mut().find(|s| s.seq == seq)
    }

    /// Iterate over outstanding segments in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &TxSeg> {
        self.segs.iter()
    }

    /// Pipe counters over all segments.
    pub fn counts(&self) -> PipeCounts {
        self.counts_where(|_| true)
    }

    /// Pipe counters over segments matching `pred` (per-TDN views).
    pub fn counts_where<F>(&self, pred: F) -> PipeCounts
    where
        F: Fn(&TxSeg) -> bool,
    {
        let mut c = PipeCounts::default();
        for seg in self.segs.iter().filter(|s| pred(s)) {
            c.packets_out += 1;
            if s_sacked(seg) {
                c.sacked_out += 1;
            }
            if seg.lost {
                c.lost_out += 1;
            }
            if seg.retx_in_flight {
                c.retrans_out += 1;
            }
        }
        c
    }

    /// Pipe counters for one TDN.
    pub fn counts_for_tdn(&self, tdn: TdnId) -> PipeCounts {
        self.counts_where(|s| s.tdn == tdn)
    }
}

fn s_sacked(s: &TxSeg) -> bool {
    s.sacked
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    fn seg(seq: u32, len: u32, tdn: u8, t_us: u64) -> TxSeg {
        TxSeg {
            seq: SeqNum(seq),
            len,
            is_syn: false,
            is_fin: false,
            tdn: TdnId(tdn),
            tx_time: SimTime::from_micros(t_us),
            first_tx: SimTime::from_micros(t_us),
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        }
    }

    fn queue_of(n: u32) -> RtxQueue {
        let mut q = RtxQueue::new();
        for i in 0..n {
            q.push(seg(i * 100, 100, (i % 2) as u8, i as u64));
        }
        q
    }

    #[test]
    fn cum_ack_removes_covered() {
        let mut q = queue_of(5);
        let r = q.cum_ack(SeqNum(300));
        assert_eq!(r.acked.len(), 3);
        assert_eq!(r.acked_space, 300);
        assert_eq!(q.len(), 2);
        assert_eq!(q.front().unwrap().seq, SeqNum(300));
    }

    #[test]
    fn cum_ack_idempotent_and_stale() {
        let mut q = queue_of(3);
        q.cum_ack(SeqNum(200));
        let r = q.cum_ack(SeqNum(100)); // stale ACK
        assert!(r.acked.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cum_ack_partial_trims() {
        let mut q = queue_of(2);
        let r = q.cum_ack(SeqNum(150));
        assert_eq!(r.acked.len(), 1);
        assert_eq!(r.acked_space, 150);
        let front = q.front().unwrap();
        assert_eq!(front.seq, SeqNum(150));
        assert_eq!(front.len, 50);
    }

    #[test]
    fn sack_marks_and_reports_newly() {
        let mut q = queue_of(5);
        let newly = q.mark_sacked([(SeqNum(200), SeqNum(400))].into_iter());
        assert_eq!(newly.len(), 2);
        assert_eq!(newly[0].seq, SeqNum(200));
        // Re-applying the same block marks nothing new.
        let again = q.mark_sacked([(SeqNum(200), SeqNum(400))].into_iter());
        assert!(again.is_empty());
        assert_eq!(q.highest_sacked(), Some(SeqNum(400)));
        assert_eq!(q.sacked_above(SeqNum(0)), 2);
    }

    #[test]
    fn sack_ignores_partial_overlap() {
        let mut q = queue_of(3);
        // Block covers only half of segment [100,200): not sacked.
        let newly = q.mark_sacked([(SeqNum(100), SeqNum(150))].into_iter());
        assert!(newly.is_empty());
    }

    #[test]
    fn mark_lost_below_with_predicate() {
        let mut q = queue_of(6); // TDNs alternate 0,1,0,1,0,1
        q.mark_sacked([(SeqNum(500), SeqNum(600))].into_iter());
        // Mark lost only TDN-1 segments below 500.
        let marked = q.mark_lost_below(SeqNum(500), |s| s.tdn == TdnId(1));
        assert_eq!(marked.len(), 2);
        assert!(marked.iter().all(|s| s.tdn == TdnId(1)));
        let c = q.counts();
        assert_eq!(c.packets_out, 6);
        assert_eq!(c.sacked_out, 1);
        assert_eq!(c.lost_out, 2);
        assert_eq!(c.pipe(), 3);
    }

    #[test]
    fn mark_lost_skips_sacked_and_already_lost() {
        let mut q = queue_of(4);
        q.mark_sacked([(SeqNum(100), SeqNum(200))].into_iter());
        let first = q.mark_lost_below(SeqNum(400), |_| true);
        assert_eq!(first.len(), 3, "sacked seg skipped");
        let second = q.mark_lost_below(SeqNum(400), |_| true);
        assert!(second.is_empty(), "already-lost not re-marked");
    }

    #[test]
    fn retransmit_flow() {
        let mut q = queue_of(3);
        q.mark_lost_below(SeqNum(200), |_| true);
        {
            let s = q.next_retransmit().expect("segment 0 wants retx");
            assert_eq!(s.seq, SeqNum(0));
            s.retx_in_flight = true;
            s.retx_count += 1;
            s.tx_time = SimTime::from_micros(99);
        }
        {
            let s = q.next_retransmit().expect("segment 1 next");
            assert_eq!(s.seq, SeqNum(100));
            s.retx_in_flight = true;
        }
        assert!(q.next_retransmit().is_none());
        let c = q.counts();
        assert_eq!(c.retrans_out, 2);
        assert_eq!(c.pipe(), 1 + 2); // one clean + two retransmissions
    }

    #[test]
    fn sack_clears_lost_and_retx() {
        let mut q = queue_of(2);
        q.mark_lost_below(SeqNum(100), |_| true);
        q.next_retransmit().unwrap().retx_in_flight = true;
        // The "lost" original arrives after all; SACK cleans everything.
        let newly = q.mark_sacked([(SeqNum(0), SeqNum(100))].into_iter());
        assert_eq!(newly.len(), 1);
        let c = q.counts();
        assert_eq!(c.lost_out, 0);
        assert_eq!(c.retrans_out, 0);
        assert_eq!(c.sacked_out, 1);
    }

    #[test]
    fn rto_marks_all_lost() {
        let mut q = queue_of(4);
        q.mark_sacked([(SeqNum(300), SeqNum(400))].into_iter());
        let n = q.mark_all_lost();
        assert_eq!(n, 3);
        assert_eq!(q.counts().lost_out, 3);
    }

    #[test]
    fn sack_never_frees_data_and_reneging_remarks() {
        let mut q = queue_of(4);
        q.mark_sacked([(SeqNum(100), SeqNum(300))].into_iter());
        // SACK alone never removes segments from the queue (RFC 2018:
        // the receiver may renege, so the sender must keep the data).
        assert_eq!(q.len(), 4, "SACK must not free rtx-queue data");
        assert_eq!(q.counts().sacked_out, 2);

        // The receiver reneges: clear the marks, then RTO-style loss
        // marking makes the formerly-sacked range retransmittable.
        let cleared = q.clear_sack_marks();
        assert_eq!(cleared, 2);
        assert_eq!(q.counts().sacked_out, 0);
        q.mark_all_lost();
        let seqs: Vec<_> = std::iter::from_fn(|| {
            q.next_retransmit().map(|s| {
                s.retx_in_flight = true;
                s.seq
            })
        })
        .collect();
        assert_eq!(
            seqs,
            vec![SeqNum(0), SeqNum(100), SeqNum(200), SeqNum(300)],
            "reneged ranges are retransmitted with everything else"
        );
    }

    #[test]
    fn per_tdn_counts() {
        let q = queue_of(6);
        let t0 = q.counts_for_tdn(TdnId(0));
        let t1 = q.counts_for_tdn(TdnId(1));
        assert_eq!(t0.packets_out, 3);
        assert_eq!(t1.packets_out, 3);
        assert_eq!(
            t0.packets_out + t1.packets_out,
            q.counts().packets_out,
            "per-TDN counts partition the total (§4.3 'all TDNs' check)"
        );
    }

    #[test]
    fn newest_sacked_tx_time() {
        let mut q = queue_of(4);
        assert_eq!(q.newest_sacked_tx_time(), None);
        q.mark_sacked([(SeqNum(100), SeqNum(200)), (SeqNum(300), SeqNum(400))].into_iter());
        assert_eq!(q.newest_sacked_tx_time(), Some(SimTime::from_micros(3)));
    }

    #[test]
    fn last_unsacked_for_tlp() {
        let mut q = queue_of(3);
        q.mark_sacked([(SeqNum(200), SeqNum(300))].into_iter());
        assert_eq!(q.last_unsacked().unwrap().seq, SeqNum(100));
    }

    #[test]
    fn get_mut_by_seq() {
        let mut q = queue_of(3);
        assert!(q.get_mut(SeqNum(100)).is_some());
        assert!(q.get_mut(SeqNum(150)).is_none());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    #[cfg(debug_assertions)]
    fn push_gap_panics_in_debug() {
        let mut q = queue_of(1);
        q.push(seg(500, 100, 0, 9));
    }
}
