//! The retransmission queue: per-segment transmit metadata and the SACK
//! scoreboard (RFC 2018 / RFC 6675 pipe accounting).
//!
//! Every transmitted-but-unacknowledged segment carries the TDN it was
//! (last) sent on, which is what lets TDTCP implement the "specific TDN"
//! accounting of §4.3 (an incoming cumulative ACK may acknowledge data
//! sent over several TDNs; the queue is scanned to credit each one) and
//! the relaxed reordering heuristics of §3.4.

use crate::seq::SeqNum;
use simcore::SimTime;
use std::collections::VecDeque;
use wire::TdnId;

/// Metadata for one transmitted, unacknowledged segment.
#[derive(Debug, Clone, Copy)]
pub struct TxSeg {
    /// First sequence number.
    pub seq: SeqNum,
    /// Sequence space consumed (payload + SYN/FIN).
    pub len: u32,
    /// Segment carries SYN.
    pub is_syn: bool,
    /// Segment carries FIN.
    pub is_fin: bool,
    /// TDN of the most recent transmission of this segment.
    pub tdn: TdnId,
    /// Time of the most recent transmission.
    pub tx_time: SimTime,
    /// Time of the first transmission.
    pub first_tx: SimTime,
    /// Selectively acknowledged.
    pub sacked: bool,
    /// Declared lost by loss detection.
    pub lost: bool,
    /// A retransmission of this segment is currently in flight.
    pub retx_in_flight: bool,
    /// Total times retransmitted.
    pub retx_count: u32,
}

impl TxSeg {
    /// Exclusive end of the segment's sequence range.
    pub fn end(&self) -> SeqNum {
        self.seq + self.len
    }

    /// Karn's rule: never sample RTT from a segment that was ever
    /// retransmitted.
    pub fn ever_retransmitted(&self) -> bool {
        self.retx_count > 0
    }

    /// Whether this segment needs (re)transmission right now.
    pub fn wants_retransmit(&self) -> bool {
        self.lost && !self.retx_in_flight && !self.sacked
    }
}

/// Counters in packets, Linux-style (`tcp_sock` fields of §3.1's "pipe"
/// class).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeCounts {
    /// Segments outstanding (`packets_out`).
    pub packets_out: u32,
    /// Segments SACKed (`sacked_out`).
    pub sacked_out: u32,
    /// Segments marked lost (`lost_out`).
    pub lost_out: u32,
    /// Retransmissions in flight (`retrans_out`).
    pub retrans_out: u32,
}

impl PipeCounts {
    /// RFC 6675 pipe: an estimate of segments currently in the network.
    pub fn pipe(&self) -> u32 {
        (self.packets_out + self.retrans_out).saturating_sub(self.sacked_out + self.lost_out)
    }
}

/// Result of processing a cumulative ACK.
#[derive(Debug, Default)]
pub struct CumAckResult {
    /// Fully acknowledged segments, removed from the queue in order.
    pub acked: Vec<TxSeg>,
    /// Bytes of sequence space newly acknowledged.
    pub acked_space: u32,
}

/// A lazily maintained scoreboard aggregate: `Dirty` after a mutation
/// that may have invalidated it; recomputed on the next read.
#[derive(Debug, Clone, Copy, Default)]
enum Cache<T> {
    #[default]
    Dirty,
    Clean(Option<T>),
}

/// The retransmission queue proper: contiguous segments covering
/// `[snd_una, snd_nxt)` in order.
///
/// Hot per-connection state is packed struct-of-arrays style: every
/// scoreboard aggregate the send path reads per ACK — total and per-TDN
/// [`PipeCounts`], retransmission demand, queued FINs, the highest
/// SACKed edge and the newest SACKed transmit time — is maintained
/// incrementally on each flag transition, so the per-ACK reads that used
/// to scan the whole queue ([`counts`](RtxQueue::counts),
/// [`counts_for_tdn`](RtxQueue::counts_for_tdn),
/// [`has_retransmit`](RtxQueue::has_retransmit), …) are O(1). Segment
/// flags therefore only change through queue methods; the scoped
/// mutators ([`with_next_retransmit`](RtxQueue::with_next_retransmit),
/// [`with_last_unsacked`](RtxQueue::with_last_unsacked)) re-account the
/// mutated segment when the closure returns.
#[derive(Debug, Default)]
pub struct RtxQueue {
    segs: VecDeque<TxSeg>,
    /// Incremental [`RtxQueue::counts`] over all segments.
    total: PipeCounts,
    /// Incremental per-TDN counts, indexed by [`TdnId::index`]; grown on
    /// first use of a TDN. Sums to `total` at all times.
    by_tdn: Vec<PipeCounts>,
    /// Segments with [`TxSeg::wants_retransmit`] set.
    retx_wanted: u32,
    /// Segments carrying FIN.
    fins: u32,
    /// Cached [`RtxQueue::highest_sacked`].
    hi_sacked: Cache<SeqNum>,
    /// Cached [`RtxQueue::newest_sacked_tx_time`].
    newest_sacked: Cache<SimTime>,
}

impl RtxQueue {
    /// Empty queue.
    pub fn new() -> Self {
        RtxQueue {
            hi_sacked: Cache::Clean(None),
            newest_sacked: Cache::Clean(None),
            ..RtxQueue::default()
        }
    }

    /// Fold `seg` into every incremental aggregate.
    fn account_add(&mut self, seg: &TxSeg) {
        let idx = seg.tdn.index();
        if idx >= self.by_tdn.len() {
            self.by_tdn.resize(idx + 1, PipeCounts::default());
        }
        for c in [&mut self.total, &mut self.by_tdn[idx]] {
            c.packets_out += 1;
            if seg.sacked {
                c.sacked_out += 1;
            }
            if seg.lost {
                c.lost_out += 1;
            }
            if seg.retx_in_flight {
                c.retrans_out += 1;
            }
        }
        if seg.wants_retransmit() {
            self.retx_wanted += 1;
        }
        if seg.is_fin {
            self.fins += 1;
        }
        if seg.sacked {
            // Newly visible sacked segment: extend the clean caches (a
            // dirty cache stays dirty and recomputes on read).
            if let Cache::Clean(hi) = &mut self.hi_sacked {
                *hi = Some(hi.map_or(seg.end(), |h: SeqNum| {
                    if h.before(seg.end()) {
                        seg.end()
                    } else {
                        h
                    }
                }));
            }
            if let Cache::Clean(t) = &mut self.newest_sacked {
                *t = Some(t.map_or(seg.tx_time, |t: SimTime| t.max(seg.tx_time)));
            }
        }
    }

    /// Remove `seg` from every incremental aggregate.
    fn account_remove(&mut self, seg: &TxSeg) {
        let idx = seg.tdn.index();
        for c in [&mut self.total, &mut self.by_tdn[idx]] {
            c.packets_out -= 1;
            if seg.sacked {
                c.sacked_out -= 1;
            }
            if seg.lost {
                c.lost_out -= 1;
            }
            if seg.retx_in_flight {
                c.retrans_out -= 1;
            }
        }
        if seg.wants_retransmit() {
            self.retx_wanted -= 1;
        }
        if seg.is_fin {
            self.fins -= 1;
        }
        if seg.sacked {
            // A sacked segment leaving the aggregate may have been the
            // maximum; recompute lazily on the next read.
            self.hi_sacked = Cache::Dirty;
            self.newest_sacked = Cache::Dirty;
        }
    }

    /// Run `f` on `segs[i]`, re-accounting whatever it changed. The
    /// closure must not alter the segment's sequence range.
    fn mutate_at<R>(&mut self, i: usize, f: impl FnOnce(&mut TxSeg) -> R) -> R {
        let before = self.segs[i];
        let r = f(&mut self.segs[i]);
        let after = self.segs[i];
        debug_assert_eq!(before.seq, after.seq, "scoped mutators must not renumber");
        self.account_remove(&before);
        self.account_add(&after);
        r
    }

    /// Number of outstanding segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// Append a newly transmitted segment. Its `seq` must equal the current
    /// right edge (contiguity invariant).
    pub fn push(&mut self, seg: TxSeg) {
        if let Some(last) = self.segs.back() {
            debug_assert_eq!(
                last.end(),
                seg.seq,
                "rtx queue must stay contiguous: last ends {} but pushed {}",
                last.end(),
                seg.seq
            );
        }
        self.segs.push_back(seg);
        self.account_add(&seg);
    }

    /// Process a cumulative ACK at `ack`: remove fully covered segments.
    /// A mid-segment ACK trims the front segment (only possible if a peer
    /// ACKs at sub-segment granularity, which ours never does, but the
    /// queue stays correct regardless).
    pub fn cum_ack(&mut self, ack: SeqNum) -> CumAckResult {
        let mut out = CumAckResult::default();
        while let Some(front) = self.segs.front() {
            if front.end().before_eq(ack) {
                let seg = self.segs.pop_front().expect("checked front");
                self.account_remove(&seg);
                out.acked_space += seg.len;
                out.acked.push(seg);
            } else if front.seq.before(ack) {
                // Partial: trim the acknowledged prefix (flags and
                // therefore the aggregates are unchanged).
                let front = self.segs.front_mut().expect("checked front");
                let trimmed = ack - front.seq;
                front.seq = ack;
                front.len -= trimmed;
                front.is_syn = false; // SYN is the first octet; it is covered
                out.acked_space += trimmed;
                break;
            } else {
                break;
            }
        }
        out
    }

    /// Apply SACK blocks; returns the newly sacked segments (copies).
    pub fn mark_sacked<'a>(
        &mut self,
        blocks: impl Iterator<Item = (SeqNum, SeqNum)> + 'a,
    ) -> Vec<TxSeg> {
        let mut newly = Vec::new();
        for (left, right) in blocks {
            // The queue is seq-sorted and contiguous: binary-search the
            // first segment at or after `left`, then walk only the
            // covered range instead of scanning the whole queue per
            // block.
            let (mut lo, mut hi) = (0usize, self.segs.len());
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.segs[mid].seq.before(left) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            for i in lo..self.segs.len() {
                let seg = &self.segs[i];
                if !seg.end().before_eq(right) {
                    break;
                }
                if !seg.sacked {
                    let copy = self.mutate_at(i, |s| {
                        s.sacked = true;
                        // A sacked segment is definitionally not lost.
                        s.lost = false;
                        s.retx_in_flight = false;
                        *s
                    });
                    newly.push(copy);
                }
            }
        }
        newly
    }

    /// Highest SACKed sequence (exclusive end), if any segment is sacked.
    pub fn highest_sacked(&mut self) -> Option<SeqNum> {
        if let Cache::Clean(v) = self.hi_sacked {
            return v;
        }
        let v = self.segs.iter().rev().find(|s| s.sacked).map(|s| s.end());
        self.hi_sacked = Cache::Clean(v);
        v
    }

    /// Most recent transmit time among sacked segments (RACK's reference
    /// point: anything sent sufficiently earlier and still unsacked is
    /// presumed lost).
    pub fn newest_sacked_tx_time(&mut self) -> Option<SimTime> {
        if let Cache::Clean(v) = self.newest_sacked {
            return v;
        }
        let v = self.segs.iter().filter(|s| s.sacked).map(|s| s.tx_time).max();
        self.newest_sacked = Cache::Clean(v);
        v
    }

    /// Count of sacked segments strictly above `seq`.
    pub fn sacked_above(&self, seq: SeqNum) -> u32 {
        // The queue covers [snd_una, snd_nxt) contiguously, so asking
        // from the front edge covers every segment: O(1).
        if self.segs.front().is_none_or(|f| f.seq == seq) {
            return self.total.sacked_out;
        }
        self.segs
            .iter()
            .filter(|s| s.sacked && s.seq.after_eq(seq))
            .count() as u32
    }

    /// Mark as lost every unsacked, not-already-lost segment below
    /// `below` that satisfies `pred`. Returns copies of the segments
    /// marked. This is the hook TDTCP's relaxed detection uses: its
    /// predicate rejects hole segments whose TDN differs from the
    /// triggering ACK's TDN (§3.4).
    pub fn mark_lost_below<F>(&mut self, below: SeqNum, mut pred: F) -> Vec<TxSeg>
    where
        F: FnMut(&TxSeg) -> bool,
    {
        let mut marked = Vec::new();
        // Sacked and lost are mutually exclusive, so when every segment
        // carries one of the marks there is nothing left to mark.
        if self.total.packets_out == self.total.sacked_out + self.total.lost_out {
            return marked;
        }
        for i in 0..self.segs.len() {
            let seg = &self.segs[i];
            if seg.seq.after_eq(below) {
                break;
            }
            if !seg.sacked && !seg.lost && pred(seg) {
                let copy = self.mutate_at(i, |s| {
                    s.lost = true;
                    s.retx_in_flight = false;
                    *s
                });
                marked.push(copy);
            }
        }
        marked
    }

    /// RACK-style refresh of stale retransmissions: a retransmission
    /// transmitted at or before `cutoff` that is still unacknowledged was
    /// itself lost; clear its in-flight flag (and ensure it is marked
    /// lost) so it is retransmitted again. Without this, a dropped
    /// retransmission plugs the hole until an RTO. Returns the number of
    /// segments refreshed.
    pub fn refresh_stale_retx<F>(&mut self, cutoff: SimTime, mut pred: F) -> u32
    where
        F: FnMut(&TxSeg) -> bool,
    {
        let mut n = 0;
        if self.total.retrans_out == 0 {
            return 0;
        }
        for i in 0..self.segs.len() {
            let seg = &self.segs[i];
            if seg.retx_in_flight && !seg.sacked && seg.tx_time <= cutoff && pred(seg) {
                self.mutate_at(i, |s| {
                    s.retx_in_flight = false;
                    s.lost = true;
                });
                n += 1;
            }
        }
        n
    }

    /// SACK-reneging recovery (the `tcp_check_sack_reneging` analogue):
    /// forget every SACK mark so the segments become eligible for
    /// retransmission again. Data is *never* freed on SACK alone — only
    /// [`RtxQueue::cum_ack`] removes segments — so reneged ranges are
    /// still here to re-mark and resend. Returns the number of segments
    /// whose marks were cleared.
    pub fn clear_sack_marks(&mut self) -> u32 {
        let mut n = 0;
        for i in 0..self.segs.len() {
            if self.segs[i].sacked {
                self.mutate_at(i, |s| {
                    s.sacked = false;
                    s.retx_in_flight = false;
                });
                n += 1;
            }
        }
        n
    }

    /// Mark every unsacked segment lost (RTO recovery).
    pub fn mark_all_lost(&mut self) -> u32 {
        let mut n = 0;
        for i in 0..self.segs.len() {
            if !self.segs[i].sacked {
                self.mutate_at(i, |s| {
                    s.lost = true;
                    s.retx_in_flight = false;
                });
                n += 1;
            }
        }
        n
    }

    /// Whether any segment currently wants retransmission. O(1).
    pub fn has_retransmit(&self) -> bool {
        self.retx_wanted > 0
    }

    /// Whether a FIN is queued. O(1).
    pub fn has_fin(&self) -> bool {
        self.fins > 0
    }

    /// Whether every outstanding segment is SACKed. O(1).
    pub fn all_sacked(&self) -> bool {
        self.total.packets_out == self.total.sacked_out
    }

    /// The last (highest) outstanding segment.
    pub fn back(&self) -> Option<&TxSeg> {
        self.segs.back()
    }

    /// Run `f` on the next segment wanting retransmission (lowest
    /// sequence first), re-accounting its flags afterwards. Returns
    /// `None` (without calling `f`) when nothing wants retransmission.
    pub fn with_next_retransmit<R>(&mut self, f: impl FnOnce(&mut TxSeg) -> R) -> Option<R> {
        if self.retx_wanted == 0 {
            return None;
        }
        let i = self.segs.iter().position(|s| s.wants_retransmit())?;
        Some(self.mutate_at(i, f))
    }

    /// Run `f` on the highest unsacked segment (the TLP probe target),
    /// re-accounting its flags afterwards.
    pub fn with_last_unsacked<R>(&mut self, f: impl FnOnce(&mut TxSeg) -> R) -> Option<R> {
        if self.all_sacked() {
            return None;
        }
        let i = self.segs.iter().rposition(|s| !s.sacked)?;
        Some(self.mutate_at(i, f))
    }

    /// The first (oldest) outstanding segment.
    pub fn front(&self) -> Option<&TxSeg> {
        self.segs.front()
    }

    /// Run `f` on the segment starting exactly at `seq`, re-accounting
    /// its flags afterwards.
    pub fn with_seg_at<R>(&mut self, seq: SeqNum, f: impl FnOnce(&mut TxSeg) -> R) -> Option<R> {
        let i = self.segs.iter().position(|s| s.seq == seq)?;
        Some(self.mutate_at(i, f))
    }

    /// Iterate over outstanding segments in sequence order.
    pub fn iter(&self) -> impl Iterator<Item = &TxSeg> {
        self.segs.iter()
    }

    /// Pipe counters over all segments. O(1).
    pub fn counts(&self) -> PipeCounts {
        self.total
    }

    /// Pipe counters summed over the TDNs matching `pred` (per-TDN
    /// views). O(number of TDNs ever seen), not O(queue length).
    pub fn counts_tdn<F>(&self, pred: F) -> PipeCounts
    where
        F: Fn(TdnId) -> bool,
    {
        let mut c = PipeCounts::default();
        for (i, b) in self.by_tdn.iter().enumerate() {
            if b.packets_out > 0 && pred(TdnId(i as u8)) {
                c.packets_out += b.packets_out;
                c.sacked_out += b.sacked_out;
                c.lost_out += b.lost_out;
                c.retrans_out += b.retrans_out;
            }
        }
        c
    }

    /// Pipe counters for one TDN. O(1).
    pub fn counts_for_tdn(&self, tdn: TdnId) -> PipeCounts {
        self.by_tdn.get(tdn.index()).copied().unwrap_or_default()
    }

    /// Recompute every aggregate by scanning the queue — the reference
    /// implementation the incremental counters are checked against in
    /// tests.
    pub fn recounted(&self) -> PipeCounts {
        let mut c = PipeCounts::default();
        for seg in self.segs.iter() {
            c.packets_out += 1;
            if seg.sacked {
                c.sacked_out += 1;
            }
            if seg.lost {
                c.lost_out += 1;
            }
            if seg.retx_in_flight {
                c.retrans_out += 1;
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimTime;

    fn seg(seq: u32, len: u32, tdn: u8, t_us: u64) -> TxSeg {
        TxSeg {
            seq: SeqNum(seq),
            len,
            is_syn: false,
            is_fin: false,
            tdn: TdnId(tdn),
            tx_time: SimTime::from_micros(t_us),
            first_tx: SimTime::from_micros(t_us),
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        }
    }

    fn queue_of(n: u32) -> RtxQueue {
        let mut q = RtxQueue::new();
        for i in 0..n {
            q.push(seg(i * 100, 100, (i % 2) as u8, i as u64));
        }
        q
    }

    #[test]
    fn cum_ack_removes_covered() {
        let mut q = queue_of(5);
        let r = q.cum_ack(SeqNum(300));
        assert_eq!(r.acked.len(), 3);
        assert_eq!(r.acked_space, 300);
        assert_eq!(q.len(), 2);
        assert_eq!(q.front().unwrap().seq, SeqNum(300));
    }

    #[test]
    fn cum_ack_idempotent_and_stale() {
        let mut q = queue_of(3);
        q.cum_ack(SeqNum(200));
        let r = q.cum_ack(SeqNum(100)); // stale ACK
        assert!(r.acked.is_empty());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cum_ack_partial_trims() {
        let mut q = queue_of(2);
        let r = q.cum_ack(SeqNum(150));
        assert_eq!(r.acked.len(), 1);
        assert_eq!(r.acked_space, 150);
        let front = q.front().unwrap();
        assert_eq!(front.seq, SeqNum(150));
        assert_eq!(front.len, 50);
    }

    #[test]
    fn sack_marks_and_reports_newly() {
        let mut q = queue_of(5);
        let newly = q.mark_sacked([(SeqNum(200), SeqNum(400))].into_iter());
        assert_eq!(newly.len(), 2);
        assert_eq!(newly[0].seq, SeqNum(200));
        // Re-applying the same block marks nothing new.
        let again = q.mark_sacked([(SeqNum(200), SeqNum(400))].into_iter());
        assert!(again.is_empty());
        assert_eq!(q.highest_sacked(), Some(SeqNum(400)));
        assert_eq!(q.sacked_above(SeqNum(0)), 2);
    }

    #[test]
    fn sack_ignores_partial_overlap() {
        let mut q = queue_of(3);
        // Block covers only half of segment [100,200): not sacked.
        let newly = q.mark_sacked([(SeqNum(100), SeqNum(150))].into_iter());
        assert!(newly.is_empty());
    }

    #[test]
    fn mark_lost_below_with_predicate() {
        let mut q = queue_of(6); // TDNs alternate 0,1,0,1,0,1
        q.mark_sacked([(SeqNum(500), SeqNum(600))].into_iter());
        // Mark lost only TDN-1 segments below 500.
        let marked = q.mark_lost_below(SeqNum(500), |s| s.tdn == TdnId(1));
        assert_eq!(marked.len(), 2);
        assert!(marked.iter().all(|s| s.tdn == TdnId(1)));
        let c = q.counts();
        assert_eq!(c.packets_out, 6);
        assert_eq!(c.sacked_out, 1);
        assert_eq!(c.lost_out, 2);
        assert_eq!(c.pipe(), 3);
    }

    #[test]
    fn mark_lost_skips_sacked_and_already_lost() {
        let mut q = queue_of(4);
        q.mark_sacked([(SeqNum(100), SeqNum(200))].into_iter());
        let first = q.mark_lost_below(SeqNum(400), |_| true);
        assert_eq!(first.len(), 3, "sacked seg skipped");
        let second = q.mark_lost_below(SeqNum(400), |_| true);
        assert!(second.is_empty(), "already-lost not re-marked");
    }

    #[test]
    fn retransmit_flow() {
        let mut q = queue_of(3);
        q.mark_lost_below(SeqNum(200), |_| true);
        assert!(q.has_retransmit());
        let seq = q
            .with_next_retransmit(|s| {
                s.retx_in_flight = true;
                s.retx_count += 1;
                s.tx_time = SimTime::from_micros(99);
                s.seq
            })
            .expect("segment 0 wants retx");
        assert_eq!(seq, SeqNum(0));
        let seq = q
            .with_next_retransmit(|s| {
                s.retx_in_flight = true;
                s.seq
            })
            .expect("segment 1 next");
        assert_eq!(seq, SeqNum(100));
        assert!(!q.has_retransmit());
        assert!(q.with_next_retransmit(|_| ()).is_none());
        let c = q.counts();
        assert_eq!(c.retrans_out, 2);
        assert_eq!(c.pipe(), 1 + 2); // one clean + two retransmissions
    }

    #[test]
    fn sack_clears_lost_and_retx() {
        let mut q = queue_of(2);
        q.mark_lost_below(SeqNum(100), |_| true);
        q.with_next_retransmit(|s| s.retx_in_flight = true).unwrap();
        // The "lost" original arrives after all; SACK cleans everything.
        let newly = q.mark_sacked([(SeqNum(0), SeqNum(100))].into_iter());
        assert_eq!(newly.len(), 1);
        let c = q.counts();
        assert_eq!(c.lost_out, 0);
        assert_eq!(c.retrans_out, 0);
        assert_eq!(c.sacked_out, 1);
    }

    #[test]
    fn rto_marks_all_lost() {
        let mut q = queue_of(4);
        q.mark_sacked([(SeqNum(300), SeqNum(400))].into_iter());
        let n = q.mark_all_lost();
        assert_eq!(n, 3);
        assert_eq!(q.counts().lost_out, 3);
    }

    #[test]
    fn sack_never_frees_data_and_reneging_remarks() {
        let mut q = queue_of(4);
        q.mark_sacked([(SeqNum(100), SeqNum(300))].into_iter());
        // SACK alone never removes segments from the queue (RFC 2018:
        // the receiver may renege, so the sender must keep the data).
        assert_eq!(q.len(), 4, "SACK must not free rtx-queue data");
        assert_eq!(q.counts().sacked_out, 2);

        // The receiver reneges: clear the marks, then RTO-style loss
        // marking makes the formerly-sacked range retransmittable.
        let cleared = q.clear_sack_marks();
        assert_eq!(cleared, 2);
        assert_eq!(q.counts().sacked_out, 0);
        q.mark_all_lost();
        let seqs: Vec<_> = std::iter::from_fn(|| {
            q.with_next_retransmit(|s| {
                s.retx_in_flight = true;
                s.seq
            })
        })
        .collect();
        assert_eq!(
            seqs,
            vec![SeqNum(0), SeqNum(100), SeqNum(200), SeqNum(300)],
            "reneged ranges are retransmitted with everything else"
        );
    }

    #[test]
    fn per_tdn_counts() {
        let q = queue_of(6);
        let t0 = q.counts_for_tdn(TdnId(0));
        let t1 = q.counts_for_tdn(TdnId(1));
        assert_eq!(t0.packets_out, 3);
        assert_eq!(t1.packets_out, 3);
        assert_eq!(
            t0.packets_out + t1.packets_out,
            q.counts().packets_out,
            "per-TDN counts partition the total (§4.3 'all TDNs' check)"
        );
    }

    #[test]
    fn newest_sacked_tx_time() {
        let mut q = queue_of(4);
        assert_eq!(q.newest_sacked_tx_time(), None);
        q.mark_sacked([(SeqNum(100), SeqNum(200)), (SeqNum(300), SeqNum(400))].into_iter());
        assert_eq!(q.newest_sacked_tx_time(), Some(SimTime::from_micros(3)));
    }

    #[test]
    fn last_unsacked_for_tlp() {
        let mut q = queue_of(3);
        q.mark_sacked([(SeqNum(200), SeqNum(300))].into_iter());
        assert_eq!(q.with_last_unsacked(|s| s.seq), Some(SeqNum(100)));
    }

    #[test]
    fn with_seg_at_by_seq() {
        let mut q = queue_of(3);
        assert!(q.with_seg_at(SeqNum(100), |_| ()).is_some());
        assert!(q.with_seg_at(SeqNum(150), |_| ()).is_none());
    }

    #[test]
    fn incremental_counts_match_recount() {
        let mut q = queue_of(8);
        q.mark_sacked([(SeqNum(200), SeqNum(400)), (SeqNum(600), SeqNum(700))].into_iter());
        q.mark_lost_below(SeqNum(600), |s| s.tdn == TdnId(0));
        q.with_next_retransmit(|s| s.retx_in_flight = true);
        q.refresh_stale_retx(SimTime::from_micros(50), |_| true);
        q.cum_ack(SeqNum(150));
        assert_eq!(q.counts(), q.recounted(), "aggregates drifted from a scan");
        let per: u32 = (0..2).map(|t| q.counts_for_tdn(TdnId(t)).packets_out).sum();
        assert_eq!(per, q.counts().packets_out, "per-TDN buckets partition the total");
        q.clear_sack_marks();
        q.mark_all_lost();
        assert_eq!(q.counts(), q.recounted());
        assert!(q.has_retransmit());
        assert!(!q.has_fin());
        assert!(!q.all_sacked());
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    #[cfg(debug_assertions)]
    fn push_gap_panics_in_debug() {
        let mut q = queue_of(1);
        q.push(seg(500, 100, 0, 9));
    }
}
