//! A single-path TCP connection: handshake, bulk data transfer with SACK
//! loss recovery, RACK-style time-based loss marking, tail-loss probes,
//! RTO with backoff, ECN feedback, and pluggable congestion control.
//!
//! The engine is poll-based in the smoltcp style: the owner feeds it
//! segments and timer expirations and drains outgoing segments with
//! [`Connection::poll_send`]; nothing inside blocks or knows about wall
//! clocks. This same machinery — the retransmission queue, reassembler,
//! RTT estimator, and CC modules — is reused by the `tdtcp` crate (which
//! duplicates path state per TDN) and the `mptcp` crate (which runs one of
//! these per subflow).

use crate::ca::CaState;
use crate::cc::dctcp::DctcpReceiver;
use crate::cc::{AckEvent, CongestionControl};
use crate::recv::Reassembler;
use crate::rtt::{RttConfig, RttEstimator};
use crate::rtx::{RtxQueue, TxSeg};
use crate::segment::{Direction, FlowId, Segment};
use crate::seq::SeqNum;
use crate::stats::ConnStats;
use crate::transport::{ConnError, Transport};
use simcore::{SimDuration, SimTime};
use std::collections::VecDeque;
use wire::{Ecn, TdnId};

/// Connection configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Receive buffer (advertised window ceiling).
    pub recv_buf: u32,
    /// RTT estimator knobs.
    pub rtt: RttConfig,
    /// Duplicate-ACK / SACKed-segment threshold for fast retransmit.
    pub dupack_thresh: u32,
    /// Application bytes to send (`u64::MAX` = unbounded bulk source).
    pub bytes_to_send: u64,
    /// Negotiate and use ECN (set ECT(0) on data, echo CE as ECE).
    pub ecn: bool,
    /// Enable tail loss probes.
    pub tlp: bool,
    /// Enable RACK time-based loss marking (otherwise classic
    /// all-holes-below-SACK marking).
    pub rack: bool,
    /// Pace data segments at cwnd/srtt instead of bursting.
    pub pacing: bool,
    /// Initial sequence number (fixed for determinism).
    pub isn: u32,
    /// Give up after this many consecutive RTO fires (or persist probes)
    /// without progress, aborting the connection with a [`ConnError`]
    /// instead of retrying forever (the `tcp_retries2` analogue). With
    /// exponential backoff capped at shift 12, 15 retries against the
    /// 10 ms RTO floor is tens of seconds of simulated silence.
    pub max_retries: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            mss: 8948,
            recv_buf: 4 << 20,
            rtt: RttConfig::default(),
            dupack_thresh: 3,
            bytes_to_send: u64::MAX,
            ecn: false,
            tlp: true,
            rack: true,
            pacing: false,
            isn: 0,
            max_retries: 15,
        }
    }
}

/// TCP connection state (simplified close path: the data sender half-closes
/// with FIN; the pure receiver ACKs it — no TIME_WAIT modelling, which no
/// experiment in the paper depends on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// No connection.
    Closed,
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received, SYN-ACK sent.
    SynRcvd,
    /// Data flows.
    Established,
    /// FIN sent, awaiting its ACK.
    FinWait,
    /// Transfer complete.
    Done,
}

/// A single-path TCP connection (either endpoint).
pub struct Connection {
    cfg: Config,
    flow: FlowId,
    /// Direction our data segments travel (initiator sends on `DataPath`).
    data_dir: Direction,
    state: State,

    // --- send half ---
    snd_una: SeqNum,
    snd_nxt: SeqNum,
    rtx: RtxQueue,
    peer_wnd: u32,
    bytes_unsent: u64,
    fin_sent: bool,
    recovery_point: Option<SeqNum>,
    dupacks: u32,
    ca: CaState,
    cc: Box<dyn CongestionControl>,
    rtt: RttEstimator,

    rto_deadline: Option<SimTime>,
    tlp_deadline: Option<SimTime>,
    rto_backoff: u32,
    /// When the RTO timer was last (re)armed — the last send/ACK activity
    /// on the retransmission path. The gap to a subsequent RTO firing is
    /// the dead air accounted to `ConnStats::stall_ns`.
    rto_armed_at: SimTime,
    next_paced_at: SimTime,
    /// Zero-window persist timer: armed when the peer's window is closed,
    /// nothing is outstanding (so no RTO is armed), and data waits.
    persist_deadline: Option<SimTime>,
    persist_backoff: u32,
    /// Terminal error, if the connection aborted.
    error: Option<ConnError>,

    // --- receive half ---
    rx: Option<Reassembler>,
    peer_fin: Option<SeqNum>,
    dctcp_rx: DctcpReceiver,
    /// Last circuit mark observed on data, echoed on ACKs (reTCP support).
    echo_circuit: bool,

    pending: VecDeque<Segment>,
    stats: ConnStats,
    established_at: Option<SimTime>,
}

impl Connection {
    /// Create the initiating endpoint and queue its SYN.
    pub fn connect(
        flow: FlowId,
        cfg: Config,
        cc: Box<dyn CongestionControl>,
        now: SimTime,
    ) -> Self {
        let mut c = Connection::new_endpoint(flow, Direction::DataPath, cfg, cc);
        c.send_syn(now, false);
        c.state = State::SynSent;
        c
    }

    /// Create the passive endpoint (bulk sink).
    pub fn listen(flow: FlowId, cfg: Config, cc: Box<dyn CongestionControl>) -> Self {
        let mut cfg = cfg;
        cfg.bytes_to_send = 0; // pure receiver
        Connection::new_endpoint(flow, Direction::AckPath, cfg, cc)
    }

    fn new_endpoint(
        flow: FlowId,
        data_dir: Direction,
        cfg: Config,
        cc: Box<dyn CongestionControl>,
    ) -> Self {
        let isn = SeqNum(cfg.isn);
        Connection {
            rtt: RttEstimator::new(cfg.rtt),
            bytes_unsent: cfg.bytes_to_send,
            snd_una: isn,
            snd_nxt: isn,
            cfg,
            flow,
            data_dir,
            state: State::Closed,
            rtx: RtxQueue::new(),
            peer_wnd: u32::MAX,
            fin_sent: false,
            recovery_point: None,
            dupacks: 0,
            ca: CaState::Open,
            cc,
            rto_deadline: None,
            tlp_deadline: None,
            rto_backoff: 0,
            rto_armed_at: SimTime::ZERO,
            next_paced_at: SimTime::ZERO,
            persist_deadline: None,
            persist_backoff: 0,
            error: None,
            rx: None,
            peer_fin: None,
            dctcp_rx: DctcpReceiver::new(),
            echo_circuit: false,
            pending: VecDeque::new(),
            stats: ConnStats::new(),
            established_at: None,
        }
    }

    // ------------------------------------------------------------------
    // accessors
    // ------------------------------------------------------------------

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Current congestion window (bytes).
    pub fn cwnd(&self) -> u32 {
        self.cc.cwnd()
    }

    /// Congestion-avoidance machine state.
    pub fn ca_state(&self) -> CaState {
        self.ca
    }

    /// The RTT estimator (read-only).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Bytes of sequence space in flight (estimate, RFC 6675 pipe).
    pub fn flight_bytes(&self) -> u32 {
        self.rtx.counts().pipe().saturating_mul(self.cfg.mss)
    }

    /// Highest cumulative byte offset acknowledged (relative to the ISN),
    /// excluding the SYN octet — i.e. application bytes confirmed
    /// delivered. This is the y-axis of the paper's sequence graphs.
    pub fn acked_offset(&self) -> u64 {
        self.stats.bytes_acked
    }

    /// When the handshake completed, if it has.
    pub fn established_at(&self) -> Option<SimTime> {
        self.established_at
    }

    /// The terminal error this connection aborted with, if any.
    pub fn conn_error(&self) -> Option<ConnError> {
        self.error
    }

    /// Append `n` application bytes to the send stream. Used by MPTCP's
    /// scheduler, which feeds each subflow chunk by chunk instead of
    /// configuring a fixed transfer size.
    pub fn enqueue_app_bytes(&mut self, n: u64) {
        self.bytes_unsent = self.bytes_unsent.saturating_add(n);
    }

    /// Application bytes accepted but not yet transmitted for the first
    /// time.
    pub fn unsent_bytes(&self) -> u64 {
        self.bytes_unsent
    }

    /// Sequence number of the next new byte to be sent.
    pub fn snd_nxt(&self) -> SeqNum {
        self.snd_nxt
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> SeqNum {
        self.snd_una
    }

    // ------------------------------------------------------------------
    // segment input
    // ------------------------------------------------------------------

    fn send_syn(&mut self, now: SimTime, _retx: bool) {
        let mut syn = Segment::new(self.flow, self.data_dir);
        syn.seq = self.snd_nxt;
        syn.flags.syn = true;
        syn.wnd = self.cfg.recv_buf;
        if self.cfg.ecn {
            syn.flags.ece = true;
            syn.flags.cwr = true; // ECN-setup SYN (RFC 3168)
        }
        self.rtx.push(TxSeg {
            seq: self.snd_nxt,
            len: 1,
            is_syn: true,
            is_fin: false,
            tdn: TdnId::ZERO, // Appendix A.2: the SYN is always TDN 0
            tx_time: now,
            first_tx: now,
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        });
        self.snd_nxt += 1;
        self.pending.push_back(syn);
        self.arm_rto(now);
    }

    /// Feed an arriving segment.
    pub fn handle_segment(&mut self, now: SimTime, seg: &Segment) {
        self.stats.segs_received += 1;
        // End-to-end payload checksum: a damaged segment is discarded
        // whole (headers included — a real NIC cannot trust any of it),
        // exactly as if the network had dropped it, but counted apart
        // from drops so corruption is observable.
        if seg.payload_is_corrupt() {
            self.stats.corrupt_rx += 1;
            return;
        }
        if seg.flags.rst {
            self.state = State::Done;
            self.pending.clear();
            return;
        }
        match self.state {
            State::Closed => {
                if seg.flags.syn && !seg.flags.ack {
                    self.on_syn(now, seg);
                }
            }
            State::SynSent => {
                if seg.flags.syn && seg.flags.ack {
                    self.on_syn_ack(now, seg);
                }
            }
            State::SynRcvd => {
                if seg.flags.ack {
                    self.process_ack(now, seg);
                    if self.snd_una.after(SeqNum(self.cfg.isn)) {
                        self.state = State::Established;
                        self.established_at = Some(now);
                    }
                }
                if seg.has_payload() {
                    // The handshake ACK can carry data.
                    self.on_data(now, seg);
                }
            }
            State::Established | State::FinWait => {
                if seg.flags.ack {
                    self.process_ack(now, seg);
                }
                if seg.has_payload() || seg.flags.fin {
                    self.on_data(now, seg);
                }
                self.maybe_finish();
            }
            State::Done => {
                // TIME-WAIT duty: a retransmitted FIN means the peer
                // never got our final ACK (it was lost or corrupted on
                // the wire). Re-ACK it, or the peer retries its FIN
                // until its retransmission limit — a silent stall from
                // the application's point of view.
                if seg.flags.fin && self.rx.is_some() {
                    self.queue_ack(now, false);
                }
            }
        }
    }

    fn on_syn(&mut self, now: SimTime, seg: &Segment) {
        self.rx = Some(Reassembler::new(seg.seq + 1, self.cfg.recv_buf));
        self.peer_wnd = seg.wnd;
        // SYN-ACK.
        let mut sa = Segment::new(self.flow, self.data_dir);
        sa.seq = self.snd_nxt;
        sa.ack = seg.seq + 1;
        sa.flags.syn = true;
        sa.flags.ack = true;
        sa.wnd = self.cfg.recv_buf;
        if self.cfg.ecn && seg.flags.ece && seg.flags.cwr {
            sa.flags.ece = true; // accept ECN setup
        }
        self.rtx.push(TxSeg {
            seq: self.snd_nxt,
            len: 1,
            is_syn: true,
            is_fin: false,
            tdn: TdnId::ZERO,
            tx_time: now,
            first_tx: now,
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        });
        self.snd_nxt += 1;
        self.pending.push_back(sa);
        self.state = State::SynRcvd;
        self.arm_rto(now);
    }

    fn on_syn_ack(&mut self, now: SimTime, seg: &Segment) {
        self.rx = Some(Reassembler::new(seg.seq + 1, self.cfg.recv_buf));
        self.peer_wnd = seg.wnd;
        self.process_ack(now, seg);
        self.state = State::Established;
        self.established_at = Some(now);
        // Complete the handshake with a bare ACK.
        let mut ack = Segment::new(self.flow, self.data_dir);
        ack.seq = self.snd_nxt;
        ack.ack = self.rx.as_ref().expect("created above").rcv_nxt();
        ack.flags.ack = true;
        ack.wnd = self.cfg.recv_buf;
        self.pending.push_back(ack);
        self.stats.acks_sent += 1;
    }

    fn on_data(&mut self, now: SimTime, seg: &Segment) {
        let Some(rx) = self.rx.as_mut() else { return };
        if seg.has_payload() {
            let outcome = rx.on_data(seg.seq, seg.len);
            self.stats.bytes_delivered += u64::from(outcome.delivered);
            if outcome.duplicate {
                self.stats.dup_segs_received += 1;
                self.stats.spurious_retransmits += 1;
            }
            if seg.ecn == Ecn::Ce {
                self.stats.ce_received += 1;
            }
        }
        if seg.flags.fin {
            self.peer_fin = Some(seg.seq + (seg.seq_space() - 1));
        }
        // Consume the FIN octet once all data before it has arrived.
        if let Some(fin) = self.peer_fin {
            let rx = self.rx.as_mut().expect("checked above");
            if rx.rcv_nxt() == fin {
                rx.advance(1);
                self.peer_fin = None;
                if self.state == State::Established && self.cfg.bytes_to_send == 0 {
                    self.state = State::Done;
                }
            }
        }
        let ece = self.cfg.ecn && self.dctcp_rx.on_data(seg.seq, seg.ecn == Ecn::Ce);
        self.echo_circuit = seg.circuit_mark;
        self.queue_ack(now, ece);
    }

    /// Queue a pure ACK reflecting current receive state.
    fn queue_ack(&mut self, _now: SimTime, ece: bool) {
        let rx = self.rx.as_ref().expect("established");
        let mut ack = Segment::new(self.flow, self.data_dir);
        ack.seq = self.snd_nxt;
        ack.ack = rx.rcv_nxt();
        ack.flags.ack = true;
        ack.flags.ece = ece;
        ack.wnd = rx.window();
        ack.sack = rx.sack_blocks();
        ack.circuit_mark = self.echo_circuit;
        self.pending.push_back(ack);
        self.stats.acks_sent += 1;
    }

    // ------------------------------------------------------------------
    // ACK processing / loss detection
    // ------------------------------------------------------------------

    fn process_ack(&mut self, now: SimTime, seg: &Segment) {
        let before_counts = self.rtx.counts();
        // §4.3 "all TDNs": an ACK with nothing outstanding is stale.
        if before_counts.packets_out == 0 && seg.ack == self.snd_una && seg.sack.is_empty() {
            // Still a window update: a zero-window receiver reopening
            // its window sends exactly this "stale" ACK shape, and it
            // must cancel (or re-pace) the persist timer.
            self.peer_wnd = seg.wnd;
            self.maybe_arm_persist(now);
            return;
        }
        if seg.ack.after(self.snd_nxt) {
            return; // acks data never sent; drop
        }

        let old_una = self.snd_una;
        let res = self.rtx.cum_ack(seg.ack);
        if seg.ack.after(self.snd_una) {
            self.snd_una = seg.ack;
        }

        // RTT sampling: newest cumulatively acked, never-retransmitted
        // segment (Karn). Subclass behaviour (TDTCP) filters further.
        if let Some(sample_seg) = res
            .acked
            .iter()
            .rev()
            .find(|s| !s.ever_retransmitted())
        {
            self.rtt.on_sample_between(sample_seg.tx_time, now);
        }

        let mut acked_payload: u32 = res.acked.iter().map(seg_payload).sum();
        if seg.ack.after(old_una) && res.acked.is_empty() && res.acked_space > 0 {
            acked_payload = res.acked_space; // partial trim
        }
        self.stats.bytes_acked += u64::from(acked_payload);
        if res.acked.iter().any(|s| s.is_fin) {
            self.fin_sent = true; // FIN acknowledged
        }

        // SACK processing.
        let newly_sacked = self.rtx.mark_sacked(seg.sack.iter());

        // Duplicate-ACK bookkeeping.
        let progress = seg.ack.after(old_una);
        if !progress && !self.rtx.is_empty() && (seg.has_payload() || !newly_sacked.is_empty() || seg.sack.is_empty()) {
            self.dupacks += 1;
        } else if progress {
            self.dupacks = 0;
        }

        // Reordering / loss detection.
        self.detect_losses(now, seg, &newly_sacked);

        // Recovery exit.
        if let Some(rp) = self.recovery_point {
            if self.snd_una.after_eq(rp) {
                self.recovery_point = None;
                self.ca = CaState::Open;
                self.dupacks = 0;
                self.rto_backoff = 0;
                self.cc.on_exit_recovery(now);
            }
        }
        if self.ca == CaState::Disorder && self.rtx.all_sacked() {
            self.ca = CaState::Open;
        }

        // Congestion control.
        if seg.flags.ece {
            self.stats.ece_received += 1;
        }
        let ev = AckEvent {
            now,
            bytes_acked: acked_payload,
            packets_acked: res.acked.len() as u32 + newly_sacked.len() as u32,
            rtt_sample: self.rtt.latest(),
            srtt: self.rtt.srtt(),
            flight_size: self.flight_bytes(),
            in_recovery: self.ca.in_recovery(),
            ecn_bytes: if seg.flags.ece { acked_payload } else { 0 },
        };
        self.cc.on_ack(&ev);
        // reTCP: the echoed circuit mark drives explicit window scaling.
        self.cc.on_circuit_signal(now, seg.circuit_mark);

        self.peer_wnd = seg.wnd;

        // Timers: progress re-arms RTO; emptiness disarms.
        if self.rtx.is_empty() {
            self.rto_deadline = None;
            self.tlp_deadline = None;
            self.rto_backoff = 0;
        } else if progress || !newly_sacked.is_empty() {
            self.rto_backoff = 0;
            self.arm_rto(now);
            self.arm_tlp(now);
        }
        self.maybe_arm_persist(now);
    }

    /// Loss detection: classic dupACK threshold + RACK-style time filter.
    /// The TDTCP subclass replaces the marking predicate with the
    /// TDN-aware relaxed heuristic; here every hole candidate qualifies.
    fn detect_losses(&mut self, now: SimTime, _seg: &Segment, newly_sacked: &[TxSeg]) {
        let Some(high_sacked) = self.rtx.highest_sacked() else {
            return;
        };
        // Fast path: an unsacked head below a SACKed segment is a hole.
        let hole_exists = match self.rtx.front() {
            Some(f) if !f.sacked => true,
            _ => self
                .rtx
                .iter()
                .any(|s| !s.sacked && s.seq.before(high_sacked)),
        };
        if !hole_exists {
            return;
        }
        // A "reordering event" is a fresh detection: the first hole
        // evidence while the machine was still Open.
        if !newly_sacked.is_empty() && self.ca == CaState::Open {
            self.stats.reorder_events += 1;
        }

        let thresh_hit = self.dupacks >= self.cfg.dupack_thresh
            || self.rtx.sacked_above(self.snd_una) >= self.cfg.dupack_thresh;
        if !thresh_hit {
            if self.ca == CaState::Open {
                self.ca = CaState::Disorder;
            }
            return;
        }

        // Entering (or continuing) recovery: mark losses.
        let rack_cutoff = if self.cfg.rack {
            let reo_wnd = self
                .rtt
                .min_rtt()
                .map(|m| m / 4)
                .unwrap_or(SimDuration::ZERO);
            self.rtx
                .newest_sacked_tx_time()
                .map(|t| t - reo_wnd)
        } else {
            None
        };
        let marked = self.rtx.mark_lost_below(high_sacked, |s| match rack_cutoff {
            Some(cutoff) => s.tx_time <= cutoff,
            None => true,
        });
        self.stats.reorder_marked_pkts += marked.len() as u64;

        // A retransmission older than the RACK window that is still
        // unacknowledged was itself lost: release it for another try.
        if let Some(cutoff) = rack_cutoff {
            self.rtx.refresh_stale_retx(cutoff, |_| true);
        }

        if !marked.is_empty() && !self.ca.in_recovery() {
            self.enter_recovery(now);
        }
    }

    fn enter_recovery(&mut self, now: SimTime) {
        self.ca = CaState::Recovery;
        self.recovery_point = Some(self.snd_nxt);
        self.stats.fast_recoveries += 1;
        self.cc.on_enter_recovery(now, self.flight_bytes());
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    fn arm_rto(&mut self, now: SimTime) {
        // The shift cap bounds the arithmetic; `max_retries` (checked in
        // `fire_rto`) bounds the *retrying* — a blackholed flow aborts
        // with `ConnError` before the cap ever plateaus the backoff.
        let backoff = 1u64 << self.rto_backoff.min(12);
        self.rto_deadline = Some(now + self.rtt.rto().saturating_mul(backoff));
        self.rto_armed_at = now;
    }

    /// Whether the connection is stuck behind a closed peer window: data
    /// waits, nothing is outstanding (so no RTO is armed), and the peer
    /// advertises zero. Without a persist probe this is a silent
    /// deadlock — the classic lost-window-update stall.
    fn needs_persist(&self) -> bool {
        self.state == State::Established
            && self.peer_wnd == 0
            && self.rtx.is_empty()
            && self.bytes_unsent > 0
    }

    /// Arm, re-arm or disarm the persist timer to match current state.
    fn maybe_arm_persist(&mut self, now: SimTime) {
        if self.needs_persist() {
            if self.persist_deadline.is_none() {
                let backoff = 1u64 << self.persist_backoff.min(12);
                let delay = self
                    .rtt
                    .rto()
                    .saturating_mul(backoff)
                    .min(self.cfg.rtt.max_rto);
                self.persist_deadline = Some(now + delay);
            }
        } else {
            self.persist_deadline = None;
            if self.peer_wnd > 0 {
                self.persist_backoff = 0;
            }
        }
    }

    /// The persist timer fired: transmit a one-byte window probe from the
    /// unsent stream (RFC 9293 §3.8.6.1). The byte is real data — it goes
    /// on the rtx queue and is cumulatively acknowledged like any other —
    /// so a reopening window resumes exactly in sequence.
    fn fire_persist(&mut self, now: SimTime) {
        if !self.needs_persist() {
            return;
        }
        if self.persist_backoff >= self.cfg.max_retries {
            self.abort(ConnError::PersistTimeout {
                probes: self.persist_backoff,
            });
            return;
        }
        self.stats.persist_probes += 1;
        self.persist_backoff += 1;
        let mut seg = Segment::new(self.flow, self.data_dir);
        seg.seq = self.snd_nxt;
        seg.len = 1;
        seg.flags.psh = true;
        seg.flags.ack = self.rx.is_some();
        seg.ack = self
            .rx
            .as_ref()
            .map(|r| r.rcv_nxt())
            .unwrap_or(SeqNum::ZERO);
        self.finalize_data_segment(&mut seg);
        self.rtx.push(TxSeg {
            seq: self.snd_nxt,
            len: 1,
            is_syn: false,
            is_fin: false,
            tdn: self.current_tdn(),
            tx_time: now,
            first_tx: now,
            sacked: false,
            lost: false,
            retx_in_flight: false,
            retx_count: 0,
        });
        self.snd_nxt += 1;
        self.bytes_unsent -= 1;
        self.stats.bytes_sent += 1;
        self.stats.segs_sent += 1;
        self.pending.push_back(seg);
        self.arm_rto(now);
        // Re-arm with backoff in case the probe's ACK still says zero.
        self.persist_deadline = None;
    }

    /// Abort with a terminal error: surface it, stop all timers, and
    /// report done so the driver terminates the flow.
    fn abort(&mut self, err: ConnError) {
        self.error = Some(err);
        self.state = State::Done;
        self.stats.conn_aborts += 1;
        self.pending.clear();
        self.rto_deadline = None;
        self.tlp_deadline = None;
        self.persist_deadline = None;
    }

    fn arm_tlp(&mut self, now: SimTime) {
        if !self.cfg.tlp {
            return;
        }
        let pto = match self.rtt.srtt() {
            Some(srtt) => srtt.saturating_mul(2),
            None => self.rtt.rto() / 2,
        };
        let deadline = now + pto;
        // TLP must fire before the RTO or it is useless.
        if self.rto_deadline.is_none_or(|rto| deadline < rto) {
            self.tlp_deadline = Some(deadline);
        }
    }

    /// The earliest pending timer, if any.
    pub fn next_timer(&self) -> Option<SimTime> {
        let mut t = None;
        for cand in [self.rto_deadline, self.tlp_deadline, self.persist_deadline] {
            t = match (t, cand) {
                (None, c) => c,
                (Some(a), Some(b)) if b < a => Some(b),
                (a, _) => a,
            };
        }
        if self.cfg.pacing && self.can_send_data() && self.next_paced_at > SimTime::ZERO {
            t = match t {
                None => Some(self.next_paced_at),
                Some(a) if self.next_paced_at < a => Some(self.next_paced_at),
                a => a,
            };
        }
        t
    }

    /// Fire any expired timers.
    pub fn handle_timer(&mut self, now: SimTime) {
        if let Some(tlp) = self.tlp_deadline {
            if tlp <= now {
                self.tlp_deadline = None;
                self.fire_tlp(now);
            }
        }
        if let Some(rto) = self.rto_deadline {
            if rto <= now {
                self.fire_rto(now);
            }
        }
        if let Some(p) = self.persist_deadline {
            if p <= now {
                self.persist_deadline = None;
                self.fire_persist(now);
            }
        }
    }

    fn fire_tlp(&mut self, now: SimTime) {
        if self.rtx.is_empty() {
            return;
        }
        self.stats.tlps += 1;
        let flow = self.flow;
        let dir = self.data_dir;
        // Probe: retransmit the highest unsacked segment.
        if let Some(mut out) = self.rtx.with_last_unsacked(|seg| {
            let out = Self::segment_from_txseg(flow, dir, seg);
            seg.tx_time = now;
            seg.retx_count += 1;
            seg.retx_in_flight = true;
            out
        }) {
            out.ack = self
                .rx
                .as_ref()
                .map(|r| r.rcv_nxt())
                .unwrap_or(SeqNum::ZERO);
            out.flags.ack = self.rx.is_some();
            self.finalize_data_segment(&mut out);
            self.stats.retransmits += 1;
            self.stats.segs_sent += 1;
            self.pending.push_back(out);
        }
        self.arm_rto(now);
    }

    fn fire_rto(&mut self, now: SimTime) {
        if self.rtx.is_empty() {
            self.rto_deadline = None;
            return;
        }
        if self.rto_backoff >= self.cfg.max_retries {
            self.abort(ConnError::RetransmitLimit {
                retries: self.rto_backoff,
            });
            return;
        }
        // SACK reneging (the `tcp_check_sack_reneging` analogue): an RTO
        // with the *head* of the queue SACKed means the receiver
        // acknowledged that range selectively but never cumulatively —
        // it reneged (or the network lied). Forget every SACK mark so
        // `mark_all_lost` re-marks the reneged ranges; without this the
        // sacked head is never eligible for retransmission and the
        // connection RTO-spins to a wrongful abort.
        if self.rtx.front().is_some_and(|s| s.sacked) {
            let n = self.rtx.clear_sack_marks();
            self.stats.sack_reneges += u64::from(n);
        }
        self.stats.rtos += 1;
        // RTO-stall accounting: a firing with zero backoff opens a new
        // timer-recovery episode; backoff refires extend it. Either way
        // the wait between arming and firing was dead air for the flow.
        if self.rto_backoff == 0 {
            self.stats.rto_stalls += 1;
        }
        self.stats.stall_ns += now.saturating_since(self.rto_armed_at).as_nanos();
        self.ca = CaState::Loss;
        self.recovery_point = Some(self.snd_nxt);
        self.dupacks = 0;
        self.rtx.mark_all_lost();
        self.cc.on_rto(now);
        self.rto_backoff += 1;
        self.arm_rto(now);
        self.tlp_deadline = None;
    }

    // ------------------------------------------------------------------
    // output path
    // ------------------------------------------------------------------

    fn can_send_data(&self) -> bool {
        matches!(self.state, State::Established)
            && (self.bytes_unsent > 0 || (!self.fin_is_queued() && self.cfg.bytes_to_send > 0))
    }

    fn fin_is_queued(&self) -> bool {
        self.fin_sent || self.rtx.has_fin()
    }

    /// Hook: the TDN to tag (re)transmissions with. Single-path TCP has no
    /// notion of TDNs; everything is accounted to TDN 0.
    fn current_tdn(&self) -> TdnId {
        TdnId::ZERO
    }

    fn segment_from_txseg(flow: FlowId, dir: Direction, s: &TxSeg) -> Segment {
        let mut seg = Segment::new(flow, dir);
        seg.seq = s.seq;
        seg.len = s.len - u32::from(s.is_syn) - u32::from(s.is_fin);
        seg.flags.syn = s.is_syn;
        seg.flags.fin = s.is_fin;
        seg.flags.psh = seg.len > 0;
        seg
    }

    fn finalize_data_segment(&self, seg: &mut Segment) {
        if self.cfg.ecn && seg.len > 0 {
            seg.ecn = Ecn::Ect0;
        }
        if let Some(rx) = self.rx.as_ref() {
            seg.wnd = rx.window();
        } else {
            seg.wnd = self.cfg.recv_buf;
        }
        seg.stamp_payload();
    }

    /// Produce the next segment to transmit, or `None` when flow- or
    /// congestion-control forbids sending.
    pub fn poll_send(&mut self, now: SimTime) -> Option<Segment> {
        // Control/ACK segments bypass cwnd.
        if let Some(seg) = self.pending.pop_front() {
            return Some(seg);
        }
        if self.cfg.pacing && now < self.next_paced_at {
            return None;
        }

        // Retransmissions take priority (Linux behaviour; also TDTCP's
        // "any TDN" rule — lost segments go out at the first opportunity).
        let cwnd = self.cc.cwnd();
        let pipe_bytes = self.flight_bytes();
        if pipe_bytes < cwnd || self.ca == CaState::Loss {
            let tdn = self.current_tdn();
            let flow = self.flow;
            let dir = self.data_dir;
            if let Some(mut out) = self.rtx.with_next_retransmit(|s| {
                let out = Self::segment_from_txseg(flow, dir, s);
                s.tx_time = now;
                s.tdn = tdn;
                s.retx_count += 1;
                s.retx_in_flight = true;
                out
            }) {
                out.ack = self
                    .rx
                    .as_ref()
                    .map(|r| r.rcv_nxt())
                    .unwrap_or(SeqNum::ZERO);
                out.flags.ack = self.rx.is_some();
                self.finalize_data_segment(&mut out);
                self.stats.retransmits += 1;
                self.stats.segs_sent += 1;
                self.after_transmit(now, &out);
                return Some(out);
            }
        }

        // New data.
        if self.state == State::Established && pipe_bytes < cwnd {
            let inflight_seq = self.snd_nxt - self.snd_una;
            if self.bytes_unsent > 0 && inflight_seq < self.peer_wnd {
                let len = (self.cfg.mss as u64)
                    .min(self.bytes_unsent)
                    .min(u64::from(self.peer_wnd - inflight_seq))
                    as u32;
                if len > 0 {
                    let mut seg = Segment::new(self.flow, self.data_dir);
                    seg.seq = self.snd_nxt;
                    seg.len = len;
                    seg.flags.psh = true;
                    seg.flags.ack = self.rx.is_some();
                    seg.ack = self
                        .rx
                        .as_ref()
                        .map(|r| r.rcv_nxt())
                        .unwrap_or(SeqNum::ZERO);
                    self.finalize_data_segment(&mut seg);
                    self.rtx.push(TxSeg {
                        seq: self.snd_nxt,
                        len,
                        is_syn: false,
                        is_fin: false,
                        tdn: self.current_tdn(),
                        tx_time: now,
                        first_tx: now,
                        sacked: false,
                        lost: false,
                        retx_in_flight: false,
                        retx_count: 0,
                    });
                    self.snd_nxt += len;
                    self.bytes_unsent -= u64::from(len);
                    self.stats.bytes_sent += u64::from(len);
                    self.stats.segs_sent += 1;
                    self.after_transmit(now, &seg);
                    return Some(seg);
                }
            }
            // FIN once everything is sent.
            if self.bytes_unsent == 0
                && self.cfg.bytes_to_send > 0
                && !self.fin_is_queued()
                && self.snd_nxt == self.rtx.back().map_or(self.snd_nxt, |s| s.end())
            {
                let mut fin = Segment::new(self.flow, self.data_dir);
                fin.seq = self.snd_nxt;
                fin.flags.fin = true;
                fin.flags.ack = self.rx.is_some();
                fin.ack = self
                    .rx
                    .as_ref()
                    .map(|r| r.rcv_nxt())
                    .unwrap_or(SeqNum::ZERO);
                self.finalize_data_segment(&mut fin);
                self.rtx.push(TxSeg {
                    seq: self.snd_nxt,
                    len: 1,
                    is_syn: false,
                    is_fin: true,
                    tdn: self.current_tdn(),
                    tx_time: now,
                    first_tx: now,
                    sacked: false,
                    lost: false,
                    retx_in_flight: false,
                    retx_count: 0,
                });
                self.snd_nxt += 1;
                self.state = State::FinWait;
                self.arm_rto(now);
                return Some(fin);
            }
        }
        // Nothing sendable: if that is because the peer's window is
        // closed with nothing outstanding, arm the persist timer (this
        // runs after every event, so the stall is always noticed).
        self.maybe_arm_persist(now);
        None
    }

    fn after_transmit(&mut self, now: SimTime, seg: &Segment) {
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        self.arm_tlp(now);
        if self.cfg.pacing {
            if let Some(srtt) = self.rtt.srtt() {
                let cwnd = self.cc.cwnd().max(1);
                // Release the next segment after size/(cwnd/srtt).
                let gap = srtt.mul_f64(f64::from(seg.wire_size()) / f64::from(cwnd));
                self.next_paced_at = now + gap;
            }
        }
    }

    fn maybe_finish(&mut self) {
        if self.state == State::FinWait && self.fin_sent && self.rtx.is_empty() {
            self.state = State::Done;
        }
    }
}

fn seg_payload(s: &TxSeg) -> u32 {
    s.len - u32::from(s.is_syn) - u32::from(s.is_fin)
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("flow", &self.flow)
            .field("state", &self.state)
            .field("snd_una", &self.snd_una)
            .field("snd_nxt", &self.snd_nxt)
            .field("cwnd", &self.cc.cwnd())
            .field("ca", &self.ca)
            .finish()
    }
}

impl Transport for Connection {
    fn on_segment(&mut self, now: SimTime, seg: &Segment) {
        self.handle_segment(now, seg);
    }

    fn poll_send(&mut self, now: SimTime) -> Option<Segment> {
        Connection::poll_send(self, now)
    }

    fn next_timer(&self) -> Option<SimTime> {
        Connection::next_timer(self)
    }

    fn on_timer(&mut self, now: SimTime) {
        self.handle_timer(now);
    }

    fn stats(&self) -> &ConnStats {
        &self.stats
    }

    fn is_established(&self) -> bool {
        matches!(self.state, State::Established | State::FinWait)
    }

    fn is_done(&self) -> bool {
        self.state == State::Done
    }

    fn conn_error(&self) -> Option<ConnError> {
        self.error
    }

    fn variant(&self) -> &'static str {
        self.cc.name()
    }

    fn cwnd_report(&self) -> Vec<u32> {
        vec![self.cc.cwnd()]
    }
}
