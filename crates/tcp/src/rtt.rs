//! Round-trip time estimation (RFC 6298) with Karn's rule applied by the
//! caller (retransmitted segments never produce samples).
//!
//! Data-center RTTs in the evaluated RDCN are 40–100 µs, while the RTO
//! floor sits orders of magnitude above them (see [`RttConfig`]) — which
//! is exactly why the paper's transports go to such lengths to avoid
//! spurious timeouts.

use simcore::{SimDuration, SimTime};

/// Tuning knobs for the estimator.
#[derive(Debug, Clone, Copy)]
pub struct RttConfig {
    /// Lower bound for the computed RTO.
    pub min_rto: SimDuration,
    /// Upper bound for the computed RTO.
    pub max_rto: SimDuration,
    /// RTO to use before any sample exists.
    pub initial_rto: SimDuration,
}

impl Default for RttConfig {
    fn default() -> Self {
        // Linux's RTO floor is 200 ms — several thousand RTTs in a
        // microsecond-scale RDCN, which is why a spurious timeout is
        // catastrophic there (§2.2/§4.4). We scale the floor down to
        // 10 ms (~100 packet-network RTTs) so a timeout carries the same
        // *relative* cost without dilating simulated time.
        RttConfig {
            min_rto: SimDuration::from_millis(10),
            max_rto: SimDuration::from_secs(4),
            initial_rto: SimDuration::from_millis(10),
        }
    }
}

/// Exponentially weighted RTT estimator per RFC 6298.
#[derive(Debug, Clone, Copy)]
pub struct RttEstimator {
    cfg: RttConfig,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    /// Windowless minimum over the connection lifetime; RACK uses a
    /// fraction of it as its reordering window.
    min_rtt: Option<SimDuration>,
    latest: Option<SimDuration>,
    samples: u64,
}

impl RttEstimator {
    /// New estimator with the given configuration.
    pub fn new(cfg: RttConfig) -> Self {
        RttEstimator {
            cfg,
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: None,
            latest: None,
            samples: 0,
        }
    }

    /// Incorporate a sample measured between `sent` and `now`.
    pub fn on_sample_between(&mut self, sent: SimTime, now: SimTime) {
        self.on_sample(now.saturating_since(sent));
    }

    /// Incorporate a raw sample.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.samples += 1;
        self.latest = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(rtt),
            None => rtt,
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // rttvar = 3/4 rttvar + 1/4 |srtt - rtt|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                // srtt = 7/8 srtt + 1/8 rtt
                self.srtt = Some(srtt.mul_f64(0.875) + rtt.mul_f64(0.125));
            }
        }
    }

    /// Smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Minimum observed RTT.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Current retransmission timeout: `srtt + 4·rttvar`, clamped.
    pub fn rto(&self) -> SimDuration {
        match self.srtt {
            None => self.cfg.initial_rto,
            Some(srtt) => {
                let var_term = self.rttvar.saturating_mul(4).max(SimDuration::from_nanos(1));
                (srtt + var_term).clamp(self.cfg.min_rto, self.cfg.max_rto)
            }
        }
    }

    /// Reset to the no-sample state but keep configuration (used when a
    /// TDN's state is initialized fresh at runtime).
    pub fn reset(&mut self) {
        *self = RttEstimator::new(self.cfg);
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(RttConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), RttConfig::default().initial_rto);
        e.on_sample(us(100));
        assert_eq!(e.srtt(), Some(us(100)));
        assert_eq!(e.rttvar(), us(50));
        assert_eq!(e.min_rtt(), Some(us(100)));
        // RTO = 100 + 4*50 = 300us, far below the 10ms floor -> clamped.
        assert_eq!(e.rto(), SimDuration::from_millis(10));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.on_sample(us(100));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            (srtt.as_nanos() as i64 - 100_000).abs() < 1_000,
            "srtt {srtt} should converge to 100us"
        );
        assert!(e.rttvar() < us(2), "variance decays on a steady path");
    }

    #[test]
    fn ewma_pollution_across_conditions() {
        // The §3.1 motivation: merging samples from a 100us and a 40us path
        // yields an estimate wrong for both. This documents the behaviour
        // TDTCP's per-TDN estimators avoid.
        let mut e = RttEstimator::default();
        for _ in 0..50 {
            e.on_sample(us(100));
            e.on_sample(us(40));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            srtt > us(50) && srtt < us(95),
            "blended srtt {srtt} is wrong for both paths"
        );
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::default();
        e.on_sample(us(100));
        e.on_sample(us(40));
        e.on_sample(us(90));
        assert_eq!(e.min_rtt(), Some(us(40)));
        assert_eq!(e.latest(), Some(us(90)));
        assert_eq!(e.samples(), 3);
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let cfg = RttConfig {
            min_rto: us(500),
            max_rto: SimDuration::from_millis(1),
            initial_rto: us(800),
        };
        let mut e = RttEstimator::new(cfg);
        e.on_sample(SimDuration::from_millis(10));
        assert_eq!(e.rto(), SimDuration::from_millis(1), "clamped to max");
        let mut e2 = RttEstimator::new(cfg);
        for _ in 0..50 {
            e2.on_sample(us(10));
        }
        assert_eq!(e2.rto(), us(500), "clamped to min");
    }

    #[test]
    fn sample_between_instants() {
        let mut e = RttEstimator::default();
        e.on_sample_between(SimTime::from_micros(10), SimTime::from_micros(110));
        assert_eq!(e.srtt(), Some(us(100)));
    }

    #[test]
    fn reset_clears_state() {
        let mut e = RttEstimator::default();
        e.on_sample(us(77));
        e.reset();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.samples(), 0);
        assert_eq!(e.min_rtt(), None);
    }
}
