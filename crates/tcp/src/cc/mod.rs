//! Congestion control algorithms behind a common trait.
//!
//! TDTCP "does not propose a new congestion control algorithm — it simply
//! implements one of the available CCAs in each TDN" (§3.5). The trait is
//! therefore the unit TDTCP duplicates: one boxed instance per TDN.

pub mod cubic;
pub mod dctcp;
pub mod reno;
pub mod retcp;

use simcore::{SimDuration, SimTime};

pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use reno::Reno;
pub use retcp::{ReTcp, ReTcpConfig};

/// Everything an algorithm may want to know when an ACK arrives.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    /// Current simulated time.
    pub now: SimTime,
    /// Payload bytes newly cumulatively acknowledged.
    pub bytes_acked: u32,
    /// Segments newly acknowledged (cumulative + newly SACKed).
    pub packets_acked: u32,
    /// RTT sample from this ACK (post Karn / TDN filtering), if any.
    pub rtt_sample: Option<SimDuration>,
    /// Smoothed RTT at this point, if known.
    pub srtt: Option<SimDuration>,
    /// Bytes in flight after processing this ACK.
    pub flight_size: u32,
    /// Whether the connection is currently in recovery (cwnd frozen by
    /// most algorithms while retransmitting).
    pub in_recovery: bool,
    /// Bytes acknowledged by ACKs carrying ECN-Echo (DCTCP's input).
    pub ecn_bytes: u32,
}

/// A pluggable congestion control algorithm. All window values in bytes.
pub trait CongestionControl: std::fmt::Debug + Send {
    /// Short identifier (`"cubic"`, `"dctcp"`, ...).
    fn name(&self) -> &'static str;

    /// Current congestion window in bytes.
    fn cwnd(&self) -> u32;

    /// Current slow-start threshold in bytes.
    fn ssthresh(&self) -> u32;

    /// Process an acknowledgment.
    fn on_ack(&mut self, ev: &AckEvent);

    /// Loss detected: entering fast recovery. `flight_size` is bytes in
    /// flight at detection.
    fn on_enter_recovery(&mut self, now: SimTime, flight_size: u32);

    /// Fast recovery completed (recovery point acknowledged).
    fn on_exit_recovery(&mut self, _now: SimTime) {}

    /// Retransmission timeout fired.
    fn on_rto(&mut self, now: SimTime);

    /// reTCP only: the network signalled that the circuit went up/down.
    fn on_circuit_signal(&mut self, _now: SimTime, _circuit_up: bool) {}

    /// retcpdyn only: advance warning that the circuit comes up shortly;
    /// ramp so the burst can fill pre-sized switch buffers.
    fn on_circuit_prepare(&mut self, _now: SimTime) {}

    /// Fresh instance with identical configuration (used to stamp out one
    /// instance per TDN).
    fn clone_box(&self) -> Box<dyn CongestionControl>;
}

impl Clone for Box<dyn CongestionControl> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Shared algorithm parameters.
#[derive(Debug, Clone, Copy)]
pub struct CcConfig {
    /// Maximum segment size in bytes (window quantum).
    pub mss: u32,
    /// Initial window in segments (RFC 6928 default 10).
    pub init_cwnd_pkts: u32,
    /// Upper bound on cwnd in bytes (send buffer / rmem ceiling).
    pub max_cwnd: u32,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            mss: 8948,
            init_cwnd_pkts: 10,
            max_cwnd: 16 << 20,
        }
    }
}

impl CcConfig {
    /// Initial congestion window in bytes.
    pub fn initial_cwnd(&self) -> u32 {
        self.init_cwnd_pkts * self.mss
    }

    /// The floor cwnd after loss: 1 segment (RFC 5681's loss window).
    /// With 16 flows sharing a 16-packet VOQ (the paper's setting), a
    /// 2-MSS floor would leave the aggregate permanently above the
    /// sustainable pipe and pin the queue at its cap.
    pub fn min_cwnd(&self) -> u32 {
        self.mss
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// An ACK event with sensible defaults for unit tests.
    pub fn ack(now_us: u64, bytes: u32) -> AckEvent {
        AckEvent {
            now: SimTime::from_micros(now_us),
            bytes_acked: bytes,
            packets_acked: 1,
            rtt_sample: Some(SimDuration::from_micros(100)),
            srtt: Some(SimDuration::from_micros(100)),
            flight_size: 0,
            in_recovery: false,
            ecn_bytes: 0,
        }
    }
}
