//! CUBIC congestion control (RFC 8312), the Linux default and the CCA the
//! paper's TDTCP implementation runs inside every TDN.
//!
//! The window grows as `W(t) = C·(t − K)³ + W_max` where `t` is time since
//! the last congestion event, `K = ∛(W_max·β/C)` and `β = 0.3` (decrease
//! factor 0.7). A Reno-friendly region keeps CUBIC at least as aggressive
//! as AIMD at small windows/short RTTs — which matters here, since data
//! center RTTs put CUBIC deep in its TCP-friendly region.

use super::{AckEvent, CcConfig, CongestionControl};
use simcore::{SimDuration, SimTime};

const BETA: f64 = 0.7; // multiplicative decrease factor
const C: f64 = 0.4; // cubic scaling constant (segments/sec^3)

/// CUBIC congestion control.
#[derive(Debug, Clone)]
pub struct Cubic {
    cfg: CcConfig,
    cwnd: u32,
    ssthresh: u32,
    /// Window size (bytes) just before the last reduction.
    w_max: f64,
    /// Start of the current cubic epoch.
    epoch_start: Option<SimTime>,
    /// Time offset of the plateau, seconds.
    k: f64,
    /// Reno-friendly window estimate (bytes).
    w_est: f64,
    /// Bytes acked since epoch start (drives w_est).
    acked_since_epoch: u64,
}

impl Cubic {
    /// New instance with `cfg`.
    pub fn new(cfg: CcConfig) -> Self {
        Cubic {
            cfg,
            cwnd: cfg.initial_cwnd(),
            ssthresh: cfg.max_cwnd,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            acked_since_epoch: 0,
        }
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    fn mss_f(&self) -> f64 {
        self.cfg.mss as f64
    }

    /// Cubic target window at time `now` (bytes).
    fn w_cubic(&self, now: SimTime) -> f64 {
        let t = now
            .checked_since(self.epoch_start.expect("epoch set"))
            .unwrap_or(SimDuration::ZERO)
            .as_secs_f64();
        let dt = t - self.k;
        // C is in segments/s^3; convert to bytes.
        C * self.mss_f() * dt * dt * dt + self.w_max
    }

    fn start_epoch(&mut self, now: SimTime) {
        self.epoch_start = Some(now);
        if self.w_max > self.cwnd as f64 {
            // Fast convergence left w_max above cwnd; K from the gap.
            self.k = (((self.w_max - self.cwnd as f64) / self.mss_f()) / C).cbrt();
        } else {
            self.w_max = self.cwnd as f64;
            self.k = 0.0;
        }
        self.w_est = self.cwnd as f64;
        self.acked_since_epoch = 0;
    }
}

impl CongestionControl for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.in_recovery || ev.bytes_acked == 0 {
            return;
        }
        if self.in_slow_start() {
            self.cwnd = (self.cwnd + ev.bytes_acked)
                .min(self.ssthresh)
                .min(self.cfg.max_cwnd);
            return;
        }
        if self.epoch_start.is_none() {
            self.start_epoch(ev.now);
        }
        self.acked_since_epoch += u64::from(ev.bytes_acked);

        // Reno-friendly estimate: grows ~1 MSS per RTT like AIMD with
        // beta-adjusted slope (RFC 8312 §4.2).
        let rtt_windows = if self.cwnd > 0 {
            ev.bytes_acked as f64 / self.cwnd as f64
        } else {
            0.0
        };
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * rtt_windows * self.mss_f();

        let target = self.w_cubic(ev.now).max(self.w_est);
        if target > self.cwnd as f64 {
            // Approach the target over roughly one RTT: cwnd grows by
            // (target - cwnd)/cwnd per acked byte's worth.
            let growth =
                ((target - self.cwnd as f64) / self.cwnd as f64) * ev.bytes_acked as f64;
            self.cwnd = ((self.cwnd as f64 + growth) as u32).min(self.cfg.max_cwnd);
        }
    }

    fn on_enter_recovery(&mut self, _now: SimTime, _flight_size: u32) {
        // Linux CUBIC semantics: the reduction is taken from cwnd, not
        // flight size — vital for paced senders whose flight right after
        // an idle/switch is far below cwnd.
        let base = (self.cwnd.max(self.cfg.min_cwnd())) as f64;
        // Fast convergence: release bandwidth faster when w_max shrinks.
        if base < self.w_max {
            self.w_max = base * (1.0 + BETA) / 2.0;
        } else {
            self.w_max = base;
        }
        self.cwnd = ((base * BETA) as u32).max(self.cfg.min_cwnd());
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.w_max = self.cwnd as f64;
        self.ssthresh = ((self.cwnd as f64 * BETA) as u32).max(self.cfg.min_cwnd());
        self.cwnd = self.cfg.mss;
        self.epoch_start = None;
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(Cubic::new(self.cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ack;
    use super::*;

    fn cubic() -> Cubic {
        Cubic::new(CcConfig {
            mss: 1000,
            init_cwnd_pkts: 10,
            max_cwnd: 10_000_000,
        })
    }

    #[test]
    fn slow_start_exponential() {
        let mut cc = cubic();
        let start = cc.cwnd();
        let mut acked = 0;
        while acked < start {
            cc.on_ack(&ack(100, 1000));
            acked += 1000;
        }
        assert_eq!(cc.cwnd(), 2 * start);
    }

    #[test]
    fn loss_reduces_to_seventy_percent_of_cwnd() {
        let mut cc = cubic();
        // cwnd starts at 10_000; the reduction is cwnd-based.
        cc.on_enter_recovery(SimTime::from_micros(10), 0);
        assert_eq!(cc.cwnd(), 7_000);
        assert_eq!(cc.ssthresh(), 7_000);
    }

    #[test]
    fn cubic_growth_accelerates_past_plateau() {
        let mut cc = cubic();
        cc.on_enter_recovery(SimTime::from_micros(0), 100_000);
        cc.on_exit_recovery(SimTime::from_micros(0));
        // Feed ACKs over simulated time; watch cwnd pass w_max and keep
        // growing (convex region).
        let mut t_us = 100;
        let mut last = cc.cwnd();
        let mut grew_past_wmax = false;
        for _ in 0..20_000 {
            cc.on_ack(&ack(t_us, 1000));
            t_us += 50;
            if cc.cwnd() > 100_000 {
                grew_past_wmax = true;
            }
            assert!(cc.cwnd() >= last, "cwnd never shrinks on ACKs");
            last = cc.cwnd();
        }
        assert!(grew_past_wmax, "cwnd {last} should exceed former w_max");
    }

    #[test]
    fn reno_friendly_region_dominates_early() {
        // Immediately after a loss, w_cubic is nearly flat; the w_est
        // (Reno-friendly) term must still drive growth.
        let mut cc = cubic();
        cc.on_enter_recovery(SimTime::from_micros(0), 50_000);
        let w_after_loss = cc.cwnd();
        let mut t = 10;
        for _ in 0..200 {
            cc.on_ack(&ack(t, 1000));
            t += 10;
        }
        assert!(
            cc.cwnd() > w_after_loss,
            "TCP-friendly region grows the window"
        );
    }

    #[test]
    fn fast_convergence_lowers_wmax() {
        let mut cc = cubic();
        // First loss: cwnd 10_000 -> 7_000, w_max = 10_000.
        cc.on_enter_recovery(SimTime::from_micros(0), 0);
        // Second loss below w_max: fast convergence lowers w_max below
        // the pre-loss cwnd.
        cc.on_enter_recovery(SimTime::from_micros(10), 0);
        assert_eq!(cc.cwnd(), 4_900);
        assert!(cc.w_max < 7_000.0 * 1.01, "w_max {}", cc.w_max);
    }

    #[test]
    fn rto_collapses_window() {
        let mut cc = cubic();
        cc.on_rto(SimTime::from_micros(5));
        assert_eq!(cc.cwnd(), 1000);
    }

    #[test]
    fn frozen_in_recovery() {
        let mut cc = cubic();
        let before = cc.cwnd();
        let mut ev = ack(100, 1000);
        ev.in_recovery = true;
        cc.on_ack(&ev);
        assert_eq!(cc.cwnd(), before);
    }
}
