//! DCTCP (Alizadeh et al., SIGCOMM 2010): ECN-proportional window
//! reduction. Switches mark packets above a shallow queue threshold; the
//! sender maintains `α`, an EWMA of the marked fraction per window, and
//! reduces `cwnd ← cwnd·(1 − α/2)` once per window that saw marks.
//!
//! Growth outside marked windows follows Reno (slow start + 1 MSS/RTT).

use super::{AckEvent, CcConfig, CongestionControl};
use crate::seq::SeqNum;
use simcore::SimTime;

const G: f64 = 1.0 / 16.0; // α gain, the paper's recommended value

/// DCTCP congestion control.
#[derive(Debug, Clone)]
pub struct Dctcp {
    cfg: CcConfig,
    cwnd: u32,
    ssthresh: u32,
    alpha: f64,
    /// Bytes acked in the current observation window.
    window_acked: u64,
    /// Of those, bytes acked by ECE-carrying ACKs.
    window_marked: u64,
    /// End of the current observation window: once cumulative acked bytes
    /// pass this, α updates and a reduction may apply.
    window_end: u64,
    /// Total bytes acked over the connection (drives window boundaries).
    total_acked: u64,
    acked_accum: u32,
}

impl Dctcp {
    /// New instance with `cfg` and the canonical `α = 1` cold start.
    pub fn new(cfg: CcConfig) -> Self {
        Dctcp {
            cfg,
            cwnd: cfg.initial_cwnd(),
            ssthresh: cfg.max_cwnd,
            alpha: 1.0,
            window_acked: 0,
            window_marked: 0,
            window_end: u64::from(cfg.initial_cwnd()),
            total_acked: 0,
            acked_accum: 0,
        }
    }

    /// Current α (marked-fraction EWMA), exposed for tests and tracing.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for Dctcp {
    fn name(&self) -> &'static str {
        "dctcp"
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.bytes_acked == 0 {
            return;
        }
        self.total_acked += u64::from(ev.bytes_acked);
        self.window_acked += u64::from(ev.bytes_acked);
        self.window_marked += u64::from(ev.ecn_bytes.min(ev.bytes_acked));

        // End of an observation window (~one RTT of data).
        if self.total_acked >= self.window_end {
            let frac = if self.window_acked > 0 {
                self.window_marked as f64 / self.window_acked as f64
            } else {
                0.0
            };
            self.alpha = (1.0 - G) * self.alpha + G * frac;
            if self.window_marked > 0 {
                // ECN reduction once per window.
                let reduced = (self.cwnd as f64 * (1.0 - self.alpha / 2.0)) as u32;
                self.cwnd = reduced.max(self.cfg.min_cwnd());
                self.ssthresh = self.cwnd;
            }
            self.window_acked = 0;
            self.window_marked = 0;
            self.window_end = self.total_acked + u64::from(self.cwnd.max(self.cfg.mss));
        }

        if ev.in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.cwnd = (self.cwnd + ev.bytes_acked)
                .min(self.ssthresh)
                .min(self.cfg.max_cwnd);
        } else {
            self.acked_accum += ev.bytes_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = (self.cwnd + self.cfg.mss).min(self.cfg.max_cwnd);
            }
        }
    }

    fn on_enter_recovery(&mut self, _now: SimTime, _flight_size: u32) {
        // Packet loss still halves, like Reno (DCTCP paper §3.3).
        // cwnd-based reduction (Linux semantics; see cubic.rs).
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_cwnd());
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_cwnd());
        self.cwnd = self.cfg.mss;
        self.acked_accum = 0;
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(Dctcp::new(self.cfg))
    }
}

/// Receiver-side DCTCP ECE state machine (RFC 8257 §3.2): echo the CE
/// state of arriving data accurately even with delayed ACKs. With the
/// per-packet ACKs this stack generates, it reduces to "echo CE of the
/// segment being acknowledged", but the state machine is kept faithful.
#[derive(Debug, Clone, Default)]
pub struct DctcpReceiver {
    ce_state: bool,
}

impl DctcpReceiver {
    /// New receiver state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Process an arriving data segment's CE mark; returns whether the ACK
    /// for it must carry ECE.
    pub fn on_data(&mut self, _seq: SeqNum, ce: bool) -> bool {
        self.ce_state = ce;
        self.ce_state
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ack;
    use super::*;

    fn dctcp() -> Dctcp {
        // Cap the window so observation windows stay ~20 segments and α
        // updates every ~20 ACKs (uncapped slow start doubles the window
        // and α would only update O(log) times).
        Dctcp::new(CcConfig {
            mss: 1000,
            init_cwnd_pkts: 10,
            max_cwnd: 20_000,
        })
    }

    #[test]
    fn alpha_decays_without_marks() {
        let mut cc = dctcp();
        assert_eq!(cc.alpha(), 1.0);
        // Push many unmarked windows through.
        for _ in 0..2000 {
            cc.on_ack(&ack(100, 1000));
        }
        assert!(cc.alpha() < 0.1, "α decays toward 0: {}", cc.alpha());
    }

    #[test]
    fn alpha_rises_with_full_marking() {
        let mut cc = dctcp();
        // Decay α first.
        for _ in 0..300 {
            cc.on_ack(&ack(100, 1000));
        }
        let low = cc.alpha();
        for _ in 0..300 {
            let mut ev = ack(100, 1000);
            ev.ecn_bytes = 1000;
            cc.on_ack(&ev);
        }
        assert!(cc.alpha() > low, "α rises with marks");
        assert!(cc.alpha() > 0.5);
    }

    #[test]
    fn proportional_reduction() {
        let mut cc = dctcp();
        // Reach a known cwnd with α decayed.
        for _ in 0..500 {
            cc.on_ack(&ack(100, 1000));
        }
        let before = cc.cwnd();
        let alpha_before = cc.alpha();
        // One fully marked window triggers one reduction of ~α/2.
        let mut acked = 0;
        while acked < before + 1000 {
            let mut ev = ack(200, 1000);
            ev.ecn_bytes = 1000;
            cc.on_ack(&ev);
            acked += 1000;
        }
        let after = cc.cwnd();
        assert!(after < before, "marked window reduces cwnd");
        // Reduction is gentle when α is small — unlike Reno's halving.
        assert!(
            after as f64 > before as f64 * (1.0 - alpha_before),
            "reduction proportional to α"
        );
    }

    #[test]
    fn loss_still_halves() {
        let mut cc = dctcp();
        // cwnd starts at 10_000 and halves on loss (cwnd-based).
        cc.on_enter_recovery(SimTime::ZERO, 0);
        assert_eq!(cc.cwnd(), 5_000);
    }

    #[test]
    fn receiver_echoes_ce_state() {
        let mut rx = DctcpReceiver::new();
        assert!(!rx.on_data(SeqNum(0), false));
        assert!(rx.on_data(SeqNum(1000), true));
        assert!(rx.on_data(SeqNum(2000), true));
        assert!(!rx.on_data(SeqNum(3000), false));
    }
}
