//! reTCP (Mukerjee et al., NSDI 2020): the RDCN-specific baseline the
//! paper compares against (§5.2, §6).
//!
//! reTCP requires switch support: ToRs mark packets that traversed the
//! circuit network; the sender watches the mark bit in returning ACKs and,
//! on an off→on edge, multiplicatively *increases* its window to exploit
//! the circuit bandwidth, then divides back down on the on→off edge. The
//! "retcpdyn" variant additionally receives an advance `prepare` signal
//! when the ToR pre-enlarges its VOQ ~150 µs before circuit start, and
//! ramps early so the burst pre-fills the buffer.

use super::{AckEvent, CcConfig, CongestionControl};
use simcore::SimTime;

/// reTCP tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReTcpConfig {
    /// Base algorithm parameters.
    pub cc: CcConfig,
    /// Multiplicative factor applied on circuit-up (and divided on
    /// circuit-down). The reTCP paper's best setting is around the ratio
    /// of circuit to packet bandwidth, capped; we default to 8×.
    pub scale: f64,
    /// Cap on the boosted window (circuit BDP plus switch buffer).
    pub boost_cap: u32,
}

impl Default for ReTcpConfig {
    fn default() -> Self {
        ReTcpConfig {
            cc: CcConfig::default(),
            scale: 8.0,
            // Per-flow share of circuit BDP (500 kB) plus the enlarged
            // switch buffer (50 jumbo frames), for 16 flows.
            boost_cap: 60_000,
        }
    }
}

/// reTCP congestion control: Reno-style growth plus explicit circuit
/// scaling.
#[derive(Debug, Clone)]
pub struct ReTcp {
    cfg: ReTcpConfig,
    cwnd: u32,
    ssthresh: u32,
    acked_accum: u32,
    /// Whether the last observed mark state was "circuit".
    circuit_on: bool,
    /// cwnd saved at the most recent boost, restored (grown normally
    /// meanwhile) at unboost.
    saved_cwnd: Option<u32>,
}

impl ReTcp {
    /// New instance.
    pub fn new(cfg: ReTcpConfig) -> Self {
        ReTcp {
            cfg,
            cwnd: cfg.cc.initial_cwnd(),
            ssthresh: cfg.cc.max_cwnd,
            acked_accum: 0,
            circuit_on: false,
            saved_cwnd: None,
        }
    }

    /// Whether the sender currently believes the circuit is up.
    pub fn circuit_on(&self) -> bool {
        self.circuit_on
    }

    fn boost(&mut self) {
        self.saved_cwnd = Some(self.cwnd);
        let boosted = (self.cwnd as f64 * self.cfg.scale) as u32;
        self.cwnd = boosted.min(self.cfg.boost_cap).min(self.cfg.cc.max_cwnd);
    }

    fn unboost(&mut self) {
        let shrunk = (self.cwnd as f64 / self.cfg.scale) as u32;
        // Never end below where we started the boost from scaled-down
        // growth, and never below the loss floor.
        let floor = self.cfg.cc.min_cwnd();
        self.cwnd = shrunk.max(self.saved_cwnd.take().unwrap_or(floor).min(shrunk.max(floor))).max(floor);
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for ReTcp {
    fn name(&self) -> &'static str {
        "retcp"
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.in_recovery || ev.bytes_acked == 0 {
            return;
        }
        if self.in_slow_start() {
            self.cwnd = (self.cwnd + ev.bytes_acked)
                .min(self.ssthresh)
                .min(self.cfg.cc.max_cwnd);
        } else {
            self.acked_accum += ev.bytes_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = (self.cwnd + self.cfg.cc.mss).min(self.cfg.cc.max_cwnd);
            }
        }
    }

    fn on_enter_recovery(&mut self, _now: SimTime, _flight_size: u32) {
        // cwnd-based reduction (Linux semantics; see cubic.rs).
        self.ssthresh = (self.cwnd / 2).max(self.cfg.cc.min_cwnd());
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(self.cfg.cc.min_cwnd());
        self.cwnd = self.cfg.cc.mss;
        self.acked_accum = 0;
        self.saved_cwnd = None;
    }

    fn on_circuit_signal(&mut self, _now: SimTime, circuit_up: bool) {
        if circuit_up && !self.circuit_on {
            self.boost();
        } else if !circuit_up && self.circuit_on {
            self.unboost();
        }
        self.circuit_on = circuit_up;
    }

    fn on_circuit_prepare(&mut self, now: SimTime) {
        // retcpdyn: ramp ahead of the switch, treating it as the up edge.
        self.on_circuit_signal(now, true);
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(ReTcp::new(self.cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ack;
    use super::*;

    fn retcp() -> ReTcp {
        ReTcp::new(ReTcpConfig {
            cc: CcConfig {
                mss: 1000,
                init_cwnd_pkts: 10,
                max_cwnd: 10_000_000,
            },
            scale: 8.0,
            boost_cap: 500_000,
        })
    }

    #[test]
    fn circuit_up_scales_window() {
        let mut cc = retcp();
        let before = cc.cwnd();
        cc.on_circuit_signal(SimTime::ZERO, true);
        assert_eq!(cc.cwnd(), before * 8);
        assert!(cc.circuit_on());
    }

    #[test]
    fn circuit_down_scales_back() {
        let mut cc = retcp();
        cc.on_circuit_signal(SimTime::ZERO, true);
        cc.on_circuit_signal(SimTime::from_micros(180), false);
        assert_eq!(cc.cwnd(), 10_000);
        assert!(!cc.circuit_on());
    }

    #[test]
    fn boost_capped() {
        let mut cc = retcp();
        // Grow past cap/8 first.
        for _ in 0..100 {
            cc.on_ack(&ack(100, 1000));
        }
        cc.on_circuit_signal(SimTime::ZERO, true);
        assert!(cc.cwnd() <= 500_000);
    }

    #[test]
    fn repeated_same_edge_is_idempotent() {
        let mut cc = retcp();
        cc.on_circuit_signal(SimTime::ZERO, true);
        let boosted = cc.cwnd();
        cc.on_circuit_signal(SimTime::from_micros(1), true);
        assert_eq!(cc.cwnd(), boosted, "no double boost");
        cc.on_circuit_signal(SimTime::from_micros(2), false);
        let down = cc.cwnd();
        cc.on_circuit_signal(SimTime::from_micros(3), false);
        assert_eq!(cc.cwnd(), down, "no double shrink");
    }

    #[test]
    fn prepare_acts_as_early_up_edge() {
        let mut cc = retcp();
        let before = cc.cwnd();
        cc.on_circuit_prepare(SimTime::ZERO);
        assert_eq!(cc.cwnd(), before * 8);
        // The real up edge that follows must not double-boost.
        cc.on_circuit_signal(SimTime::from_micros(150), true);
        assert_eq!(cc.cwnd(), before * 8);
    }

    #[test]
    fn unboost_floor() {
        let mut cc = retcp();
        cc.on_rto(SimTime::ZERO); // cwnd = 1 MSS
        cc.on_circuit_signal(SimTime::ZERO, true);
        cc.on_circuit_signal(SimTime::from_micros(1), false);
        assert!(cc.cwnd() >= 1_000, "never below the loss floor: {}", cc.cwnd());
    }

    #[test]
    fn growth_matches_reno_otherwise() {
        let mut cc = retcp();
        let start = cc.cwnd();
        let mut acked = 0;
        while acked < start {
            cc.on_ack(&ack(100, 1000));
            acked += 1000;
        }
        assert_eq!(cc.cwnd(), 2 * start);
    }
}
