//! NewReno-style AIMD (RFC 5681/6582): slow start, congestion avoidance,
//! multiplicative decrease by half. The simplest baseline and the base
//! behaviour DCTCP falls back to without ECN marks.

use super::{AckEvent, CcConfig, CongestionControl};
use simcore::SimTime;

/// Reno congestion control.
#[derive(Debug, Clone)]
pub struct Reno {
    cfg: CcConfig,
    cwnd: u32,
    ssthresh: u32,
    /// Byte accumulator for the one-MSS-per-RTT increase in CA.
    acked_accum: u32,
}

impl Reno {
    /// New instance with `cfg`.
    pub fn new(cfg: CcConfig) -> Self {
        Reno {
            cfg,
            cwnd: cfg.initial_cwnd(),
            ssthresh: cfg.max_cwnd,
            acked_accum: 0,
        }
    }

    fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl CongestionControl for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn cwnd(&self) -> u32 {
        self.cwnd
    }

    fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    fn on_ack(&mut self, ev: &AckEvent) {
        if ev.in_recovery || ev.bytes_acked == 0 {
            return;
        }
        if self.in_slow_start() {
            // Exponential: grow by bytes acked, capped at ssthresh.
            self.cwnd = (self.cwnd + ev.bytes_acked).min(self.ssthresh).min(self.cfg.max_cwnd);
        } else {
            // Linear: one MSS per cwnd of acknowledged bytes.
            self.acked_accum += ev.bytes_acked;
            if self.acked_accum >= self.cwnd {
                self.acked_accum -= self.cwnd;
                self.cwnd = (self.cwnd + self.cfg.mss).min(self.cfg.max_cwnd);
            }
        }
    }

    fn on_enter_recovery(&mut self, _now: SimTime, _flight_size: u32) {
        // cwnd-based reduction (Linux semantics; see cubic.rs).
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_cwnd());
        self.cwnd = self.ssthresh;
        self.acked_accum = 0;
    }

    fn on_rto(&mut self, _now: SimTime) {
        self.ssthresh = (self.cwnd / 2).max(self.cfg.min_cwnd());
        self.cwnd = self.cfg.mss;
        self.acked_accum = 0;
    }

    fn clone_box(&self) -> Box<dyn CongestionControl> {
        Box::new(Reno::new(self.cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::ack;
    use super::*;

    fn reno() -> Reno {
        Reno::new(CcConfig {
            mss: 1000,
            init_cwnd_pkts: 10,
            max_cwnd: 1_000_000,
        })
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = reno();
        let start = cc.cwnd();
        // One RTT worth of ACKs: every byte of the window acked.
        let mut acked = 0;
        while acked < start {
            cc.on_ack(&ack(100, 1000));
            acked += 1000;
        }
        assert_eq!(cc.cwnd(), 2 * start);
    }

    #[test]
    fn congestion_avoidance_linear() {
        let mut cc = reno();
        cc.on_enter_recovery(SimTime::ZERO, 0); // cwnd 10_000 -> 5_000
        cc.on_exit_recovery(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 5_000);
        // One full window of ACKs grows cwnd by exactly one MSS.
        for _ in 0..5 {
            cc.on_ack(&ack(200, 1000));
        }
        assert_eq!(cc.cwnd(), 6_000);
    }

    #[test]
    fn recovery_halves_cwnd() {
        let mut cc = reno();
        cc.on_enter_recovery(SimTime::ZERO, 0);
        assert_eq!(cc.cwnd(), 5_000);
        assert_eq!(cc.ssthresh(), 5_000);
    }

    #[test]
    fn recovery_floor_is_one_mss() {
        let mut cc = reno();
        cc.on_rto(SimTime::ZERO); // cwnd = 1 MSS
        cc.on_enter_recovery(SimTime::ZERO, 0);
        assert_eq!(cc.cwnd(), 1_000, "loss window floor (RFC 5681)");
    }

    #[test]
    fn rto_collapses_to_one_mss() {
        let mut cc = reno();
        cc.on_rto(SimTime::ZERO);
        assert_eq!(cc.cwnd(), 1_000);
        assert_eq!(cc.ssthresh(), 5_000);
    }

    #[test]
    fn frozen_during_recovery() {
        let mut cc = reno();
        let before = cc.cwnd();
        let mut ev = ack(100, 1000);
        ev.in_recovery = true;
        cc.on_ack(&ev);
        assert_eq!(cc.cwnd(), before);
    }

    #[test]
    fn capped_at_max_cwnd() {
        let mut cc = Reno::new(CcConfig {
            mss: 1000,
            init_cwnd_pkts: 10,
            max_cwnd: 12_000,
        });
        for _ in 0..100 {
            cc.on_ack(&ack(100, 1000));
        }
        assert_eq!(cc.cwnd(), 12_000);
    }

    #[test]
    fn clone_box_resets_to_initial() {
        let mut cc = reno();
        cc.on_rto(SimTime::ZERO);
        let fresh = cc.clone_box();
        assert_eq!(fresh.cwnd(), 10_000);
    }
}
