//! The congestion-avoidance state machine (Linux `tcp_ca_state`).
//!
//! TDTCP duplicates this per TDN (Fig. 4): each TDN independently moves
//! between Open, Disorder, Recovery, and Loss, so one TDN can be probing
//! at full speed while another recovers from a loss.

use core::fmt;

/// Linux-style congestion state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaState {
    /// Normal operation, no anomalies.
    #[default]
    Open,
    /// Out-of-order evidence seen (dupACKs/SACK) but below the loss
    /// threshold.
    Disorder,
    /// Fast recovery: retransmitting presumed-lost segments.
    Recovery,
    /// RTO fired; conservative slow-start recovery.
    Loss,
}

impl CaState {
    /// Whether the sender is in either recovery mode.
    pub fn in_recovery(self) -> bool {
        matches!(self, CaState::Recovery | CaState::Loss)
    }
}

impl fmt::Display for CaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CaState::Open => "open",
            CaState::Disorder => "disorder",
            CaState::Recovery => "recovery",
            CaState::Loss => "loss",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_open() {
        assert_eq!(CaState::default(), CaState::Open);
        assert!(!CaState::Open.in_recovery());
        assert!(!CaState::Disorder.in_recovery());
        assert!(CaState::Recovery.in_recovery());
        assert!(CaState::Loss.in_recovery());
    }

    #[test]
    fn display() {
        assert_eq!(CaState::Recovery.to_string(), "recovery");
    }
}
