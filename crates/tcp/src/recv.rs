//! Receiver-side reassembly and SACK generation.
//!
//! The receiver keeps `rcv_nxt` plus a set of out-of-order intervals.
//! In-order data is "delivered" to the application immediately (bulk sinks
//! read as fast as data arrives), so the advertised window only shrinks by
//! the bytes parked in the out-of-order store.

use crate::segment::SackBlocks;
use crate::seq::SeqNum;

/// Outcome of receiving one data segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RxOutcome {
    /// Bytes newly delivered in order (advance of `rcv_nxt`).
    pub delivered: u32,
    /// Every byte of the segment was already received (pure duplicate —
    /// evidence of a spurious retransmission by the peer).
    pub duplicate: bool,
    /// The segment landed out of order (left a gap).
    pub out_of_order: bool,
}

/// Reassembly state for one connection direction.
#[derive(Debug)]
pub struct Reassembler {
    rcv_nxt: SeqNum,
    /// Disjoint, sorted (by `start`), non-adjacent out-of-order intervals
    /// strictly above `rcv_nxt`. Intervals are `[start, end)`.
    ooo: Vec<(SeqNum, SeqNum)>,
    /// Start of the most recently updated interval, listed first in SACK
    /// blocks per RFC 2018.
    most_recent: Option<SeqNum>,
    /// Receive buffer capacity in bytes.
    cap: u32,
}

impl Reassembler {
    /// New reassembler expecting `isn` next, with `cap` bytes of buffer.
    pub fn new(isn: SeqNum, cap: u32) -> Self {
        Reassembler {
            rcv_nxt: isn,
            ooo: Vec::new(),
            most_recent: None,
            cap,
        }
    }

    /// Next expected sequence number.
    pub fn rcv_nxt(&self) -> SeqNum {
        self.rcv_nxt
    }

    /// Advance `rcv_nxt` by `n` without data (SYN/FIN occupy one octet).
    pub fn advance(&mut self, n: u32) {
        self.rcv_nxt += n;
    }

    /// Bytes parked out of order.
    pub fn ooo_bytes(&self) -> u32 {
        self.ooo.iter().map(|&(s, e)| e - s).sum()
    }

    /// Currently advertisable receive window.
    pub fn window(&self) -> u32 {
        self.cap.saturating_sub(self.ooo_bytes())
    }

    /// Whether any out-of-order data is buffered.
    pub fn has_gaps(&self) -> bool {
        !self.ooo.is_empty()
    }

    /// Receive a data segment covering `[seq, seq+len)`.
    pub fn on_data(&mut self, seq: SeqNum, len: u32) -> RxOutcome {
        debug_assert!(len > 0, "on_data requires payload");
        let mut start = seq;
        let end = seq + len;
        let mut out = RxOutcome::default();

        // Clip anything already consumed.
        if start.before(self.rcv_nxt) {
            if end.before_eq(self.rcv_nxt) {
                // Entirely old: pure duplicate.
                out.duplicate = true;
                return out;
            }
            start = self.rcv_nxt;
        }

        if start == self.rcv_nxt {
            // In-order (possibly after clipping): deliver, then drain any
            // now-contiguous out-of-order intervals.
            let covered = self.remove_covered(start, end);
            if covered == end - start && seq.before(self.rcv_nxt) {
                // All new bytes were already buffered AND the segment
                // started old — still a duplicate in effect.
            }
            self.rcv_nxt = end;
            out.delivered = end - start;
            self.drain_contiguous(&mut out);
            if covered == end - start && covered > 0 {
                out.duplicate = true;
            }
            return out;
        }

        // Out of order: insert/merge into the interval set.
        out.out_of_order = true;
        let before = self.ooo_bytes();
        self.insert_interval(start, end);
        if self.ooo_bytes() == before {
            out.duplicate = true; // contributed nothing new
        } else {
            self.most_recent = Some(self.containing_interval(start).expect("just inserted").0);
        }
        out
    }

    /// Remove out-of-order bytes covered by `[start, end)`, returning how
    /// many buffered bytes that range already contained.
    fn remove_covered(&mut self, start: SeqNum, end: SeqNum) -> u32 {
        let mut covered = 0;
        self.ooo.retain_mut(|iv| {
            if iv.1.before_eq(start) || iv.0.after_eq(end) {
                return true;
            }
            // Overlap; compute and trim. Intervals never extend below
            // rcv_nxt so in practice the overlap is a prefix.
            let lo = if iv.0.after_eq(start) { iv.0 } else { start };
            let hi = if iv.1.before_eq(end) { iv.1 } else { end };
            covered += hi - lo;
            if iv.0.after_eq(start) && iv.1.before_eq(end) {
                false // fully covered: drop
            } else if iv.0.after_eq(start) {
                iv.0 = end;
                true
            } else {
                iv.1 = start;
                true
            }
        });
        covered
    }

    /// After `rcv_nxt` advanced, deliver any intervals that became
    /// contiguous with it.
    fn drain_contiguous(&mut self, out: &mut RxOutcome) {
        while let Some(pos) = self.ooo.iter().position(|&(s, _)| s == self.rcv_nxt) {
            let (_, e) = self.ooo.remove(pos);
            out.delivered += e - self.rcv_nxt;
            self.rcv_nxt = e;
        }
        if self.ooo.is_empty() {
            self.most_recent = None;
        }
    }

    fn containing_interval(&self, seq: SeqNum) -> Option<(SeqNum, SeqNum)> {
        self.ooo
            .iter()
            .copied()
            .find(|&(s, e)| seq.after_eq(s) && seq.before(e))
    }

    fn insert_interval(&mut self, start: SeqNum, end: SeqNum) {
        let mut new = (start, end);
        // Merge all overlapping or adjacent intervals into `new`.
        self.ooo.retain(|&(s, e)| {
            let disjoint = e.before(new.0) || s.after(new.1);
            if !disjoint {
                if s.before(new.0) {
                    new.0 = s;
                }
                if e.after(new.1) {
                    new.1 = e;
                }
            }
            disjoint
        });
        let pos = self
            .ooo
            .iter()
            .position(|&(s, _)| s.after(new.0))
            .unwrap_or(self.ooo.len());
        self.ooo.insert(pos, new);
    }

    /// Generate SACK blocks: the interval containing the most recent
    /// arrival first (RFC 2018 §4), then the rest in sequence order, up to
    /// four blocks.
    pub fn sack_blocks(&self) -> SackBlocks {
        let mut blocks = SackBlocks::EMPTY;
        let first = self
            .most_recent
            .and_then(|s| self.containing_interval(s))
            .or_else(|| self.ooo.first().copied());
        if let Some((s, e)) = first {
            blocks.push(s, e);
            for &(is, ie) in &self.ooo {
                if (is, ie) != (s, e) {
                    blocks.push(is, ie);
                }
            }
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Reassembler {
        Reassembler::new(SeqNum(1000), 1 << 20)
    }

    #[test]
    fn in_order_delivery() {
        let mut rx = r();
        let o = rx.on_data(SeqNum(1000), 100);
        assert_eq!(o.delivered, 100);
        assert!(!o.out_of_order && !o.duplicate);
        assert_eq!(rx.rcv_nxt(), SeqNum(1100));
        assert!(!rx.has_gaps());
    }

    #[test]
    fn out_of_order_then_fill() {
        let mut rx = r();
        let o1 = rx.on_data(SeqNum(1100), 100);
        assert!(o1.out_of_order);
        assert_eq!(o1.delivered, 0);
        assert_eq!(rx.ooo_bytes(), 100);
        let o2 = rx.on_data(SeqNum(1000), 100);
        assert_eq!(o2.delivered, 200, "hole fill drains the buffered interval");
        assert_eq!(rx.rcv_nxt(), SeqNum(1200));
        assert!(!rx.has_gaps());
        assert_eq!(rx.window(), 1 << 20);
    }

    #[test]
    fn duplicate_detection() {
        let mut rx = r();
        rx.on_data(SeqNum(1000), 100);
        let o = rx.on_data(SeqNum(1000), 100);
        assert!(o.duplicate);
        assert_eq!(o.delivered, 0);
        // Duplicate of an out-of-order segment.
        rx.on_data(SeqNum(1200), 100);
        let o2 = rx.on_data(SeqNum(1200), 100);
        assert!(o2.duplicate && o2.out_of_order);
    }

    #[test]
    fn overlapping_segments_merge() {
        let mut rx = r();
        rx.on_data(SeqNum(1100), 100);
        rx.on_data(SeqNum(1150), 100); // overlaps previous interval
        assert_eq!(rx.ooo_bytes(), 150);
        let blocks = rx.sack_blocks();
        assert_eq!(
            blocks.iter().next().unwrap(),
            (SeqNum(1100), SeqNum(1250))
        );
    }

    #[test]
    fn multiple_gaps_sack_ordering() {
        let mut rx = r();
        rx.on_data(SeqNum(1200), 100); // gap A
        rx.on_data(SeqNum(1400), 100); // gap B (most recent)
        let blocks: Vec<_> = rx.sack_blocks().iter().collect();
        assert_eq!(blocks[0], (SeqNum(1400), SeqNum(1500)), "most recent first");
        assert_eq!(blocks[1], (SeqNum(1200), SeqNum(1300)));
        // A third arrival updates recency.
        rx.on_data(SeqNum(1200), 50); // duplicate bytes, no recency change
        let blocks2: Vec<_> = rx.sack_blocks().iter().collect();
        assert_eq!(blocks2[0], (SeqNum(1400), SeqNum(1500)));
    }

    #[test]
    fn adjacent_intervals_coalesce() {
        let mut rx = r();
        rx.on_data(SeqNum(1100), 100);
        rx.on_data(SeqNum(1200), 100); // touches the previous one
        assert_eq!(rx.sack_blocks().len(), 1);
        assert_eq!(
            rx.sack_blocks().iter().next().unwrap(),
            (SeqNum(1100), SeqNum(1300))
        );
    }

    #[test]
    fn partial_old_segment_delivers_new_part() {
        let mut rx = r();
        rx.on_data(SeqNum(1000), 100);
        // Retransmission covering [950,1150): only [1100,1150) is new.
        let o = rx.on_data(SeqNum(1050), 100);
        assert_eq!(o.delivered, 50);
        assert_eq!(rx.rcv_nxt(), SeqNum(1150));
    }

    #[test]
    fn window_shrinks_with_ooo_bytes() {
        let mut rx = Reassembler::new(SeqNum(0), 1000);
        rx.on_data(SeqNum(500), 300);
        assert_eq!(rx.window(), 700);
        rx.on_data(SeqNum(0), 500);
        assert_eq!(rx.window(), 1000);
    }

    #[test]
    fn in_order_segment_bridging_gap() {
        let mut rx = r();
        rx.on_data(SeqNum(1100), 100); // gap [1000,1100)
        rx.on_data(SeqNum(1300), 100); // gap [1200,1300)
        // One big segment covers both holes and the buffered interval.
        let o = rx.on_data(SeqNum(1000), 300);
        assert_eq!(o.delivered, 400);
        assert_eq!(rx.rcv_nxt(), SeqNum(1400));
        assert!(!rx.has_gaps());
    }

    #[test]
    fn advance_for_syn() {
        let mut rx = Reassembler::new(SeqNum(41), 1000);
        rx.advance(1); // SYN consumed
        assert_eq!(rx.rcv_nxt(), SeqNum(42));
    }

    #[test]
    fn cross_tdn_reordering_scenario_a() {
        // Fig. 3(a): segments 4-6 (sent later, low-latency TDN) arrive
        // before 1-3 (high-latency TDN). The receiver SACKs 4-6, then the
        // late arrivals fill in and everything delivers.
        let mut rx = Reassembler::new(SeqNum(0), 1 << 20);
        for i in 3..6u32 {
            let o = rx.on_data(SeqNum(i * 100), 100);
            assert!(o.out_of_order);
        }
        assert_eq!(rx.sack_blocks().len(), 1);
        assert_eq!(
            rx.sack_blocks().iter().next().unwrap(),
            (SeqNum(300), SeqNum(600))
        );
        let mut delivered = 0;
        for i in 0..3u32 {
            delivered += rx.on_data(SeqNum(i * 100), 100).delivered;
        }
        assert_eq!(delivered, 600);
        assert!(!rx.has_gaps());
    }
}
