//! Cumulative per-connection counters.
//!
//! All counters are monotone; the experiment harness snapshots them at day
//! boundaries and diffs to attribute events to optical days (Fig. 10) or
//! computes rates over windows (throughput tables).

/// Cumulative statistics for one connection (or one MPTCP subflow).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Payload bytes handed to the network for the first time.
    pub bytes_sent: u64,
    /// Payload bytes cumulatively acknowledged.
    pub bytes_acked: u64,
    /// Payload bytes delivered in order to the receiving application.
    pub bytes_delivered: u64,
    /// Data segments transmitted (including retransmissions).
    pub segs_sent: u64,
    /// Pure ACK segments transmitted.
    pub acks_sent: u64,
    /// Segments received (data and ACK).
    pub segs_received: u64,
    /// Retransmitted segments.
    pub retransmits: u64,
    /// Retransmissions later proven unnecessary (the original had arrived:
    /// detected by the receiver seeing a fully duplicate segment).
    pub spurious_retransmits: u64,
    /// Duplicate segments observed at the receiver.
    pub dup_segs_received: u64,
    /// Times the sender entered fast recovery.
    pub fast_recoveries: u64,
    /// Times loss detection found a sequence hole (a "reordering event"
    /// in Fig. 10's terms: cumulative-ACK < SACK with a gap between).
    pub reorder_events: u64,
    /// Packets marked for retransmission by those events (Fig. 10b: the
    /// would-be spurious retransmissions if cwnd permits).
    pub reorder_marked_pkts: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Tail-loss probes fired.
    pub tlps: u64,
    /// Data segments received carrying a CE mark.
    pub ce_received: u64,
    /// ACKs received carrying ECN-Echo.
    pub ece_received: u64,
    /// Segments dropped by the network (counted by the network model).
    pub drops: u64,
    /// TDN change notifications processed (TDTCP only).
    pub tdn_switches: u64,
    /// RTT samples discarded as cross-TDN (type-3) samples (TDTCP only).
    pub cross_tdn_rtt_discards: u64,
    /// Hole segments skipped by relaxed reordering detection because their
    /// TDN differed from the triggering ACK's (TDTCP only).
    pub relaxed_skips: u64,
    /// MPTCP: segments reinjected onto another subflow.
    pub reinjections: u64,
    /// Times the notification watchdog inferred a missed TDN change and
    /// entered degraded mode (TDTCP only).
    pub notify_watchdog_fires: u64,
    /// Times a fresh notification resynchronized a degraded connection
    /// (TDTCP only).
    pub notify_resyncs: u64,
    /// Total nanoseconds spent in degraded (desynchronized) mode (TDTCP
    /// only).
    pub degraded_ns: u64,
    /// Duplicated or out-of-order notifications discarded because their
    /// generation was not newer than the last applied one (TDTCP only).
    pub stale_notifies: u64,
    /// Zero-window persist probes transmitted.
    pub persist_probes: u64,
    /// Segments whose SACK marks were cleared after the receiver reneged
    /// (head of the rtx queue SACKed-but-never-cumulatively-acked at RTO).
    pub sack_reneges: u64,
    /// Received data segments discarded because their payload checksum
    /// failed to verify (counted separately from network drops).
    pub corrupt_rx: u64,
    /// Times the connection aborted with a terminal `ConnError` instead
    /// of retrying forever.
    pub conn_aborts: u64,
    /// Episodes of timer-based loss recovery: an RTO fired with no
    /// fast-recovery path available (counted once per episode — backoff
    /// refires extend the episode rather than starting a new one). The
    /// T-RACKs pathology for short flows is exactly these episodes.
    pub rto_stalls: u64,
    /// Total nanoseconds spent waiting on RTO timers: for every RTO that
    /// fired, the dead air between the send/ACK activity that armed the
    /// timer and the timer firing. The tail-latency suite attributes
    /// p99/p999 FCT inflation to this counter.
    pub stall_ns: u64,
    /// Pause episodes of the skew-aware send gate: the sender held its
    /// pacer across a predicted slot edge because its clock-skew estimate
    /// exceeded half the guard band (TDTCP only).
    pub skew_gate_pauses: u64,
    /// Times the skew estimator exceeded the full guard band and the
    /// connection escalated into the degraded single-state posture
    /// without waiting for the watchdog (TDTCP only).
    pub skew_escalations: u64,
}

impl ConnStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean goodput in bits per second over `elapsed`, judged by delivered
    /// (application-order) bytes.
    pub fn goodput_bps(&self, elapsed: simcore::SimDuration) -> f64 {
        if elapsed == simcore::SimDuration::ZERO {
            return 0.0;
        }
        (self.bytes_delivered as f64 * 8.0) / elapsed.as_secs_f64()
    }

    /// Feed every counter into `d`, in declaration order. Two runs whose
    /// connections digest identically behaved identically counter-for-
    /// counter — the building block of the golden-trace determinism suite.
    pub fn write_digest(&self, d: &mut testkit::Digest) {
        let ConnStats {
            bytes_sent,
            bytes_acked,
            bytes_delivered,
            segs_sent,
            acks_sent,
            segs_received,
            retransmits,
            spurious_retransmits,
            dup_segs_received,
            fast_recoveries,
            reorder_events,
            reorder_marked_pkts,
            rtos,
            tlps,
            ce_received,
            ece_received,
            drops,
            tdn_switches,
            cross_tdn_rtt_discards,
            relaxed_skips,
            reinjections,
            notify_watchdog_fires,
            notify_resyncs,
            degraded_ns,
            stale_notifies,
            persist_probes,
            sack_reneges,
            corrupt_rx,
            conn_aborts,
            rto_stalls,
            stall_ns,
            skew_gate_pauses,
            skew_escalations,
        } = *self;
        for v in [
            bytes_sent,
            bytes_acked,
            bytes_delivered,
            segs_sent,
            acks_sent,
            segs_received,
            retransmits,
            spurious_retransmits,
            dup_segs_received,
            fast_recoveries,
            reorder_events,
            reorder_marked_pkts,
            rtos,
            tlps,
            ce_received,
            ece_received,
            drops,
            tdn_switches,
            cross_tdn_rtt_discards,
            relaxed_skips,
            reinjections,
            notify_watchdog_fires,
            notify_resyncs,
            degraded_ns,
            stale_notifies,
            persist_probes,
            sack_reneges,
            corrupt_rx,
            conn_aborts,
            rto_stalls,
            stall_ns,
            skew_gate_pauses,
            skew_escalations,
        ] {
            d.write_u64(v);
        }
    }

    /// One-shot digest of these counters.
    pub fn digest(&self) -> u64 {
        let mut d = testkit::Digest::new();
        self.write_digest(&mut d);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn goodput_math() {
        let mut s = ConnStats::new();
        s.bytes_delivered = 1_250_000; // 1.25 MB in 1 ms = 10 Gbps
        let g = s.goodput_bps(SimDuration::from_millis(1));
        assert!((g - 1e10).abs() / 1e10 < 1e-9, "got {g}");
    }

    #[test]
    fn goodput_zero_elapsed() {
        let s = ConnStats::new();
        assert_eq!(s.goodput_bps(SimDuration::ZERO), 0.0);
    }
}
