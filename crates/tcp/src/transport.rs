//! The endpoint abstraction the network substrate drives.
//!
//! Single-path TCP, TDTCP, and MPTCP endpoints all implement [`Transport`];
//! the RDCN emulator holds a `Box<dyn Transport>` per host and is agnostic
//! to the variant under test.

use crate::segment::Segment;
use crate::stats::ConnStats;
use simcore::SimTime;
use wire::TdnId;

/// A terminal per-flow error: the connection gave up instead of retrying
/// forever. Mirrors PR 2's degraded posture for the control plane — the
/// failure is *surfaced*, not silently spun on, so the driver (and the
/// chaos harness's invariant oracle) can distinguish "completed",
/// "errored", and "stalled".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnError {
    /// Consecutive retransmission timeouts exceeded the configured
    /// maximum (`Config::max_retries`, the `tcp_retries2` analogue).
    RetransmitLimit {
        /// RTO backoff count when the connection aborted.
        retries: u32,
    },
    /// The peer advertised a zero window and never reopened it through
    /// the configured maximum of persist probes.
    PersistTimeout {
        /// Persist probes sent when the connection aborted.
        probes: u32,
    },
}

/// A transport endpoint: consumes segments, timer expirations and
/// network-control signals; produces segments.
pub trait Transport {
    /// An incoming segment was delivered to this host.
    fn on_segment(&mut self, now: SimTime, seg: &Segment);

    /// Produce the next segment to transmit, or `None` when nothing may be
    /// sent. The driver calls this repeatedly until `None` after every
    /// event.
    fn poll_send(&mut self, now: SimTime) -> Option<Segment>;

    /// Earliest pending timer, if any.
    fn next_timer(&self) -> Option<SimTime>;

    /// A previously announced timer deadline passed.
    fn on_timer(&mut self, now: SimTime);

    /// A ToR-generated TDN-change notification arrived (§3.2). `gen` is
    /// the ToR's monotone notification generation — endpoints use it to
    /// detect duplicated and out-of-order deliveries (a duplicate
    /// carries a gen they have already applied). Default: ignored
    /// (single-path TCP has no use for it).
    fn on_tdn_notification(&mut self, _now: SimTime, _tdn: TdnId, _gen: u64) {}

    /// retcpdyn: the ToR announced it will switch to the circuit soon and
    /// has pre-enlarged its buffers. Default: ignored.
    fn on_circuit_prepare(&mut self, _now: SimTime) {}

    /// Cumulative statistics.
    fn stats(&self) -> &ConnStats;

    /// Whether the connection finished its handshake.
    fn is_established(&self) -> bool;

    /// Whether the transfer has fully completed.
    fn is_done(&self) -> bool;

    /// The terminal error this connection aborted with, if any. A
    /// connection with an error also reports `is_done()` so drivers
    /// terminate. Default: never errors (receivers; legacy variants).
    fn conn_error(&self) -> Option<ConnError> {
        None
    }

    /// Variant label for reporting (e.g. `"cubic"`, `"tdtcp"`).
    fn variant(&self) -> &'static str;

    /// Current congestion window(s) in bytes — one entry for single-path
    /// variants, one per TDN for TDTCP, one per subflow for MPTCP. For
    /// tracing and diagnostics.
    fn cwnd_report(&self) -> Vec<u32> {
        Vec::new()
    }
}
