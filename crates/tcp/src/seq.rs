//! TCP sequence number arithmetic.
//!
//! Sequence numbers live on a 32-bit circle; comparisons are only
//! meaningful between numbers less than 2^31 apart (RFC 793 §3.3 / the
//! serial-number arithmetic of RFC 1982). [`SeqNum`] makes the wrapping
//! explicit so no call site ever compares raw `u32`s.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A TCP sequence number with wrapping comparison semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// The zero sequence number.
    pub const ZERO: SeqNum = SeqNum(0);

    /// `self < other` on the sequence circle.
    #[inline]
    pub fn before(self, other: SeqNum) -> bool {
        (other.0.wrapping_sub(self.0) as i32) > 0
    }

    /// `self <= other` on the sequence circle.
    #[inline]
    pub fn before_eq(self, other: SeqNum) -> bool {
        self == other || self.before(other)
    }

    /// `self > other` on the sequence circle.
    #[inline]
    pub fn after(self, other: SeqNum) -> bool {
        other.before(self)
    }

    /// `self >= other` on the sequence circle.
    #[inline]
    pub fn after_eq(self, other: SeqNum) -> bool {
        self == other || self.after(other)
    }

    /// Signed distance `self - other` (positive when `self` is ahead).
    #[inline]
    pub fn distance(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// The larger of two sequence numbers on the circle.
    pub fn max(self, other: SeqNum) -> SeqNum {
        if self.after_eq(other) {
            self
        } else {
            other
        }
    }

    /// The smaller of two sequence numbers on the circle.
    pub fn min(self, other: SeqNum) -> SeqNum {
        if self.before_eq(other) {
            self
        } else {
            other
        }
    }

    /// Whether `self` lies in the half-open interval `[lo, hi)`.
    pub fn within(self, lo: SeqNum, hi: SeqNum) -> bool {
        self.after_eq(lo) && self.before(hi)
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    #[inline]
    fn add(self, n: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(n))
    }
}

impl AddAssign<u32> for SeqNum {
    #[inline]
    fn add_assign(&mut self, n: u32) {
        self.0 = self.0.wrapping_add(n);
    }
}

impl Sub<SeqNum> for SeqNum {
    /// Unsigned distance; caller asserts `self` is not behind `rhs`.
    type Output = u32;
    #[inline]
    fn sub(self, rhs: SeqNum) -> u32 {
        debug_assert!(
            self.after_eq(rhs),
            "sequence subtraction {self} - {rhs} went negative"
        );
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.before(b));
        assert!(b.after(a));
        assert!(a.before_eq(a));
        assert!(a.after_eq(a));
        assert!(!a.before(a));
    }

    #[test]
    fn wraparound_ordering() {
        let near_max = SeqNum(u32::MAX - 10);
        let wrapped = SeqNum(5);
        assert!(near_max.before(wrapped), "comparison crosses the wrap");
        assert!(wrapped.after(near_max));
        assert_eq!(wrapped.distance(near_max), 16);
        assert_eq!(wrapped - near_max, 16);
    }

    #[test]
    fn add_wraps() {
        let s = SeqNum(u32::MAX - 1) + 4;
        assert_eq!(s, SeqNum(2));
        let mut t = SeqNum(u32::MAX);
        t += 1;
        assert_eq!(t, SeqNum(0));
    }

    #[test]
    fn min_max_across_wrap() {
        let a = SeqNum(u32::MAX - 5);
        let b = SeqNum(3);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn within_interval() {
        let lo = SeqNum(u32::MAX - 2);
        let hi = SeqNum(4);
        assert!(SeqNum(u32::MAX).within(lo, hi));
        assert!(SeqNum(0).within(lo, hi));
        assert!(SeqNum(3).within(lo, hi));
        assert!(!SeqNum(4).within(lo, hi), "half-open at the top");
        assert!(!SeqNum(5).within(lo, hi));
        assert!(lo.within(lo, hi), "closed at the bottom");
    }

    #[test]
    fn distance_signs() {
        assert_eq!(SeqNum(10).distance(SeqNum(4)), 6);
        assert_eq!(SeqNum(4).distance(SeqNum(10)), -6);
        assert_eq!(SeqNum(0).distance(SeqNum(0)), 0);
    }
}
