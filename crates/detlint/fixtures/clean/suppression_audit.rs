// Clean counterpart: every directive still suppresses a live finding.

fn probe(xs: &[u64]) -> bool {
    // detlint: allow(unordered_iter) — fixture: membership probe, no iteration
    let seen: HashSet<u64> = xs.iter().copied().collect();
    seen.contains(&1)
}
