// Clean counterpart: floats accumulate in explicit Vec order.

fn mean(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    for x in xs {
        total += x;
    }
    total / xs.len() as f64
}
