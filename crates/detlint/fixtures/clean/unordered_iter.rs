// Clean counterpart: ordered collections only.

use std::collections::BTreeMap;

fn tally(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
