// Clean counterpart: config-seeded, label-forked randomness.

const JITTER_STREAM_LABEL: u64 = 0x7177;

fn rng_for(cfg_seed: u64) -> DetRng {
    DetRng::new(cfg_seed).fork(JITTER_STREAM_LABEL)
}
