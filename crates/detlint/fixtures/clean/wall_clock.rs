// Clean counterpart: simulated time drives everything.

fn deadline(clock: &SimClock, delta_ns: u64) -> u64 {
    clock.now_ns() + delta_ns
}
