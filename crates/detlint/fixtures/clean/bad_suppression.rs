// Clean counterpart: the suppression carries a written reason and hits
// a live finding.

fn membership(xs: &[u64]) -> bool {
    // detlint: allow(unordered_iter) — fixture: membership probe only, never iterated
    let set: HashSet<u64> = xs.iter().copied().collect();
    set.contains(&3)
}
