//! Clean counterpart: the crate root carries the attribute.

#![forbid(unsafe_code)]

pub fn entry() {}
