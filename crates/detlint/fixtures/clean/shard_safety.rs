// Clean counterpart: leader-only cross-shard access, fixed-order
// integer fold over the drains.

pub struct ShardedEmulator {
    shards: Vec<RackShard>,
}

pub struct OutMsg {
    pub dst: usize,
}

pub struct RackShard {
    pub outbox: Vec<OutMsg>,
}

impl ShardedEmulator {
    pub fn drain(&mut self) -> u64 {
        let mut events = 0u64;
        for src in 0..self.shards.len() {
            let msgs = std::mem::take(&mut self.shards[src].outbox);
            for m in msgs {
                events += 1;
                self.shards[m.dst].push(m);
            }
        }
        events
    }
}

impl RackShard {
    fn push(&mut self, _m: OutMsg) {}
}
