// Clean counterpart: unique labels, declared constants at fork sites.

pub const FAULT_STREAM_LABEL: u64 = 0xFA17;
pub const IMPAIR_STREAM_LABEL: u64 = 0xDA7A;
pub const RACK_STREAM_BASE: u64 = 0x5AAD_0000;

fn forks(rng: &DetRng, rack: u64) {
    let _ = rng.fork(FAULT_STREAM_LABEL);
    let _ = rng.fork(IMPAIR_STREAM_LABEL);
    let _ = rng.fork(RACK_STREAM_BASE + rack);
}
