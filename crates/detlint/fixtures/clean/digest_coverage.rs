// Clean counterpart: every pub counter appears in the fold.

pub struct CleanStats {
    pub sent: u64,
    pub lost: u64,
}

impl CleanStats {
    pub fn write_digest(&self, d: &mut Digest) {
        d.u64(self.sent);
        d.u64(self.lost);
    }
}
