// Fixture: det_float_order fires on float accumulation in functions
// touching unordered sources, even when the unordered_iter finding
// itself is annotated away as membership-only.

fn skewed_mean(weights: &std::collections::HashMap<u32, f64>) -> f64 { // detlint: allow(unordered_iter) — fixture
    weights.values().sum::<f64>() / weights.len() as f64
}

fn folded(weights: &std::collections::HashSet<u64>) -> f64 { // detlint: allow(unordered_iter) — fixture
    weights.iter().fold(0.0, |acc, w| acc + *w as f64)
}

fn annotated(weights: &std::collections::HashMap<u32, f64>) -> f64 { // detlint: allow(unordered_iter) — fixture
    // detlint: allow(det_float_order) — fixture: single-element map, order unobservable
    weights.values().sum::<f64>()
}

// Ordered sources never fire: an integer sum over the same map is
// associative, and a float sum over a Vec pops in index order.
fn clean_int(weights: &std::collections::HashMap<u32, u64>) -> u64 { // detlint: allow(unordered_iter) — fixture
    weights.values().sum::<u64>()
}

fn clean_vec(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() + xs.iter().fold(0.0, |a, b| a + b)
}
