// Cross-file fixture (pair with digest_stats.rs): the fold covers
// `forwarded` but forgets `dropped` — v1's same-file search could not
// see this struct at all.
impl InjectorStats for RelayStats {
    fn write_digest(&self, d: &mut Digest) {
        d.u64(self.forwarded);
    }
}
