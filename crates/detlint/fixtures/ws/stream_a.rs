// Cross-file fixture (pair with stream_b.rs): this file's label is the
// original declaration.
pub const FAULT_STREAM_LABEL: u64 = 0xFA17;
