// Cross-file fixture (pair with digest_fold.rs): the struct lives here,
// its write_digest fold in the other file (statfold-style trait impl).
pub struct RelayStats {
    pub forwarded: u64,
    pub dropped: u64,
}
