// Cross-file fixture (pair with stream_a.rs): a different crate reuses
// the same label value — no single file shows the collision.
pub const IMPAIR_STREAM_LABEL: u64 = 0xFA17;
