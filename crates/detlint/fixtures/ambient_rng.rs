// Fixture: ambient_rng fires on entropy sources and ad-hoc literal
// seeding, but not on config-derived seeds or forked streams.

fn banned_entropy() {
    let mut r = thread_rng();
    let _ = r.next_u64();
}

fn ad_hoc_literal_seed() {
    let mut r = DetRng::new(7);
    let _ = r.gen_f64();
}

fn ad_hoc_mangled_seed(seed: u64) {
    let mut r = TkRng::new(seed ^ 0x5f5f);
    let _ = r.next_u64();
}

const DEMO_STREAM_LABEL: u64 = 0xD_E201;

fn config_seeded_ok(cfg_seed: u64) {
    let mut r = DetRng::new(cfg_seed);
    let _ = r.fork(DEMO_STREAM_LABEL).gen_f64(); // fork labels are not seeds: fine
}

fn annotated() {
    // detlint: allow(ambient_rng) — fixture: pinned standalone experiment seed
    let mut r = DetRng::new(9);
    let _ = r.gen_f64();
}

#[cfg(test)]
mod tests {
    #[test]
    fn literal_seeds_are_fine_in_tests() {
        let _ = DetRng::new(1234);
    }
}
