//! Fixture: a perfectly clean crate root — no findings at all.

#![forbid(unsafe_code)]

/// Deterministic work only.
pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}
