// Fixture: shard_safety — only the leader type (owner of `shards`) may
// touch other shards' state, and mailbox drains must not fold floats
// through iterators (only the explicit (src, dst) order is sanctioned).
pub struct ShardedEmulator {
    shards: Vec<RackShard>,
}

pub struct OutMsg {
    pub dst: usize,
    pub bytes: u64,
}

pub struct RackShard {
    pub outbox: Vec<OutMsg>,
    pub goodput: f64,
}

impl ShardedEmulator {
    // Leader drain in fixed (src, dst) order: sanctioned.
    pub fn drain(&mut self) {
        for src in 0..self.shards.len() {
            let msgs = std::mem::take(&mut self.shards[src].outbox);
            for m in msgs {
                self.shards[m.dst].accept(m);
            }
        }
    }
}

impl RackShard {
    fn accept(&mut self, _m: OutMsg) {}

    // VIOLATION: a shard reaching around the mailbox into the world.
    pub fn cheat(&mut self, world: &mut ShardedEmulator) {
        world.shards[0].goodput = 1.0;
    }

    // VIOLATION: iterator float fold over a mailbox drain.
    pub fn fold_outbox(&self) -> f64 {
        self.outbox.iter().map(|m| m.bytes as f64).sum::<f64>()
    }
}
