// Fixture: unordered_iter fires on HashMap/HashSet and is suppressible.
// This file lives under fixtures/ and is NEVER scanned by a workspace
// run — it exists to be fed to the engine by the fixture tests.

use std::collections::HashMap;

fn digesty() -> u64 {
    let m: HashMap<u32, u32> = HashMap::new();
    m.len() as u64
}

fn annotated() -> bool {
    // detlint: allow(unordered_iter) — fixture: membership-only, order never observed
    let s: std::collections::HashSet<u32> = std::collections::HashSet::new();
    s.is_empty()
}

// A comment mentioning HashMap must not fire, nor must "HashMap" here:
const NAME: &str = "HashMap";
