// Fixture: digest_coverage — `late_adds` is a pub u64 counter on a
// struct with a same-file write_digest, but the fold never names it.
// This is exactly the counter-omission bug class PRs 2–3 fixed by hand.

pub struct DemoStats {
    /// Folded: fine.
    pub events_in: u64,
    /// Folded: fine.
    pub events_out: u64,
    /// NOT folded: must be reported.
    pub late_adds: u64,
    /// Folded signed extremum: fine.
    pub min_gap_ns: i64,
    /// NOT folded i64 state: must be reported.
    pub max_skew_ns: i64,
    /// NOT folded narrow counter: must be reported.
    pub retries: u32,
    /// Not a counter type: ignored by the rule.
    pub label: String,
}

impl DemoStats {
    pub fn write_digest(&self, d: &mut Digest) {
        d.write_u64(self.events_in);
        d.write_u64(self.events_out);
        d.write_i64(self.min_gap_ns);
    }
}

pub struct NoDigestStats {
    // No write_digest impl in this file: the rule stays quiet.
    pub whatever: u64,
}

pub struct SuppressedStats {
    pub counted: u64,
    // detlint: allow(digest_coverage) — fixture: transient scratch value, not run state
    pub scratch: u64,
}

impl SuppressedStats {
    pub fn write_digest(&self, d: &mut Digest) {
        d.write_u64(self.counted);
    }
}
