// Fixture: digest_coverage — `late_adds` is a pub u64 counter on a
// struct with a same-file write_digest, but the fold never names it.
// This is exactly the counter-omission bug class PRs 2–3 fixed by hand.

pub struct DemoStats {
    /// Folded: fine.
    pub events_in: u64,
    /// Folded: fine.
    pub events_out: u64,
    /// NOT folded: must be reported.
    pub late_adds: u64,
    /// Not a counter (not u64): ignored by the rule.
    pub label: String,
}

impl DemoStats {
    pub fn write_digest(&self, d: &mut Digest) {
        d.write_u64(self.events_in);
        d.write_u64(self.events_out);
    }
}

pub struct NoDigestStats {
    // No write_digest impl in this file: the rule stays quiet.
    pub whatever: u64,
}

pub struct SuppressedStats {
    pub counted: u64,
    // detlint: allow(digest_coverage) — fixture: transient scratch value, not run state
    pub scratch: u64,
}

impl SuppressedStats {
    pub fn write_digest(&self, d: &mut Digest) {
        d.write_u64(self.counted);
    }
}
