// Fixture: stream_discipline — stream label constants must be unique by
// name and value, and fork() call sites must pass declared labels.
pub const FAULT_STREAM_LABEL: u64 = 0xFA17;
pub const CLOCK_STREAM_LABEL: u64 = 0xC10C;
pub const DUPLICATE_STREAM_LABEL: u64 = 0xFA17;

fn forks(rng: &DetRng) {
    let _ = rng.fork(FAULT_STREAM_LABEL); // declared label: fine
    let _ = rng.fork(0xBAD); // inline magic number: fires
    let _ = rng.fork(GHOST_STREAM_LABEL); // never declared: fires
    let _ = rng.fork(CLOCK_STREAM_LABEL + 2); // declared base + offset: fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_fork_ad_hoc() {
        let _ = DetRng::new(1).fork(7);
    }
}
