// Fixture: wall_clock fires on Instant::now / SystemTime, suppressible.

use std::time::Instant;

fn bad() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

fn bad_systemtime() {
    let _ = std::time::SystemTime::UNIX_EPOCH;
}

fn annotated() -> u64 {
    let t = Instant::now(); // detlint: allow(wall_clock) — fixture: measurement site
    t.elapsed().as_nanos() as u64
}

fn not_a_call() {
    // `Instant` without `::now` is fine (e.g. a type annotation).
    let _x: Option<Instant> = None;
}
