// Fixture: forbid_unsafe — a crate root missing #![forbid(unsafe_code)].

pub fn entry() {}
