// Fixture: a directive without a reason still suppresses its target but
// is itself reported as bad_suppression, so the gate fails anyway.

fn reasonless() {
    // detlint: allow(unordered_iter)
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let _ = m.len();
}
