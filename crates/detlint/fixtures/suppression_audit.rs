// Fixture: suppression_audit — an allow whose rule can no longer fire
// in its scope is stale and must be removed.

// detlint: allow(wall_clock) — fixture: the clock read below was deleted
fn no_clocks_here() -> u64 {
    42
}

fn real_site(events: &[u64]) -> bool {
    // detlint: allow(unordered_iter) — fixture: membership probe only
    let seen: HashSet<u64> = events.iter().copied().collect();
    seen.contains(&7)
}
