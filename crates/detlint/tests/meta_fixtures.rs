//! Meta-test: every registered rule must ship a fixture proving it
//! fires and a clean counterpart proving it can stay quiet. A rule
//! added to [`detlint::RuleId::ALL`] without both files fails CI here,
//! before anyone trusts a lint that was never seen firing.

use detlint::{analyze, RuleId, Source};
use std::path::PathBuf;

/// Workspace-relative path a rule's fixtures are analyzed under. Most
/// rules don't care; the exceptions are path-scoped by design.
fn rel_path_for(rule: RuleId) -> &'static str {
    match rule.id() {
        "forbid_unsafe" => "crates/demo/src/lib.rs",
        "shard_safety" => "crates/rdcn/src/shard.rs",
        "layer_deps" => "crates/demo/Cargo.toml",
        _ => "crates/demo/src/util.rs",
    }
}

/// Fixture file name for a rule: `<id>.rs`, except manifests.
fn fixture_name(rule: RuleId) -> String {
    if rule.id() == "layer_deps" {
        format!("{}.toml", rule.id())
    } else {
        format!("{}.rs", rule.id())
    }
}

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn read_fixture(path: &PathBuf, rule: RuleId, kind: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "rule `{}` has no {kind} fixture at {}: {e}\n\
             every registered rule needs a firing fixture under \
             fixtures/ and a clean counterpart under fixtures/clean/",
            rule.id(),
            path.display()
        )
    })
}

#[test]
fn every_rule_has_a_firing_fixture() {
    for &rule in &RuleId::ALL {
        let path = fixture_dir().join(fixture_name(rule));
        let contents = read_fixture(&path, rule, "firing");
        let report = analyze(&[Source {
            rel_path: rel_path_for(rule).to_string(),
            contents,
        }]);
        let fired = report.findings.iter().filter(|f| f.rule == rule).count();
        assert!(
            fired > 0,
            "rule `{}` never fired on its own fixture {} — findings: {:?}",
            rule.id(),
            path.display(),
            report.findings
        );
    }
}

#[test]
fn every_rule_has_a_clean_counterpart() {
    for &rule in &RuleId::ALL {
        let path = fixture_dir().join("clean").join(fixture_name(rule));
        let contents = read_fixture(&path, rule, "clean");
        let report = analyze(&[Source {
            rel_path: rel_path_for(rule).to_string(),
            contents,
        }]);
        assert!(
            report.findings.is_empty(),
            "clean fixture {} for rule `{}` still produces findings: {:?}",
            path.display(),
            rule.id(),
            report.findings
        );
    }
}
