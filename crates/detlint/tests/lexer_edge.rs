//! Lexer edge cases: raw strings, nested block comments, lifetime vs
//! char disambiguation, escapes, byte literals, raw identifiers, and
//! line accounting across all of them. Getting these wrong means rules
//! fire inside string literals (false positives) or report the wrong
//! line (useless findings).

use detlint::lexer::{lex, Tok};

fn idents(src: &str) -> Vec<(String, u32)> {
    lex(src)
        .into_iter()
        .filter_map(|t| match t.kind {
            Tok::Ident(s) => Some((s, t.line)),
            _ => None,
        })
        .collect()
}

fn ident_names(src: &str) -> Vec<String> {
    idents(src).into_iter().map(|(s, _)| s).collect()
}

#[test]
fn raw_strings_with_hash_guards() {
    // The banned name lives inside raw strings of varying guard depth;
    // only the trailing `ok` is a real identifier.
    let src = r####"let a = r"HashMap"; let b = r#"say "HashSet" loud"#; ok"####;
    assert_eq!(ident_names(src), vec!["let", "a", "let", "b", "ok"]);
}

#[test]
fn raw_string_containing_quote_hash_sequences() {
    // `"#` inside an `r##"…"##` string must not terminate it.
    let src = r###"let s = r##"inner "# quote HashMap"##; after"###;
    assert_eq!(ident_names(src), vec!["let", "s", "after"]);
}

#[test]
fn byte_strings_and_byte_chars() {
    let src = "let a = b\"HashMap\"; let c = b'x'; let d = br#\"HashSet\"#; end";
    assert_eq!(
        ident_names(src),
        vec!["let", "a", "let", "c", "let", "d", "end"]
    );
    let chars = lex(src)
        .iter()
        .filter(|t| t.kind == Tok::CharLit)
        .count();
    assert_eq!(chars, 1, "b'x' is a byte char literal");
}

#[test]
fn nested_block_comments() {
    let src = "/* outer /* inner HashMap */ still comment */ real /* /* a */ b */ tail";
    assert_eq!(ident_names(src), vec!["real", "tail"]);
}

#[test]
fn lifetime_vs_char_literal() {
    let src = "fn f<'a>(x: &'a str, y: &'static u8) { let c = 'x'; let d = '\\n'; let e = '_'; }";
    let toks = lex(src);
    let lifetimes: Vec<String> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::Lifetime(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(lifetimes, vec!["a", "a", "static"]);
    let chars = toks.iter().filter(|t| t.kind == Tok::CharLit).count();
    assert_eq!(chars, 3, "'x', '\\n', and '_' are char literals");
}

#[test]
fn unicode_escape_char_literal() {
    let src = "let c = '\\u{1F600}'; next";
    assert_eq!(ident_names(src), vec!["let", "c", "next"]);
}

#[test]
fn string_escapes_do_not_end_strings() {
    let src = r#"let s = "quote \" backslash \\ HashMap"; after"#;
    assert_eq!(ident_names(src), vec!["let", "s", "after"]);
}

#[test]
fn raw_identifiers() {
    let src = "let r#type = 1; let radius = 2; let brake = 3;";
    assert_eq!(
        ident_names(src),
        vec!["let", "type", "let", "radius", "let", "brake"]
    );
}

#[test]
fn line_numbers_across_multiline_constructs() {
    let src = "first\n\"str\nstr\"\n/* c\nc */\nr#\"raw\nraw\"#\nlast";
    let ids = idents(src);
    assert_eq!(ids[0], ("first".to_string(), 1));
    assert_eq!(ids[1], ("last".to_string(), 8));
}

#[test]
fn string_line_continuation_counts_its_newline() {
    // A `\` before the newline continues the string; the newline still
    // advances the line counter (this was a real off-by-one against
    // testkit's bench.rs).
    let src = "let s = \"abc \\\n def\";\nnext";
    let ids = idents(src);
    assert_eq!(ids.last().unwrap(), &("next".to_string(), 3));
}

#[test]
fn int_literals_keep_text_and_floats_split() {
    let src = "let a = 0x5f5f; let b = 1_000u64; let c = 1.5;";
    let ints: Vec<String> = lex(src)
        .into_iter()
        .filter_map(|t| match t.kind {
            Tok::IntLit(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(ints, vec!["0x5f5f", "1_000u64", "1", "5"]);
}

#[test]
fn tuple_field_float_lookalikes() {
    // `x.0e1` is a tuple-field access (field `0e1` does not exist, but
    // lexically it is ident, dot, number token) — it must not be glued
    // into a float or eat the following tokens.
    let src = "let y = x.0e1; let z = t.0.1; end";
    let toks = lex(src);
    let ints: Vec<String> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            Tok::IntLit(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(ints, vec!["0e1", "0", "1"]);
    assert_eq!(ident_names(src), vec!["let", "y", "x", "let", "z", "t", "end"]);
}

#[test]
fn hex_with_e_digit_is_one_token_but_decimal_exponent_splits() {
    // `0x1e9` is a single hex literal (`e` is a hex digit); `1.5e3`
    // splits at the dot because the lexer never owns a `.`.
    let src = "let a = 0x1e9; let b = 1.5e3;";
    let ints: Vec<String> = lex(src)
        .into_iter()
        .filter_map(|t| match t.kind {
            Tok::IntLit(s) => Some(s),
            _ => None,
        })
        .collect();
    assert_eq!(ints, vec!["0x1e9", "1", "5e3"]);
}

#[test]
fn byte_and_char_escapes() {
    // Escaped quotes and hex escapes must not end the literal early.
    let src = r"let a = b'\xFF'; let b = '\''; let c = b'\''; let d = '\\'; end";
    assert_eq!(
        ident_names(src),
        vec!["let", "a", "let", "b", "let", "c", "let", "d", "end"]
    );
    let chars = lex(src).iter().filter(|t| t.kind == Tok::CharLit).count();
    assert_eq!(chars, 4);
}

#[test]
fn shift_right_is_two_puncts_not_a_generic_closer_confusion() {
    // `Vec<Vec<u64>>` ends in two `>` puncts; `x >> 2` produces the
    // same two tokens. The parser's depth tracking relies on never
    // seeing a fused `>>` token.
    let src = "let v: Vec<Vec<u64>> = f(); let y = x >> 2;";
    let gts = lex(src)
        .iter()
        .filter(|t| t.kind == Tok::Punct('>'))
        .count();
    assert_eq!(gts, 4, "two closers plus two shift halves, all single puncts");
}
