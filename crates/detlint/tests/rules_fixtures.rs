//! Fixture-file tests: every rule fires with the right file:line and
//! rule id, and every rule is suppressible with a reasoned
//! `detlint: allow`. The fixture sources live under `fixtures/`, which
//! the workspace scanner skips — they exist to contain violations.

use detlint::{check_rust_source, layering};

fn ids(findings: &[detlint::Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule.id(), f.line)).collect()
}

#[test]
fn unordered_iter_fires_and_suppresses() {
    let src = include_str!("../fixtures/unordered_iter.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/lib.rs", src);
    // use-line + two on the construction line; the annotated HashSet
    // pair is suppressed; strings/comments never fire. The fixture is
    // labelled src/lib.rs, so the missing forbid(unsafe_code) is also
    // (correctly) reported.
    assert_eq!(
        ids(&findings),
        vec![
            ("forbid_unsafe", 1),
            ("unordered_iter", 5),
            ("unordered_iter", 8),
            ("unordered_iter", 8),
        ]
    );
    assert_eq!(suppressed, 2);
}

#[test]
fn wall_clock_fires_and_suppresses() {
    let src = include_str!("../fixtures/wall_clock.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![("wall_clock", 6), ("wall_clock", 11)],
        "Instant::now and SystemTime fire; type-position Instant does not"
    );
    assert_eq!(suppressed, 1, "trailing allow on the annotated site");
}

#[test]
fn ambient_rng_fires_on_entropy_and_literal_seeds() {
    let src = include_str!("../fixtures/ambient_rng.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![
            ("ambient_rng", 5),
            ("ambient_rng", 10),
            ("ambient_rng", 15),
        ],
        "thread_rng, literal seed, and mangled literal seed fire; \
         config seed, fork labels, #[cfg(test)] code, and the annotated \
         site do not"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn ambient_rng_is_relaxed_in_test_paths() {
    let src = "fn setup() { let r = DetRng::new(1234); }";
    let (findings, _) = check_rust_source("crates/demo/tests/proptests.rs", src);
    assert!(findings.is_empty(), "test code may pin literal seeds");
    let (findings, _) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(ids(&findings), vec![("ambient_rng", 1)]);
}

#[test]
fn det_float_order_fires_and_suppresses() {
    let src = include_str!("../fixtures/det_float_order.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![("det_float_order", 6), ("det_float_order", 10)],
        "float sum/fold over annotated hash collections still fire; \
         the det_float_order-annotated site, integer folds, and \
         Vec-ordered float folds do not"
    );
    assert!(findings[0].message.contains("not associative"));
    // 4 unordered_iter (one per annotated hash param) + 1 det_float_order.
    assert_eq!(suppressed, 5);
}

#[test]
fn digest_coverage_reports_unfolded_counters() {
    let src = include_str!("../fixtures/digest_coverage.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/stats.rs", src);
    assert_eq!(
        ids(&findings),
        vec![
            ("digest_coverage", 11),
            ("digest_coverage", 15),
            ("digest_coverage", 17),
        ],
        "unfolded u64, i64, and u32 counters are all reported; folded \
         fields and non-counter types are not"
    );
    assert!(findings[0].message.contains("late_adds"));
    assert!(findings[0].message.contains("DemoStats"));
    assert!(findings[1].message.contains("max_skew_ns"));
    assert!(findings[2].message.contains("retries"));
    assert_eq!(suppressed, 1, "SuppressedStats::scratch is annotated");
}

#[test]
fn forbid_unsafe_missing_vs_present() {
    let clean = include_str!("../fixtures/clean_lib.rs");
    let (findings, _) = check_rust_source("crates/demo/src/lib.rs", clean);
    assert!(findings.is_empty(), "clean crate root has no findings");

    let (findings, _) = check_rust_source("crates/demo/src/lib.rs", "pub fn f() {}");
    assert_eq!(ids(&findings), vec![("forbid_unsafe", 1)]);

    // Non-root files are not required to carry the attribute.
    let (findings, _) = check_rust_source("crates/demo/src/inner.rs", "pub fn f() {}");
    assert!(findings.is_empty());
}

#[test]
fn bad_suppression_reported_for_reasonless_allow() {
    let src = include_str!("../fixtures/bad_suppression.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(suppressed, 2, "the reasonless allow still silences both HashMap hits");
    assert_eq!(ids(&findings), vec![("bad_suppression", 5)]);
    assert!(findings[0].message.contains("unordered_iter"));
}

#[test]
fn layering_rejects_upward_and_registry_deps() {
    let manifest = "\
[package]
name = \"tcp\"

[dependencies]
simcore.workspace = true
rdcn.workspace = true
serde = \"1.0\"

[dev-dependencies]
testkit.workspace = true
bench.workspace = true
";
    let (findings, _) = layering::check_manifest("crates/tcp/Cargo.toml", manifest);
    assert_eq!(
        ids(&findings),
        vec![
            ("layer_deps", 6),
            ("layer_deps", 7),
            ("layer_deps", 11),
        ],
        "tcp->rdcn breaks the DAG, serde breaks the offline guarantee, \
         and bench is unreachable even as a dev-dependency"
    );
    assert!(findings[1].message.contains("registry"));
}

#[test]
fn layering_accepts_the_real_shape() {
    let manifest = "\
[package]
name = \"tdtcp\"

[dependencies]
simcore.workspace = true
wire.workspace = true
tcp.workspace = true

[dev-dependencies]
testkit.workspace = true
rdcn.workspace = true
";
    let (findings, _) = layering::check_manifest("crates/core/Cargo.toml", manifest);
    assert!(
        findings.is_empty(),
        "transports may dev-depend on rdcn to drive an emulator: {findings:?}"
    );
}

#[test]
fn layering_suppressible_in_toml_comments() {
    let manifest = "\
[package]
name = \"simcore\"

[dependencies]
testkit.workspace = true
# detlint: allow(layer_deps) — fixture: documented migration exception
wire.workspace = true
";
    let (findings, suppressed) = layering::check_manifest("crates/simcore/Cargo.toml", manifest);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn layer_deps_fixture_fires_on_both_lines() {
    let src = include_str!("../fixtures/layer_deps.toml");
    let (findings, _) = layering::check_manifest("crates/tcp/Cargo.toml", src);
    assert_eq!(
        ids(&findings),
        vec![("layer_deps", 7), ("layer_deps", 8)],
        "tcp->rdcn breaks the DAG and serde breaks the offline guarantee"
    );
}

#[test]
fn forbid_unsafe_fixture_fires_at_crate_root() {
    let src = include_str!("../fixtures/forbid_unsafe.rs");
    let (findings, _) = check_rust_source("crates/demo/src/lib.rs", src);
    assert_eq!(ids(&findings), vec![("forbid_unsafe", 1)]);
}

#[test]
fn stream_discipline_fires_on_dup_value_magic_and_undeclared() {
    let src = include_str!("../fixtures/stream_discipline.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![
            ("stream_discipline", 5),
            ("stream_discipline", 9),
            ("stream_discipline", 10),
        ],
        "duplicate value, inline magic number, and undeclared label all \
         fire; declared labels, base+offset forks, and #[cfg(test)] \
         forks do not"
    );
    assert!(findings[0].message.contains("FAULT_STREAM_LABEL"));
    assert!(findings[0].message.contains("DUPLICATE_STREAM_LABEL"));
    assert!(findings[1].message.contains("fork"));
    assert!(findings[2].message.contains("GHOST_STREAM_LABEL"));
    assert_eq!(suppressed, 0);
}

#[test]
fn shard_safety_fires_on_mailbox_bypass_and_float_fold() {
    let src = include_str!("../fixtures/shard_safety.rs");
    let (findings, suppressed) = check_rust_source("crates/rdcn/src/shard.rs", src);
    assert_eq!(
        ids(&findings),
        vec![("shard_safety", 35), ("shard_safety", 40)],
        "a shard writing through the world's `shards` and a float fold \
         over a mailbox drain both fire; the leader's fixed (src, dst) \
         drain does not"
    );
    assert!(findings[0].message.contains("shards"));
    assert!(findings[1].message.contains("float `sum`"));
    assert_eq!(suppressed, 0);
}

#[test]
fn shard_safety_is_scoped_to_shard_files() {
    // The same source outside rdcn::shard is someone else's business.
    let src = include_str!("../fixtures/shard_safety.rs");
    let (findings, _) = check_rust_source("crates/demo/src/util.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn suppression_audit_reports_stale_allow() {
    let src = include_str!("../fixtures/suppression_audit.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![("suppression_audit", 4)],
        "the zero-hit wall_clock allow is stale; the unordered_iter \
         allow still earns its keep"
    );
    assert!(findings[0].message.contains("wall_clock"));
    assert_eq!(suppressed, 1);
}

// ---- cross-file workspace rules, driven through `analyze` ----

fn src(rel_path: &str, contents: &str) -> detlint::Source {
    detlint::Source {
        rel_path: rel_path.to_string(),
        contents: contents.to_string(),
    }
}

#[test]
fn stream_label_collision_across_files() {
    let report = detlint::analyze(&[
        src(
            "crates/demo/src/stream_a.rs",
            include_str!("../fixtures/ws/stream_a.rs"),
        ),
        src(
            "crates/demo/src/stream_b.rs",
            include_str!("../fixtures/ws/stream_b.rs"),
        ),
    ]);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule.id(), "stream_discipline");
    assert_eq!(f.file, "crates/demo/src/stream_b.rs");
    assert_eq!(f.line, 3);
    assert!(
        f.message.contains("stream_a.rs"),
        "the finding names the first declaration: {}",
        f.message
    );
}

#[test]
fn digest_fold_in_another_file_counts_as_coverage() {
    let report = detlint::analyze(&[
        src(
            "crates/demo/src/digest_stats.rs",
            include_str!("../fixtures/ws/digest_stats.rs"),
        ),
        src(
            "crates/demo/src/digest_fold.rs",
            include_str!("../fixtures/ws/digest_fold.rs"),
        ),
    ]);
    // `forwarded` is folded by the trait impl in the other file;
    // `dropped` is not folded anywhere.
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule.id(), "digest_coverage");
    assert_eq!(f.file, "crates/demo/src/digest_stats.rs");
    assert_eq!(f.line, 5);
    assert!(f.message.contains("dropped"));
}
