//! Fixture-file tests: every rule fires with the right file:line and
//! rule id, and every rule is suppressible with a reasoned
//! `detlint: allow`. The fixture sources live under `fixtures/`, which
//! the workspace scanner skips — they exist to contain violations.

use detlint::{check_rust_source, layering};

fn ids(findings: &[detlint::Finding]) -> Vec<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule.id(), f.line)).collect()
}

#[test]
fn unordered_iter_fires_and_suppresses() {
    let src = include_str!("../fixtures/unordered_iter.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/lib.rs", src);
    // use-line + two on the construction line; the annotated HashSet
    // pair is suppressed; strings/comments never fire. The fixture is
    // labelled src/lib.rs, so the missing forbid(unsafe_code) is also
    // (correctly) reported.
    assert_eq!(
        ids(&findings),
        vec![
            ("forbid_unsafe", 1),
            ("unordered_iter", 5),
            ("unordered_iter", 8),
            ("unordered_iter", 8),
        ]
    );
    assert_eq!(suppressed, 2);
}

#[test]
fn wall_clock_fires_and_suppresses() {
    let src = include_str!("../fixtures/wall_clock.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![("wall_clock", 6), ("wall_clock", 11)],
        "Instant::now and SystemTime fire; type-position Instant does not"
    );
    assert_eq!(suppressed, 1, "trailing allow on the annotated site");
}

#[test]
fn ambient_rng_fires_on_entropy_and_literal_seeds() {
    let src = include_str!("../fixtures/ambient_rng.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![
            ("ambient_rng", 5),
            ("ambient_rng", 10),
            ("ambient_rng", 15),
        ],
        "thread_rng, literal seed, and mangled literal seed fire; \
         config seed, fork labels, #[cfg(test)] code, and the annotated \
         site do not"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn ambient_rng_is_relaxed_in_test_paths() {
    let src = "fn setup() { let r = DetRng::new(1234); }";
    let (findings, _) = check_rust_source("crates/demo/tests/proptests.rs", src);
    assert!(findings.is_empty(), "test code may pin literal seeds");
    let (findings, _) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(ids(&findings), vec![("ambient_rng", 1)]);
}

#[test]
fn det_float_order_fires_and_suppresses() {
    let src = include_str!("../fixtures/det_float_order.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(
        ids(&findings),
        vec![("det_float_order", 6), ("det_float_order", 10)],
        "float sum/fold over annotated hash collections still fire; \
         the det_float_order-annotated site, integer folds, and \
         Vec-ordered float folds do not"
    );
    assert!(findings[0].message.contains("not associative"));
    // 4 unordered_iter (one per annotated hash param) + 1 det_float_order.
    assert_eq!(suppressed, 5);
}

#[test]
fn digest_coverage_reports_unfolded_counters() {
    let src = include_str!("../fixtures/digest_coverage.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/stats.rs", src);
    assert_eq!(
        ids(&findings),
        vec![
            ("digest_coverage", 11),
            ("digest_coverage", 15),
            ("digest_coverage", 17),
        ],
        "unfolded u64, i64, and u32 counters are all reported; folded \
         fields and non-counter types are not"
    );
    assert!(findings[0].message.contains("late_adds"));
    assert!(findings[0].message.contains("DemoStats"));
    assert!(findings[1].message.contains("max_skew_ns"));
    assert!(findings[2].message.contains("retries"));
    assert_eq!(suppressed, 1, "SuppressedStats::scratch is annotated");
}

#[test]
fn forbid_unsafe_missing_vs_present() {
    let clean = include_str!("../fixtures/clean_lib.rs");
    let (findings, _) = check_rust_source("crates/demo/src/lib.rs", clean);
    assert!(findings.is_empty(), "clean crate root has no findings");

    let (findings, _) = check_rust_source("crates/demo/src/lib.rs", "pub fn f() {}");
    assert_eq!(ids(&findings), vec![("forbid_unsafe", 1)]);

    // Non-root files are not required to carry the attribute.
    let (findings, _) = check_rust_source("crates/demo/src/inner.rs", "pub fn f() {}");
    assert!(findings.is_empty());
}

#[test]
fn bad_suppression_reported_for_reasonless_allow() {
    let src = include_str!("../fixtures/bad_suppression.rs");
    let (findings, suppressed) = check_rust_source("crates/demo/src/util.rs", src);
    assert_eq!(suppressed, 2, "the reasonless allow still silences both HashMap hits");
    assert_eq!(ids(&findings), vec![("bad_suppression", 5)]);
    assert!(findings[0].message.contains("unordered_iter"));
}

#[test]
fn layering_rejects_upward_and_registry_deps() {
    let manifest = "\
[package]
name = \"tcp\"

[dependencies]
simcore.workspace = true
rdcn.workspace = true
serde = \"1.0\"

[dev-dependencies]
testkit.workspace = true
bench.workspace = true
";
    let (findings, _) = layering::check_manifest("crates/tcp/Cargo.toml", manifest);
    assert_eq!(
        ids(&findings),
        vec![
            ("layer_deps", 6),
            ("layer_deps", 7),
            ("layer_deps", 11),
        ],
        "tcp->rdcn breaks the DAG, serde breaks the offline guarantee, \
         and bench is unreachable even as a dev-dependency"
    );
    assert!(findings[1].message.contains("registry"));
}

#[test]
fn layering_accepts_the_real_shape() {
    let manifest = "\
[package]
name = \"tdtcp\"

[dependencies]
simcore.workspace = true
wire.workspace = true
tcp.workspace = true

[dev-dependencies]
testkit.workspace = true
rdcn.workspace = true
";
    let (findings, _) = layering::check_manifest("crates/core/Cargo.toml", manifest);
    assert!(
        findings.is_empty(),
        "transports may dev-depend on rdcn to drive an emulator: {findings:?}"
    );
}

#[test]
fn layering_suppressible_in_toml_comments() {
    let manifest = "\
[package]
name = \"simcore\"

[dependencies]
testkit.workspace = true
# detlint: allow(layer_deps) — fixture: documented migration exception
wire.workspace = true
";
    let (findings, suppressed) = layering::check_manifest("crates/simcore/Cargo.toml", manifest);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}
